#!/usr/bin/env python3
"""Bare-metal CHERIoT assembly on the ISA simulator.

Writes a small capability-aware program, runs it on the functional
simulator under the Ibex timing model, and shows a use-after-free dying
in "hardware" at the load filter.

Run with::

    python examples/baremetal_assembly.py
"""

from repro.capability import Permission, make_roots
from repro.isa import CPU, ExecutionMode, LoadFilter, Trap, assemble
from repro.memory import RevocationMap, SystemBus, TaggedMemory, default_memory_map
from repro.pipeline import CoreKind, make_core_model

PROGRAM = """
# a0 <- s0 narrowed to [addr, addr+16) with write permission shed later
_start:
    cincaddrimm t0, s0, 32        # move into the buffer
    csetboundsimm t0, t0, 16      # narrow: monotone, irreversible
    li t1, 0xBEEF
    sw t1, 0(t0)                  # in-bounds store: fine
    lw a0, 0(t0)                  # read it back

    # Stash the narrowed capability in memory and reload it (clc goes
    # through the load filter).
    csc t0, 0(s1)
    clc t2, 0(s1)
    cgettag a1, t2                # 1: still tagged, nothing freed yet
    halt
"""

UAF = """
_uaf:
    clc t0, 0(s1)                 # reload the stashed capability
    cgettag a1, t0                # 0: the load filter stripped the tag
    lw a2, 0(t0)                  # -> traps: cheri-tag-violation
    halt
"""


def main() -> None:
    mm = default_memory_map()
    bus = SystemBus()
    bus.attach_sram(TaggedMemory(mm.code.base, mm.sram_bytes))
    rmap = RevocationMap(mm.heap.base, mm.heap.size)
    roots = make_roots()
    core = make_core_model(CoreKind.IBEX, load_filter_enabled=True)

    cpu = CPU(bus, ExecutionMode.CHERIOT, load_filter=LoadFilter(rmap), timing=core)
    program = assemble(PROGRAM + UAF)
    cpu.load_program(program, mm.code.base, pcc=roots.executable, entry="_start")

    heap_obj = roots.memory.set_address(mm.heap.base).set_bounds(256)
    stash = roots.memory.set_address(mm.globals_.base).set_bounds(64)
    cpu.regs.write(8, heap_obj)   # s0
    cpu.regs.write(9, stash)      # s1

    stats = cpu.run()
    print("first run:")
    print(f"  read back        {cpu.regs.read_int(10):#x}")
    print(f"  reloaded tag     {cpu.regs.read_int(11)}")
    print(f"  instructions     {stats.instructions}, cycles {core.cycles}")

    # "Free" the object: the allocator would paint its granules.
    rmap.paint(mm.heap.base + 32, 16)
    print("\nobject freed (revocation bits painted); attacker retries:")

    cpu.load_program(program, mm.code.base, pcc=roots.executable, entry="_uaf")
    cpu.regs.write(9, stash)
    try:
        cpu.run()
        print("  UAF SUCCEEDED (bug!)")
    except Trap as trap:
        print(f"  reloaded tag     {cpu.regs.read_int(11)}")
        print(f"  dereference  ->  {trap}")
    print(f"  load filter strips: {cpu.load_filter.stats.tags_stripped}")


if __name__ == "__main__":
    main()
