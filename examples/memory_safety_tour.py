#!/usr/bin/env python3
"""A tour of the paper's eight-point memory-safety model (section 2.3).

For an object owned by compartment A, compartment B must not be able
to do any of the eight things below.  Each attack runs against the real
machinery and is reported blocked (or the script exits non-zero).

Run with::

    python examples/memory_safety_tour.py
"""

import sys

from repro import System
from repro.allocator import TemporalSafetyMode
from repro.capability import Capability, Permission, attenuate_loaded
from repro.capability.errors import CapabilityError, PermissionFault
from repro.pipeline import CoreKind

BLOCKED = 0


def attack(description):
    """Decorator: run the attack, report whether it was blocked."""

    def wrap(fn):
        global BLOCKED
        try:
            fn()
        except CapabilityError as fault:
            print(f"  [blocked] {description}\n            -> {type(fault).__name__}: {fault}")
            BLOCKED += 1
        else:
            print(f"  [!! HOLE] {description} SUCCEEDED")
        return fn

    return wrap


def main() -> None:
    system = System.build(core=CoreKind.IBEX, mode=TemporalSafetyMode.HARDWARE)
    print("the eight prohibitions of section 2.3:\n")

    obj = system.malloc(64)

    @attack("1. access the object without being passed a pointer")
    def point1():
        Capability.null(obj.base).check_access(obj.base, 4, (Permission.LD,))

    @attack("2. access outside the bounds of a valid pointer")
    def point2():
        obj.check_access(obj.top, 4, (Permission.LD,))

    @attack("3. use the object after it has been freed")
    def point3():
        stash = system.malloc(64)
        system.bus.write_capability(stash.base, obj)
        system.free(obj)
        stale = system.load_filter.filter(system.bus.read_capability(stash.base))
        stale.check_access(stale.base, 4, (Permission.LD,))

    # 4 & 5 share the mechanism: local capabilities cannot be captured.
    stack_obj = (
        system.main_thread.stack_cap.set_address(system.main_thread.sp - 64)
        .set_bounds(32)
    )

    @attack("4. hold a pointer to an on-stack object after the call")
    def point4():
        # Stack capabilities are local; compartment globals lack SL.
        system.app.store_global_cap("stolen-stack-ptr", stack_obj)

    @attack("5. hold a temporarily delegated pointer beyond one call")
    def point5():
        delegated = system.malloc(64).make_local()
        system.app.store_global_cap("captured-delegate", delegated)

    shared = system.malloc(64)

    @attack("6. modify an object passed via immutable reference")
    def point6():
        view = shared.readonly()
        view.check_access(view.base, 4, (Permission.SD,))

    @attack("7. modify anything reachable from a deeply immutable ref")
    def point7():
        inner = system.malloc(32)
        system.bus.write_capability(shared.base, inner)
        deep_ro = shared.readonly()  # LM cleared: transitive
        loaded = attenuate_loaded(system.bus.read_capability(shared.base), deep_ro)
        loaded.check_access(loaded.base, 4, (Permission.SD,))

    @attack("8. tamper with an object passed via opaque reference")
    def point8():
        key = system.sealing.mint_key("service-state")
        handle = system.sealing.seal(key, {"balance": 100})
        handle.sealed_cap.check_access(
            handle.sealed_cap.address, 4, (Permission.LD,)
        )

    print(f"\n{BLOCKED}/8 attacks blocked — deterministically, not probabilistically.")
    sys.exit(0 if BLOCKED == 8 else 1)


if __name__ == "__main__":
    main()
