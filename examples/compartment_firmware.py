#!/usr/bin/env python3
"""A compartmentalized firmware: mutually distrusting vendor components.

Builds the scenario the paper's introduction motivates: a sensor driver
from vendor A, a telemetry logger from vendor B, and a key vault that
must survive both being compromised.  Demonstrates:

* cross-compartment calls through sealed import tokens,
* ephemeral delegation (a sensor buffer lent for one call only),
* deep read-only sharing (the logger can read, not write, not deepen),
* virtualised sealing (the vault hands out opaque handles),
* interrupt-posture control per export.

Run with::

    python examples/compartment_firmware.py
"""

from repro import System
from repro.allocator import TemporalSafetyMode
from repro.capability import Permission, attenuate_loaded
from repro.capability.errors import PermissionFault
from repro.pipeline import CoreKind
from repro.rtos.compartment import InterruptPosture


def main() -> None:
    system = System.build(
        core=CoreKind.IBEX, mode=TemporalSafetyMode.HARDWARE, finalize=False
    )
    loader = system.loader
    switcher = system.switcher
    thread = system.main_thread

    sensor = loader.add_compartment("sensor")
    logger = loader.add_compartment("logger")
    vault = loader.add_compartment("vault")

    # ------------------------------------------------------------------
    # The sensor: samples into a heap buffer, lends it out ephemerally.
    # ------------------------------------------------------------------

    def sample(ctx):
        ctx.use_stack(96)
        buffer = system.allocator.malloc(32)
        for i in range(8):
            system.bus.write_word(buffer.base + 4 * i, (i * 37) & 0xFFFF, 4)
        # Lend the buffer for the duration of the call only: strip GL so
        # the logger can hold it in registers/stack but never capture it.
        lent = buffer.make_local().readonly()
        total = ctx.call("logger", "log_readings", lent)
        system.allocator.free(buffer)
        return total

    sensor.export("sample", sample)

    # ------------------------------------------------------------------
    # The logger: possibly buggy/malicious third-party code.
    # ------------------------------------------------------------------

    def log_readings(ctx, readings):
        ctx.use_stack(96)
        # Attack 1: try to keep the buffer for later.
        try:
            ctx.store_global_cap("stolen", readings)
            print("  [logger] captured the buffer (BUG!)")
        except PermissionFault:
            print("  [logger] capture attempt -> blocked (no GL, globals lack SL)")
        # Attack 2: try to modify the readings.
        try:
            readings.check_access(readings.base, 4, (Permission.SD,))
            print("  [logger] modified the readings (BUG!)")
        except PermissionFault:
            print("  [logger] write attempt -> blocked (read-only view)")
        # Legitimate use: sum the readings.
        return sum(
            system.bus.read_word(readings.base + 4 * i, 4) for i in range(8)
        )

    logger.export("log_readings", log_readings)

    # ------------------------------------------------------------------
    # The vault: hands out opaque handles, runs with interrupts off.
    # ------------------------------------------------------------------
    key_type = system.sealing.mint_key("vault-key")

    def store_secret(ctx, secret):
        ctx.use_stack(64)
        return system.sealing.seal(key_type, secret)

    def use_secret(ctx, handle, message):
        ctx.use_stack(64)
        secret = system.sealing.unseal(key_type, handle)
        return f"signed({message}, key={secret[:4]}...)"

    vault.export("store_secret", store_secret, posture=InterruptPosture.DISABLED)
    vault.export("use_secret", use_secret, posture=InterruptPosture.DISABLED)

    loader.link("app", "sensor", "sample")
    loader.link("sensor", "logger", "log_readings")
    loader.link("app", "vault", "store_secret")
    loader.link("app", "vault", "use_secret")
    loader.finalize()  # roots erased: no new authority can appear

    # ------------------------------------------------------------------
    # Run the firmware.
    # ------------------------------------------------------------------
    print("sampling through the compartment boundary:")
    token = system.app.get_import("sensor", "sample")
    total = switcher.call(thread, token, )
    print(f"  sensor reported checksum {total}")

    print("\nvault interaction (exports run with interrupts disabled):")
    store = system.app.get_import("vault", "store_secret")
    use = system.app.get_import("vault", "use_secret")
    handle = switcher.call(thread, store, "hunter2-private-key")
    print(f"  got opaque handle: sealed={handle.sealed_cap.is_sealed}")
    print(f"  {switcher.call(thread, use, handle, 'telemetry-blob')}")
    try:
        system.sealing.unseal(system.sealing.mint_key("imposter"), handle)
    except PermissionFault:
        print("  imposter key -> blocked")

    print(f"\nswitcher calls: {switcher.stats.calls}, "
          f"stack bytes zeroed: {switcher.stats.bytes_zeroed:,}, "
          f"cycles: {system.core_model.cycles:,}")


if __name__ == "__main__":
    main()
