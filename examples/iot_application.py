#!/usr/bin/env python3
"""The paper's end-to-end IoT application (section 7.2.3), briefly.

Connects the simulated device to the "cloud", fetches LED-animation
JavaScript bytecode over TLS+MQTT through compartment boundaries, runs
it every 10 ms on a 20 MHz CHERIoT-Ibex, and reports CPU load.

Run with (a full 60 s simulation takes a few wall-clock seconds)::

    python examples/iot_application.py [duration_seconds]
"""

import sys

from repro.allocator import TemporalSafetyMode
from repro.iot.app import IoTApplication
from repro.pipeline import CoreKind


def main() -> None:
    duration_s = int(sys.argv[1]) if len(sys.argv) > 1 else 15
    app = IoTApplication(core=CoreKind.IBEX, mode=TemporalSafetyMode.HARDWARE)
    print(f"simulating {duration_s}s of device time at 20 MHz "
          f"(TLS handshake + MQTT bytecode delivery + 10ms JS ticks)...")
    report = app.run(duration_ms=duration_s * 1000)

    leds = "".join("*" if on else "." for on in report.led_final)
    print(f"""
device report
  CPU load             {report.cpu_load * 100:6.1f}%   (paper: 17.5% over 60s)
  idle thread          {report.idle_fraction * 100:6.1f}%   (paper: 82.5%)
  packets received     {report.packets_received:6d}     (each a fresh heap allocation)
  JS ticks             {report.js_ticks:6d}
  JS objects allocated {report.js_objects_allocated:6d}     (freed at GC, never reused early)
  GC passes            {report.gc_passes:6d}
  revocation passes    {report.revocation_passes:6d}
  LEDs                 [{leds}]
""")
    if duration_s < 60:
        print(f"note: the TLS handshake alone costs ~4s of 20 MHz CPU; over "
              f"{duration_s}s it dominates. Run with 60 to match the paper's window.")
    print("every packet buffer and JS object above was temporally safe: "
          "freed memory is quarantined, swept by the background revoker, "
          "and unreachable the moment free() returns.")


if __name__ == "__main__":
    main()
