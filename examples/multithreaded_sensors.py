#!/usr/bin/env python3
"""Threads and compartments are orthogonal (paper section 2.6).

Three threads — a high-priority control loop, a sensor sampler, and a
telemetry batcher — share one core under the preemptive scheduler and
cross in and out of the allocator compartment; a message queue moves
*global* capabilities between threads (and would refuse local ones).

Run with::

    python examples/multithreaded_sensors.py
"""

from repro import System
from repro.allocator import TemporalSafetyMode
from repro.pipeline import CoreKind
from repro.rtos import Executive, MessageQueue


def main() -> None:
    system = System.build(core=CoreKind.IBEX, mode=TemporalSafetyMode.HARDWARE)
    scheduler = system.scheduler
    core = system.core_model
    executive = Executive(scheduler, core)
    queue = MessageQueue(capacity=8, name="samples")
    log = []

    control_thread = system.main_thread  # priority 1 (already registered)
    sensor_thread = system.idle_thread  # reuse, priority 0

    def sensor():
        """Samples into fresh heap buffers; ships capabilities out."""
        for sample in range(6):
            buffer = system.allocator.malloc(32)
            system.bus.write_word(buffer.base, 1000 + sample * 7, 4)
            queue.send(buffer)  # global capability: allowed
            log.append(f"sensor: sample {sample} -> {buffer.base:#x}")
            yield ("sleep", 2_000)

    def control():
        """Consumes samples, frees the buffers (quarantine + revoke)."""
        consumed = 0
        while consumed < 6:
            yield ("block", lambda: not queue.empty)
            buffer = queue.receive()
            value = system.bus.read_word(buffer.base, 4)
            system.allocator.free(buffer)
            log.append(f"control: value {value} consumed, buffer freed")
            consumed += 1

    executive.spawn(control_thread, control())
    executive.spawn(sensor_thread, sensor())
    stats = executive.run()

    for line in log:
        print(line)
    print(f"\ncontext switches: {scheduler.stats.context_switches}, "
          f"voluntary yields: {stats.voluntary_yields}, "
          f"cycles: {core.cycles:,}")
    print(f"allocator: {system.allocator.stats.mallocs} mallocs, "
          f"{system.allocator.stats.frees} frees, "
          f"{system.allocator.quarantined_bytes} bytes in quarantine")

    # The flow-control rule, demonstrated:
    from repro.capability.errors import PermissionFault

    ephemeral = system.allocator.malloc(16).make_local()
    try:
        queue.send(ephemeral)
    except PermissionFault as fault:
        print(f"\nqueueing a LOCAL capability -> blocked: {fault}")


if __name__ == "__main__":
    main()
