#!/usr/bin/env python3
"""Quickstart: boot a CHERIoT system, allocate safely, watch attacks die.

Run with::

    python examples/quickstart.py
"""

from repro import System
from repro.allocator import TemporalSafetyMode
from repro.capability import Capability, Permission
from repro.capability.errors import (
    BoundsFault,
    MonotonicityFault,
    PermissionFault,
    TagFault,
)
from repro.pipeline import CoreKind


def main() -> None:
    # Boot a CHERIoT-Ibex with the hardware background revoker and the
    # stack high-water mark fitted — the paper's production shape.
    system = System.build(core=CoreKind.IBEX, mode=TemporalSafetyMode.HARDWARE)
    print(f"booted: {system.core_kind.value} core, "
          f"{system.memory_map.heap.size // 1024} KiB revocable heap")

    # --- allocation returns a *capability*, not an address -------------
    buffer = system.malloc(100)
    print(f"\nmalloc(100) -> {buffer}")
    print(f"  bounds  [{buffer.base:#x}, {buffer.top:#x}) "
          f"(exactly the allocation, header excluded)")
    print(f"  perms   {sorted(p.name for p in buffer.perms)}")

    # In-bounds access is normal.
    system.bus.write_word(buffer.base, 0xC0FFEE, 4)
    print(f"  wrote {system.bus.read_word(buffer.base, 4):#x} through it")

    # --- spatial safety -------------------------------------------------
    print("\nspatial safety:")
    try:
        buffer.check_access(buffer.top, 4, (Permission.LD,))
    except BoundsFault as fault:
        print(f"  out-of-bounds read  -> {fault}")
    try:
        buffer.set_bounds(4096)
    except MonotonicityFault as fault:
        print(f"  widening the bounds -> {fault}")
    try:
        Capability.null(buffer.base).check_access(buffer.base, 4, (Permission.LD,))
    except TagFault as fault:
        print(f"  forging from an address -> {fault}")

    # --- permission monotonicity ----------------------------------------
    readonly = buffer.readonly()
    try:
        readonly.check_access(readonly.base, 4, (Permission.SD,))
    except PermissionFault as fault:
        print(f"  writing via read-only view -> {fault}")

    # --- temporal safety --------------------------------------------------
    print("\ntemporal safety:")
    stash = system.malloc(64)
    system.bus.write_capability(stash.base, buffer)  # attacker stashes a copy
    system.free(buffer)
    print(f"  freed the buffer; revocation bit set: "
          f"{system.revocation_map.is_revoked(buffer.base)}")
    stale = system.load_filter.filter(system.bus.read_capability(stash.base))
    print(f"  attacker reloads stash -> tag={stale.tag} "
          f"(the load filter stripped it)")

    # --- the bill ---------------------------------------------------------
    print(f"\ncycles consumed (mechanistic model): "
          f"{system.core_model.cycles:,}")
    print("every malloc/free above crossed a compartment boundary through "
          "the trusted switcher")


if __name__ == "__main__":
    main()
