#!/usr/bin/env python3
"""Audit a firmware image before "signing" it (paper section 3.1.2).

"For auditing, it is far more useful to know which code runs with
interrupts disabled than it is to know which code may toggle
interrupts."  Interrupt posture is a static property of each export's
sentry type, so the review below is complete — no runtime state can
add to it.

Run with::

    python examples/image_audit.py
"""

import json
import os

from repro.allocator import TemporalSafetyMode
from repro.iot.app import IoTApplication
from repro.pipeline import CoreKind
from repro.rtos import audit_image
from repro.verify import evaluate_policy

_POLICY = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "AUDIT_policy.json",
)


def main() -> None:
    print("building the IoT firmware image...\n")
    app = IoTApplication(core=CoreKind.IBEX, mode=TemporalSafetyMode.HARDWARE)
    report = audit_image(
        app.system.switcher, app.system.loader.memory_map
    )
    print(report.render())

    print("\nwhat the auditor concludes:")
    disabled = report.interrupts_disabled
    if disabled:
        for record in disabled:
            print(f"  - {record.compartment}.{record.export} can defer interrupts")
    else:
        print("  - NO code in this image can run with interrupts disabled;")
        print("    worst-case interrupt latency is one instruction plus the")
        print("    revoker batch, regardless of what any compartment does.")
    windows = [
        f"{g.slot} ({g.kind})" for g in report.mmio_grants()
    ]
    print(f"  - only the allocator holds device windows: {', '.join(windows)}")
    for imp in report.imports:
        print(
            f"  - {imp.importer} reaches {imp.exporter}.{imp.export} only "
            f"through a sealed token (otype {imp.otype}) — it cannot forge"
        )
        print("    or retarget the entry point.")
    print("  - every other compartment's authority is its code, its globals,")
    print("    and whatever capabilities are passed to it at runtime.")

    print("\nevaluating the signing policy (AUDIT_policy.json):")
    with open(_POLICY) as fh:
        policy = json.load(fh)
    violations = evaluate_policy(report, policy)
    if violations:
        for violation in violations:
            print(f"  FAIL {violation.rule}: {violation.subject}: "
                  f"{violation.message}")
    else:
        print(f"  all {len(policy['rules'])} rules hold — the image is "
              "signable under this policy.")


if __name__ == "__main__":
    main()
