#!/usr/bin/env python3
"""Audit a firmware image before "signing" it (paper section 3.1.2).

"For auditing, it is far more useful to know which code runs with
interrupts disabled than it is to know which code may toggle
interrupts."  Interrupt posture is a static property of each export's
sentry type, so the review below is complete — no runtime state can
add to it.

Run with::

    python examples/image_audit.py
"""

from repro.allocator import TemporalSafetyMode
from repro.iot.app import IoTApplication
from repro.pipeline import CoreKind
from repro.rtos import audit_image


def main() -> None:
    print("building the IoT firmware image...\n")
    app = IoTApplication(core=CoreKind.IBEX, mode=TemporalSafetyMode.HARDWARE)
    report = audit_image(app.system.switcher)
    print(report.render())

    print("\nwhat the auditor concludes:")
    disabled = report.interrupts_disabled
    if disabled:
        for record in disabled:
            print(f"  - {record.compartment}.{record.export} can defer interrupts")
    else:
        print("  - NO code in this image can run with interrupts disabled;")
        print("    worst-case interrupt latency is one instruction plus the")
        print("    revoker batch, regardless of what any compartment does.")
    grants = report.grants.get("alloc", [])
    print(f"  - only the allocator holds device windows: {', '.join(grants)}")
    print("  - every other compartment's authority is its code, its globals,")
    print("    and whatever capabilities are passed to it at runtime.")


if __name__ == "__main__":
    main()
