#!/usr/bin/env python3
"""SLO gate: evaluate ``OBS_slo_policy.json`` over the fleet aggregate.

Usage (from the repository root)::

    PYTHONPATH=src python tools/check_slo.py             # refresh OBS_slo.json
    PYTHONPATH=src python tools/check_slo.py --check     # the CI/make gate
    PYTHONPATH=src python tools/check_slo.py --check --jobs 2
    PYTHONPATH=src python tools/check_slo.py --check --results-from DIR

The tool rebuilds the stock fleet plan's shard results, folds them into
the deterministic aggregate (:func:`repro.obs.pipeline.fleet_rollup`),
evaluates the declarative SLO policy over it
(:func:`repro.obs.slo.evaluate_slo` — unknown rules fail closed), and
renders the committed ``OBS_slo.json``.

``--check`` regenerates the report and compares it against the
committed baseline **byte for byte**, then additionally requires every
rule to pass — so the gate catches both drift (any number moved) and
regression (an objective violated).  Because every number derives from
simulated cycles, the bytes must be identical however the results were
produced:

* default — serial in-process execution (the reference);
* ``--jobs N`` — a supervised worker-pool run (job-count independence);
* ``--results-from DIR`` — shard results harvested from a checkpoint
  directory, e.g. one assembled across an interrupt/resume split
  (split independence).  The directory's manifest must match the
  baseline plan and cover every shard.

Exit status: 0 all green; 1 drift or violated objective; 2 unusable
baseline/policy.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.fleet import (  # noqa: E402
    CheckpointStore,
    FleetPlan,
    FleetSupervisor,
    RetryPolicy,
    run_shard,
)
from repro.obs.pipeline import fleet_rollup  # noqa: E402
from repro.obs.slo import (  # noqa: E402
    PolicyError,
    load_policy,
    render_slo,
    slo_report,
)

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from _baseline import BaselineError, first_divergence, load_baseline  # noqa: E402

REGEN_HINT = "PYTHONPATH=src python tools/check_slo.py"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--policy", default="OBS_slo_policy.json")
    parser.add_argument("--baseline", default="OBS_slo.json")
    parser.add_argument(
        "--check", action="store_true",
        help="gate mode: compare bytes against the baseline and require "
        "every objective to pass",
    )
    parser.add_argument(
        "--jobs", "-j", type=int, default=1,
        help="rebuild results with a supervised worker pool of this size "
        "(default: 1 = serial in-process)",
    )
    parser.add_argument(
        "--results-from", default=None, metavar="DIR",
        help="fold shard results from this checkpoint directory instead "
        "of recomputing them",
    )
    parser.add_argument("--devices", type=int, default=8)
    parser.add_argument("--shard-size", type=int, default=2)
    parser.add_argument("--seed", type=int, default=20260807)
    parser.add_argument("--injections", type=int, default=3)
    parser.add_argument("--alloc-ops", type=int, default=12)
    return parser


def _build_results(plan: FleetPlan, args) -> dict:
    """Shard results by the route the flags pick; content is identical."""
    if args.results_from:
        store = CheckpointStore(args.results_from)
        manifest = store._read_manifest()
        if manifest is None:
            raise SystemExit(
                f"no manifest in {args.results_from!r}; not a checkpoint dir"
            )
        if manifest.get("fingerprint") != plan.fingerprint():
            raise SystemExit(
                f"checkpoint dir {args.results_from!r} holds plan "
                f"{manifest.get('fingerprint')!r}, expected "
                f"{plan.fingerprint()!r}"
            )
        results = store.completed()
        missing = [
            spec.shard_id for spec in plan.shards()
            if spec.shard_id not in results
        ]
        if missing:
            raise SystemExit(
                f"checkpoint dir {args.results_from!r} is incomplete: "
                f"missing shards {missing} — finish the run with --resume"
            )
        return results
    if args.jobs > 1:
        with tempfile.TemporaryDirectory(prefix="slo-ckpt-") as ckpt:
            supervisor = FleetSupervisor(
                plan,
                CheckpointStore(ckpt),
                jobs=args.jobs,
                retry=RetryPolicy(seed=args.seed),
                log=lambda msg: print(f"  {msg}", file=sys.stderr),
            )
            results, quarantined = supervisor.run()
        if quarantined:
            raise SystemExit(
                f"supervised rebuild quarantined shards "
                f"{sorted(quarantined)}; SLO input would be partial"
            )
        return results
    return {spec.shard_id: run_shard(spec) for spec in plan.shards()}


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)

    try:
        policy = load_policy(
            load_baseline(args.policy, hint="the policy file is committed; "
                          "restore it from git")
        )
    except (BaselineError, PolicyError) as exc:
        print(exc, file=sys.stderr)
        return 2

    plan = FleetPlan(
        devices=args.devices,
        shard_size=args.shard_size,
        seed=args.seed,
        injections_per_device=args.injections,
        alloc_ops=args.alloc_ops,
    )

    results = _build_results(plan, args)
    aggregate = fleet_rollup(plan, results, {})
    report = slo_report(plan, aggregate, policy)
    rendered = render_slo(report)

    for result in report["slo"]["results"]:
        mark = "ok" if result["ok"] else "FAIL"
        params = " ".join(
            f"{key}={value}" for key, value in result["params"].items()
        )
        line = f"  [{mark}] {result['rule']}"
        if params:
            line += f" ({params})"
        line += f": observed {result['observed']} vs bound {result['bound']}"
        if result.get("detail"):
            line += f" — {result['detail']}"
        print(line)

    if not args.check:
        with open(args.baseline, "w") as fh:
            fh.write(rendered)
        print(f"wrote {args.baseline}")
        return 0 if report["slo"]["passed"] else 1

    try:
        baseline = load_baseline(args.baseline, hint=REGEN_HINT)
    except BaselineError as exc:
        print(exc, file=sys.stderr)
        return 2

    failed = False
    if render_slo(baseline) != rendered:
        where = first_divergence(baseline, report) or "(byte-level only)"
        print(f"SLO report drifted at: {where}", file=sys.stderr)
        print(
            f"if the change is intentional, refresh with: {REGEN_HINT}",
            file=sys.stderr,
        )
        failed = True
    if not report["slo"]["passed"]:
        broken = [r["rule"] for r in report["slo"]["results"] if not r["ok"]]
        print(f"SLO objectives violated: {broken}", file=sys.stderr)
        failed = True
    if failed:
        return 1
    print("SLO report reproduces byte-identically; every objective holds")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
