#!/usr/bin/env python3
"""CI gate: the fault-injection claims must not regress.

Usage (from the repository root)::

    PYTHONPATH=src python tools/check_fault_regression.py \
        [--baseline BENCH_faults.json] [--total 750]

Re-runs a short campaign with the baseline's seed and enforces:

* **zero escaped injections** — the paper's claim is absolute, so the
  gate is too;
* **detection-rate non-regression** — the fraction of activated faults
  the architecture stopped must not drop below the committed baseline
  (beyond a small tolerance for the different sample size);
* the committed baseline itself must record zero escapes.

Every violation message carries what a debugging session needs: the
fault class, the campaign seed, and the exact single-injection
``fault_campaign.py --reproduce`` command that replays the failure.

Exit status 1 on any violation, 2 on an unusable baseline.
"""

from __future__ import annotations

import argparse
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.faultinject import run_campaign  # noqa: E402

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from fault_campaign import print_escape, reproduce_command  # noqa: E402
from _baseline import BaselineError, load_baseline  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--baseline",
        default="BENCH_faults.json",
        help="committed campaign JSON (default: %(default)s)",
    )
    parser.add_argument(
        "--total",
        type=int,
        default=750,
        help="injections for the verification run (default: %(default)s)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.02,
        help="allowed detection-rate drop vs baseline (default: %(default)s)",
    )
    args = parser.parse_args(argv)

    try:
        baseline = load_baseline(
            args.baseline,
            hint="PYTHONPATH=src python tools/fault_campaign.py",
        )
    except BaselineError as exc:
        print(exc, file=sys.stderr)
        return 2

    try:
        seed = baseline["seed"]
    except KeyError:
        print(
            f"baseline {args.baseline!r} has no 'seed' field; regenerate "
            "with: PYTHONPATH=src python tools/fault_campaign.py",
            file=sys.stderr,
        )
        return 2

    failed = False
    base_escaped = baseline.get("outcomes", {}).get("escaped")
    if base_escaped != 0:
        print(
            f"baseline records {base_escaped} escaped injections (must be 0)",
            file=sys.stderr,
        )
        for entry in baseline.get("escaped", []):
            print(
                f"  baseline escape #{entry.get('index')} "
                f"[fault class {entry.get('fault_class')}, seed {seed}] "
                f"{entry.get('scenario')}\n"
                f"    replay: {reproduce_command(entry.get('index'), seed)}",
                file=sys.stderr,
            )
        failed = True

    result = run_campaign(total=args.total, seed=seed)
    tally = result.tally()
    print(
        f"  verification run ({args.total} injections, seed {seed}): "
        f"{tally['masked']} masked, {tally['detected']} detected, "
        f"{tally['contained']} contained, {tally['escaped']} escaped"
    )
    if result.escaped:
        for record in result.escaped:
            print_escape(record, seed)
        failed = True

    base_rate = baseline.get("detection_rate", 1.0)
    rate = result.detection_rate
    print(
        f"  detection rate: baseline {base_rate:.4f}, now {rate:.4f} "
        f"(tolerance {args.tolerance})"
    )
    if rate < base_rate - args.tolerance:
        print(
            f"detection rate regressed: {rate:.4f} < "
            f"{base_rate:.4f} - {args.tolerance}",
            file=sys.stderr,
        )
        by_class = result.tally_by_class()
        for fault_class in sorted(by_class):
            counts = by_class[fault_class]
            activated = sum(
                counts[k] for k in ("detected", "contained", "escaped")
            )
            stopped = counts["detected"] + counts["contained"]
            if activated and stopped < activated:
                print(
                    f"  fault class {fault_class}: {stopped}/{activated} "
                    f"activated faults stopped (seed {seed}) — inspect "
                    f"individual injections with: "
                    f"{reproduce_command('INDEX', seed)}",
                    file=sys.stderr,
                )
        failed = True

    if failed:
        print("fault-injection regression detected", file=sys.stderr)
        return 1
    print("fault-injection claims hold")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
