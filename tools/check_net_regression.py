#!/usr/bin/env python3
"""CI gate: ``BENCH_net.json`` must reproduce, and zero-copy must win.

Usage (from the repository root)::

    PYTHONPATH=src python tools/check_net_regression.py [--jobs N]

Re-runs the committed document's recorded sweep (connection counts and
rounds come from its ``config`` block, so an intentionally changed
sweep still gates itself) and compares the rendered bytes — the
serial/parallel/any-``--jobs`` byte-identity contract in one assert.

On top of reproducibility, the gate enforces the performance claim the
sweep exists to defend: at every point with **1024 or more concurrent
sessions**, the copying baseline's per-packet stack cycles (cipher
work excluded — it is byte-identical in both disciplines) must be at
least :data:`MIN_STACK_RATIO` times the zero-copy path's.  A committed
baseline that no longer shows the win is a regression even if it
reproduces perfectly.

Exit status 1 on drift or a violated ratio, 2 on an unusable baseline.
"""

from __future__ import annotations

import argparse
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)
sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from _baseline import BaselineError, first_divergence, load_baseline  # noqa: E402
from net_bench import (  # noqa: E402
    NET_BENCH_VERSION,
    NetBenchError,
    build_document,
    render_document,
)

REGEN_HINT = "make net  (PYTHONPATH=src python tools/net_bench.py)"

#: The acceptance floor: copying must cost at least this many times the
#: zero-copy stack cycles per packet at scale.
MIN_STACK_RATIO = 2.0

#: "At scale" means at least this many concurrent sessions.
SCALE_CONNECTIONS = 1024


def check_ratios(doc: dict) -> "list[str]":
    """Violations of the at-scale speedup claim in one document."""
    problems = []
    at_scale = [
        row for row in doc.get("comparison", [])
        if row["connections"] >= SCALE_CONNECTIONS
    ]
    if not at_scale:
        problems.append(
            f"sweep has no point with >= {SCALE_CONNECTIONS} connections; "
            "the at-scale claim is unverifiable"
        )
    for row in at_scale:
        if row["stack_cycles_ratio"] < MIN_STACK_RATIO:
            problems.append(
                f"at {row['connections']} connections the copy/zero-copy "
                f"stack-cycle ratio is {row['stack_cycles_ratio']} "
                f"(floor: {MIN_STACK_RATIO})"
            )
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", default="BENCH_net.json")
    parser.add_argument(
        "-j", "--jobs", type=int, default=1,
        help="worker processes for the rebuild (bytes must not change)",
    )
    args = parser.parse_args(argv)

    try:
        baseline = load_baseline(args.baseline, hint=REGEN_HINT)
    except BaselineError as exc:
        print(exc, file=sys.stderr)
        return 2

    if baseline.get("version") != NET_BENCH_VERSION:
        print(
            f"baseline schema version {baseline.get('version')} != "
            f"{NET_BENCH_VERSION}; regenerate with: {REGEN_HINT}",
            file=sys.stderr,
        )
        return 2
    config = baseline.get("config", {})
    conns = config.get("connections")
    rounds_map = config.get("rounds")
    if not isinstance(conns, list) or not isinstance(rounds_map, dict):
        print("baseline config block unreadable", file=sys.stderr)
        return 2

    failed = False
    for problem in check_ratios(baseline):
        print(f"baseline violates the claim: {problem}", file=sys.stderr)
        failed = True

    print(
        f"  re-running net sweep: connections {conns}, "
        f"jobs {max(1, args.jobs)}"
    )
    try:
        fresh = build_document(
            conns=tuple(conns),
            rounds={int(key): rounds_map[key] for key in sorted(rounds_map)},
            jobs=args.jobs,
        )
    except NetBenchError as exc:
        print(f"rebuild failed its self-check: {exc}", file=sys.stderr)
        return 1

    if render_document(fresh) != render_document(baseline):
        where = first_divergence(baseline, fresh) or "(byte-level only)"
        print(f"net benchmark drifted at: {where}", file=sys.stderr)
        print(
            f"if the change is intentional, refresh with: {REGEN_HINT}",
            file=sys.stderr,
        )
        failed = True

    if failed:
        print("net-stack regression detected", file=sys.stderr)
        return 1
    print(
        "net benchmark reproduces byte-identically; zero-copy wins "
        f">= {MIN_STACK_RATIO}x at >= {SCALE_CONNECTIONS} sessions"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
