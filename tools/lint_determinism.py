#!/usr/bin/env python3
"""AST lint: no nondeterminism in the deterministic-output paths.

Usage (from the repository root)::

    python tools/lint_determinism.py            # lint the declared paths
    python tools/lint_determinism.py FILE...    # lint specific files

Three committed artifacts (``bench_output_tables.txt``,
``BENCH_fleet.json``, ``AUDIT_baseline.json``) carry a byte-identical
reproducibility contract, enforced by regression gates that re-run the
producing code.  Those gates catch drift *after* it lands; this lint
catches the usual causes at review time, in the modules that feed the
artifacts:

* **wall-clock reads** — ``time.time()``, ``time.monotonic()``,
  ``perf_counter``, ``datetime.now()``: any of these in a report value
  makes two runs differ by definition;
* **global-RNG draws** — module-level ``random.random()`` and friends
  (versus an explicitly seeded ``random.Random(seed)`` instance),
  ``os.urandom``, ``uuid.uuid4``: unseeded entropy in a supposedly
  reproducible pipeline;
* **unordered iteration** — looping over a set display, set
  comprehension, or ``set(...)``/``frozenset(...)`` call: string hash
  randomisation reorders these across interpreter invocations, so any
  output assembled from such a loop is run-dependent;
* **directory-order dependence** — ``os.listdir``/``glob.glob``/
  ``Path.iterdir``/``Path.glob`` results used without an immediate
  ``sorted(...)``: filesystem enumeration order is unspecified.

Supervision code (timeouts, backoff, worker polling) legitimately reads
the clock, so the lint applies only to the declared deterministic-path
modules below, not the whole tree.  A true positive that is actually
fine (e.g. a seeded draw the lint cannot see) can be suppressed by
putting ``det: allow`` in a comment on the offending line.

Exit status 1 if any finding survives, 0 otherwise.
"""

from __future__ import annotations

import ast
import glob as globmod
import os
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: The modules whose output must be byte-reproducible.  Everything that
#: feeds a committed baseline or a CI gate belongs here; supervision and
#: wall-time measurement code (procutil, supervisor, bench_speed) does
#: not.
DETERMINISTIC_PATHS = [
    "src/repro/fleet/device.py",
    "src/repro/fleet/merge.py",
    "src/repro/fleet/plan.py",
    "src/repro/fleet/shard.py",
    "src/repro/faultinject/*.py",
    "src/repro/iot/firewall.py",
    "src/repro/iot/loadgen.py",
    "src/repro/iot/netstack.py",
    "src/repro/iot/packets.py",
    "src/repro/iot/sessions.py",
    "src/repro/iot/tls.py",
    "src/repro/obs/export.py",
    "src/repro/obs/pipeline.py",
    "src/repro/obs/profile.py",
    "src/repro/obs/registry.py",
    "src/repro/obs/sketch.py",
    "src/repro/obs/slo.py",
    "src/repro/rtos/audit.py",
    "src/repro/verify/*.py",
    "tools/_baseline.py",
    "tools/capaudit.py",
    "tools/check_fault_regression.py",
    "tools/check_fleet_regression.py",
    "tools/check_net_regression.py",
    "tools/check_slo.py",
    "tools/fault_campaign.py",
    "tools/net_bench.py",
    "tools/run_benchmarks.py",
]

SUPPRESS_MARKER = "det: allow"

_WALLCLOCK_TIME_ATTRS = {
    "time",
    "time_ns",
    "monotonic",
    "monotonic_ns",
    "perf_counter",
    "perf_counter_ns",
}
_WALLCLOCK_DATETIME_ATTRS = {"now", "utcnow", "today"}
_LISTING_OS_ATTRS = {"listdir", "scandir"}
_LISTING_GLOB_ATTRS = {"glob", "iglob"}
_LISTING_PATH_ATTRS = {"iterdir", "glob", "rglob"}


class Finding:
    def __init__(self, path: str, line: int, rule: str, message: str):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def _attr_chain(node: ast.AST) -> "tuple[str, ...]":
    """``a.b.c`` -> ("a", "b", "c"); empty tuple if not a name chain."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return ()


class _Linter(ast.NodeVisitor):
    def __init__(self, path: str, source: str):
        self.path = path
        self.lines = source.splitlines()
        self.findings: "list[Finding]" = []
        #: names bound by ``from random import x`` / ``from time import x``
        self.random_names: "set[str]" = set()
        self.time_names: "set[str]" = set()
        #: parents of every Call node, to allow ``sorted(os.listdir(..))``
        self.parents: "dict[ast.AST, ast.AST]" = {}

    def lint(self, tree: ast.AST) -> "list[Finding]":
        for parent in ast.walk(tree):
            for child in ast.iter_child_nodes(parent):
                self.parents[child] = parent
        self.visit(tree)
        return self.findings

    def _suppressed(self, node: ast.AST) -> bool:
        line = getattr(node, "lineno", 0)
        if 1 <= line <= len(self.lines):
            return SUPPRESS_MARKER in self.lines[line - 1]
        return False

    def _report(self, node: ast.AST, rule: str, message: str) -> None:
        if not self._suppressed(node):
            self.findings.append(
                Finding(self.path, getattr(node, "lineno", 0), rule, message)
            )

    # -- imports feed the name tables ---------------------------------

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "random":
            for alias in node.names:
                if alias.name != "Random":
                    self.random_names.add(alias.asname or alias.name)
        elif node.module == "time":
            for alias in node.names:
                if alias.name in _WALLCLOCK_TIME_ATTRS:
                    self.time_names.add(alias.asname or alias.name)
        self.generic_visit(node)

    # -- calls: clocks, entropy, directory listings -------------------

    def visit_Call(self, node: ast.Call) -> None:
        chain = _attr_chain(node.func)
        if chain:
            self._check_call_chain(node, chain)
        self.generic_visit(node)

    def _check_call_chain(
        self, node: ast.Call, chain: "tuple[str, ...]"
    ) -> None:
        head, tail = chain[0], chain[-1]
        if head == "time" and len(chain) == 2 and tail in _WALLCLOCK_TIME_ATTRS:
            self._report(
                node,
                "wall-clock",
                f"time.{tail}() in a deterministic path — derive values "
                "from the seed/plan, not the clock",
            )
        elif len(chain) == 1 and head in self.time_names:
            self._report(
                node,
                "wall-clock",
                f"{head}() (imported from time) in a deterministic path",
            )
        elif (
            tail in _WALLCLOCK_DATETIME_ATTRS
            and len(chain) >= 2
            and chain[-2] in ("datetime", "date")
        ):
            self._report(
                node,
                "wall-clock",
                f"{'.'.join(chain)}() reads the wall clock — timestamps "
                "do not belong in reproducible artifacts",
            )
        elif head == "random" and len(chain) == 2 and tail != "Random":
            self._report(
                node,
                "global-rng",
                f"random.{tail}() uses the unseeded module-global RNG — "
                "draw from an explicit random.Random(seed)",
            )
        elif len(chain) == 1 and head in self.random_names:
            self._report(
                node,
                "global-rng",
                f"{head}() (imported from random) uses the module-global "
                "RNG — draw from an explicit random.Random(seed)",
            )
        elif chain == ("os", "urandom") or chain == ("uuid", "uuid4"):
            self._report(
                node,
                "global-rng",
                f"{'.'.join(chain)}() is unseeded entropy",
            )
        elif self._is_listing_call(chain):
            if not self._inside_sorted(node):
                self._report(
                    node,
                    "dir-order",
                    f"{'.'.join(chain)}(...) enumerates in filesystem "
                    "order — wrap the call in sorted(...)",
                )

    def _is_listing_call(self, chain: "tuple[str, ...]") -> bool:
        if len(chain) == 2 and chain[0] == "os" and chain[1] in _LISTING_OS_ATTRS:
            return True
        if len(chain) == 2 and chain[0] == "glob" and chain[1] in _LISTING_GLOB_ATTRS:
            return True
        # ``something.iterdir()`` / ``something.rglob(...)`` — pathlib
        # idiom; ``.glob`` alone would also catch the glob module, which
        # is already handled above.
        return len(chain) >= 2 and chain[-1] in ("iterdir", "rglob")

    def _inside_sorted(self, node: ast.Call) -> bool:
        parent = self.parents.get(node)
        return (
            isinstance(parent, ast.Call)
            and isinstance(parent.func, ast.Name)
            and parent.func.id == "sorted"
        )

    # -- iteration over sets ------------------------------------------

    def visit_For(self, node: ast.For) -> None:
        self._check_iterable(node.iter)
        self.generic_visit(node)

    def visit_comprehension_iter(self, node: ast.AST) -> None:
        self._check_iterable(node)

    def _visit_comp(self, node) -> None:
        for gen in node.generators:
            self._check_iterable(gen.iter)
        self.generic_visit(node)

    visit_ListComp = _visit_comp
    visit_SetComp = _visit_comp
    visit_DictComp = _visit_comp
    visit_GeneratorExp = _visit_comp

    def _check_iterable(self, node: ast.AST) -> None:
        if isinstance(node, (ast.Set, ast.SetComp)):
            self._report(
                node,
                "set-iteration",
                "iterating a set literal/comprehension — hash "
                "randomisation makes the order run-dependent; use "
                "sorted(...)",
            )
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in ("set", "frozenset")
        ):
            self._report(
                node,
                "set-iteration",
                f"iterating {node.func.id}(...) — hash randomisation "
                "makes the order run-dependent; use sorted(...)",
            )


def lint_file(path: str) -> "list[Finding]":
    with open(path) as fh:
        source = fh.read()
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [Finding(path, exc.lineno or 0, "parse", str(exc))]
    return _Linter(os.path.relpath(path, REPO), source).lint(tree)


def declared_files() -> "list[str]":
    files = []
    for pattern in DETERMINISTIC_PATHS:
        matches = sorted(globmod.glob(os.path.join(REPO, pattern)))
        if not matches:
            print(
                f"lint_determinism: declared path {pattern!r} matches "
                "nothing — update DETERMINISTIC_PATHS",
                file=sys.stderr,
            )
            sys.exit(2)
        files.extend(matches)
    return files


def main(argv=None) -> int:
    args = sys.argv[1:] if argv is None else argv
    files = [os.path.abspath(a) for a in args] or declared_files()
    findings = []
    for path in files:
        findings.extend(lint_file(path))
    for finding in findings:
        print(finding, file=sys.stderr)
    if findings:
        print(
            f"lint_determinism: {len(findings)} finding(s) in "
            f"{len(files)} file(s)",
            file=sys.stderr,
        )
        return 1
    print(f"lint_determinism: {len(files)} file(s) clean")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
