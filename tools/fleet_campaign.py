#!/usr/bin/env python3
"""Run a supervised device-fleet campaign and write ``BENCH_fleet.json``.

Usage (from the repository root)::

    PYTHONPATH=src python tools/fleet_campaign.py
        [--devices N] [--shard-size K] [--seed N] [--jobs J]
        [--timeout S] [--heartbeat-timeout S] [--max-attempts N]
        [--checkpoint-dir DIR] [--resume]
        [--output BENCH_fleet.json] [--health FILE] [--serial] [--check]

The fleet shards N simulated devices across J supervised worker
processes.  Results checkpoint per shard as they complete; a run
killed mid-way (crash, SIGTERM, host OOM) is finished by rerunning
with ``--resume`` — already-completed shards are not recomputed, and
the merged report is **byte-identical** to an undisturbed run for any
``--jobs`` value, because every number in it derives from simulated
cycles and seeded RNG streams.

Orchestrator health (worker launches, crashes, timeouts, retries,
quarantined shards) is wall-clock territory, so it is written to the
``--health`` sidecar and printed — never into the byte-stable report.
Quarantined shards additionally appear in the report's ``degraded``
list: a partial fleet yields a complete, annotated report.

Two observability artifacts ride along:

* **Live streaming** — workers piggyback cumulative telemetry deltas
  on their heartbeat files; the supervisor folds them into a live
  fleet aggregate and progress lines (devices done, calls, latency
  p50/p99, escaped count) stream to stderr *during* the run.
* **Merged telemetry report** (``--telemetry-out``, default
  ``fleet-telemetry.json``) — the deterministic fleet aggregate from
  :func:`repro.obs.pipeline.fleet_rollup` plus the supervisor's
  :class:`~repro.obs.fleet.FleetHealthStats` as a first-class
  ``fleet_health`` metric group under ``host`` — emitted from the very
  object that writes the ``health.json`` sidecar, so the two can never
  disagree.  The ``host`` group is wall-clock territory and therefore
  lives outside the byte-stable ``aggregate`` (which is identical for
  any ``--jobs`` value; ``tools/check_slo.py`` gates it).

``--serial`` runs every shard in-process (no worker pool, no
supervision) — the reference execution the chaos tests compare
against.  ``--check`` exits non-zero if any injection escaped or any
shard was quarantined.

Chaos flags (tests/CI only): ``--chaos-crash I`` / ``--chaos-hang I``
make shard I fail once and succeed on retry; ``--chaos-stubborn I``
makes it fail every attempt, exercising quarantine.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import sys
import tempfile

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.fleet import (  # noqa: E402
    CheckpointStore,
    FleetInterrupted,
    FleetPlan,
    FleetSupervisor,
    RetryPolicy,
    merge_report,
    render_report,
    run_shard,
)
from repro.obs.fleet import FleetHealthStats, health_metric_group  # noqa: E402
from repro.obs.pipeline import fleet_rollup  # noqa: E402

#: Exit codes: distinguish "interrupted, resume me" from real failure.
EXIT_GATE_FAILED = 1
EXIT_USAGE = 2
EXIT_INTERRUPTED = 130


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--devices", type=int, default=8)
    parser.add_argument("--shard-size", type=int, default=2)
    parser.add_argument("--seed", type=int, default=20260807)
    parser.add_argument(
        "--injections", type=int, default=3,
        help="fault injections per device (default: %(default)s)",
    )
    parser.add_argument(
        "--alloc-ops", type=int, default=12,
        help="allocation ops per device (default: %(default)s)",
    )
    parser.add_argument("--jobs", "-j", type=int, default=1)
    parser.add_argument(
        "--timeout", type=float, default=120.0,
        help="per-shard wall-clock timeout in seconds (default: %(default)s)",
    )
    parser.add_argument(
        "--heartbeat-timeout", type=float, default=None,
        help="kill a worker whose heartbeat is staler than this (seconds)",
    )
    parser.add_argument(
        "--max-attempts", type=int, default=3,
        help="attempts per shard before quarantine (default: %(default)s)",
    )
    parser.add_argument(
        "--checkpoint-dir", default=None,
        help="per-shard checkpoint directory (default: a temp dir, "
        "which forfeits --resume)",
    )
    parser.add_argument("--resume", action="store_true")
    parser.add_argument("--output", "-o", default="BENCH_fleet.json")
    parser.add_argument(
        "--health", default=None,
        help="orchestrator health JSON (default: <checkpoint-dir>/health.json)",
    )
    parser.add_argument(
        "--telemetry-out", default="fleet-telemetry.json",
        help="merged fleet telemetry report (aggregate + host health; "
        "empty string disables; default: %(default)s)",
    )
    parser.add_argument(
        "--no-stream", action="store_true",
        help="suppress the live telemetry progress lines",
    )
    parser.add_argument(
        "--serial", action="store_true",
        help="run shards in-process, unsupervised (the reference mode)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="exit 1 on any escaped injection or quarantined shard",
    )
    parser.add_argument("--chaos-crash", type=int, action="append", default=[])
    parser.add_argument("--chaos-hang", type=int, action="append", default=[])
    parser.add_argument(
        "--chaos-stubborn", type=int, action="append", default=[]
    )
    return parser


def _write_chaos_tokens(chaos_dir: str, args) -> bool:
    any_token = False
    for kind, ids in (
        ("crash", args.chaos_crash),
        ("hang", args.chaos_hang),
        ("stubborn", args.chaos_stubborn),
    ):
        for shard_id in ids:
            with open(os.path.join(chaos_dir, f"{kind}-{shard_id}"), "w"):
                pass
            any_token = True
    return any_token


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.resume and args.checkpoint_dir is None:
        print("--resume needs --checkpoint-dir", file=sys.stderr)
        return EXIT_USAGE

    plan = FleetPlan(
        devices=args.devices,
        shard_size=args.shard_size,
        seed=args.seed,
        injections_per_device=args.injections,
        alloc_ops=args.alloc_ops,
    )

    if args.serial:
        results = {
            spec.shard_id: run_shard(spec) for spec in plan.shards()
        }
        quarantined = {}
        health = None
        # The one-source health object for the telemetry report: a
        # serial run has no supervisor, so its health is the trivial
        # "everything completed in-process" record.
        health_stats = FleetHealthStats(
            shards_total=len(results), shards_completed=len(results)
        )
    else:
        tmp_ctx = None
        ckpt_dir = args.checkpoint_dir
        if ckpt_dir is None:
            tmp_ctx = tempfile.TemporaryDirectory(prefix="fleet-ckpt-")
            ckpt_dir = tmp_ctx.name
        chaos_dir = None
        chaos_tmp = tempfile.TemporaryDirectory(prefix="fleet-chaos-")
        if _write_chaos_tokens(chaos_tmp.name, args):
            chaos_dir = chaos_tmp.name

        def stream_progress(summary: dict) -> None:
            print(
                "  [stream] "
                f"{summary['devices_done']}/{plan.devices} devices "
                f"({summary['shards_completed']}/{summary['shards_total']} "
                f"shards done), {summary['calls']} calls, "
                f"latency p50/p99 ≈ {summary['latency_p50']}/"
                f"{summary['latency_p99']} cyc, "
                f"{summary['injections']} injections / "
                f"{summary['escaped']} escaped",
                file=sys.stderr,
            )

        supervisor = FleetSupervisor(
            plan,
            CheckpointStore(ckpt_dir),
            jobs=max(1, args.jobs),
            timeout=args.timeout,
            heartbeat_timeout=args.heartbeat_timeout,
            retry=RetryPolicy(max_attempts=args.max_attempts, seed=args.seed),
            chaos_dir=chaos_dir,
            log=lambda msg: print(f"  {msg}", file=sys.stderr),
            progress=None if args.no_stream else stream_progress,
        )

        def on_signal(signum, frame):
            supervisor.request_stop()

        old_term = signal.signal(signal.SIGTERM, on_signal)
        old_int = signal.signal(signal.SIGINT, on_signal)
        try:
            results, quarantined = supervisor.run(resume=args.resume)
        except FleetInterrupted as exc:
            print(f"interrupted: {exc}", file=sys.stderr)
            _write_health(args, ckpt_dir, supervisor.health.to_dict())
            return EXIT_INTERRUPTED
        finally:
            signal.signal(signal.SIGTERM, old_term)
            signal.signal(signal.SIGINT, old_int)
            chaos_tmp.cleanup()
            if tmp_ctx is not None:
                tmp_ctx.cleanup()

        health = supervisor.health.to_dict()
        health_stats = supervisor.health
        _write_health(args, ckpt_dir if args.checkpoint_dir else None, health)

    report = merge_report(plan, results, quarantined)
    _write_telemetry(args, plan, results, quarantined, health_stats)
    payload = render_report(report)
    if args.output == "-":
        sys.stdout.write(payload)
    else:
        with open(args.output, "w") as fh:
            fh.write(payload)
        print(f"wrote {args.output}")

    agg = report["aggregates"]
    print(
        f"{agg['devices_reporting']} device(s) reporting, "
        f"{agg['devices_degraded']} degraded; "
        f"{agg['faults']['injections']} injections, "
        f"{agg['faults']['escaped']} ESCAPED; "
        f"call latency p50/p99 = {agg['latency']['p50']}/{agg['latency']['p99']} cycles; "
        f"revocation duty cycle {agg['revocation_duty_cycle']}"
    )
    if health is not None:
        print(
            "orchestrator health: "
            f"{health['worker_launches']} launches, "
            f"{health['worker_crashes']} crashes, "
            f"{health['worker_timeouts'] + health['heartbeat_timeouts']} timeouts, "
            f"{health['retries']} retries, "
            f"{health['quarantined']} quarantined"
        )

    if args.check:
        failed = False
        if agg["faults"]["escaped"]:
            print("GATE: escaped injections in fleet run", file=sys.stderr)
            failed = True
        if report["degraded"]:
            shards = [e["shard"] for e in report["degraded"]]
            print(f"GATE: quarantined shards {shards}", file=sys.stderr)
            failed = True
        if failed:
            return EXIT_GATE_FAILED
    return 0


def _write_telemetry(args, plan, results, quarantined, health_stats) -> None:
    """The merged telemetry report: byte-stable aggregate + host group."""
    if not args.telemetry_out:
        return
    document = {
        "schema": 1,
        "aggregate": fleet_rollup(plan, results, quarantined),
        "host": health_metric_group(health_stats),
    }
    with open(args.telemetry_out, "w") as fh:
        json.dump(document, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.telemetry_out}")


def _write_health(args, ckpt_dir, health: dict) -> None:
    path = args.health
    if path is None and ckpt_dir is not None:
        path = os.path.join(ckpt_dir, "health.json")
    if path is None:
        return
    with open(path, "w") as fh:
        json.dump(health, fh, indent=2, sort_keys=True)
        fh.write("\n")


if __name__ == "__main__":
    raise SystemExit(main())
