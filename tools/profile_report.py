#!/usr/bin/env python3
"""Per-compartment cycle attribution and hot-PC report (``make profile``).

Usage (from the repository root)::

    PYTHONPATH=src python tools/profile_report.py [--kernel list]
    PYTHONPATH=src python tools/profile_report.py --fleet 3 \
        [--output OBS_fleet_profile.json] [--check]

Runs the reference telemetry workload (malloc/free churn + forced
revocation sweep + one Table-3 CoreMark kernel) on a telemetry-enabled
system and prints:

* the per-context cycle breakdown from the
  :class:`~repro.obs.profile.CycleAttributor` — every elapsed cycle
  lands in exactly one bucket, so the total must reconcile with
  ``CoreModel.cycles`` (the report says so, and exits non-zero if not);
* the hot-PC histogram from the retire-hook
  :class:`~repro.obs.profile.PCProfiler`;
* switcher/error-handler overhead counters from the metrics registry.

``--fleet N`` instead runs the workload per device (kernels rotating
through list/matrix/state), merges the per-device hot-PC histograms by
integer addition into one fleet profile, and writes it as JSON.  The
profile is a pure function of the plan knobs, so the committed
``OBS_fleet_profile.json`` is a byte-reproducible baseline;
``--fleet N --check`` regenerates it and fails with a top-N hot-path
diff if the fresh profile drifts — the hot-path regression gate.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.machine import CoreKind  # noqa: E402
from repro.obs import render_attribution, render_hot_pcs  # noqa: E402
from repro.obs.profile import (  # noqa: E402
    diff_hot,
    hot_from_dict,
    merge_profile_dicts,
    profile_to_dict,
)
from repro.obs.workload import (  # noqa: E402
    run_fleet_workloads,
    run_traced_workload,
)

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from _baseline import BaselineError, load_baseline  # noqa: E402

#: The default committed fleet-profile baseline.
FLEET_BASELINE = "OBS_fleet_profile.json"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--core",
        choices=[kind.value for kind in CoreKind],
        default=CoreKind.IBEX.value,
        help="core timing model (default: ibex)",
    )
    parser.add_argument(
        "--kernel",
        choices=["list", "matrix", "state"],
        default="list",
        help="CoreMark kernel for the profiled phase (default: list)",
    )
    parser.add_argument(
        "--rounds", type=int, default=40, help="malloc/free rounds (default: 40)"
    )
    parser.add_argument(
        "--iterations", type=int, default=1, help="kernel iterations (default: 1)"
    )
    parser.add_argument(
        "--top", type=int, default=10, help="hot PCs to show (default: 10)"
    )
    parser.add_argument(
        "--fleet", type=int, default=0, metavar="N",
        help="merge N devices into one fleet profile (0: single device)",
    )
    parser.add_argument(
        "--output", "-o", default=FLEET_BASELINE,
        help="fleet profile JSON path (with --fleet; default: %(default)s)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="with --fleet: compare against the committed baseline "
        "instead of writing it; exit 1 with a top-N diff on drift",
    )
    args = parser.parse_args(argv)

    if args.fleet:
        return _fleet(args)

    result = run_traced_workload(
        core=CoreKind(args.core),
        rounds=args.rounds,
        kernel=args.kernel,
        iterations=args.iterations,
    )
    system = result["system"]
    profiler = result["profiler"]
    totals = system.obs.attributor.snapshot()
    core_cycles = system.core_model.cycles

    print(f"profile: core={args.core} kernel={args.kernel} rounds={args.rounds}")
    print()
    print("per-context cycle attribution:")
    print(render_attribution(totals, core_cycles=core_cycles))
    print()
    print(f"hot PCs (kernel phase, {profiler.retired:,} instructions retired):")
    print(render_hot_pcs(profiler, n=args.top))
    print()
    diff = system.stats_diff(result["before"])
    switcher = diff.get("switcher", {})
    print("switcher overhead (this run):")
    for key in sorted(switcher):
        print(f"  {key:<28} {switcher[key]:>12,}")
    print()
    spans = len(system.obs.tracer)
    print(f"spans recorded: {spans:,} (dropped: {system.obs.tracer.dropped:,})")

    if sum(totals.values()) != core_cycles:
        print("error: attribution does not reconcile with the core model")
        return 1
    return 0


def _render_profile(profile: dict) -> str:
    return json.dumps(profile, indent=2, sort_keys=True) + "\n"


def _fleet(args) -> int:
    """Merged fleet profile: regenerate, then write or gate."""
    workloads = run_fleet_workloads(
        devices=args.fleet, core=CoreKind(args.core),
        rounds=args.rounds, iterations=args.iterations,
    )
    fresh = merge_profile_dicts(
        profile_to_dict(result["profiler"], image=f"traced-{result['kernel']}")
        for _, result in workloads
    )

    print(
        f"fleet profile: {args.fleet} devices, core={args.core}, "
        f"kernels={[result['kernel'] for _, result in workloads]}, "
        f"{fresh['retired']:,} instructions retired"
    )
    print(f"hot PCs (fleet, top {args.top}):")
    rows = hot_from_dict(fresh, args.top)
    top = rows[0][1] or 1
    for key, cycles, hits, text in rows:
        bar = "#" * max(1, round(cycles / top * 30))
        print(f"  {key:<24} {cycles:>10,} cyc  {hits:>8,} hits  {bar}  {text}")

    if not args.check:
        with open(args.output, "w") as fh:
            fh.write(_render_profile(fresh))
        print(f"wrote {args.output}")
        return 0

    try:
        baseline = load_baseline(
            args.output,
            hint=f"PYTHONPATH=src python tools/profile_report.py "
            f"--fleet {args.fleet} -o {args.output}",
        )
    except BaselineError as exc:
        print(exc, file=sys.stderr)
        return 2
    if _render_profile(baseline) == _render_profile(fresh):
        print("fleet profile reproduces byte-identically")
        return 0
    print("fleet profile drifted from the committed baseline:", file=sys.stderr)
    lines = diff_hot(baseline, fresh, args.top) or [
        f"(no top-{args.top} churn; drift is in the cold tail or totals)"
    ]
    for line in lines:
        print(f"  {line}", file=sys.stderr)
    print(
        "if the hot-path change is intentional, refresh with: "
        f"PYTHONPATH=src python tools/profile_report.py "
        f"--fleet {args.fleet} -o {args.output}",
        file=sys.stderr,
    )
    return 1


if __name__ == "__main__":
    raise SystemExit(main())
