#!/usr/bin/env python3
"""Per-compartment cycle attribution and hot-PC report (``make profile``).

Usage (from the repository root)::

    PYTHONPATH=src python tools/profile_report.py [--kernel list]

Runs the reference telemetry workload (malloc/free churn + forced
revocation sweep + one Table-3 CoreMark kernel) on a telemetry-enabled
system and prints:

* the per-context cycle breakdown from the
  :class:`~repro.obs.profile.CycleAttributor` — every elapsed cycle
  lands in exactly one bucket, so the total must reconcile with
  ``CoreModel.cycles`` (the report says so, and exits non-zero if not);
* the hot-PC histogram from the retire-hook
  :class:`~repro.obs.profile.PCProfiler`;
* switcher/error-handler overhead counters from the metrics registry.
"""

from __future__ import annotations

import argparse
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.machine import CoreKind  # noqa: E402
from repro.obs import render_attribution, render_hot_pcs  # noqa: E402
from repro.obs.workload import run_traced_workload  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--core",
        choices=[kind.value for kind in CoreKind],
        default=CoreKind.IBEX.value,
        help="core timing model (default: ibex)",
    )
    parser.add_argument(
        "--kernel",
        choices=["list", "matrix", "state"],
        default="list",
        help="CoreMark kernel for the profiled phase (default: list)",
    )
    parser.add_argument(
        "--rounds", type=int, default=40, help="malloc/free rounds (default: 40)"
    )
    parser.add_argument(
        "--iterations", type=int, default=1, help="kernel iterations (default: 1)"
    )
    parser.add_argument(
        "--top", type=int, default=10, help="hot PCs to show (default: 10)"
    )
    args = parser.parse_args(argv)

    result = run_traced_workload(
        core=CoreKind(args.core),
        rounds=args.rounds,
        kernel=args.kernel,
        iterations=args.iterations,
    )
    system = result["system"]
    profiler = result["profiler"]
    totals = system.obs.attributor.snapshot()
    core_cycles = system.core_model.cycles

    print(f"profile: core={args.core} kernel={args.kernel} rounds={args.rounds}")
    print()
    print("per-context cycle attribution:")
    print(render_attribution(totals, core_cycles=core_cycles))
    print()
    print(f"hot PCs (kernel phase, {profiler.retired:,} instructions retired):")
    print(render_hot_pcs(profiler, n=args.top))
    print()
    diff = system.stats_diff(result["before"])
    switcher = diff.get("switcher", {})
    print("switcher overhead (this run):")
    for key in sorted(switcher):
        print(f"  {key:<28} {switcher[key]:>12,}")
    print()
    spans = len(system.obs.tracer)
    print(f"spans recorded: {spans:,} (dropped: {system.obs.tracer.dropped:,})")

    if sum(totals.values()) != core_cycles:
        print("error: attribution does not reconcile with the core model")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
