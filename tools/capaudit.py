#!/usr/bin/env python3
"""The signing-time capability audit (paper sections 3-4).

Usage (from the repository root)::

    PYTHONPATH=src python tools/capaudit.py              # print the audit
    PYTHONPATH=src python tools/capaudit.py --output AUDIT_baseline.json
    PYTHONPATH=src python tools/capaudit.py --check      # CI gate
    PYTHONPATH=src python tools/capaudit.py --jobs 4     # parallel verify

One run produces the complete static story of the repo's images:

* **verifier** — every audited image (``repro.verify.images``) run
  through the abstract interpreter: violations (must be zero on stock
  images), per-category obligation counts, and proven-property counts;
* **linkage** — the stock system's linkage report (exports, sealed
  import tokens, capability grants classified against the memory map)
  evaluated against the declarative policy in ``AUDIT_policy.json``;
* **crosscheck** — the static-vs-dynamic falsifiability gate over the
  code-splice mutants.

The output is deterministic — byte-identical across runs and across
``--jobs`` values — and committed as ``AUDIT_baseline.json``.
``--check`` recomputes everything, enforces the safety gates (zero
violations, policy clean, crosscheck consistent) and fails on any byte
of drift from the committed baseline.

Exit status 1 on any violation or drift, 2 on an unusable baseline.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)
sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from _baseline import BaselineError, first_divergence, load_baseline  # noqa: E402

AUDIT_VERSION = 1


def _verify_one(name: str) -> "tuple[str, dict]":
    """Verify one audited image (worker entry point for --jobs)."""
    from repro.verify import AUDITED_IMAGES, verify_image

    return name, verify_image(AUDITED_IMAGES[name]()).to_dict()


def _verify_all(jobs: int) -> "dict[str, dict]":
    from repro.verify import AUDITED_IMAGES

    names = sorted(AUDITED_IMAGES)
    if jobs > 1:
        import multiprocessing

        with multiprocessing.Pool(min(jobs, len(names))) as pool:
            results = pool.map(_verify_one, names)
    else:
        results = [_verify_one(name) for name in names]
    # Sorted merge: the output order never depends on completion order.
    return {name: result for name, result in sorted(results)}


def build_audit(policy_path: str, jobs: int = 1) -> dict:
    """Compute the full audit document (deterministic)."""
    from repro.machine import System
    from repro.verify import audit_image, evaluate_policy, run_crosscheck

    with open(policy_path) as fh:
        policy = json.load(fh)

    system = System.build()
    linkage = audit_image(system.switcher, system.loader.memory_map)
    policy_violations = [
        v.to_dict() for v in evaluate_policy(linkage, policy)
    ]

    return {
        "version": AUDIT_VERSION,
        "images": _verify_all(jobs),
        "linkage": linkage.to_dict(),
        "policy": {
            "file": os.path.basename(policy_path),
            "violations": policy_violations,
        },
        "crosscheck": run_crosscheck(),
    }


def render(doc: dict) -> str:
    return json.dumps(doc, indent=2, sort_keys=True) + "\n"


def _enforce_gates(doc: dict) -> "list[str]":
    """The absolute claims: what must hold for any committable audit."""
    problems = []
    for name, result in doc["images"].items():
        for violation in result["violations"]:
            problems.append(
                f"image {name}: {violation['category']} violation at "
                f"index {violation['index']} ({violation['mnemonic']}): "
                f"{violation['message']}"
            )
    for violation in doc["policy"]["violations"]:
        problems.append(
            f"policy {violation['rule']}: {violation['subject']}: "
            f"{violation['message']}"
        )
    crosscheck = doc["crosscheck"]
    if not crosscheck["consistent"]:
        problems.append(
            "crosscheck: a statically-clean mutant escaped dynamically "
            "(the static-auditability claim is falsified)"
        )
    if crosscheck["statically_flagged"] < 1:
        problems.append(
            "crosscheck: no code-splice mutant was statically flagged"
        )
    return problems


def _summarise(doc: dict) -> str:
    lines = ["capability audit", "----------------"]
    for name, result in sorted(doc["images"].items()):
        obligations = sum(result["obligations"].values())
        proven = sum(result["proven"].values())
        lines.append(
            f"  {name}: {result['instructions']} instrs, "
            f"{len(result['violations'])} violations, "
            f"{proven} proven, {obligations} obligations"
        )
    lines.append(
        f"  linkage: {len(doc['linkage']['exports'])} exports, "
        f"{len(doc['linkage']['imports'])} imports, "
        f"{len(doc['policy']['violations'])} policy violations"
    )
    crosscheck = doc["crosscheck"]
    lines.append(
        f"  crosscheck: {crosscheck['statically_flagged']}/"
        f"{len(crosscheck['variants'])} splice mutants statically flagged, "
        f"consistent={crosscheck['consistent']}"
    )
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--policy",
        default="AUDIT_policy.json",
        help="declarative policy file (default: %(default)s)",
    )
    parser.add_argument(
        "--baseline",
        default="AUDIT_baseline.json",
        help="committed audit baseline for --check (default: %(default)s)",
    )
    parser.add_argument(
        "--output",
        help="write the audit document to this path",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="parallel image-verification workers (default: %(default)s)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="CI gate: enforce safety gates and fail on baseline drift",
    )
    args = parser.parse_args(argv)

    doc = build_audit(args.policy, jobs=max(1, args.jobs))
    print(_summarise(doc))

    failed = False
    for problem in _enforce_gates(doc):
        print(problem, file=sys.stderr)
        failed = True

    if args.check:
        try:
            baseline = load_baseline(
                args.baseline,
                hint="make audit-refresh  "
                "(PYTHONPATH=src python tools/capaudit.py "
                "--output AUDIT_baseline.json)",
            )
        except BaselineError as exc:
            print(exc, file=sys.stderr)
            return 2
        if render(baseline) != render(doc):
            where = first_divergence(baseline, doc) or "(byte-level only)"
            print(f"audit drifted from baseline at: {where}", file=sys.stderr)
            print(
                "if the change is intentional, refresh with: "
                "make audit-refresh",
                file=sys.stderr,
            )
            failed = True

    if args.output:
        with open(args.output, "w") as fh:
            fh.write(render(doc))
        print(f"wrote {args.output}")

    if failed:
        print("capability audit failed", file=sys.stderr)
        return 1
    print("capability audit holds")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
