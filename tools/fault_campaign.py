#!/usr/bin/env python3
"""Run a seeded fault-injection campaign and write the result JSON.

Usage (from the repository root)::

    PYTHONPATH=src python tools/fault_campaign.py [--campaign short|full]
        [--total N] [--seed N] [--output BENCH_faults.json] [--check]

``--campaign full`` (10,000 injections) refreshes the committed
``BENCH_faults.json``; ``--campaign short`` (750 injections) is the
fast configuration wired into ``make test``.  The output is fully
deterministic for a given ``(seed, total)`` pair — no timestamps, no
environment — so the committed file is bit-reproducible.

``--check`` additionally exits non-zero if any injection escaped, so
the runner doubles as a gate.  Every escape is reported with its fault
class, the campaign seed, and a one-line ``--reproduce`` command that
replays exactly that injection.

``--reproduce INDEX`` replays a single injection from the seeded
stream (the campaign is deterministic, so injection *k* of a
``(seed, total)`` campaign is injection *k* of any campaign with the
same seed and ``total > k``) and prints the full record — the
debugging entry point the escape messages hand you.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.faultinject import run_campaign  # noqa: E402
from repro.faultinject.campaign import DEFAULT_SEED  # noqa: E402

CAMPAIGN_SIZES = {"short": 750, "full": 10_000}


def reproduce_command(index: int, seed: int) -> str:
    """The exact command that replays injection ``index`` alone."""
    return (
        f"PYTHONPATH=src python tools/fault_campaign.py "
        f"--reproduce {index} --seed {seed}"
    )


def print_escape(record, seed: int, out=sys.stderr) -> None:
    """One actionable block per escaped injection."""
    print(
        f"ESCAPED injection #{record.index} "
        f"[fault class {record.fault_class.value}, seed {seed}]\n"
        f"  scenario: {record.scenario}\n"
        f"  detail:   {record.detail or '(none)'}\n"
        f"  replay:   {reproduce_command(record.index, seed)}",
        file=out,
    )


def reproduce(index: int, seed: int) -> int:
    """Replay injection ``index`` of the seeded stream and print it."""
    if index < 0:
        print("--reproduce index must be >= 0", file=sys.stderr)
        return 2
    result = run_campaign(total=index + 1, seed=seed)
    record = result.records[index]
    print(
        f"injection #{record.index} (seed {seed})\n"
        f"  fault class:  {record.fault_class.value}\n"
        f"  scenario:     {record.scenario}\n"
        f"  outcome:      {record.outcome.value}\n"
        f"  detail:       {record.detail or '(none)'}\n"
        f"  wrong result: {record.wrong_result}"
    )
    return 1 if record.outcome.value == "escaped" else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--campaign",
        choices=sorted(CAMPAIGN_SIZES),
        default="full",
        help="preset injection count (default: %(default)s)",
    )
    parser.add_argument(
        "--total",
        type=int,
        default=None,
        help="override the preset injection count",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=DEFAULT_SEED,
        help="campaign RNG seed (default: %(default)s)",
    )
    parser.add_argument(
        "--output",
        default="BENCH_faults.json",
        help="result JSON path (default: %(default)s); '-' for stdout",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit 1 if any injection escaped",
    )
    parser.add_argument(
        "--reproduce",
        type=int,
        default=None,
        metavar="INDEX",
        help="replay a single injection from the seeded stream and "
        "print its full record (exit 1 if it escapes)",
    )
    args = parser.parse_args(argv)

    if args.reproduce is not None:
        return reproduce(args.reproduce, args.seed)

    total = args.total if args.total is not None else CAMPAIGN_SIZES[args.campaign]

    def progress(done: int, planned: int) -> None:
        print(f"  {done}/{planned} injections", file=sys.stderr)

    result = run_campaign(total=total, seed=args.seed, progress=progress)
    payload = json.dumps(result.to_dict(), indent=2, sort_keys=True) + "\n"
    if args.output == "-":
        sys.stdout.write(payload)
    else:
        with open(args.output, "w") as fh:
            fh.write(payload)
        print(f"wrote {args.output}")

    tally = result.tally()
    print(
        f"{result.total} injections: {tally['masked']} masked, "
        f"{tally['detected']} detected, {tally['contained']} contained, "
        f"{tally['escaped']} ESCAPED ({result.wrong_results} wrong results)"
    )
    if args.check and result.escaped:
        for record in result.escaped:
            print_escape(record, args.seed)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
