#!/usr/bin/env python3
"""Run a seeded fault-injection campaign and write the result JSON.

Usage (from the repository root)::

    PYTHONPATH=src python tools/fault_campaign.py [--campaign short|full]
        [--total N] [--seed N] [--output BENCH_faults.json] [--check]

``--campaign full`` (10,000 injections) refreshes the committed
``BENCH_faults.json``; ``--campaign short`` (750 injections) is the
fast configuration wired into ``make test``.  The output is fully
deterministic for a given ``(seed, total)`` pair — no timestamps, no
environment — so the committed file is bit-reproducible.

``--check`` additionally exits non-zero if any injection escaped, so
the runner doubles as a gate.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.faultinject import run_campaign  # noqa: E402
from repro.faultinject.campaign import DEFAULT_SEED  # noqa: E402

CAMPAIGN_SIZES = {"short": 750, "full": 10_000}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--campaign",
        choices=sorted(CAMPAIGN_SIZES),
        default="full",
        help="preset injection count (default: %(default)s)",
    )
    parser.add_argument(
        "--total",
        type=int,
        default=None,
        help="override the preset injection count",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=DEFAULT_SEED,
        help="campaign RNG seed (default: %(default)s)",
    )
    parser.add_argument(
        "--output",
        default="BENCH_faults.json",
        help="result JSON path (default: %(default)s); '-' for stdout",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit 1 if any injection escaped",
    )
    args = parser.parse_args(argv)

    total = args.total if args.total is not None else CAMPAIGN_SIZES[args.campaign]

    def progress(done: int, planned: int) -> None:
        print(f"  {done}/{planned} injections", file=sys.stderr)

    result = run_campaign(total=total, seed=args.seed, progress=progress)
    payload = json.dumps(result.to_dict(), indent=2, sort_keys=True) + "\n"
    if args.output == "-":
        sys.stdout.write(payload)
    else:
        with open(args.output, "w") as fh:
            fh.write(payload)
        print(f"wrote {args.output}")

    tally = result.tally()
    print(
        f"{result.total} injections: {tally['masked']} masked, "
        f"{tally['detected']} detected, {tally['contained']} contained, "
        f"{tally['escaped']} ESCAPED ({result.wrong_results} wrong results)"
    )
    if args.check and result.escaped:
        for record in result.escaped:
            print(
                f"ESCAPED #{record.index} {record.scenario}: {record.detail}",
                file=sys.stderr,
            )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
