#!/usr/bin/env python3
"""Run the reference telemetry workload and export a Perfetto trace.

Usage (from the repository root)::

    PYTHONPATH=src python tools/trace_export.py [-o trace.json]

The output is Chrome/Perfetto ``trace_event`` JSON: open it at
https://ui.perfetto.dev (or ``chrome://tracing``).  The trace covers a
malloc/free churn through the compartment switcher, a forced revocation
sweep, background hardware-revoker passes, and one Table-3 CoreMark
kernel — so compartment-switch, allocator and revoker spans all appear
on their tracks.
"""

from __future__ import annotations

import argparse
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.machine import CoreKind  # noqa: E402
from repro.obs.workload import run_traced_workload  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "-o", "--output", default="trace.json", help="output path (trace_event JSON)"
    )
    parser.add_argument(
        "--core",
        choices=[kind.value for kind in CoreKind],
        default=CoreKind.IBEX.value,
        help="core timing model (default: ibex)",
    )
    parser.add_argument(
        "--kernel",
        choices=["list", "matrix", "state"],
        default="list",
        help="CoreMark kernel for the profiled phase (default: list)",
    )
    parser.add_argument(
        "--rounds", type=int, default=40, help="malloc/free rounds (default: 40)"
    )
    parser.add_argument(
        "--iterations", type=int, default=1, help="kernel iterations (default: 1)"
    )
    args = parser.parse_args(argv)

    result = run_traced_workload(
        core=CoreKind(args.core),
        rounds=args.rounds,
        kernel=args.kernel,
        iterations=args.iterations,
    )
    system = result["system"]
    count = system.obs.export_trace(
        args.output,
        metadata={
            "core": args.core,
            "kernel": args.kernel,
            "cycles": system.core_model.cycles,
            "spans_dropped": system.obs.tracer.dropped,
        },
    )
    print(
        f"wrote {count} events ({len(system.obs.tracer)} spans, "
        f"{system.obs.tracer.dropped} dropped) to {args.output}"
    )
    print(f"open it at https://ui.perfetto.dev")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
