#!/usr/bin/env python3
"""Run the reference telemetry workload and export a Perfetto trace.

Usage (from the repository root)::

    PYTHONPATH=src python tools/trace_export.py [-o trace.json]
    PYTHONPATH=src python tools/trace_export.py --fleet 3 -o fleet-trace.json

The output is Chrome/Perfetto ``trace_event`` JSON: open it at
https://ui.perfetto.dev (or ``chrome://tracing``).  The trace covers a
malloc/free churn through the compartment switcher, a forced revocation
sweep, background hardware-revoker passes, and one Table-3 CoreMark
kernel — so compartment-switch, allocator and revoker spans all appear
on their tracks.

``--fleet N`` runs the workload once per device (kernel rotating
through list/matrix/state) and merges the N span sets into one trace:
each device is its own Perfetto *process* (pid ``i+1``, process name
``cheriot-sim/device-i``) with tids allocated per device, so two
devices exporting the same compartment track land on separate rows —
they can never collide.
"""

from __future__ import annotations

import argparse
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.machine import CoreKind  # noqa: E402
from repro.obs.export import write_fleet_trace  # noqa: E402
from repro.obs.workload import (  # noqa: E402
    run_fleet_workloads,
    run_traced_workload,
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "-o", "--output", default="trace.json", help="output path (trace_event JSON)"
    )
    parser.add_argument(
        "--core",
        choices=[kind.value for kind in CoreKind],
        default=CoreKind.IBEX.value,
        help="core timing model (default: ibex)",
    )
    parser.add_argument(
        "--kernel",
        choices=["list", "matrix", "state"],
        default="list",
        help="CoreMark kernel for the profiled phase (default: list)",
    )
    parser.add_argument(
        "--rounds", type=int, default=40, help="malloc/free rounds (default: 40)"
    )
    parser.add_argument(
        "--iterations", type=int, default=1, help="kernel iterations (default: 1)"
    )
    parser.add_argument(
        "--fleet", type=int, default=0, metavar="N",
        help="merge N devices into one fleet trace (0: single device)",
    )
    args = parser.parse_args(argv)

    if args.fleet:
        return _fleet(args)

    result = run_traced_workload(
        core=CoreKind(args.core),
        rounds=args.rounds,
        kernel=args.kernel,
        iterations=args.iterations,
    )
    system = result["system"]
    count = system.obs.export_trace(
        args.output,
        metadata={
            "core": args.core,
            "kernel": args.kernel,
            "cycles": system.core_model.cycles,
            "spans_dropped": system.obs.tracer.dropped,
        },
    )
    print(
        f"wrote {count} events ({len(system.obs.tracer)} spans, "
        f"{system.obs.tracer.dropped} dropped) to {args.output}"
    )
    print(f"open it at https://ui.perfetto.dev")
    return 0


def _fleet(args) -> int:
    """The merged export: one Perfetto process per fleet device."""
    workloads = run_fleet_workloads(
        devices=args.fleet,
        core=CoreKind(args.core),
        rounds=args.rounds,
        iterations=args.iterations,
    )
    devices = [
        (name, result["system"].obs.tracer.events())
        for name, result in workloads
    ]
    frequency = workloads[0][1]["system"].obs.frequency_mhz
    spans = sum(len(result["system"].obs.tracer) for _, result in workloads)
    dropped = sum(
        result["system"].obs.tracer.dropped for _, result in workloads
    )
    count = write_fleet_trace(
        args.output,
        devices,
        frequency,
        metadata={
            "core": args.core,
            "devices": args.fleet,
            "kernels": [result["kernel"] for _, result in workloads],
            "spans_dropped": dropped,
        },
    )
    print(
        f"wrote {count} events ({spans} spans over {args.fleet} devices, "
        f"{dropped} dropped) to {args.output}"
    )
    print(f"open it at https://ui.perfetto.dev")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
