#!/usr/bin/env python3
"""Run the Section-7 benchmark suite and merge the reproduced tables.

Usage (from the repository root)::

    PYTHONPATH=src python tools/run_benchmarks.py [-j N] [-o FILE]
        [--timeout SECONDS]
        [--modules bench_table3_coremark,bench_table4_alloc]

Each benchmark module runs in its own supervised subprocess
(worker-per-benchmark) with ``PYTHONHASHSEED=0`` and its tables
redirected to a private file via ``REPRO_BENCH_TABLES``; the merged
``bench_output_tables.txt`` is assembled in sorted module order after
every worker finishes.  The output is therefore *byte-identical* for
any ``--jobs`` value — there is no wall-clock-dependent interleaving
and no timestamp in the file.

Worker supervision (shared with the fleet orchestrator,
:mod:`repro.fleet.procutil`): every module gets a wall-clock deadline
— a wedged benchmark is killed and reported instead of hanging the
suite forever — and a failing module's stderr/stdout tail is printed
under its name with a one-line rerun command, instead of a bare
interleaved dump.

``bench_simspeed.py`` is excluded from the merge: its output is host
wall-clock (non-deterministic by nature).  Use ``tools/bench_speed.py``
for simulator-speed numbers.
"""

from __future__ import annotations

import argparse
import concurrent.futures
import os
import sys
import tempfile

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BENCH_DIR = os.path.join(ROOT, "benchmarks")

sys.path.insert(0, os.path.join(ROOT, "src"))

from repro.fleet.procutil import SupervisedResult, run_supervised, tail  # noqa: E402

#: Never merged into the tables file — host-timing output changes run
#: to run, which would break the serial/parallel byte-identity contract.
EXCLUDED = frozenset({"bench_simspeed.py"})

#: Default per-module wall-clock budget.  The slowest module finishes
#: in well under a minute on CI's weakest runner; anything past this is
#: a hang, not a slow benchmark.
DEFAULT_TIMEOUT = 900.0


def discover_modules() -> list:
    return [
        name
        for name in sorted(os.listdir(BENCH_DIR))
        if name.startswith("bench_")
        and name.endswith(".py")
        and name not in EXCLUDED
    ]


def run_module(
    module: str, tables_path: str, timeout: float
) -> SupervisedResult:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = "0"
    env["REPRO_BENCH_TABLES"] = tables_path
    env["PYTHONPATH"] = os.path.join(ROOT, "src")
    cmd = [
        sys.executable,
        "-m",
        "pytest",
        os.path.join("benchmarks", module),
        "--benchmark-disable",
        "-q",
        "-p",
        "no:cacheprovider",
    ]
    return run_supervised(cmd, timeout=timeout, env=env, cwd=ROOT)


def report_failure(module: str, result: SupervisedResult) -> None:
    """One readable block per failed module, not a raw dump."""
    if result.timed_out:
        headline = (
            f"TIMED OUT after {result.duration:.0f}s and was killed "
            "(raise --timeout if this host is genuinely that slow)"
        )
    else:
        headline = f"FAILED (exit {result.returncode})"
    print(f"\n{module}: {headline}", file=sys.stderr)
    for stream, text in (("stdout", result.stdout), ("stderr", result.stderr)):
        excerpt = tail(text, 25)
        if excerpt.strip():
            print(f"  --- {stream} tail ---", file=sys.stderr)
            for line in excerpt.splitlines():
                print(f"  {line}", file=sys.stderr)
    print(
        f"  reproduce alone: PYTHONPATH=src {os.path.basename(sys.executable)}"
        f" -m pytest benchmarks/{module} -q",
        file=sys.stderr,
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "-j",
        "--jobs",
        type=int,
        default=1,
        help="worker subprocesses to run concurrently (default: %(default)s)",
    )
    parser.add_argument(
        "-o",
        "--output",
        default="bench_output_tables.txt",
        help="merged tables file (default: %(default)s)",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=DEFAULT_TIMEOUT,
        help="per-module wall-clock timeout in seconds (default: %(default)s)",
    )
    parser.add_argument(
        "--modules",
        default="",
        help="comma-separated benchmark module names (default: all)",
    )
    args = parser.parse_args(argv)

    if args.modules:
        modules = []
        for name in args.modules.split(","):
            name = name.strip()
            if not name.endswith(".py"):
                name += ".py"
            if not os.path.exists(os.path.join(BENCH_DIR, name)):
                print(f"no such benchmark module: {name}", file=sys.stderr)
                return 2
            modules.append(name)
        modules.sort()
    else:
        modules = discover_modules()

    jobs = max(1, args.jobs)
    print(f"running {len(modules)} benchmark modules with {jobs} worker(s)")

    failures = {}
    with tempfile.TemporaryDirectory(prefix="bench-tables-") as tmpdir:
        tables = {m: os.path.join(tmpdir, m + ".tables") for m in modules}
        with concurrent.futures.ThreadPoolExecutor(max_workers=jobs) as pool:
            futures = {
                pool.submit(run_module, m, tables[m], args.timeout): m
                for m in modules
            }
            for future in concurrent.futures.as_completed(futures):
                module = futures[future]
                result = future.result()
                if result.ok:
                    status = "ok"
                elif result.timed_out:
                    status = "TIMED OUT"
                else:
                    status = f"FAILED (exit {result.returncode})"
                print(f"  {module:<32} {status}")
                if not result.ok:
                    failures[module] = result

        if failures:
            for module in sorted(failures):
                report_failure(module, failures[module])
            print(
                f"\n{len(failures)} of {len(modules)} benchmark module(s) "
                "failed; tables not written",
                file=sys.stderr,
            )
            return 1

        # Deterministic merge: fixed header, then each module's tables in
        # sorted module order (completion order above does not matter).
        parts = [
            "Section-7 reproduced tables and figures\n"
            "Regenerate with: make bench [PARALLEL=N]\n"
            "Modules: " + ", ".join(m[:-3] for m in modules) + "\n"
        ]
        for module in modules:
            with open(tables[module]) as fh:
                parts.append(fh.read())
        with open(args.output, "w") as fh:
            fh.write("".join(parts))

    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
