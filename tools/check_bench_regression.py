#!/usr/bin/env python3
"""CI gate: fail when the simulator got more than 20% slower.

Usage (from the repository root)::

    PYTHONPATH=src python tools/check_bench_regression.py \
        [--baseline BENCH_simspeed.json] [--threshold 0.20]

Re-measures the workload set from :mod:`repro.analysis.simspeed` and
compares each workload's wall-clock against the committed baseline.
Exit status 1 if any workload regressed past the threshold.  Faster
results only print (refresh the baseline with ``tools/bench_speed.py``
when an optimization lands).
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.analysis.simspeed import (  # noqa: E402
    MEASURERS,
    host_speed_probe,
    measure_all,
)

#: Workloads the committed baseline must gate — a baseline refresh that
#: drops one of these fails loudly instead of silently shrinking the net.
REQUIRED_WORKLOADS = ("alu_loop", "mem_loop", "table3_iter1", "coremark_1k")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--baseline",
        default="BENCH_simspeed.json",
        help="baseline JSON from tools/bench_speed.py (default: %(default)s)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.20,
        help="allowed fractional wall-clock regression (default: %(default)s)",
    )
    parser.add_argument(
        "--repeat",
        type=int,
        default=3,
        help="measurement repetitions; the best (minimum) time is kept",
    )
    args = parser.parse_args(argv)

    try:
        with open(args.baseline) as fh:
            report = json.load(fh)
        baseline = report["workloads"]
    except (OSError, KeyError, ValueError) as exc:
        print(f"cannot read baseline {args.baseline!r}: {exc}", file=sys.stderr)
        return 2

    # Normalize out host-speed drift (shared machines vary more than the
    # threshold): scale the baseline by how much slower or faster this
    # host runs a fixed simulator-shaped probe than the baseline host
    # did.  The probe runs before *and* after the workload rounds (min
    # kept) so a mid-run load burst cannot leave the minima unpaired.
    probe = host_speed_probe()
    best: dict = {}
    for _ in range(max(1, args.repeat)):
        for name, result in measure_all().items():
            if name not in best or result["seconds"] < best[name]["seconds"]:
                best[name] = result
    probe = min(probe, host_speed_probe())

    scale = 1.0
    base_probe = report.get("probe_seconds")
    if base_probe:
        scale = probe / base_probe
        print(f"  host speed probe: {scale:.2f}x baseline host")

    failed = False
    for name in REQUIRED_WORKLOADS:
        if name not in baseline:
            print(f"  {name:<14} missing from baseline", file=sys.stderr)
            failed = True

    measurers = dict(MEASURERS)
    for name in sorted(baseline):
        base = baseline[name]["seconds"] * scale
        if name not in best:
            print(f"  {name:<14} missing from current measurement", file=sys.stderr)
            failed = True
            continue
        now = best[name]["seconds"]
        ratio = now / base if base > 0 else float("inf")
        if ratio > 1.0 + args.threshold and name in measurers:
            # One re-measure before declaring a regression: a single
            # co-tenant load burst costs more than the threshold, while
            # a genuine simulator slowdown reproduces on the spot.
            now = min(now, measurers[name]()["seconds"])
            ratio = now / base if base > 0 else float("inf")
        status = "ok"
        if ratio > 1.0 + args.threshold:
            status = f"REGRESSION (> {args.threshold:.0%})"
            failed = True
        print(f"  {name:<14} baseline {base:.3f}s  now {now:.3f}s  "
              f"({ratio - 1.0:+.1%} vs baseline)  {status}")

    if failed:
        print("simulator speed regression detected", file=sys.stderr)
        return 1
    print("simulator speed within threshold")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
