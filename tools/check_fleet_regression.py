#!/usr/bin/env python3
"""CI gate: the committed fleet report must be reproducible, bit-exact.

Usage (from the repository root)::

    PYTHONPATH=src python tools/check_fleet_regression.py \
        [--baseline BENCH_fleet.json]

Reads the committed ``BENCH_fleet.json``, re-runs its recorded plan
serially in-process (the reference execution: no workers, no
supervision), and compares the rendered reports **byte for byte** —
the whole determinism contract in one assert.  On mismatch the diff is
decoded into something actionable: which device, which metric group,
and the exact command that reproduces the single device.

The gate also enforces the fleet-level safety claims on the baseline
itself: zero escaped injections and zero degraded shards — a baseline
refreshed from a degraded run must not be committable.

Exit status 1 on any violation, 2 on an unusable baseline.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.fleet import FleetPlan, merge_report, render_report, run_shard  # noqa: E402
from repro.fleet.merge import REPORT_VERSION  # noqa: E402


def _first_divergence(base: dict, fresh: dict, path: str = "") -> str:
    """A human-oriented account of where two report dicts part ways."""
    if isinstance(base, dict) and isinstance(fresh, dict):
        for key in sorted(set(base) | set(fresh)):
            here = f"{path}.{key}" if path else str(key)
            if key not in base:
                return f"{here}: only in fresh run"
            if key not in fresh:
                return f"{here}: only in baseline"
            found = _first_divergence(base[key], fresh[key], here)
            if found:
                return found
        return ""
    if isinstance(base, list) and isinstance(fresh, list):
        for i, (b, f) in enumerate(zip(base, fresh)):
            found = _first_divergence(b, f, f"{path}[{i}]")
            if found:
                return found
        if len(base) != len(fresh):
            return f"{path}: length {len(base)} vs {len(fresh)}"
        return ""
    if base != fresh:
        return f"{path}: baseline {base!r}, fresh run {fresh!r}"
    return ""


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", default="BENCH_fleet.json")
    args = parser.parse_args(argv)

    try:
        with open(args.baseline) as fh:
            baseline = json.load(fh)
    except (OSError, ValueError) as exc:
        print(f"cannot read baseline {args.baseline!r}: {exc}", file=sys.stderr)
        print(
            "regenerate it with: make fleet  "
            "(PYTHONPATH=src python tools/fleet_campaign.py --serial)",
            file=sys.stderr,
        )
        return 2

    if baseline.get("version") != REPORT_VERSION:
        print(
            f"baseline schema version {baseline.get('version')} != "
            f"{REPORT_VERSION}; regenerate with make fleet",
            file=sys.stderr,
        )
        return 2

    failed = False
    escaped = baseline.get("aggregates", {}).get("faults", {}).get("escaped")
    if escaped != 0:
        print(
            f"baseline records {escaped} escaped injections (must be 0)",
            file=sys.stderr,
        )
        failed = True
    if baseline.get("degraded"):
        shards = [e.get("shard") for e in baseline["degraded"]]
        print(
            f"baseline was produced by a degraded run (quarantined shards "
            f"{shards}); rerun the fleet cleanly before committing",
            file=sys.stderr,
        )
        failed = True

    try:
        plan = FleetPlan.from_dict(baseline["plan"])
    except (KeyError, TypeError) as exc:
        print(f"baseline plan unreadable: {exc}", file=sys.stderr)
        return 2

    print(
        f"  re-running fleet plan serially: {plan.devices} devices, "
        f"seed {plan.seed}, {plan.injections_per_device} injections/device"
    )
    results = {spec.shard_id: run_shard(spec) for spec in plan.shards()}
    fresh = merge_report(plan, results, {})

    if render_report(fresh) != render_report(baseline):
        where = _first_divergence(baseline, fresh) or "(byte-level only)"
        print(f"fleet report drifted at: {where}", file=sys.stderr)
        device = where.split("devices[", 1)
        hint = ""
        if len(device) == 2:
            index = device[1].split("]", 1)[0]
            try:
                dev_id = fresh["devices"][int(index)]["device"]
                hint = (
                    f"\n  single-device reproduction: PYTHONPATH=src python -c "
                    f"\"from repro.fleet import DeviceSpec, run_device; "
                    f"import json; print(json.dumps(run_device(DeviceSpec("
                    f"{dev_id}, {plan.seed}, injections={plan.injections_per_device}, "
                    f"alloc_ops={plan.alloc_ops})), indent=2, sort_keys=True))\""
                )
            except (ValueError, IndexError, KeyError):
                pass
        print(
            "if the change is intentional, refresh the baseline with: "
            "make fleet" + hint,
            file=sys.stderr,
        )
        failed = True

    if failed:
        print("fleet regression detected", file=sys.stderr)
        return 1
    print("fleet report reproduces byte-identically; claims hold")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
