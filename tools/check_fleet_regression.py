#!/usr/bin/env python3
"""CI gate: the committed fleet report must be reproducible, bit-exact.

Usage (from the repository root)::

    PYTHONPATH=src python tools/check_fleet_regression.py \
        [--baseline BENCH_fleet.json]

Reads the committed ``BENCH_fleet.json``, re-runs its recorded plan
serially in-process (the reference execution: no workers, no
supervision), and compares the rendered reports **byte for byte** —
the whole determinism contract in one assert.  On mismatch the diff is
decoded into something actionable: which device, which metric group,
and the exact command that reproduces the single device.

The gate also enforces the fleet-level safety claims on the baseline
itself: zero escaped injections and zero degraded shards — a baseline
refreshed from a degraded run must not be committable.

Exit status 1 on any violation, 2 on an unusable baseline.
"""

from __future__ import annotations

import argparse
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.fleet import FleetPlan, merge_report, render_report, run_shard  # noqa: E402
from repro.fleet.merge import REPORT_VERSION  # noqa: E402

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from _baseline import BaselineError, first_divergence, load_baseline  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", default="BENCH_fleet.json")
    args = parser.parse_args(argv)

    try:
        baseline = load_baseline(
            args.baseline,
            hint="make fleet  "
            "(PYTHONPATH=src python tools/fleet_campaign.py --serial)",
        )
    except BaselineError as exc:
        print(exc, file=sys.stderr)
        return 2

    if baseline.get("version") != REPORT_VERSION:
        print(
            f"baseline schema version {baseline.get('version')} != "
            f"{REPORT_VERSION}; regenerate with make fleet",
            file=sys.stderr,
        )
        return 2

    failed = False
    escaped = baseline.get("aggregates", {}).get("faults", {}).get("escaped")
    if escaped != 0:
        print(
            f"baseline records {escaped} escaped injections (must be 0)",
            file=sys.stderr,
        )
        failed = True
    if baseline.get("degraded"):
        shards = [e.get("shard") for e in baseline["degraded"]]
        print(
            f"baseline was produced by a degraded run (quarantined shards "
            f"{shards}); rerun the fleet cleanly before committing",
            file=sys.stderr,
        )
        failed = True

    try:
        plan = FleetPlan.from_dict(baseline["plan"])
    except (KeyError, TypeError) as exc:
        print(f"baseline plan unreadable: {exc}", file=sys.stderr)
        return 2

    print(
        f"  re-running fleet plan serially: {plan.devices} devices, "
        f"seed {plan.seed}, {plan.injections_per_device} injections/device"
    )
    results = {spec.shard_id: run_shard(spec) for spec in plan.shards()}
    fresh = merge_report(plan, results, {})

    if render_report(fresh) != render_report(baseline):
        where = first_divergence(baseline, fresh) or "(byte-level only)"
        print(f"fleet report drifted at: {where}", file=sys.stderr)
        device = where.split("devices[", 1)
        hint = ""
        if len(device) == 2:
            index = device[1].split("]", 1)[0]
            try:
                dev_id = fresh["devices"][int(index)]["device"]
                hint = (
                    f"\n  single-device reproduction: PYTHONPATH=src python -c "
                    f"\"from repro.fleet import DeviceSpec, run_device; "
                    f"import json; print(json.dumps(run_device(DeviceSpec("
                    f"{dev_id}, {plan.seed}, injections={plan.injections_per_device}, "
                    f"alloc_ops={plan.alloc_ops})), indent=2, sort_keys=True))\""
                )
            except (ValueError, IndexError, KeyError):
                pass
        print(
            "if the change is intentional, refresh the baseline with: "
            "make fleet" + hint,
            file=sys.stderr,
        )
        failed = True

    if failed:
        print("fleet regression detected", file=sys.stderr)
        return 1
    print("fleet report reproduces byte-identically; claims hold")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
