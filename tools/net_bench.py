#!/usr/bin/env python3
"""Scaled network-stack benchmark: zero-copy vs copying at N sessions.

Usage (from the repository root)::

    PYTHONPATH=src python tools/net_bench.py              # refresh BENCH_net.json
    PYTHONPATH=src python tools/net_bench.py --jobs 4     # same bytes, faster
    PYTHONPATH=src python tools/net_bench.py --conns 1,32 --rounds 2 -o -

Sweeps connection count across both receive disciplines of
:class:`repro.iot.sessions.NetPipeline` — the zero-copy
capability-narrowing path and the per-layer copying baseline — driving
each point with the seeded :class:`repro.iot.loadgen.NetLoadGen`
(mixed request/response + streaming shapes, corrupt and reordered
frames injected).  Every point self-checks: the pipeline must deliver
exactly the messages the generator emitted, with exactly the injected
drop counts, or the tool aborts — a benchmark of a broken stack is not
a benchmark.

The committed ``BENCH_net.json`` carries, per point, the
per-compartment cycle buckets, measured crossing overhead, queue
high-watermarks and the per-packet latency quantiles; per connection
count it derives the copy/zero-copy ratios.  ``per_packet_stack_
cycles`` excludes the cipher work (byte-identical in both disciplines
by construction), so its ratio isolates the data-movement path that
narrowing optimises; the total ratio is reported alongside.

Everything derives from simulated cycles and one seed, so the rendered
bytes are identical for any ``--jobs`` value: each worker computes one
(mode, connections) point independently and the document is assembled
in a fixed order.  ``tools/check_net_regression.py`` is the CI gate.
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.iot.loadgen import NetLoadGen, drive  # noqa: E402
from repro.iot.sessions import NetPipeline  # noqa: E402

#: Document version of ``BENCH_net.json``.
NET_BENCH_VERSION = 1

#: The default connection-count sweep (the last point is the scale the
#: acceptance criterion gates on).
DEFAULT_CONNS = (1, 32, 256, 2048)

#: Traffic rounds per point, by connection count: enough packets at
#: every scale to reach steady state without letting the big points
#: dominate the runtime.  Unlisted counts fall back to 4.
DEFAULT_ROUNDS = {1: 16, 32: 8, 256: 4, 2048: 2}

#: One seed for every generator; a point's stream is a pure function of
#: (mode, connections, rounds, seed).
SEED = 20260807

#: Fault-injection rates: low enough that drops stay a small correction
#: to throughput, high enough that both drop paths are exercised at
#: every sweep point.
CORRUPT_RATE = 0.02
REORDER_RATE = 0.02


class NetBenchError(Exception):
    """A sweep point that failed its own delivery cross-check."""


def run_point(zero_copy: bool, connections: int, rounds: int) -> dict:
    """One (mode, connections) sweep point, self-checked."""
    pipeline = NetPipeline(zero_copy=zero_copy)
    conn_ids = range(1, connections + 1)
    pipeline.establish_many(conn_ids)
    gen = NetLoadGen(
        conn_ids,
        seed=SEED,
        corrupt_rate=CORRUPT_RATE,
        reorder_rate=REORDER_RATE,
    )
    drive(pipeline, gen, rounds=rounds)

    report = pipeline.report()
    counters = report["counters"]
    mode = report["mode"]
    label = f"{mode} @ {connections} connections"
    if counters["packets_delivered"] != gen.expected_delivered:
        raise NetBenchError(
            f"{label}: delivered {counters['packets_delivered']} of "
            f"{gen.expected_delivered} expected messages"
        )
    if counters["payload_bytes_delivered"] != gen.expected_payload_bytes:
        raise NetBenchError(
            f"{label}: payload byte count diverged "
            f"({counters['payload_bytes_delivered']} vs "
            f"{gen.expected_payload_bytes})"
        )
    if counters["dropped_corrupt"] != gen.injected_corrupt:
        raise NetBenchError(
            f"{label}: corrupt drops {counters['dropped_corrupt']} != "
            f"{gen.injected_corrupt} injected"
        )
    if counters["dropped_out_of_order"] != gen.injected_reorder:
        raise NetBenchError(
            f"{label}: out-of-order drops "
            f"{counters['dropped_out_of_order']} != "
            f"{gen.injected_reorder} injected"
        )

    return {
        "mode": mode,
        "connections": connections,
        "rounds": rounds,
        "frames_emitted": gen.frames_emitted,
        "counters": counters,
        "queues": report["queues"],
        "latency": report["latency"],
        "steady_cycles": report["steady_cycles"],
        "stack_cycles": report["stack_cycles"],
        "per_packet_cycles": report["per_packet_cycles"],
        "per_packet_stack_cycles": report["per_packet_stack_cycles"],
        "crossing_cycles_per_packet": report["crossing_cycles_per_packet"],
    }


def _worker(task: "tuple[bool, int, int]") -> dict:
    zero_copy, connections, rounds = task
    return run_point(zero_copy, connections, rounds)


def _comparison(points: "list[dict]") -> "list[dict]":
    """Per connection count: what the copying baseline costs extra."""
    by_key = {(p["mode"], p["connections"]): p for p in points}
    rows = []
    for connections in sorted({p["connections"] for p in points}):
        zero = by_key.get(("zerocopy", connections))
        copy = by_key.get(("copy", connections))
        if zero is None or copy is None:
            continue
        rows.append(
            {
                "connections": connections,
                "copy_per_packet_stack_cycles": copy[
                    "per_packet_stack_cycles"
                ],
                "zerocopy_per_packet_stack_cycles": zero[
                    "per_packet_stack_cycles"
                ],
                "stack_cycles_ratio": round(
                    copy["per_packet_stack_cycles"]
                    / zero["per_packet_stack_cycles"],
                    4,
                ),
                "total_cycles_ratio": round(
                    copy["per_packet_cycles"] / zero["per_packet_cycles"], 4
                ),
                "allocs_per_packet_copy": round(
                    copy["counters"]["allocs"]
                    / copy["counters"]["packets_delivered"],
                    4,
                ),
                "allocs_per_packet_zerocopy": round(
                    zero["counters"]["allocs"]
                    / zero["counters"]["packets_delivered"],
                    4,
                ),
            }
        )
    return rows


def build_document(
    conns=DEFAULT_CONNS, rounds=None, jobs: int = 1
) -> dict:
    """The full sweep document; byte-identical for any ``jobs``."""
    rounds = rounds or DEFAULT_ROUNDS
    tasks = []
    for connections in sorted(conns):
        for zero_copy in (False, True):
            tasks.append(
                (zero_copy, connections, rounds.get(connections, 4))
            )
    if jobs > 1:
        with multiprocessing.Pool(processes=jobs) as pool:
            points = pool.map(_worker, tasks)
    else:
        points = [_worker(task) for task in tasks]
    points.sort(key=lambda p: (p["connections"], p["mode"]))
    return {
        "version": NET_BENCH_VERSION,
        "config": {
            "connections": sorted(conns),
            "rounds": {str(c): rounds.get(c, 4) for c in sorted(conns)},
            "seed": SEED,
            "corrupt_rate": CORRUPT_RATE,
            "reorder_rate": REORDER_RATE,
        },
        "sweep": points,
        "comparison": _comparison(points),
    }


def render_document(doc: dict) -> str:
    """The canonical byte form of ``BENCH_net.json``."""
    return json.dumps(doc, indent=2, sort_keys=True) + "\n"


def summarize(doc: dict, out=sys.stdout) -> None:
    header = (
        f"{'conns':>6} {'copy stack/pkt':>14} {'zero stack/pkt':>14} "
        f"{'stack ratio':>11} {'total ratio':>11}"
    )
    print(header, file=out)
    for row in doc["comparison"]:
        print(
            f"{row['connections']:>6} "
            f"{row['copy_per_packet_stack_cycles']:>14} "
            f"{row['zerocopy_per_packet_stack_cycles']:>14} "
            f"{row['stack_cycles_ratio']:>11} "
            f"{row['total_cycles_ratio']:>11}",
            file=out,
        )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "-o", "--output", default="BENCH_net.json",
        help="output file, or '-' for stdout (default: %(default)s)",
    )
    parser.add_argument(
        "-j", "--jobs", type=int, default=1,
        help="worker processes, one sweep point each (default: serial)",
    )
    parser.add_argument(
        "--conns", default="",
        help="comma-separated connection counts (default: "
        + ",".join(str(c) for c in DEFAULT_CONNS) + ")",
    )
    parser.add_argument(
        "--rounds", type=int, default=0,
        help="override the traffic rounds at every point (smoke runs)",
    )
    args = parser.parse_args(argv)

    conns = (
        tuple(int(c) for c in args.conns.split(",")) if args.conns
        else DEFAULT_CONNS
    )
    rounds = (
        {c: args.rounds for c in conns} if args.rounds else DEFAULT_ROUNDS
    )

    try:
        doc = build_document(conns=conns, rounds=rounds, jobs=args.jobs)
    except NetBenchError as exc:
        print(f"net_bench: {exc}", file=sys.stderr)
        return 1

    summarize(doc, out=sys.stderr)
    rendered = render_document(doc)
    if args.output == "-":
        sys.stdout.write(rendered)
    else:
        with open(args.output, "w") as fh:
            fh.write(rendered)
        print(f"wrote {args.output}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
