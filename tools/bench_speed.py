#!/usr/bin/env python3
"""Measure simulator speed and write ``BENCH_simspeed.json``.

Usage (from the repository root)::

    PYTHONPATH=src python tools/bench_speed.py [-o BENCH_simspeed.json]

The JSON records, per workload, host wall-clock seconds (and MIPS where
instruction counts are meaningful), alongside the pre-optimization seed
baseline for the before/after story.  The committed copy is the baseline
``tools/check_bench_regression.py`` gates against.
"""

from __future__ import annotations

import argparse
import datetime
import json
import os
import platform
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.analysis.simspeed import (  # noqa: E402
    SEED_BASELINE,
    host_speed_probe,
    measure_all,
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "-o",
        "--output",
        default="BENCH_simspeed.json",
        help="where to write the JSON report (default: %(default)s)",
    )
    parser.add_argument(
        "--repeat",
        type=int,
        default=3,
        help="measurement repetitions; the best (minimum) time is kept",
    )
    args = parser.parse_args(argv)

    # Probe on both sides of the measurement window and keep the min:
    # the baseline probe should describe this host at its quietest, the
    # same moment the best-of-repeat workload minima were achieved.
    probe = host_speed_probe()
    best: dict = {}
    for _ in range(max(1, args.repeat)):
        for name, result in measure_all().items():
            if name not in best or result["seconds"] < best[name]["seconds"]:
                best[name] = result
    probe = min(probe, host_speed_probe())

    report = {
        "generated": datetime.datetime.now(datetime.timezone.utc).isoformat(
            timespec="seconds"
        ),
        "python": platform.python_version(),
        "probe_seconds": probe,
        "workloads": best,
        "seed_baseline": SEED_BASELINE,
        "speedup_vs_seed": {
            "table3_iter1": round(
                SEED_BASELINE["table3_iter1_seconds"]
                / best["table3_iter1"]["seconds"],
                2,
            ),
            "alu_loop": round(
                best["alu_loop"]["mips"] / SEED_BASELINE["alu_loop_mips"], 2
            ),
            "mem_loop": round(
                best["mem_loop"]["mips"] / SEED_BASELINE["mem_loop_mips"], 2
            ),
            # coremark_1k has no seed-era number (the workload post-dates
            # the seed); it is gated purely against the committed
            # baseline by check_bench_regression.py.
        },
    }
    with open(args.output, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")

    print(f"wrote {args.output}")
    for name, result in sorted(best.items()):
        mips = f"  {result['mips']:.3f} MIPS" if "mips" in result else ""
        print(f"  {name:<14} {result['seconds']:.3f}s{mips}")
    print(
        "  speedup vs seed: "
        f"table3 {report['speedup_vs_seed']['table3_iter1']}x, "
        f"alu {report['speedup_vs_seed']['alu_loop']}x, "
        f"mem {report['speedup_vs_seed']['mem_loop']}x"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
