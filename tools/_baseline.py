"""Shared baseline plumbing for the regression gates.

Every CI gate in ``tools/`` compares a freshly computed artifact with a
committed JSON baseline and, on mismatch, must tell a human *where* the
two part ways — not just that bytes differ.  This module holds the two
pieces each gate used to re-implement:

* :func:`load_baseline` — read and parse the committed file with a
  uniform, actionable error message (exit-status-2 material);
* :func:`first_divergence` — walk two JSON-shaped values and name the
  first path at which they disagree.

Used by ``check_fault_regression.py``, ``check_fleet_regression.py``
and ``capaudit.py --check``.
"""

from __future__ import annotations

import json


class BaselineError(Exception):
    """The committed baseline is missing or unreadable."""


def load_baseline(path: str, hint: str = "") -> dict:
    """Read a committed JSON baseline, or raise :class:`BaselineError`.

    ``hint`` names the command that regenerates the file; it is folded
    into the error message so the gate's operator never has to hunt for
    it.
    """
    try:
        with open(path) as fh:
            return json.load(fh)
    except (OSError, ValueError) as exc:
        message = f"cannot read baseline {path!r}: {exc}"
        if hint:
            message += f"\nregenerate it with: {hint}"
        raise BaselineError(message) from exc


def first_divergence(base, fresh, path: str = "") -> str:
    """A human-oriented account of where two report values part ways.

    Returns an empty string when the values agree; otherwise a dotted
    path (``aggregates.faults.escaped: baseline 0, fresh run 2``).
    """
    if isinstance(base, dict) and isinstance(fresh, dict):
        for key in sorted(set(base) | set(fresh)):
            here = f"{path}.{key}" if path else str(key)
            if key not in base:
                return f"{here}: only in fresh run"
            if key not in fresh:
                return f"{here}: only in baseline"
            found = first_divergence(base[key], fresh[key], here)
            if found:
                return found
        return ""
    if isinstance(base, list) and isinstance(fresh, list):
        for i, (b, f) in enumerate(zip(base, fresh)):
            found = first_divergence(b, f, f"{path}[{i}]")
            if found:
                return found
        if len(base) != len(fresh):
            return f"{path}: length {len(base)} vs {len(fresh)}"
        return ""
    if base != fresh:
        return f"{path}: baseline {base!r}, fresh run {fresh!r}"
    return ""
