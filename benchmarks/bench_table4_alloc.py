"""E3 — Table 4: cycles to allocate 1 MiB of heap at different sizes.

Eight configurations (Baseline / Metadata / Software / Hardware, each
with and without the stack high-water mark) on both cores.  This file
reproduces the table at four representative sizes; the full 13-size
sweeps live in the Figure 5/6 benchmarks.

For small allocation sizes the total is scaled down from the paper's
1 MiB (the overhead *ratios* are what the figures report, and each size
is normalized against its own baseline, so totals may differ per size).
"""

import pytest

from repro.pipeline import CoreKind
from repro.workloads.alloc_bench import format_table4, table4
from conftest import emit

SIZES = (32, 1024, 32 * 1024, 128 * 1024)


def _total_for(size: int) -> int:
    return (1 << 20) if size >= 2048 else (1 << 18)


def run_core(core: CoreKind):
    results = []
    for size in SIZES:
        results.extend(table4(core, sizes=(size,), total_bytes=_total_for(size)))
    return results


@pytest.mark.parametrize("core", [CoreKind.FLUTE, CoreKind.IBEX])
def test_table4(benchmark, core):
    results = benchmark.pedantic(lambda: run_core(core), rounds=1, iterations=1)
    emit(
        f"Table 4 ({core.value}): cycles to allocate 1 MiB at different sizes",
        format_table4(results),
    )

    by = {(r.label, r.allocation_size): r.cycles for r in results}

    for size in SIZES:
        base = by[("Baseline", size)]
        assert by[("Metadata", size)] > base
        assert by[("Software", size)] > by[("Hardware", size)]

    # Revocation dominates at 128 KiB (a full sweep per allocation).
    assert by[("Software", 128 * 1024)] > 20 * by[("Baseline", 128 * 1024)]

    # The HWM helps at small sizes...
    small_saving = 1 - by[("Baseline (S)", 32)] / by[("Baseline", 32)]
    assert 0.05 < small_saving < 0.35
    if core is CoreKind.IBEX:
        # ...and costs a little at 128 KiB under the hardware revoker
        # (two extra CSRs per context switch while blocked — 7.2.2).
        assert by[("Hardware (S)", 128 * 1024)] > by[("Hardware", 128 * 1024)]
