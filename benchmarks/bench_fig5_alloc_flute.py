"""E4 — Figure 5: allocator benchmark overheads on Flute.

The paper's figure plots, for each configuration, total benchmark
cycles normalized to the Baseline configuration across allocation sizes
32 B .. 128 KiB.  Expected shape:

* software-revocation overhead grows with allocation size (fewer
  cross-compartment calls amortize a fixed sweep bill) and dominates at
  128 KiB;
* the hardware revoker stays far cheaper; Hardware (S) beats the
  baseline for sizes up to ~512 B;
* the Flute hardware revoker degrades at the largest sizes because the
  prototype lacks a completion interrupt and the RTOS's polling steals
  its bus slots.
"""

import pytest

from repro.analysis.reporting import format_series
from repro.pipeline import CoreKind
from repro.workloads.alloc_bench import overhead_series, table4
from conftest import emit

SIZES = tuple(32 << i for i in range(13))  # 32 B .. 128 KiB


def _total_for(size: int) -> int:
    return (1 << 20) if size >= 2048 else (1 << 18)


def run_figure():
    results = []
    for size in SIZES:
        results.extend(
            table4(CoreKind.FLUTE, sizes=(size,), total_bytes=_total_for(size))
        )
    return results


def test_figure5(benchmark):
    results = benchmark.pedantic(run_figure, rounds=1, iterations=1)
    series = overhead_series(results)
    emit(
        "Figure 5: allocator benchmark results on Flute "
        "(overhead vs Baseline)",
        format_series(series, "cycles / baseline cycles per size"),
    )

    software = dict(series["Software"])
    hardware = dict(series["Hardware"])
    hardware_s = dict(series["Hardware (S)"])

    # Software overhead rises with size and dominates at the top end.
    assert software[128 * 1024] > software[32]
    assert software[128 * 1024] > 20

    # Hardware revoker is always cheaper than software.
    for size in SIZES:
        assert hardware[size] < software[size]

    # Hardware + HWM beats the baseline for small allocations
    # ("up to 512B on Flute — the vast majority of allocations").
    for size in (32, 64, 128, 256):
        assert hardware_s[size] < 1.0, f"Hardware (S) should win at {size}B"
    assert hardware_s[512] < 1.02  # the paper's crossover point
    assert hardware_s[2048] > 1.0  # and it has crossed by 2 KiB

    # The Flute polling tail: hardware overhead grows at the largest
    # sizes relative to the mid-range.
    assert hardware[128 * 1024] > hardware[4096]
