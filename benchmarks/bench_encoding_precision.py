"""E7 — Encoding precision and memory fragmentation (section 3.2.3).

The paper's claims:

* objects of up to 511 bytes are always representable precisely;
* average internal fragmentation ~ 1/2**9 ~= 0.19 % with the CHERIoT
  9-bit T/B fields, versus 12.5 % with the 3-bit worst case of the
  reused 64-bit CHERI-Concentrate layout;
* revocation bitmap SRAM overhead is 1/64 = 1.56 % of the heap.
"""

import pytest

from repro.analysis.fragmentation import (
    average_fragmentation,
    check_cheriot_encoder,
    max_precise_length,
    rule_of_thumb_fragmentation,
)
from repro.analysis.reporting import format_table
from repro.memory.revocation_map import SRAM_OVERHEAD
from conftest import emit


def measure():
    return {
        "max_precise": max_precise_length(9),
        "frag9": average_fragmentation(9, min_length=512),
        "frag3": average_fragmentation(3, min_length=8),
        "rule9": rule_of_thumb_fragmentation(9),
        "rule3": rule_of_thumb_fragmentation(3),
    }


def test_encoding_precision(benchmark):
    m = benchmark(measure)
    body = format_table(
        ["quantity", "measured", "paper"],
        [
            ("largest always-precise object", f"{m['max_precise']} B", "511 B"),
            (
                "avg fragmentation, 9-bit T/B",
                f"{m['frag9'] * 100:.3f}%",
                f"~{m['rule9'] * 100:.2f}% (1/2^9)",
            ),
            (
                "avg fragmentation, 3-bit T/B",
                f"{m['frag3'] * 100:.2f}%",
                f"{m['rule3'] * 100:.1f}% (1/2^3)",
            ),
            ("revocation bitmap SRAM overhead", f"{SRAM_OVERHEAD * 100:.2f}%", "1.56%"),
        ],
    )
    emit("Section 3.2.3 / 3.3.1: encoding precision and overheads", body)

    assert m["max_precise"] == 511
    assert m["frag9"] < 0.005  # sub-half-percent, paper: ~0.19%
    assert m["frag3"] > 0.05  # "unacceptable", paper: 12.5%
    assert m["frag3"] > 30 * m["frag9"]
    assert SRAM_OVERHEAD == pytest.approx(0.015625)

    # Formula cross-checked against the real E/B/T encoder.
    for length, allocated in check_cheriot_encoder([1, 511, 513, 100_000]):
        assert allocated >= length
