"""E1 — Table 2: area and power costs for variants of Ibex.

Paper reference values (TSMC 28nm HPC+, 300 MHz):

    RV32E                 26988 GE            1.437 mW
    RV32E + PMP16         55905 GE (2.07x)    2.16 mW (1.50x)
    RV32E + capabilities  58110 GE (2.15x)    2.58 mW (1.79x)
    + load filter         58431 GE (2.17x)    2.58 mW (1.80x)
    + background revoker  61422 GE (2.28x)    2.73 mW (1.90x)
"""

import pytest

from repro.hw.area_power import area_power_table, format_table2
from repro.hw.critical_path import format_timing, timing_reports
from conftest import emit

PAPER_GATES = [26988, 55905, 58110, 58431, 61422]
PAPER_POWER = [1.437, 2.16, 2.58, 2.58, 2.73]


def test_table2_reproduction(benchmark):
    rows = benchmark(area_power_table)
    emit("Table 2: area and power costs for variants of Ibex", format_table2(rows))

    gates = [row.gates for row in rows]
    assert gates == PAPER_GATES, "gate counts must match the paper exactly"
    for row, expected in zip(rows, PAPER_POWER):
        assert row.power_mw == pytest.approx(expected, rel=0.03)

    # Shape assertions the paper's prose makes:
    base, pmp, caps, lf, rev = rows
    assert pmp.gate_ratio == pytest.approx(2.07, abs=0.01)
    assert rev.gate_ratio == pytest.approx(2.28, abs=0.01)
    assert (lf.gates - caps.gates) / caps.gates < 0.01  # filter ~free
    assert rev.gates / pmp.gates < 1.10  # <10% over the PMP baseline

    # Timing: "All Ibex configurations had a f_max of 330 MHz" — the
    # additions stay off the critical path.
    emit("Timing: critical path per variant", format_timing())
    assert all(r.meets_baseline_fmax for r in timing_reports())
