"""E7 — Zero-copy capability narrowing at scale (paper section 7.2.3).

The paper's receive discipline keeps every packet in a single heap
allocation and hands each compartment a ``csetbounds``-narrowed view
of the same buffer.  The alternative — the only *safe* one without
narrowing, since sharing driver memory would expose neighbouring
packets — is to copy at every compartment boundary.

This benchmark drives both disciplines over the identical compartment
topology (driver → firewall → TCP/IP → TLS → MQTT) with seeded
multi-session traffic and measures what narrowing buys as concurrency
rises: per-packet stack cycles (cipher work excluded — it is
byte-identical in both by construction), allocator traffic, and the
batching-driven collapse of compartment-crossing overhead.

The committed full sweep (to 2048 sessions) lives in ``BENCH_net.json``
via ``make net``; this module reproduces the shape at a CI-friendly
scale and asserts it.
"""

import pytest

from repro.analysis.reporting import format_table
from repro.iot.loadgen import NetLoadGen, drive
from repro.iot.sessions import NetPipeline
from conftest import emit

CONNS = (4, 64, 512)
ROUNDS = {4: 8, 64: 4, 512: 2}
SEED = 20260807


def run_point(zero_copy: bool, connections: int) -> dict:
    pipeline = NetPipeline(zero_copy=zero_copy)
    conn_ids = range(1, connections + 1)
    pipeline.establish_many(conn_ids)
    gen = NetLoadGen(
        conn_ids, seed=SEED, corrupt_rate=0.02, reorder_rate=0.02
    )
    drive(pipeline, gen, rounds=ROUNDS[connections])
    report = pipeline.report()
    assert (
        report["counters"]["packets_delivered"] == gen.expected_delivered
    ), "the pipeline must deliver every generated message"
    assert (
        report["counters"]["payload_bytes_delivered"]
        == gen.expected_payload_bytes
    )
    return report


def test_net_scale(benchmark):
    def run():
        points = {}
        for connections in CONNS:
            for zero_copy in (False, True):
                points[(connections, zero_copy)] = run_point(
                    zero_copy, connections
                )
        return points

    points = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for connections in CONNS:
        copy = points[(connections, False)]
        zero = points[(connections, True)]
        ratio = (
            copy["per_packet_stack_cycles"]
            / zero["per_packet_stack_cycles"]
        )
        rows.append(
            (
                connections,
                f"{copy['per_packet_stack_cycles']:.0f}",
                f"{zero['per_packet_stack_cycles']:.0f}",
                f"{ratio:.2f}x",
                f"{copy['counters']['allocs'] / copy['counters']['packets_delivered']:.1f}",
                f"{zero['counters']['allocs'] / zero['counters']['packets_delivered']:.1f}",
                f"{zero['crossing_cycles_per_packet']:.0f}",
            )
        )
    emit(
        "Section 7.2.3 at scale: zero-copy narrowing vs per-layer copies",
        format_table(
            [
                "sessions",
                "copy stack/pkt",
                "zerocopy stack/pkt",
                "speedup",
                "allocs/pkt copy",
                "allocs/pkt zc",
                "crossing cyc/pkt",
            ],
            rows,
        ),
    )

    p99_rows = []
    for connections in CONNS:
        zero = points[(connections, True)]
        p99_rows.append(
            (
                connections,
                zero["latency"]["p50"],
                zero["latency"]["p99"],
                zero["queues"]["ingress"]["high_watermark"],
            )
        )
    emit(
        "Zero-copy per-packet latency (driver edge -> app dispatch)",
        format_table(
            ["sessions", "p50 cycles", "p99 cycles", "ingress hwm"], p99_rows
        ),
    )

    # The claims, at every scale: copying costs materially more stack
    # cycles, and one allocation per packet vs several.
    for connections in CONNS:
        copy = points[(connections, False)]
        zero = points[(connections, True)]
        assert (
            copy["per_packet_stack_cycles"]
            > 1.8 * zero["per_packet_stack_cycles"]
        )
        assert (
            zero["counters"]["allocs"]
            == zero["counters"]["packets_in"]
            - zero["counters"]["dropped_backpressure"]
        )
        assert copy["counters"]["allocs"] > 3 * zero["counters"]["allocs"]

    # Batching: crossing overhead per packet collapses as concurrency
    # keeps the stage queues full.
    small = points[(CONNS[0], True)]["crossing_cycles_per_packet"]
    large = points[(CONNS[-1], True)]["crossing_cycles_per_packet"]
    assert large < small / 2
