"""E2 — Table 3: CoreMark results for the two cores.

Paper reference (CoreMark/MHz, and overhead vs the same core's RV32E):

    Flute: RV32E 2.017 | +caps 1.892 (5.73%) | +filter 1.892 (5.73%)
    Ibex:  RV32E 2.086 | +caps 1.811 (13.18%) | +filter 1.624 (21.28%)

We run the CoreMark-workalike on the ISA simulator under both core
timing models; baselines are pinned to the paper's absolute scores and
the overheads emerge from mechanism (extra instructions, capability-
width pointer traffic, the Ibex load filter's memory-port conflict).
"""

import pytest

from repro.analysis.reporting import format_table
from repro.workloads.coremark import run_kernel_profile, table3
from conftest import emit


@pytest.fixture(scope="module")
def rows():
    return table3(iterations=2)


def test_table3_reproduction(benchmark, rows):
    benchmark.pedantic(lambda: table3(iterations=1), rounds=1, iterations=1)
    body = format_table(
        ["core", "config", "cycles", "score", "paper", "overhead %"],
        [
            (
                r["core"],
                r["config"],
                f"{r['cycles']:,}",
                f"{r['score_scaled']:.3f}",
                f"{r['paper_score']:.3f}",
                f"{r['overhead_pct']:.2f}",
            )
            for r in rows
        ],
    )
    emit("Table 3: CoreMark results for our two cores", body)

    by = {(r["core"], r["config"]): r for r in rows}
    flute_caps = by[("flute", "cheriot")]["overhead_pct"]
    flute_filter = by[("flute", "cheriot+filter")]["overhead_pct"]
    ibex_caps = by[("ibex", "cheriot")]["overhead_pct"]
    ibex_filter = by[("ibex", "cheriot+filter")]["overhead_pct"]

    # Who-wins / rough-factor shape from the paper:
    assert flute_caps == pytest.approx(5.73, abs=3.0)
    assert flute_filter == flute_caps  # filter fully hidden on Flute
    assert ibex_caps == pytest.approx(13.18, abs=5.0)
    assert ibex_filter == pytest.approx(21.28, abs=7.0)
    assert ibex_caps > flute_caps  # narrow bus hurts Ibex more
    assert ibex_filter > ibex_caps  # short pipeline exposes the filter


def test_per_kernel_attribution(benchmark):
    """Where the overhead lives: the pointer-chasing list kernel pays

    the load filter hardest, the globals-reading state machine least."""
    from repro.pipeline import CoreKind

    def run():
        return {
            config: run_kernel_profile(CoreKind.IBEX, config, iterations=1)
            for config in ("rv32e", "cheriot", "cheriot+filter")
        }

    profiles = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for kernel in ("list", "matrix", "state"):
        base = profiles["rv32e"][kernel]
        rows.append(
            (
                kernel,
                f"{base:,}",
                f"+{100 * (profiles['cheriot'][kernel] - base) / base:.1f}%",
                f"+{100 * (profiles['cheriot+filter'][kernel] - base) / base:.1f}%",
            )
        )
    emit(
        "Table 3 attribution (Ibex): per-kernel overhead",
        format_table(["kernel", "rv32e cycles", "+capabilities", "+load filter"], rows),
    )
    def filter_delta(kernel):
        return profiles["cheriot+filter"][kernel] - profiles["cheriot"][kernel]

    assert filter_delta("list") / profiles["cheriot"]["list"] > \
        filter_delta("state") / profiles["cheriot"]["state"]
