"""E6 — End-to-end IoT application CPU load (paper section 7.2.3).

The paper runs the compartmentalized network stack + TLS + MQTT + JS
interpreter on a 20 MHz CHERIoT-Ibex for a minute (including TLS
connection establishment) and measures 17.5 % CPU load — 82.5 % of the
core left to the idle thread.

We simulate the same 60 s with per-packet heap allocations, per-tick JS
execution and GC-driven frees through the full temporal-safety
machinery, and require the load to land in the same regime.
"""

import pytest

from repro.allocator import TemporalSafetyMode
from repro.analysis.reporting import format_table
from repro.iot.app import IoTApplication
from repro.pipeline import CoreKind
from conftest import emit

PAPER_CPU_LOAD = 0.175


def run_app():
    app = IoTApplication(core=CoreKind.IBEX, mode=TemporalSafetyMode.HARDWARE)
    return app.run(duration_ms=60_000)


def test_iot_endtoend(benchmark):
    report = benchmark.pedantic(run_app, rounds=1, iterations=1)
    body = format_table(
        ["metric", "measured", "paper"],
        [
            ("CPU load", f"{report.cpu_load * 100:.1f}%", "17.5%"),
            ("idle fraction", f"{report.idle_fraction * 100:.1f}%", "82.5%"),
            ("duration", f"{report.duration_ms / 1000:.0f}s @ 20MHz", "60s @ 20MHz"),
            ("packets received", report.packets_received, "-"),
            ("JS ticks (10ms)", report.js_ticks, "6000"),
            ("JS objects allocated", report.js_objects_allocated, "-"),
            ("GC passes", report.gc_passes, "-"),
            ("revocation passes", report.revocation_passes, "-"),
        ],
    )
    emit("Section 7.2.3: end-to-end IoT application", body)

    # Same regime as the paper: a low-duty-cycle device with plenty of
    # idle headroom, not a saturated core.
    assert 0.05 < report.cpu_load < 0.35
    assert report.js_ticks == 6000
    assert report.packets_received > 0
    assert report.js_objects_allocated > 0
    assert sum(report.led_final) == 1  # the LED chase is alive

    # Device-level energy: what the security upgrade costs in battery.
    from repro.analysis.energy import security_battery_cost

    cheriot, pmp, extra = security_battery_cost(
        report.cpu_load, report.duration_ms / 1000
    )
    emit(
        "Energy: complete memory safety vs the PMP status quo",
        format_table(
            ["core", "avg power", "CR2032 life"],
            [
                (pmp.variant_name, f"{pmp.average_mw:.4f} mW",
                 f"{pmp.cr2032_days:.0f} days"),
                (cheriot.variant_name, f"{cheriot.average_mw:.4f} mW",
                 f"{cheriot.cr2032_days:.0f} days"),
                ("security premium", f"+{extra * 100:.1f}%", ""),
            ],
        ),
    )
    assert extra < 0.5


def test_iot_temporal_safety_mode_comparison(benchmark):
    """The end-to-end cost of temporal safety: the same application

    under Baseline (spatial only), Software and Hardware revocation."""

    def run():
        rows = []
        loads = {}
        for mode in (
            TemporalSafetyMode.BASELINE,
            TemporalSafetyMode.SOFTWARE,
            TemporalSafetyMode.HARDWARE,
        ):
            # A tight quarantine (8 KiB) forces frequent revocation so
            # the revoker choice is visible within the 15 s window.
            app = IoTApplication(
                core=CoreKind.IBEX, mode=mode, quarantine_threshold=8 * 1024
            )
            report = app.run(duration_ms=15_000)
            loads[mode] = report.cpu_load
            rows.append(
                (mode.value, f"{report.cpu_load * 100:.2f}%",
                 report.revocation_passes)
            )
        return rows, loads

    rows, loads = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "End-to-end cost of temporal safety (15 s windows)",
        format_table(["allocator mode", "CPU load", "revocation passes"], rows),
    )
    # Temporal safety costs something; the hardware offload keeps it
    # cheaper than software sweeping; everything stays far from 100%.
    assert loads[TemporalSafetyMode.BASELINE] <= loads[TemporalSafetyMode.HARDWARE]
    assert loads[TemporalSafetyMode.HARDWARE] <= loads[TemporalSafetyMode.SOFTWARE]
    assert loads[TemporalSafetyMode.SOFTWARE] < 0.9
