"""E5 — Figure 6: allocator benchmark overheads on Ibex.

Expected shape differences from Flute (paper section 7.2.2):

* zeroing is proportionately costlier on the 33-bit bus, so the stack
  high-water mark matters more: Software (S) drops *below* the
  no-HWM baseline at 32- and 64-byte allocations;
* Hardware (S) sits close to (slightly above) the baseline rather than
  beating it as on Flute;
* at 128 KiB the Hardware (S) variant is slightly *slower* than
  Hardware — the two extra CSRs saved/restored on every context switch
  while blocked on the revoker.
"""

import pytest

from repro.analysis.reporting import format_series
from repro.pipeline import CoreKind
from repro.workloads.alloc_bench import overhead_series, table4
from conftest import emit

SIZES = tuple(32 << i for i in range(13))


def _total_for(size: int) -> int:
    return (1 << 20) if size >= 2048 else (1 << 18)


def run_figure():
    results = []
    for size in SIZES:
        results.extend(
            table4(CoreKind.IBEX, sizes=(size,), total_bytes=_total_for(size))
        )
    return results


def test_figure6(benchmark):
    results = benchmark.pedantic(run_figure, rounds=1, iterations=1)
    series = overhead_series(results)
    emit(
        "Figure 6: allocator benchmark results on Ibex "
        "(overhead vs Baseline)",
        format_series(series, "cycles / baseline cycles per size"),
    )

    software = dict(series["Software"])
    software_s = dict(series["Software (S)"])
    hardware = dict(series["Hardware"])
    hardware_s = dict(series["Hardware (S)"])

    # Full temporal safety *with software revocation* beats the no-HWM
    # baseline at 32 and 64 bytes — the headline Ibex result.
    assert software_s[32] < 1.0
    assert software_s[64] < 1.0

    # Software overhead still dominates at large sizes.
    assert software[128 * 1024] > 20

    # Hardware (S) close to baseline at small sizes (within ~15%).
    assert hardware_s[32] < 1.15

    # The 128 KiB HWM context-switch penalty.
    assert hardware_s[128 * 1024] > hardware[128 * 1024]
