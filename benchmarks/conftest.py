"""Shared benchmark configuration.

Every benchmark prints the reproduced table/figure (visible with
``pytest benchmarks/ --benchmark-only -s`` and in the captured output)
and asserts the paper's *shape* — orderings, crossovers, rough factors —
rather than absolute numbers.
"""

import pytest


def emit(title: str, body: str) -> None:
    """Print a reproduced artifact with a recognisable banner."""
    banner = "=" * 72
    print(f"\n{banner}\n{title}\n{banner}\n{body}\n")
