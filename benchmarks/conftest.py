"""Shared benchmark configuration.

Every benchmark prints the reproduced table/figure (visible with
``pytest benchmarks/ --benchmark-only -s`` and in the captured output)
and asserts the paper's *shape* — orderings, crossovers, rough factors —
rather than absolute numbers.
"""

import os

import pytest


def emit(title: str, body: str) -> None:
    """Print a reproduced artifact with a recognisable banner.

    When ``REPRO_BENCH_TABLES`` names a file, the artifact is also
    appended there — ``tools/run_benchmarks.py`` points each worker at
    its own file and merges them in module order, so the combined
    ``bench_output_tables.txt`` is byte-identical however many workers
    ran.
    """
    banner = "=" * 72
    block = f"\n{banner}\n{title}\n{banner}\n{body}\n"
    print(block)
    path = os.environ.get("REPRO_BENCH_TABLES")
    if path:
        with open(path, "a") as fh:
            fh.write(block)
