"""Ablations over the design choices DESIGN.md calls out.

Each ablation varies one co-design decision and measures the paper's
stated trade-off:

* **compiler fixes** — the paper flags its Table 3 numbers as worst-case
  pending two known codegen bug fixes (§7.2); we quantify the expected
  recovery by lowering with the fixes applied.
* **revocation granule** — §3.3.1: a coarser granule shrinks the bitmap
  SRAM proportionally but pads allocations.
* **quarantine threshold** — §5.1: sweeping less often amortizes the
  whole-heap scan over more freed bytes, at the cost of more memory
  held in quarantine.
* **revoker batch size** — §3.3.2: the software sweep disables
  interrupts per batch, so batch size is a direct real-time latency
  knob with negligible throughput cost.
"""

import pytest

from repro.allocator import CheriHeap, TemporalSafetyMode
from repro.analysis.reporting import format_table
from repro.capability import make_roots
from repro.memory import RevocationMap, SystemBus, TaggedMemory, default_memory_map
from repro.pipeline import CoreKind, make_core_model
from repro.revoker import BackgroundRevoker, EpochCounter, SoftwareRevoker
from repro.workloads.alloc_bench import run_alloc_bench
from repro.workloads.coremark import run_coremark
from conftest import emit


def test_ablation_compiler_fixes(benchmark):
    """How much of the CoreMark overhead the two compiler bugs cost."""

    def run():
        rows = []
        for core in (CoreKind.FLUTE, CoreKind.IBEX):
            base = run_coremark(core, "rv32e", iterations=1)
            for fixed in (False, True):
                result = run_coremark(
                    core, "cheriot+filter", iterations=1, fixed_compiler=fixed
                )
                overhead = 100 * (result.cycles - base.cycles) / base.cycles
                rows.append(
                    (
                        core.value,
                        "fixed" if fixed else "as-submitted",
                        f"{result.cycles:,}",
                        f"{overhead:.2f}%",
                    )
                )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "Ablation: the two compiler bugs of section 7.2 "
        "(paper: numbers are worst-case pending fixes)",
        format_table(["core", "compiler", "cycles", "overhead vs rv32e"], rows),
    )
    by = {(r[0], r[1]): float(r[3].rstrip("%")) for r in rows}
    for core in ("flute", "ibex"):
        assert by[(core, "fixed")] < by[(core, "as-submitted")]


def test_ablation_revocation_granule(benchmark):
    """Bitmap SRAM vs allocation padding across granule sizes."""

    def run():
        rows = []
        for granule in (8, 16, 32, 64):
            mm = default_memory_map()
            bus = SystemBus()
            bus.attach_sram(TaggedMemory(mm.code.base, mm.sram_bytes))
            rmap = RevocationMap(mm.heap.base, mm.heap.size, granule_bytes=granule)
            roots = make_roots()
            epoch = EpochCounter()
            hw = BackgroundRevoker(bus, rmap, epoch)
            heap = CheriHeap(
                bus, mm.heap, rmap, roots.memory, TemporalSafetyMode.HARDWARE,
                hardware_revoker=hw, epoch=epoch,
            )
            for _ in range(256):
                heap.free(heap.malloc(20))
            rows.append(
                (
                    f"{granule} B",
                    f"{rmap.bitmap_bytes:,} B",
                    f"{100 * rmap.bitmap_bytes / mm.heap.size:.2f}%",
                    f"{heap.stats.fragmentation_padding:,} B",
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "Ablation: revocation granule size (section 3.3.1) — "
        "bitmap SRAM vs padding for 256 x 20-byte allocations",
        format_table(["granule", "bitmap SRAM", "SRAM overhead", "padding"], rows),
    )
    bitmaps = [int(r[1].replace(",", "").split()[0]) for r in rows]
    paddings = [int(r[3].replace(",", "").split()[0]) for r in rows]
    assert bitmaps == sorted(bitmaps, reverse=True)
    assert paddings[-1] > paddings[0]


def test_ablation_quarantine_threshold(benchmark):
    """Sweep frequency vs total cycles at a small allocation size."""

    def run():
        rows = []
        mm = default_memory_map()
        for fraction in (0.125, 0.25, 0.5):
            threshold = int(mm.heap.size * fraction)
            from repro.machine import System

            system = System.build(
                core=CoreKind.IBEX,
                mode=TemporalSafetyMode.SOFTWARE,
                quarantine_threshold=threshold,
            )
            system.reset_cycles()
            for _ in range(4096):
                system.free(system.malloc(64))
            rows.append(
                (
                    f"{fraction:.3f} x heap",
                    f"{system.allocator.stats.revocation_passes}",
                    f"{system.core_model.cycles:,}",
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "Ablation: quarantine threshold (section 5.1) — software revoker, "
        "4096 x 64-byte alloc/free",
        format_table(["threshold", "sweeps", "cycles"], rows),
    )
    cycles = [int(r[2].replace(",", "")) for r in rows]
    assert cycles == sorted(cycles, reverse=True)  # bigger threshold cheaper


def test_ablation_revoker_batch_size(benchmark):
    """Interrupts-disabled window vs batch size for the software sweep."""

    def run():
        mm = default_memory_map()
        rows = []
        for batch in (16, 64, 256, 1024):
            bus = SystemBus()
            bus.attach_sram(TaggedMemory(mm.code.base, mm.sram_bytes))
            rmap = RevocationMap(mm.heap.base, mm.heap.size)
            core = make_core_model(CoreKind.IBEX, load_filter_enabled=True)
            revoker = SoftwareRevoker(bus, rmap, core_model=core, batch_granules=batch)
            _, cycles = revoker.sweep(mm.heap.base, mm.heap.top)
            window = core.sweep_cycles_software(batch * 8)
            rows.append((batch, f"{window:,}", f"{cycles:,}"))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "Ablation: software revoker batch size (section 3.3.2) — "
        "worst-case interrupts-off window vs full-sweep cost (256 KiB heap)",
        format_table(
            ["batch (granules)", "interrupts-off window (cycles)", "sweep total"],
            rows,
        ),
    )
    windows = [int(r[1].replace(",", "")) for r in rows]
    totals = [int(r[2].replace(",", "")) for r in rows]
    assert windows == sorted(windows)  # latency grows with batch
    # ...while total sweep cost is essentially flat (within 2%).
    assert max(totals) - min(totals) < 0.02 * max(totals)


def test_ablation_peephole_optimizer(benchmark):
    """-O0-style spills vs the peephole's register reuse (section 7.2's

    -Oz setting sits between the two)."""

    def run():
        rows = []
        for core in (CoreKind.FLUTE, CoreKind.IBEX):
            for optimize in (False, True):
                result = run_coremark(
                    core, "cheriot+filter", iterations=1, optimize=optimize
                )
                rows.append(
                    (
                        core.value,
                        "peephole" if optimize else "spill-everything",
                        f"{result.instructions:,}",
                        f"{result.cycles:,}",
                    )
                )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "Ablation: peephole optimizer (register reuse of just-stored values)",
        format_table(["core", "codegen", "instructions", "cycles"], rows),
    )
    by = {(r[0], r[1]): int(r[3].replace(",", "")) for r in rows}
    for core in ("flute", "ibex"):
        assert by[(core, "peephole")] < by[(core, "spill-everything")]
