"""Simulator speed harness: how fast the simulator itself runs.

Unlike the other benchmarks (which reproduce the paper's *architectural*
numbers), this one measures host wall-clock for the decode-once/
execute-many executor and pins its two load-bearing properties:

* the pre-decoded fast path is decisively faster than the interpretive
  reference path on the same program, and
* both paths retire the *same* architectural instruction count — the
  speedup is pure host-time, never a semantic shortcut.

``tools/bench_speed.py`` records the same workloads to
``BENCH_simspeed.json``; ``tools/check_bench_regression.py`` gates CI
on them.
"""

from repro.analysis.reporting import format_table
from repro.analysis.simspeed import (
    SEED_BASELINE,
    measure_alu_loop,
    measure_mem_loop,
    measure_table3_iter1,
)
from conftest import emit


def test_simulator_speed(benchmark):
    results = {}

    def workloads():
        results["alu_loop"] = measure_alu_loop()
        results["mem_loop"] = measure_mem_loop()
        results["table3_iter1"] = measure_table3_iter1()

    benchmark.pedantic(workloads, rounds=1, iterations=1)

    body = format_table(
        ["workload", "seconds", "MIPS"],
        [
            (
                name,
                f"{r['seconds']:.3f}",
                f"{r['mips']:.3f}" if "mips" in r else "-",
            )
            for name, r in results.items()
        ],
    )
    body += (
        f"\n\nseed baseline: table3_iter1 "
        f"{SEED_BASELINE['table3_iter1_seconds']:.3f}s, "
        f"alu_loop {SEED_BASELINE['alu_loop_mips']:.3f} MIPS"
    )
    emit("Simulator speed (host wall-clock)", body)

    # Generous floors: an order of magnitude below current numbers, so
    # only a real collapse (not shared-machine noise) fails them.
    assert results["alu_loop"]["mips"] > 0.03
    assert results["table3_iter1"]["seconds"] < 30.0


def test_predecode_speedup_same_semantics(benchmark):
    fast = {}

    def run_fast():
        fast.update(measure_alu_loop(count=100_000, predecode=True))

    benchmark.pedantic(run_fast, rounds=1, iterations=1)
    interp = measure_alu_loop(count=100_000, predecode=False)

    speedup = interp["seconds"] / fast["seconds"]
    emit(
        "Pre-decoded vs interpretive executor (ALU loop)",
        format_table(
            ["path", "seconds", "MIPS", "instructions"],
            [
                ("interpretive", f"{interp['seconds']:.3f}",
                 f"{interp['mips']:.3f}", interp["instructions"]),
                ("pre-decoded", f"{fast['seconds']:.3f}",
                 f"{fast['mips']:.3f}", fast["instructions"]),
            ],
        )
        + f"\n\nspeedup: {speedup:.2f}x",
    )

    # Identical architectural work — the differential tests check full
    # state equality; here the retire counts must already agree.
    assert fast["instructions"] == interp["instructions"]
    # The tentpole criterion is >=2x end-to-end; the dispatch-bound ALU
    # loop shows more.  1.5x leaves room for shared-machine noise.
    assert speedup > 1.5
