"""E9 — the real-time claim (paper section 2.1).

"A real-time system is one in which the latency of operations is
bounded and can be reasoned about... we provide extensions that allow
software to enforce which code may run with interrupts disabled, which
makes it tractable to reason about worst-case latency."

This bench measures the longest interrupts-disabled window over the
allocation microbenchmark with full temporal safety (software revoker —
the worst configuration for latency) and demonstrates:

* the worst case equals one revoker batch and is independent of the
  allocation size and the amount of memory swept;
* shrinking the batch shrinks the bound proportionally (the
  "easily changed batch size" knob of section 3.3.2).
"""

import pytest

from repro.allocator import TemporalSafetyMode
from repro.analysis.reporting import format_table, size_label
from repro.machine import System
from repro.pipeline import CoreKind
from repro.rtos import InterruptLatencyMonitor
from conftest import emit


def run_with_monitor(allocation_size: int, batch_granules: int, total=1 << 19):
    system = System.build(core=CoreKind.IBEX, mode=TemporalSafetyMode.SOFTWARE)
    system.software_revoker.batch_granules = batch_granules
    monitor = InterruptLatencyMonitor(system.csr, system.core_model)
    for _ in range(max(1, total // allocation_size)):
        system.free(system.malloc(allocation_size))
    return monitor, system


def test_worst_case_latency_bounded(benchmark):
    def run():
        rows = []
        results = {}
        for size in (64, 4096, 128 * 1024):
            monitor, system = run_with_monitor(size, batch_granules=64)
            results[size] = monitor.worst_case
            rows.append(
                (
                    size_label(size),
                    len(monitor.windows),
                    f"{monitor.worst_case:,}",
                    f"{monitor.total_disabled:,}",
                )
            )
        return rows, results

    rows, results = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "Section 2.1: worst-case interrupts-off window under full "
        "temporal safety (software revoker, batch = 64 granules)",
        format_table(
            ["alloc size", "critical sections", "worst window (cyc)",
             "total disabled (cyc)"],
            rows,
        ),
    )
    # The bound is a constant of the image: identical at every
    # allocation size, no matter how much sweeping happened.
    values = set(results.values())
    assert len(values) == 1, f"latency bound varied with workload: {results}"


def test_batch_size_is_the_latency_knob(benchmark):
    def run():
        rows = []
        worst = {}
        for batch in (16, 64, 256):
            monitor, _ = run_with_monitor(1024, batch_granules=batch, total=1 << 18)
            worst[batch] = monitor.worst_case
            rows.append((batch, f"{monitor.worst_case:,}"))
        return rows, worst

    rows, worst = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "Section 3.3.2: the batch size bounds the critical section",
        format_table(["batch (granules)", "worst window (cycles)"], rows),
    )
    assert worst[16] < worst[64] < worst[256]
    assert worst[256] == pytest.approx(16 * worst[16], rel=0.05)
