"""Tests for the core timing models (Flute vs Ibex trade-offs)."""

import pytest

from repro.isa.assembler import assemble
from repro.isa.executor import _RetireInfo
from repro.pipeline import CoreKind, make_core_model
from repro.pipeline.model import flute_params, ibex_params


def retire(model, source):
    """Feed an assembled instruction sequence through the model."""
    program = assemble(source)
    for instr in program.instructions:
        info = _RetireInfo(instr)
        if instr.timing_class in ("LOAD", "CLOAD"):
            info.mem_dest = instr.operands[0]
            info.cap_load = instr.timing_class == "CLOAD"
        model.retire(instr, info)
    return model.cycles


class TestParams:
    def test_flute_wide_bus(self):
        assert flute_params().cap_access_beats == 1
        assert flute_params().load_filter_penalty == 0
        assert not flute_params().load_filter_port_conflict

    def test_ibex_narrow_bus(self):
        """Ibex's 33-bit data bus: two beats per capability (section 4)."""
        assert ibex_params().cap_access_beats == 2
        assert ibex_params().load_filter_port_conflict


class TestInstructionCosts:
    def test_alu_single_cycle(self):
        model = make_core_model(CoreKind.FLUTE)
        assert retire(model, "add a0, a1, a2\nnop\nmv a3, a0") == 3

    def test_cap_load_costs_two_beats_on_ibex(self):
        ibex = make_core_model(CoreKind.IBEX)
        flute = make_core_model(CoreKind.FLUTE)
        src = "clc a0, 0(s0)"
        assert retire(ibex, src) == ibex_params().load_cycles + 1
        assert retire(flute, src) == flute_params().load_cycles

    def test_cap_store_beats(self):
        ibex = make_core_model(CoreKind.IBEX)
        base = retire(make_core_model(CoreKind.IBEX), "sw a0, 0(s0)")
        capstore = retire(ibex, "csc a0, 0(s0)")
        assert capstore == base + 1

    def test_branch_taken_penalty(self):
        model = make_core_model(CoreKind.FLUTE)
        program = assemble("beq a0, a1, t\nt: halt")
        info = _RetireInfo(program.instructions[0])
        info.branch_taken = True
        model.retire(program.instructions[0], info)
        taken = model.cycles
        model2 = make_core_model(CoreKind.FLUTE)
        info2 = _RetireInfo(program.instructions[0])
        model2.retire(program.instructions[0], info2)
        assert taken > model2.cycles

    def test_div_expensive(self):
        model = make_core_model(CoreKind.IBEX)
        assert retire(model, "div a0, a1, a2") == ibex_params().div_cycles


class TestLoadUseHazard:
    def test_flute_dependent_use_stalls(self):
        dependent = retire(
            make_core_model(CoreKind.FLUTE), "lw a0, 0(s0)\nadd a1, a0, a0"
        )
        independent = retire(
            make_core_model(CoreKind.FLUTE), "lw a0, 0(s0)\nadd a1, a2, a2"
        )
        assert dependent == independent + flute_params().load_use_penalty

    def test_filter_penalty_only_with_filter_enabled(self):
        src = "clc a0, 0(s0)\ncgetaddr a1, a0"
        plain = retire(make_core_model(CoreKind.IBEX, False), src)
        filtered = retire(make_core_model(CoreKind.IBEX, True), src)
        # Port conflict (+1 on the load) plus the load-to-use stall (+1).
        assert filtered == plain + 2

    def test_filter_free_on_flute(self):
        """Figure 4: the 5-stage pipeline hides the lookup entirely."""
        src = "clc a0, 0(s0)\ncgetaddr a1, a0"
        plain = retire(make_core_model(CoreKind.FLUTE, False), src)
        filtered = retire(make_core_model(CoreKind.FLUTE, True), src)
        assert filtered == plain


class TestBulkHelpers:
    @pytest.mark.parametrize("kind", [CoreKind.FLUTE, CoreKind.IBEX])
    def test_zeroing_scales_linearly(self, kind):
        model = make_core_model(kind)
        assert model.zero_bytes_cycles(0) == 0
        one = model.zero_bytes_cycles(256)
        two = model.zero_bytes_cycles(512)
        assert 1.9 * one <= two <= 2.1 * one

    def test_zeroing_costlier_on_ibex(self):
        """The narrow bus makes zeroing proportionately pricier — the

        mechanism behind the paper's Ibex HWM observations (7.2.2)."""
        flute = make_core_model(CoreKind.FLUTE).zero_bytes_cycles(1024)
        ibex = make_core_model(CoreKind.IBEX).zero_bytes_cycles(1024)
        assert ibex > 1.5 * flute

    def test_software_sweep_four_accesses_per_word_on_ibex(self):
        """Section 7.2.2: the software revoker's load+store per

        capability word becomes four SRAM accesses on Ibex."""
        model = make_core_model(CoreKind.IBEX)
        per_word = model.sweep_cycles_software(8 * 1000) / 1000
        assert per_word >= 4

    def test_hardware_sweep_cheaper_than_software(self):
        for kind in (CoreKind.FLUTE, CoreKind.IBEX):
            model = make_core_model(kind)
            nbytes = 256 * 1024
            assert model.sweep_cycles_hardware(nbytes) < model.sweep_cycles_software(
                nbytes
            )

    def test_hardware_sweep_slower_when_cpu_busy(self):
        model = make_core_model(CoreKind.IBEX)
        blocked = model.sweep_cycles_hardware(4096, cpu_blocked=True)
        contended = model.sweep_cycles_hardware(4096, cpu_blocked=False)
        assert contended > blocked


class TestReset:
    def test_reset_clears_state(self):
        model = make_core_model(CoreKind.IBEX)
        retire(model, "lw a0, 0(s0)")
        model.reset()
        assert model.cycles == 0
        assert model.stats.bus_beats == 0
