"""Cycle attribution and the retire-hook PC profiler."""

from repro.isa import CPU, ExecutionMode, assemble
from repro.memory import SystemBus, TaggedMemory
from repro.obs import CycleAttributor, PCProfiler, render_attribution, render_hot_pcs
from repro.pipeline import CoreKind, make_core_model

CODE_BASE = 0x2000_0000


class FakeCore:
    def __init__(self):
        self.cycles = 0


class TestCycleAttributor:
    def test_every_cycle_lands_in_exactly_one_bucket(self):
        core = FakeCore()
        attr = CycleAttributor(core)
        core.cycles = 10  # app
        attr.push("switcher")
        core.cycles = 25  # switcher
        attr.push("callee")
        core.cycles = 100  # callee
        attr.pop()
        core.cycles = 110  # switcher (return path)
        attr.pop()
        core.cycles = 140  # app again
        totals = attr.snapshot()
        assert totals == {"app": 40, "switcher": 25, "callee": 75}
        assert sum(totals.values()) == core.cycles

    def test_root_context_cannot_be_popped(self):
        core = FakeCore()
        attr = CycleAttributor(core)
        attr.pop()
        attr.pop()
        assert attr.current == "app"
        assert attr.depth == 1

    def test_rebase_forgets_unsettled_cycles(self):
        core = FakeCore()
        attr = CycleAttributor(core)
        core.cycles = 1000  # boot noise
        attr.rebase()
        core.cycles = 1010
        assert attr.snapshot() == {"app": 10}

    def test_render_reports_reconciliation(self):
        text = render_attribution({"app": 60, "switcher": 40}, core_cycles=100)
        assert "reconciled" in text
        text = render_attribution({"app": 60}, core_cycles=100)
        assert "MISMATCH" in text


def _run_profiled(source):
    bus = SystemBus()
    bus.attach_sram(TaggedMemory(CODE_BASE, 0x1_0000))
    core = make_core_model(CoreKind.IBEX)
    cpu = CPU(bus, mode=ExecutionMode.RV32E, timing=core)
    cpu.load_program(assemble(source), CODE_BASE)
    profiler = PCProfiler(core).attach(cpu)
    cpu.run()
    return core, profiler


class TestPCProfiler:
    def test_cycles_partition_over_pcs(self):
        core, profiler = _run_profiled(
            "li a0, 50\nloop: addi a0, a0, -1\nbnez a0, loop\nhalt"
        )
        # Every cycle the core accrued is charged to some PC.
        assert profiler.total_cycles == core.cycles
        assert profiler.retired == 1 + 50 * 2  # li + 50x(addi, bnez)

    def test_hot_ranks_the_loop_first(self):
        _, profiler = _run_profiled(
            "li a0, 50\nloop: addi a0, a0, -1\nbnez a0, loop\nhalt"
        )
        hot = profiler.hot(2)
        assert hot[0][0] in (CODE_BASE + 4, CODE_BASE + 8)  # a loop PC
        assert hot[0][2] == 50  # hits
        assert "addi" in hot[0][3] or "bnez" in hot[0][3]
        text = render_hot_pcs(profiler, n=3)
        assert f"{CODE_BASE + 4:#010x}" in text

    def test_detach_stops_charging(self):
        bus = SystemBus()
        bus.attach_sram(TaggedMemory(CODE_BASE, 0x1_0000))
        core = make_core_model(CoreKind.IBEX)
        cpu = CPU(bus, mode=ExecutionMode.RV32E, timing=core)
        cpu.load_program(
            assemble("li a0, 50\nloop: addi a0, a0, -1\nbnez a0, loop\nhalt"),
            CODE_BASE,
        )
        profiler = PCProfiler(core).attach(cpu)
        cpu.step()
        profiler.detach(cpu)
        cpu.run()
        assert profiler.retired == 1
