"""Cycle attribution and the retire-hook PC profiler."""

from repro.isa import CPU, ExecutionMode, assemble
from repro.memory import SystemBus, TaggedMemory
from repro.obs import CycleAttributor, PCProfiler, render_attribution, render_hot_pcs
from repro.pipeline import CoreKind, make_core_model

CODE_BASE = 0x2000_0000


class FakeCore:
    def __init__(self):
        self.cycles = 0


class TestCycleAttributor:
    def test_every_cycle_lands_in_exactly_one_bucket(self):
        core = FakeCore()
        attr = CycleAttributor(core)
        core.cycles = 10  # app
        attr.push("switcher")
        core.cycles = 25  # switcher
        attr.push("callee")
        core.cycles = 100  # callee
        attr.pop()
        core.cycles = 110  # switcher (return path)
        attr.pop()
        core.cycles = 140  # app again
        totals = attr.snapshot()
        assert totals == {"app": 40, "switcher": 25, "callee": 75}
        assert sum(totals.values()) == core.cycles

    def test_root_context_cannot_be_popped(self):
        core = FakeCore()
        attr = CycleAttributor(core)
        attr.pop()
        attr.pop()
        assert attr.current == "app"
        assert attr.depth == 1

    def test_rebase_forgets_unsettled_cycles(self):
        core = FakeCore()
        attr = CycleAttributor(core)
        core.cycles = 1000  # boot noise
        attr.rebase()
        core.cycles = 1010
        assert attr.snapshot() == {"app": 10}

    def test_render_reports_reconciliation(self):
        text = render_attribution({"app": 60, "switcher": 40}, core_cycles=100)
        assert "reconciled" in text
        text = render_attribution({"app": 60}, core_cycles=100)
        assert "MISMATCH" in text


def _run_profiled(source):
    bus = SystemBus()
    bus.attach_sram(TaggedMemory(CODE_BASE, 0x1_0000))
    core = make_core_model(CoreKind.IBEX)
    cpu = CPU(bus, mode=ExecutionMode.RV32E, timing=core)
    cpu.load_program(assemble(source), CODE_BASE)
    profiler = PCProfiler(core).attach(cpu)
    cpu.run()
    return core, profiler


class TestPCProfiler:
    def test_cycles_partition_over_pcs(self):
        core, profiler = _run_profiled(
            "li a0, 50\nloop: addi a0, a0, -1\nbnez a0, loop\nhalt"
        )
        # Every cycle the core accrued is charged to some PC.
        assert profiler.total_cycles == core.cycles
        assert profiler.retired == 1 + 50 * 2  # li + 50x(addi, bnez)

    def test_hot_ranks_the_loop_first(self):
        _, profiler = _run_profiled(
            "li a0, 50\nloop: addi a0, a0, -1\nbnez a0, loop\nhalt"
        )
        hot = profiler.hot(2)
        assert hot[0][0] in (CODE_BASE + 4, CODE_BASE + 8)  # a loop PC
        assert hot[0][2] == 50  # hits
        assert "addi" in hot[0][3] or "bnez" in hot[0][3]
        text = render_hot_pcs(profiler, n=3)
        assert f"{CODE_BASE + 4:#010x}" in text

    def test_detach_stops_charging(self):
        bus = SystemBus()
        bus.attach_sram(TaggedMemory(CODE_BASE, 0x1_0000))
        core = make_core_model(CoreKind.IBEX)
        cpu = CPU(bus, mode=ExecutionMode.RV32E, timing=core)
        cpu.load_program(
            assemble("li a0, 50\nloop: addi a0, a0, -1\nbnez a0, loop\nhalt"),
            CODE_BASE,
        )
        profiler = PCProfiler(core).attach(cpu)
        cpu.step()
        profiler.detach(cpu)
        cpu.run()
        assert profiler.retired == 1


class TestProfileMerge:
    """Serialised hot-PC histograms: merge algebra and top-N diffing."""

    def _profiled(self, source):
        _, profiler = _run_profiled(source)
        return profiler

    def test_round_trip_and_image_namespacing(self):
        from repro.obs import profile_to_dict

        profiler = self._profiled("li a0, 2\nloop: addi a0, a0, -1\nbnez a0, loop\nhalt")
        bare = profile_to_dict(profiler)
        named = profile_to_dict(profiler, image="traced-list")
        assert bare["retired"] == named["retired"] == profiler.retired
        assert sorted(named["pcs"]) == [
            f"traced-list:{key}" for key in sorted(bare["pcs"])
        ]

    def test_merge_adds_same_image_and_keeps_images_disjoint(self):
        from repro.obs import merge_profile_dicts, profile_to_dict

        source = "li a0, 2\nloop: addi a0, a0, -1\nbnez a0, loop\nhalt"
        a = profile_to_dict(self._profiled(source), image="list")
        b = profile_to_dict(self._profiled(source), image="list")
        c = profile_to_dict(self._profiled(source), image="matrix")
        merged = merge_profile_dicts([a, b, c])
        assert merged["retired"] == a["retired"] * 3
        key = sorted(a["pcs"])[0]
        assert merged["pcs"][key]["cycles"] == 2 * a["pcs"][key]["cycles"]
        other = key.replace("list", "matrix", 1)
        assert merged["pcs"][other]["cycles"] == a["pcs"][key]["cycles"]

    def test_merge_refuses_mixed_builds_under_one_image(self):
        import pytest

        from repro.obs import merge_profile_dicts, profile_to_dict

        a = profile_to_dict(self._profiled("li a0, 1\nhalt"), image="x")
        b = profile_to_dict(self._profiled("li a1, 1\nhalt"), image="x")
        with pytest.raises(ValueError):
            merge_profile_dicts([a, b])

    def test_diff_hot_names_the_churn(self):
        from repro.obs import diff_hot, profile_to_dict

        base = profile_to_dict(
            self._profiled("li a0, 9\nloop: addi a0, a0, -1\nbnez a0, loop\nhalt")
        )
        cur = profile_to_dict(
            self._profiled("li a0, 3\nloop: addi a0, a0, -1\nbnez a0, loop\nhalt")
        )
        assert diff_hot(base, base, 5) == []
        lines = diff_hot(base, cur, 5)
        assert lines and any("cycles" in line for line in lines)
