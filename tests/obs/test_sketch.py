"""The fixed-centroid quantile sketch: bins, quantiles, merge laws."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.sketch import (
    QuantileSketch,
    bin_bounds,
    bin_index,
    bin_representative,
    merge_sketch_dicts,
)

samples = st.lists(st.integers(min_value=0, max_value=1 << 20), max_size=60)


class TestBins:
    def test_small_values_get_exact_bins(self):
        for value in range(16):
            assert bin_index(value) == value
            lo, hi = bin_bounds(value)
            assert lo == value and hi == value + 1
            assert bin_representative(value) == value

    def test_bins_are_contiguous_and_cover(self):
        previous_hi = None
        for index in range(200):
            lo, hi = bin_bounds(index)
            assert lo < hi
            if previous_hi is not None:
                assert lo == previous_hi
            previous_hi = hi

    @given(st.integers(min_value=0, max_value=1 << 40))
    def test_every_value_lands_in_its_bin_bounds(self, value):
        lo, hi = bin_bounds(bin_index(value))
        assert lo <= value < hi
        assert lo <= bin_representative(bin_index(value)) < hi

    def test_relative_error_is_bounded_above_exact_range(self):
        for value in (16, 100, 4096, 123_457, 10**9):
            lo, hi = bin_bounds(bin_index(value))
            # 8 sub-bins per octave: bin width <= lo / 8.
            assert (hi - lo) * 8 <= lo


class TestQuantiles:
    def test_exact_below_sixteen(self):
        sketch = QuantileSketch()
        sketch.observe_many(range(16))
        for value in range(16):
            assert sketch.quantile((value + 1) / 16) == value

    def test_nearest_rank_on_uniform_hundred(self):
        sketch = QuantileSketch()
        sketch.observe_many(range(1, 101))
        summary = sketch.summary()
        assert summary["count"] == 100
        assert summary["min"] == 1 and summary["max"] == 100
        # Representatives clamp to [min, max]; mid quantiles stay
        # within one bin width of the exact nearest-rank answer.
        assert abs(summary["p50"] - 50) <= 4
        assert abs(summary["p90"] - 90) <= 7

    def test_empty_sketch_is_all_zero(self):
        summary = QuantileSketch().summary()
        assert summary == {
            "count": 0, "min": 0, "p50": 0, "p90": 0, "p99": 0,
            "max": 0, "mean": 0.0,
        }


class TestMergeLaws:
    @settings(max_examples=40)
    @given(samples, samples)
    def test_merge_is_commutative(self, a, b):
        left = _sketch(a).merge(_sketch(b))
        right = _sketch(b).merge(_sketch(a))
        assert left.to_dict() == right.to_dict()

    @settings(max_examples=40)
    @given(samples, samples, samples)
    def test_merge_is_associative(self, a, b, c):
        one = _sketch(a).merge(_sketch(b).merge(_sketch(c)))
        two = _sketch(a).merge(_sketch(b)).merge(_sketch(c))
        assert one.to_dict() == two.to_dict()

    @settings(max_examples=40)
    @given(samples)
    def test_empty_is_the_identity(self, a):
        merged = QuantileSketch().merge(_sketch(a))
        assert merged.to_dict() == _sketch(a).to_dict()

    @settings(max_examples=40)
    @given(samples, st.integers(min_value=1, max_value=7))
    def test_shard_split_invariance(self, a, shards):
        """Observing the stream whole or in any shard split folds to
        the same sketch — the fleet determinism contract in miniature."""
        whole = _sketch(a)
        parts = [QuantileSketch() for _ in range(shards)]
        for i, value in enumerate(a):
            parts[i % shards].observe(value)
        folded = QuantileSketch()
        for part in parts:
            folded = folded.merge(part)
        assert folded.to_dict() == whole.to_dict()

    def test_dict_merge_matches_object_merge(self):
        a, b = _sketch([1, 5, 900]), _sketch([2, 77])
        assert (
            merge_sketch_dicts(a.to_dict(), b.to_dict())
            == a.merge(b).to_dict()
        )


class TestWireFormat:
    def test_round_trip(self):
        sketch = _sketch([3, 18, 4096, 4097, 10**6])
        again = QuantileSketch.from_dict(sketch.to_dict())
        assert again.to_dict() == sketch.to_dict()
        assert again.summary() == sketch.summary()

    def test_from_dict_rejects_other_schemes(self):
        payload = _sketch([1]).to_dict()
        payload["scheme"] = "hdr-v2"
        with pytest.raises(ValueError):
            QuantileSketch.from_dict(payload)

    def test_from_dict_rejects_inconsistent_count(self):
        payload = _sketch([1, 2]).to_dict()
        payload["count"] = 99
        with pytest.raises(ValueError):
            QuantileSketch.from_dict(payload)


def _sketch(values):
    sketch = QuantileSketch()
    sketch.observe_many(values)
    return sketch
