"""Tests for the span tracer: nesting, ring bounds, instants."""

from repro.obs import SpanTracer


class FakeClock:
    def __init__(self):
        self.now = 0

    def __call__(self):
        return self.now


class TestSpans:
    def test_begin_end_records_interval(self):
        clock = FakeClock()
        tracer = SpanTracer(clock)
        span = tracer.begin("work", "test", bytes=4)
        clock.now = 10
        tracer.end(span)
        (got,) = tracer.events()
        assert (got.name, got.begin, got.end, got.duration) == ("work", 0, 10, 10)
        assert got.args == {"bytes": 4}
        assert not got.is_instant

    def test_open_spans_not_committed_until_ended(self):
        tracer = SpanTracer(FakeClock())
        tracer.begin("open", "test")
        assert len(tracer) == 0
        assert tracer.open_depth() == 1

    def test_end_defaults_to_innermost(self):
        clock = FakeClock()
        tracer = SpanTracer(clock)
        tracer.begin("outer", "test")
        clock.now = 1
        tracer.begin("inner", "test")
        clock.now = 2
        tracer.end()
        clock.now = 3
        tracer.end()
        names = [s.name for s in tracer.events()]
        assert names == ["inner", "outer"]  # commit order = close order
        assert tracer.open_depth() == 0

    def test_tracks_nest_independently(self):
        clock = FakeClock()
        tracer = SpanTracer(clock)
        a = tracer.begin("a", "test", track="one")
        tracer.begin("b", "test", track="two")
        tracer.end(a)
        assert tracer.open_depth("one") == 0
        assert tracer.open_depth("two") == 1

    def test_instant_has_no_duration(self):
        tracer = SpanTracer(FakeClock())
        tracer.instant("tick", "test")
        (got,) = tracer.events()
        assert got.is_instant
        assert got.duration == 0

    def test_complete_records_future_interval(self):
        tracer = SpanTracer(FakeClock())
        tracer.complete("pass", "revoker", 100, 250, track="revoker")
        (got,) = tracer.events()
        assert (got.begin, got.end, got.track) == (100, 250, "revoker")

    def test_context_manager_closes_on_exception(self):
        clock = FakeClock()
        tracer = SpanTracer(clock)
        try:
            with tracer.span("doomed", "test"):
                clock.now = 5
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        (got,) = tracer.events()
        assert got.end == 5
        assert tracer.open_depth() == 0

    def test_ring_is_bounded_and_counts_drops(self):
        clock = FakeClock()
        tracer = SpanTracer(clock, capacity=4)
        for i in range(7):
            tracer.instant(f"e{i}", "test")
        assert len(tracer) == 4
        assert tracer.dropped == 3
        assert [s.name for s in tracer.events()] == ["e3", "e4", "e5", "e6"]

    def test_clear_resets_everything(self):
        tracer = SpanTracer(FakeClock(), capacity=2)
        tracer.instant("a", "test")
        tracer.instant("b", "test")
        tracer.instant("c", "test")
        tracer.begin("open", "test")
        tracer.clear()
        assert len(tracer) == 0
        assert tracer.dropped == 0
        assert tracer.open_depth() == 0
