"""System-level telemetry: registry wiring, diffs, and the off-path
differential — telemetry must never perturb the simulation.
"""

import pytest

from repro.allocator import TemporalSafetyMode
from repro.machine import CoreKind, System
from repro.obs.workload import run_alloc_phase, run_traced_workload


def build(telemetry):
    return System.build(
        core=CoreKind.IBEX,
        mode=TemporalSafetyMode.HARDWARE,
        telemetry=telemetry,
        quarantine_threshold=8192,
    )


class TestRegistryWiring:
    def test_stats_summary_shape_identical_on_and_off(self):
        on, off = build(True), build(False)
        s_on, s_off = on.stats_summary(), off.stats_summary()
        assert list(s_on) == list(s_off)
        for group in s_on:
            if isinstance(s_on[group], dict):
                assert list(s_on[group]) == list(s_off[group])

    def test_obs_metrics_only_in_full_snapshot(self):
        system = build(True)
        assert "obs.spans" not in system.stats_summary()
        snap = system.stats_snapshot()
        assert "obs.spans" in snap
        assert "obs.alloc_bytes" in snap

    def test_stats_diff_isolates_a_workload(self):
        system = build(True)
        before = system.stats_snapshot()
        cap = system.malloc(64)
        system.free(cap)
        diff = system.stats_diff(before)
        assert diff["switcher"]["calls"] == 2
        assert diff["heap"]["mallocs"] == 1
        assert diff["cycles"] > 0
        # A second diff from the new baseline starts at zero.
        assert system.stats_diff(system.stats_snapshot())["cycles"] == 0

    def test_reset_cycles_rebases_attribution(self):
        system = build(True)
        system.reset_cycles()
        run_alloc_phase(system, rounds=5)
        totals = system.obs.attributor.snapshot()
        assert sum(totals.values()) == system.core_model.cycles


class TestTelemetryOffDifferential:
    def test_workload_is_bit_identical_with_telemetry_off(self):
        """The tentpole's zero-cost claim, functionally: the same
        workload on telemetry-on and telemetry-off systems produces
        identical cycle counts and identical classic stats."""
        on = run_traced_workload(telemetry=True, rounds=10)
        off = run_traced_workload(telemetry=False, rounds=10)
        assert on["kernel_cycles"] == off["kernel_cycles"]
        sys_on, sys_off = on["system"], off["system"]
        assert sys_on.core_model.cycles == sys_off.core_model.cycles
        s_on, s_off = sys_on.stats_summary(), sys_off.stats_summary()
        # The execution-tier groups are host-side counters: telemetry
        # attaches retire hooks, which deoptimize the fused block/JIT
        # tiers, so translation/compilation activity differs by design.
        # Every *architectural* group must still match exactly — which
        # is the tier-transparency claim seen from the other side.
        host_side = {"block_cache", "trace_jit"}
        assert list(s_on) == list(s_off)
        for group in s_on:
            if group not in host_side:
                assert s_on[group] == s_off[group], group

    def test_off_system_has_no_obs_anywhere(self):
        system = build(False)
        assert system.obs is None
        for holder in (
            system.switcher,
            system.scheduler,
            system.allocator,
            system.software_revoker,
        ):
            assert holder.obs is None


class TestTracedWorkload:
    def test_produces_all_required_span_categories(self):
        result = run_traced_workload(rounds=10)
        system = result["system"]
        categories = {s.category for s in system.obs.tracer.events()}
        # The acceptance bar: compartment-switch, allocator and revoker
        # activity all present in one trace.
        assert {"switcher", "compartment", "alloc", "revoker"} <= categories

    def test_kernel_phase_attributes_to_app(self):
        result = run_traced_workload(rounds=5)
        totals = result["system"].obs.attributor.snapshot()
        assert totals["app"] >= result["kernel_cycles"]
        assert result["profiler"].total_cycles == result["kernel_cycles"]
