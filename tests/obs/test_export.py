"""Perfetto ``trace_event`` export schema tests."""

import json

from repro.obs import Span, export_trace, spans_to_trace_events, write_trace

SPANS = [
    Span("late", "test", begin=500, end=900, track="rtos"),
    Span("early", "test", begin=100, end=300, track="rtos", args={"n": 1}),
    Span("tick", "test", begin=200, track="revoker"),  # instant
]


class TestTraceEvents:
    def test_complete_and_instant_phases(self):
        events = spans_to_trace_events(SPANS)
        by_name = {e["name"]: e for e in events if e.get("ph") != "M"}
        assert by_name["early"]["ph"] == "X"
        assert by_name["early"]["dur"] == 2.0  # 200 cycles at 100 MHz
        assert by_name["early"]["args"] == {"n": 1}
        assert by_name["tick"]["ph"] == "i"
        assert by_name["tick"]["s"] == "t"
        assert "dur" not in by_name["tick"]

    def test_timestamps_scale_with_frequency_and_are_monotonic(self):
        events = spans_to_trace_events(SPANS, frequency_mhz=200.0)
        data = [e for e in events if e.get("ph") != "M"]
        assert [e["name"] for e in data] == ["early", "tick", "late"]
        ts = [e["ts"] for e in data]
        assert ts == sorted(ts)
        assert ts[0] == 0.5  # 100 cycles at 200 MHz

    def test_track_metadata_and_tids(self):
        events = spans_to_trace_events(SPANS)
        meta = [e for e in events if e.get("ph") == "M"]
        assert meta[0]["args"]["name"] == "cheriot-sim"
        threads = {e["tid"]: e["args"]["name"] for e in meta[1:]}
        data = [e for e in events if e.get("ph") != "M"]
        for event in data:
            assert threads[event["tid"]] in ("rtos", "revoker")
        # Same track, same tid.
        rtos_tids = {e["tid"] for e in data if threads[e["tid"]] == "rtos"}
        assert len(rtos_tids) == 1

    def test_document_shape(self):
        doc = export_trace(SPANS, metadata={"core": "ibex"})
        assert doc["displayTimeUnit"] == "ms"
        assert doc["otherData"] == {"core": "ibex"}
        assert len(doc["traceEvents"]) == len(SPANS) + 3  # + process, 2 tracks

    def test_write_trace_round_trips_as_json(self, tmp_path):
        path = tmp_path / "trace.json"
        count = write_trace(str(path), SPANS, metadata={"k": "v"})
        doc = json.loads(path.read_text())
        assert count == len(doc["traceEvents"]) == len(SPANS) + 3
        ts = [e["ts"] for e in doc["traceEvents"] if e.get("ph") != "M"]
        assert ts == sorted(ts)


class TestFleetTrace:
    """Merged multi-device export: per-device pid + tid namespaces."""

    DEVICES = [
        ("cheriot-sim/device-0", SPANS),
        ("cheriot-sim/device-1", SPANS),  # same tracks on purpose
    ]

    def test_same_track_on_two_devices_cannot_collide(self):
        from repro.obs import fleet_trace_events

        events = fleet_trace_events(self.DEVICES)
        meta = [e for e in events if e["ph"] == "M"]
        rows = {}
        for event in meta:
            if event["name"] == "thread_name":
                rows.setdefault(event["args"]["name"], set()).add(
                    (event["pid"], event["tid"])
                )
        # Both devices export "rtos"/"revoker"; every row is distinct.
        assert len(rows["rtos"]) == 2
        assert len(rows["revoker"]) == 2
        assert not (rows["rtos"] & rows["revoker"])

    def test_each_device_is_its_own_process(self):
        from repro.obs import fleet_trace_events

        events = fleet_trace_events(self.DEVICES)
        names = {
            e["pid"]: e["args"]["name"]
            for e in events
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert names == {
            1: "cheriot-sim/device-0", 2: "cheriot-sim/device-1",
        }
        data_pids = {e["pid"] for e in events if e["ph"] != "M"}
        assert data_pids == {1, 2}

    def test_merged_events_are_sorted_and_deterministic(self):
        from repro.obs import export_fleet_trace, fleet_trace_events

        events = fleet_trace_events(self.DEVICES)
        data = [e for e in events if e["ph"] != "M"]
        keys = [(e["ts"], e["pid"], e.get("tid", 0)) for e in data]
        assert keys == sorted(keys)
        doc = export_fleet_trace(self.DEVICES, metadata={"devices": 2})
        assert doc["otherData"] == {"devices": 2}
        assert fleet_trace_events(self.DEVICES) == events

    def test_write_fleet_trace_round_trips(self, tmp_path):
        from repro.obs import write_fleet_trace

        path = tmp_path / "fleet.json"
        count = write_fleet_trace(str(path), self.DEVICES)
        doc = json.loads(path.read_text())
        assert count == len(doc["traceEvents"])
        # 2 devices x (1 process_name + 2 thread_name + 3 spans).
        assert count == 2 * 6
