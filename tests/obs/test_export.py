"""Perfetto ``trace_event`` export schema tests."""

import json

from repro.obs import Span, export_trace, spans_to_trace_events, write_trace

SPANS = [
    Span("late", "test", begin=500, end=900, track="rtos"),
    Span("early", "test", begin=100, end=300, track="rtos", args={"n": 1}),
    Span("tick", "test", begin=200, track="revoker"),  # instant
]


class TestTraceEvents:
    def test_complete_and_instant_phases(self):
        events = spans_to_trace_events(SPANS)
        by_name = {e["name"]: e for e in events if e.get("ph") != "M"}
        assert by_name["early"]["ph"] == "X"
        assert by_name["early"]["dur"] == 2.0  # 200 cycles at 100 MHz
        assert by_name["early"]["args"] == {"n": 1}
        assert by_name["tick"]["ph"] == "i"
        assert by_name["tick"]["s"] == "t"
        assert "dur" not in by_name["tick"]

    def test_timestamps_scale_with_frequency_and_are_monotonic(self):
        events = spans_to_trace_events(SPANS, frequency_mhz=200.0)
        data = [e for e in events if e.get("ph") != "M"]
        assert [e["name"] for e in data] == ["early", "tick", "late"]
        ts = [e["ts"] for e in data]
        assert ts == sorted(ts)
        assert ts[0] == 0.5  # 100 cycles at 200 MHz

    def test_track_metadata_and_tids(self):
        events = spans_to_trace_events(SPANS)
        meta = [e for e in events if e.get("ph") == "M"]
        assert meta[0]["args"]["name"] == "cheriot-sim"
        threads = {e["tid"]: e["args"]["name"] for e in meta[1:]}
        data = [e for e in events if e.get("ph") != "M"]
        for event in data:
            assert threads[event["tid"]] in ("rtos", "revoker")
        # Same track, same tid.
        rtos_tids = {e["tid"] for e in data if threads[e["tid"]] == "rtos"}
        assert len(rtos_tids) == 1

    def test_document_shape(self):
        doc = export_trace(SPANS, metadata={"core": "ibex"})
        assert doc["displayTimeUnit"] == "ms"
        assert doc["otherData"] == {"core": "ibex"}
        assert len(doc["traceEvents"]) == len(SPANS) + 3  # + process, 2 tracks

    def test_write_trace_round_trips_as_json(self, tmp_path):
        path = tmp_path / "trace.json"
        count = write_trace(str(path), SPANS, metadata={"k": "v"})
        doc = json.loads(path.read_text())
        assert count == len(doc["traceEvents"]) == len(SPANS) + 3
        ts = [e["ts"] for e in doc["traceEvents"] if e.get("ph") != "M"]
        assert ts == sorted(ts)
