"""The fleet observability pipeline: blocks, wire format, rollup."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fleet import FleetPlan, run_shard
from repro.obs.pipeline import (
    LATENCY_SKETCH,
    FleetAggregator,
    PipelineError,
    device_telemetry,
    empty_telemetry,
    fleet_rollup,
    heartbeat_payload,
    merge_telemetry,
    parse_heartbeat,
    render_aggregate,
    shard_telemetry,
)

#: A small plan keeps the module fast; two shards of two devices.
PLAN = FleetPlan(devices=4, shard_size=2, injections_per_device=1, alloc_ops=4)


def _results(plan):
    return {spec.shard_id: run_shard(spec) for spec in plan.shards()}


def _block(counters=None, floors=None):
    block = empty_telemetry()
    block["counters"].update(counters or {})
    block["floors"].update(floors or {})
    return block


class TestBlocks:
    def test_device_telemetry_carries_the_sample(self):
        sample = _results(PLAN)[0]["devices"][0]
        block = device_telemetry(sample)
        assert block["counters"]["devices"] == 1
        assert block["counters"]["cycles"] == sample["cycles"]
        assert block["counters"]["faults.escaped"] == 0
        assert block["floors"]["calls_per_kcycle"] == (
            sample["throughput"]["calls_per_kcycle"]
        )
        assert block["sketches"][LATENCY_SKETCH]["count"] == (
            len(sample["latency_samples"])
        )

    def test_merge_adds_counters_and_takes_floor_minimum(self):
        merged = merge_telemetry(
            _block({"calls": 2}, {"calls_per_kcycle": 2.5}),
            _block({"calls": 3}, {"calls_per_kcycle": 1.5}),
        )
        assert merged["counters"]["calls"] == 5
        assert merged["floors"]["calls_per_kcycle"] == 1.5

    def test_empty_is_the_identity(self):
        block = device_telemetry(_results(PLAN)[0]["devices"][0])
        assert merge_telemetry(block, empty_telemetry()) == block
        assert merge_telemetry(empty_telemetry(), block) == block

    def test_unknown_block_keys_are_refused(self):
        bad = dict(empty_telemetry(), surprise=1)
        with pytest.raises(PipelineError):
            merge_telemetry(bad, empty_telemetry())

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=1, max_value=4))
    def test_shard_split_never_changes_the_fold(self, shard_size):
        """The same devices grouped into any shard size fold to the
        identical cumulative block."""
        plan = FleetPlan(
            devices=4, shard_size=shard_size,
            injections_per_device=1, alloc_ops=4,
        )
        folded = empty_telemetry()
        for spec in plan.shards():
            folded = merge_telemetry(folded, shard_telemetry(run_shard(spec)))
        reference = empty_telemetry()
        for spec in PLAN.shards():
            reference = merge_telemetry(
                reference, shard_telemetry(run_shard(spec))
            )
        assert folded == reference


class TestWireFormat:
    def test_heartbeat_round_trip(self):
        block = _block({"devices": 2})
        payload = parse_heartbeat(heartbeat_payload(3, 2, block))
        assert payload["shard"] == 3
        assert payload["devices_done"] == 2
        assert payload["telemetry"] == block

    def test_payload_bytes_are_canonical(self):
        text = heartbeat_payload(0, 1, _block({"a": 1}))
        assert text == json.dumps(json.loads(text), sort_keys=True)

    @pytest.mark.parametrize(
        "text",
        [
            "",  # torn write
            "not json",
            "42",
            json.dumps({"schema": 99, "shard": 0, "devices_done": 0,
                        "telemetry": {}}),
            json.dumps({"schema": 1, "shard": "x", "devices_done": 0,
                        "telemetry": {}}),
            json.dumps({"schema": 1, "shard": 0, "devices_done": 0}),
        ],
    )
    def test_garbage_heartbeats_yield_none(self, text):
        assert parse_heartbeat(text) is None


class TestAggregator:
    def test_keeps_the_freshest_cumulative_block(self):
        agg = FleetAggregator()
        assert agg.update(0, _block({"devices": 2}), 2)
        # A stale re-delivery must not regress the view.
        assert not agg.update(0, _block({"devices": 1}), 1)
        assert agg.update(1, _block({"devices": 1}), 1)
        assert agg.devices_done == 3
        assert agg.combined()["counters"]["devices"] == 3

    def test_summary_reads_the_latency_sketch(self):
        agg = FleetAggregator()
        shard_result = _results(PLAN)[0]
        agg.update(0, shard_telemetry(shard_result), 2)
        summary = agg.summary()
        assert summary["devices_done"] == 2
        assert summary["latency_p50"] > 0
        assert summary["escaped"] == 0

    def test_live_fold_equals_final_rollup(self):
        """Streaming the per-shard blocks and folding them reproduces
        exactly what the committed-result rollup computes."""
        results = _results(PLAN)
        agg = FleetAggregator()
        for shard_id, result in sorted(results.items()):
            payload = parse_heartbeat(
                heartbeat_payload(
                    shard_id, len(result["devices"]), shard_telemetry(result)
                )
            )
            assert agg.ingest(payload)
        rollup = fleet_rollup(PLAN, results, {})
        assert agg.combined()["counters"] == rollup["counters"]
        assert agg.combined()["sketches"][LATENCY_SKETCH] == rollup["sketch"]


class TestRollup:
    def test_rollup_is_split_invariant(self):
        """Sharding the same devices differently moves only the plan
        fingerprint — every aggregated number is byte-identical."""
        wide = FleetPlan(devices=4, shard_size=4,
                         injections_per_device=1, alloc_ops=4)
        a = fleet_rollup(PLAN, _results(PLAN), {})
        b = fleet_rollup(wide, _results(wide), {})
        assert a.pop("fingerprint") != b.pop("fingerprint")
        assert render_aggregate(a) == render_aggregate(b)

    def test_rollup_counts_degraded_devices(self):
        results = _results(PLAN)
        partial = {k: v for k, v in results.items() if k != 1}
        rollup = fleet_rollup(PLAN, partial, {1: {"attempts": 3}})
        assert rollup["devices"] == {"planned": 4, "reporting": 2, "degraded": 2}
        assert rollup["derived"]["degraded_fraction"] == 0.5
