"""The SLO engine: every rule both ways, and fail-closed semantics."""

import pytest

from repro.obs.sketch import QuantileSketch
from repro.obs.slo import (
    PolicyError,
    evaluate_slo,
    load_policy,
    policy_digest,
    render_slo,
)


def _aggregate(escaped=0, duty=0.85, floor=2.0, degraded=0.0,
               latencies=(450, 500, 550), net_latencies=(90_000, 110_000)):
    sketch = QuantileSketch()
    sketch.observe_many(latencies)
    net_sketch = QuantileSketch()
    net_sketch.observe_many(net_latencies)
    return {
        "counters": {"faults.escaped": escaped},
        "floors": {"calls_per_kcycle": floor},
        "sketch": sketch.to_dict(),
        "net_sketch": net_sketch.to_dict(),
        "derived": {
            "revocation_duty_cycle": duty,
            "degraded_fraction": degraded,
        },
    }


def _policy(*rules):
    return {"version": 1, "rules": list(rules)}


def _one(aggregate, rule):
    results = evaluate_slo(aggregate, _policy(rule))["results"]
    assert len(results) == 1
    return results[0]


class TestRules:
    def test_latency_quantile_both_ways(self):
        ok = _one(_aggregate(), {"rule": "latency-quantile", "q": 0.5,
                                 "max_cycles": 600})
        assert ok["ok"] and ok["observed"] <= 600
        bad = _one(_aggregate(), {"rule": "latency-quantile", "q": 0.99,
                                  "max_cycles": 100})
        assert not bad["ok"]

    def test_latency_quantile_validates_q(self):
        bad = _one(_aggregate(), {"rule": "latency-quantile", "q": 1.5,
                                  "max_cycles": 100})
        assert not bad["ok"] and "outside" in bad["detail"]

    def test_revocation_duty_cycle(self):
        assert _one(_aggregate(duty=0.8),
                    {"rule": "revocation-duty-cycle", "max": 0.9})["ok"]
        assert not _one(_aggregate(duty=0.95),
                        {"rule": "revocation-duty-cycle", "max": 0.9})["ok"]

    def test_fault_escapes_budget_is_exact(self):
        assert _one(_aggregate(escaped=0), {"rule": "fault-escapes", "max": 0})["ok"]
        assert not _one(_aggregate(escaped=1),
                        {"rule": "fault-escapes", "max": 0})["ok"]

    def test_throughput_floor(self):
        assert _one(_aggregate(floor=2.0),
                    {"rule": "throughput-floor", "min_calls_per_kcycle": 1.5})["ok"]
        assert not _one(_aggregate(floor=1.0),
                        {"rule": "throughput-floor", "min_calls_per_kcycle": 1.5})["ok"]

    def test_degraded_ceiling(self):
        assert _one(_aggregate(degraded=0.0),
                    {"rule": "degraded-ceiling", "max_fraction": 0.0})["ok"]
        assert not _one(_aggregate(degraded=0.25),
                        {"rule": "degraded-ceiling", "max_fraction": 0.0})["ok"]

    def test_missing_bound_fails_not_crashes(self):
        assert not _one(_aggregate(), {"rule": "fault-escapes"})["ok"]

    def test_net_packet_latency_quantile_both_ways(self):
        ok = _one(_aggregate(), {"rule": "net-packet-latency-quantile",
                                 "q": 0.99, "max_cycles": 200_000})
        assert ok["ok"] and ok["observed"] <= 200_000
        bad = _one(_aggregate(), {"rule": "net-packet-latency-quantile",
                                  "q": 0.99, "max_cycles": 10_000})
        assert not bad["ok"]

    def test_net_packet_latency_validates_params(self):
        bad = _one(_aggregate(), {"rule": "net-packet-latency-quantile",
                                  "q": 2.0, "max_cycles": 100})
        assert not bad["ok"] and "outside" in bad["detail"]
        bad = _one(_aggregate(), {"rule": "net-packet-latency-quantile",
                                  "q": 0.5})
        assert not bad["ok"]

    def test_net_packet_latency_fails_closed_without_sketch(self):
        aggregate = _aggregate()
        del aggregate["net_sketch"]
        bad = _one(aggregate, {"rule": "net-packet-latency-quantile",
                               "q": 0.99, "max_cycles": 200_000})
        assert not bad["ok"] and "no net sketch" in bad["detail"]

    def test_net_packet_latency_fails_closed_on_empty_sketch(self):
        bad = _one(_aggregate(net_latencies=()),
                   {"rule": "net-packet-latency-quantile",
                    "q": 0.99, "max_cycles": 200_000})
        assert not bad["ok"] and "empty" in bad["detail"]


class TestFailClosed:
    def test_unknown_rule_fails_closed(self):
        result = _one(_aggregate(), {"rule": "latency-quantile-typo", "q": 0.5})
        assert not result["ok"]
        assert "failing closed" in result["detail"]

    def test_one_bad_rule_fails_the_whole_policy(self):
        verdict = evaluate_slo(
            _aggregate(),
            _policy(
                {"rule": "fault-escapes", "max": 0},
                {"rule": "no-such-objective"},
            ),
        )
        assert not verdict["passed"]
        assert [r["ok"] for r in verdict["results"]] == [True, False]


class TestPolicyEnvelope:
    def test_version_and_rules_are_required(self):
        with pytest.raises(PolicyError):
            load_policy({"version": 2, "rules": [{"rule": "fault-escapes"}]})
        with pytest.raises(PolicyError):
            load_policy({"version": 1, "rules": []})
        with pytest.raises(PolicyError):
            load_policy({"version": 1, "rules": [{"no-rule-key": 1}]})

    def test_digest_pins_the_policy(self):
        a = _policy({"rule": "fault-escapes", "max": 0})
        b = _policy({"rule": "fault-escapes", "max": 1})
        assert policy_digest(a) != policy_digest(b)
        assert evaluate_slo(_aggregate(), a)["policy_digest"] == policy_digest(a)

    def test_render_is_canonical(self):
        verdict = evaluate_slo(_aggregate(), _policy({"rule": "fault-escapes",
                                                      "max": 0}))
        text = render_slo(verdict)
        assert text.endswith("\n")
        assert render_slo(verdict) == text
