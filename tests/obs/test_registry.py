"""Tests for the metrics registry: metrics, sources, snapshot/diff."""

from dataclasses import dataclass, field

import pytest

from repro.obs import Counter, Gauge, Histogram, MetricsRegistry


@dataclass
class FakeStats:
    hits: int = 0
    misses: int = 0
    ratio: float = 0.0
    name: str = "not-a-number"  # must not be harvested
    items: list = field(default_factory=list)  # must not be harvested


class TestMetrics:
    def test_counter_only_goes_up(self):
        c = Counter("c")
        c.inc()
        c.inc(4)
        assert c.collect() == 5
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_counter_labels_are_independent_children(self):
        c = Counter("c", labels=("kind",))
        c.labels(kind="a").inc(2)
        c.labels(kind="b").inc()
        c.labels(kind="a").inc()
        assert c.collect() == {"kind=a": 3, "kind=b": 1}

    def test_counter_label_mismatch_raises(self):
        c = Counter("c", labels=("kind",))
        with pytest.raises(ValueError):
            c.labels(wrong="x")

    def test_gauge_set_add_and_callback(self):
        g = Gauge("g")
        g.set(7)
        g.add(-2)
        assert g.collect() == 5
        backing = {"v": 3}
        live = Gauge("live", fn=lambda: backing["v"])
        assert live.collect() == 3
        backing["v"] = 9
        assert live.collect() == 9
        with pytest.raises(ValueError):
            live.set(1)

    def test_histogram_buckets_and_overflow(self):
        h = Histogram("h", buckets=(10, 100))
        for v in (1, 9, 10, 11, 100, 5000):
            h.observe(v)
        got = h.collect()
        assert got["count"] == 6
        assert got["sum"] == 1 + 9 + 10 + 11 + 100 + 5000
        assert got["buckets"] == {"le_10": 3, "le_100": 2, "overflow": 1}


class TestRegistry:
    def test_duplicate_name_rejected_unless_replace(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError):
            reg.counter("x")
        reg.counter("x", replace=True)  # no raise

    def test_source_harvests_numeric_fields_live(self):
        reg = MetricsRegistry()
        stats = FakeStats()
        reg.register_source("cache", stats)
        stats.hits = 3
        stats.ratio = 0.5
        snap = reg.snapshot()
        assert snap["cache"] == {"hits": 3, "misses": 0, "ratio": 0.5}
        stats.hits = 10  # registry holds a reference, not a copy
        assert reg.snapshot()["cache"]["hits"] == 10

    def test_scalar_callback(self):
        reg = MetricsRegistry()
        reg.register_scalar("epoch", lambda: 42)
        assert reg.snapshot()["epoch"] == 42

    def test_snapshot_groups_filter(self):
        reg = MetricsRegistry()
        reg.register_scalar("a", lambda: 1)
        reg.register_scalar("b", lambda: 2)
        snap = reg.snapshot(("b",))
        assert snap.as_dict() == {"b": 2}

    def test_snapshot_unknown_group_raises(self):
        reg = MetricsRegistry()
        with pytest.raises(KeyError):
            reg.snapshot(("nope",))


class TestSnapshotDiff:
    def _registry(self, stats):
        reg = MetricsRegistry()
        reg.register_source("cache", stats)
        reg.register_scalar("epoch", lambda: stats.hits)
        return reg

    def test_diff_is_recursive_numeric_delta(self):
        stats = FakeStats(hits=1, misses=2)
        reg = self._registry(stats)
        before = reg.snapshot()
        stats.hits += 5
        stats.misses += 1
        diff = reg.snapshot().diff(before)
        assert diff["cache"] == {"hits": 5, "misses": 1, "ratio": 0.0}
        assert diff["epoch"] == 5

    def test_diff_treats_missing_keys_as_zero(self):
        stats = FakeStats()
        reg = self._registry(stats)
        before = reg.snapshot()
        reg.register_scalar("new", lambda: 7)
        diff = reg.snapshot().diff(before)
        assert diff["new"] == 7

    def test_flat_dotted_paths(self):
        stats = FakeStats(hits=4)
        reg = self._registry(stats)
        flat = reg.snapshot().flat()
        assert flat["cache.hits"] == 4
        assert flat["epoch"] == 4
