"""Spans across compartment switches and fault unwinds.

The RTOS instrumentation rides the switcher's existing ``try/finally``
structure, so the invariant under test is: whatever happens inside a
call — success, contained fault, error-handler consultation — every
span ends, and the nesting recorded in the trace matches the trusted
stack's shape.
"""

import pytest

from repro.rtos import CompartmentFault, RecoveryAction


def spans_named(telemetry, prefix):
    return [s for s in telemetry.tracer.events() if s.name.startswith(prefix)]


class TestCompartmentSwitchSpans:
    def test_call_emits_nested_xcall_and_callee_spans(
        self, recoverable, switcher, thread, telemetry
    ):
        client, flaky = recoverable
        result = switcher.call(thread, client.get_import("flaky", "entry"), 3)
        assert result == 6
        (xcall,) = spans_named(telemetry, "xcall flaky.entry")
        (callee,) = spans_named(telemetry, "flaky.entry")
        assert xcall.category == "switcher"
        assert callee.category == "compartment"
        # The callee span nests strictly inside the cross-call span:
        # prologue charges before it begins, return-path charges after.
        assert xcall.begin <= callee.begin
        assert callee.end <= xcall.end
        assert callee.duration < xcall.duration
        assert telemetry.tracer.open_depth() == 0

    def test_every_span_closes_across_fault_unwind(
        self, recoverable, switcher, thread, telemetry
    ):
        client, flaky = recoverable
        flaky.state["fail_times"] = 1
        with pytest.raises(CompartmentFault):
            switcher.call(thread, client.get_import("flaky", "entry"), 3)
        assert telemetry.tracer.open_depth() == 0
        (xcall,) = spans_named(telemetry, "xcall flaky.entry")
        (callee,) = spans_named(telemetry, "flaky.entry")
        assert xcall.end is not None and callee.end is not None
        (unwind,) = spans_named(telemetry, "fault-unwind flaky")
        assert unwind.category == "fault"
        assert unwind.args["cause"] == "BoundsFault"

    def test_error_handler_span_inside_unwind(
        self, recoverable, switcher, thread, telemetry
    ):
        client, flaky = recoverable
        flaky.state["fail_times"] = 1
        flaky.set_error_handler(lambda info: RecoveryAction.RETRY)
        assert switcher.call(thread, client.get_import("flaky", "entry"), 3) == 6
        (handler,) = spans_named(telemetry, "error-handler flaky")
        assert handler.category == "fault"
        assert handler.end is not None
        # The retry re-enters the export: two xcall spans for one call().
        assert len(spans_named(telemetry, "xcall flaky.entry")) == 2

    def test_attributor_books_switch_overhead_separately(
        self, recoverable, switcher, thread, telemetry
    ):
        client, flaky = recoverable
        switcher.call(thread, client.get_import("flaky", "entry"), 3)
        totals = telemetry.attributor.snapshot()
        assert totals["switcher"] > 0
        assert totals["flaky"] > 0
        # Every cycle is attributed somewhere.
        assert sum(totals.values()) == telemetry.core_model.cycles

    def test_scheduler_emits_context_switch_instant(
        self, loader, scheduler, csr, telemetry
    ):
        t0 = loader.add_thread("t0", stack_size=1024, priority=1)
        t1 = loader.add_thread("t1", stack_size=1024, priority=1)
        scheduler.add_thread(t0)
        scheduler.add_thread(t1)
        scheduler.switch_to(t0)
        scheduler.switch_to(t1)
        switches = spans_named(telemetry, "context-switch")
        assert len(switches) == 2
        assert switches[-1].name == "context-switch -> t1"
        assert switches[-1].category == "sched"
        assert switches[-1].is_instant
