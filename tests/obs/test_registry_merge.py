"""Merge/delta semantics on registry metrics and snapshots.

The fleet-fold algebra's laws — commutative, associative, ``{}``/0 as
identity — are what make the merged aggregate independent of shard
split and worker count, so hypothesis pins them directly.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import Counter, Gauge, Histogram, MetricsSnapshot
from repro.obs.registry import delta_values, merge_values
from repro.obs.sketch import QuantileSketch

def _sketch_dict(values):
    sketch = QuantileSketch()
    sketch.observe_many(values)
    return sketch.to_dict()


KEYS = st.sampled_from(["calls", "cycles", "faults", "kernel", "alloc"])

#: A type schema: each key is an int counter, a sketch, or a nested
#: namespace.  Every shard reports the same metric types, so snapshots
#: under one schema are the mergeable population.
schema_strategy = st.recursive(
    st.sampled_from(["int", "sketch"]),
    lambda children: st.dictionaries(KEYS, children, min_size=1, max_size=3),
    max_leaves=8,
)


@st.composite
def conforming_snapshots(draw, n):
    """``n`` snapshots that agree on each key's type.  Keys may be
    absent from any one snapshot (a shard that never touched that
    metric) — merge handles one-sided keys — but a key never changes
    type across snapshots."""
    schema = draw(st.dictionaries(KEYS, schema_strategy, max_size=4))

    def fill(node):
        if node == "int":
            return draw(st.integers(min_value=0, max_value=10**6))
        if node == "sketch":
            return _sketch_dict(
                draw(st.lists(st.integers(min_value=0, max_value=4096),
                              max_size=8))
            )
        return {
            key: fill(child)
            for key, child in node.items()
            if draw(st.booleans())
        }

    return [fill(schema) for _ in range(n)]


def _canon(value) -> str:
    return json.dumps(value, sort_keys=True)


class TestMergeLaws:
    @settings(max_examples=50)
    @given(conforming_snapshots(2))
    def test_commutative(self, snaps):
        a, b = snaps
        assert _canon(merge_values(a, b)) == _canon(merge_values(b, a))

    @settings(max_examples=50)
    @given(conforming_snapshots(3))
    def test_associative(self, snaps):
        a, b, c = snaps
        left = merge_values(merge_values(a, b), c)
        right = merge_values(a, merge_values(b, c))
        assert _canon(left) == _canon(right)

    @settings(max_examples=50)
    @given(conforming_snapshots(1))
    def test_empty_is_identity(self, snaps):
        (a,) = snaps
        assert _canon(merge_values(a, {})) == _canon(a)
        assert _canon(merge_values({}, a)) == _canon(a)

    @settings(max_examples=50)
    @given(
        conforming_snapshots(6),
        st.integers(min_value=1, max_value=4),
    )
    def test_split_then_merge_round_trips_byte_identically(self, parts, shards):
        """Folding the same snapshots in any shard grouping produces the
        identical bytes — the `--jobs`-independence contract."""
        whole = {}
        for part in parts:
            whole = merge_values(whole, part)
        groups = [{} for _ in range(shards)]
        for i, part in enumerate(parts):
            groups[i % shards] = merge_values(groups[i % shards], part)
        refolded = {}
        for group in groups:
            refolded = merge_values(refolded, group)
        assert _canon(refolded) == _canon(whole)

    def test_sketch_only_merges_with_sketch(self):
        with pytest.raises(ValueError):
            merge_values({"x": _sketch_dict([1])}, {"x": 3})


class TestDeltas:
    def test_numeric_delta_recombines(self):
        before = {"calls": 3, "nested": {"cycles": 10}}
        now = {"calls": 5, "nested": {"cycles": 25}}
        delta = delta_values(now, before)
        assert delta == {"calls": 2, "nested": {"cycles": 15}}
        assert merge_values(before, delta) == now

    def test_sketch_delta_is_the_whole_sketch(self):
        now = _sketch_dict([1, 2, 900])
        assert delta_values(now, _sketch_dict([1])) == now


class TestMetricMerge:
    def test_counter_merge_adds_values_and_children(self):
        a = Counter("c", labels=("kind",))
        b = Counter("c", labels=("kind",))
        a.labels(kind="x").inc(2)
        b.labels(kind="x").inc(3)
        b.labels(kind="y").inc(7)
        a.merge(b)
        assert a.collect() == {"kind=x": 5, "kind=y": 7}

    def test_counter_merge_rejects_label_mismatch(self):
        with pytest.raises(ValueError):
            Counter("c", labels=("kind",)).merge(Counter("c"))

    def test_counter_to_delta(self):
        c = Counter("c")
        c.inc(9)
        assert c.to_delta(4) == 5

    def test_gauge_merge_is_additive(self):
        a, b = Gauge("g"), Gauge("g")
        a.set(10)
        b.set(-3)
        assert a.merge(b).collect() == 7

    def test_callback_gauge_refuses_merge(self):
        g = Gauge("g", fn=lambda: 1)
        with pytest.raises(ValueError):
            g.merge(Gauge("g"))

    def test_histogram_merge_needs_identical_bounds(self):
        a = Histogram("h", buckets=(8, 16))
        b = Histogram("h", buckets=(8, 16))
        a.observe(4)
        b.observe(12)
        b.observe(100)
        merged = a.merge(b).collect()
        assert merged["count"] == 3
        assert merged["sum"] == 116
        assert merged["buckets"] == {"le_8": 1, "le_16": 1, "overflow": 1}
        with pytest.raises(ValueError):
            a.merge(Histogram("h", buckets=(4,)))


class TestSnapshotMerge:
    def test_snapshot_merge_and_delta(self):
        a = MetricsSnapshot({"calls": 2, "lat": _sketch_dict([5])})
        b = MetricsSnapshot({"calls": 3, "lat": _sketch_dict([900])})
        merged = a.merge(b)
        assert merged["calls"] == 5
        assert merged["lat"]["count"] == 2
        assert a.to_delta(MetricsSnapshot({"calls": 1}))["calls"] == 1
