"""Fixtures: a minimal compartmentalised system with telemetry wired in."""

import pytest

from repro.capability import Permission, make_roots
from repro.isa import CSRFile
from repro.memory import SystemBus, TaggedMemory, default_memory_map
from repro.obs import Telemetry
from repro.pipeline import CoreKind, make_core_model
from repro.rtos import CompartmentSwitcher, Loader, Scheduler


@pytest.fixture
def mm():
    return default_memory_map()


@pytest.fixture
def bus(mm):
    bus = SystemBus()
    bus.attach_sram(TaggedMemory(mm.code.base, mm.sram_bytes))
    return bus


@pytest.fixture
def roots():
    return make_roots()


@pytest.fixture
def core():
    return make_core_model(CoreKind.IBEX)


@pytest.fixture
def csr():
    return CSRFile(hwm_enabled=True)


@pytest.fixture
def telemetry(core):
    return Telemetry(core)


@pytest.fixture
def switcher(bus, csr, roots, core, telemetry):
    switcher = CompartmentSwitcher(bus, csr, roots.sealing, core)
    switcher.obs = telemetry
    return switcher


@pytest.fixture
def loader(mm, roots, switcher):
    return Loader(mm, roots, switcher)


@pytest.fixture
def scheduler(csr, core, telemetry):
    scheduler = Scheduler(csr, core, timeslice_cycles=500)
    scheduler.obs = telemetry
    return scheduler


@pytest.fixture
def thread(loader, csr, scheduler):
    thread = loader.add_thread("t0", stack_size=1024, priority=1)
    scheduler.add_thread(thread)
    scheduler.switch_to(thread)
    return thread


@pytest.fixture
def recoverable(loader, roots):
    """"client" calling "flaky", whose export faults on demand."""
    client = loader.add_compartment("client")
    flaky = loader.add_compartment("flaky")
    flaky.state["fail_times"] = 0
    flaky.state["calls"] = 0

    def entry(ctx, value):
        ctx.use_stack(64)
        flaky.state["calls"] += 1
        if flaky.state["calls"] <= flaky.state["fail_times"]:
            bad = roots.memory.set_address(0x2004_8000).set_bounds(8)
            bad.check_access(bad.top + 8, 4, (Permission.LD,))
        return value * 2

    flaky.export("entry", entry)
    loader.link("client", "flaky", "entry")
    return client, flaky
