"""ISA-level end-to-end temporal safety: a use-after-free dies in

hardware.  The attacking program is real simulated machine code; the
allocator, revocation bits, load filter and revoker are the real
subsystems wired into one System.
"""

import pytest

from repro.allocator import TemporalSafetyMode
from repro.isa import ExecutionMode, Trap, TrapCause, assemble
from repro.machine import System
from repro.pipeline import CoreKind


@pytest.fixture
def system():
    return System.build(core=CoreKind.IBEX, mode=TemporalSafetyMode.HARDWARE)


def test_uaf_attack_dies_at_the_load(system):
    """The attacker stashes a heap pointer, the owner frees the object,

    revocation runs; when the attacker loads its stashed copy the load
    filter strips the tag and the dereference traps."""
    victim = system.malloc(64)
    stash = system.malloc(64)
    # Attacker stashes a copy of the victim pointer.
    system.bus.write_capability(stash.base, victim)
    # Owner frees; allocator paints + zeroes + quarantines; sweep runs.
    system.free(victim)
    system.allocator.revoke_now()

    attack = assemble(
        """
        clc a0, 0(s0)       # load the stashed (stale) pointer
        lw a1, 0(a0)        # and dereference it
        halt
        """
    )
    cpu = system.make_cpu(ExecutionMode.CHERIOT)
    from repro.capability import make_roots

    roots = make_roots()  # test-only: stand-in for the attacker's PCC
    cpu.load_program(attack, system.memory_map.code.base + 0x8000, pcc=roots.executable)
    cpu.regs.write(8, stash)
    with pytest.raises(Trap) as excinfo:
        cpu.run()
    # The load filter already stripped the tag, so the dereference is a
    # *tag* violation — deterministic, not probabilistic.
    assert excinfo.value.cause is TrapCause.CHERI_TAG
    assert not cpu.regs.read(10).tag
    assert cpu.load_filter is not None
    assert cpu.load_filter.stats.loads_checked >= 1


def test_live_pointer_still_works_through_the_same_path(system):
    """Control: the identical program on a live allocation succeeds."""
    obj = system.malloc(64)
    stash = system.malloc(64)
    system.bus.write_capability(stash.base, obj)
    system.bus.write_word(obj.base, 0xFEED, 4)

    program = assemble("clc a0, 0(s0)\nlw a1, 0(a0)\nhalt")
    cpu = system.make_cpu(ExecutionMode.CHERIOT)
    from repro.capability import make_roots

    cpu.load_program(
        program, system.memory_map.code.base + 0x8000, pcc=make_roots().executable
    )
    cpu.regs.write(8, stash)
    cpu.run()
    assert cpu.regs.read_int(11) == 0xFEED


def test_quarantined_memory_is_unreachable_even_before_sweep(system):
    """The stronger-than-prior-work guarantee (section 3.3): UAF is

    impossible as soon as free() returns, not merely after reuse."""
    victim = system.malloc(64)
    stash = system.malloc(64)
    system.bus.write_capability(stash.base, victim)
    system.free(victim)  # no revocation pass yet: memory quarantined

    program = assemble("clc a0, 0(s0)\nlw a1, 0(a0)\nhalt")
    cpu = system.make_cpu(ExecutionMode.CHERIOT)
    from repro.capability import make_roots

    cpu.load_program(
        program, system.memory_map.code.base + 0x8000, pcc=make_roots().executable
    )
    cpu.regs.write(8, stash)
    with pytest.raises(Trap) as excinfo:
        cpu.run()
    assert excinfo.value.cause is TrapCause.CHERI_TAG
