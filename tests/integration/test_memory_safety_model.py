"""The paper's eight-point compartmentalized memory-safety model.

Section 2.3 enumerates what compartment B must NOT be able to do to an
object owned by compartment A.  Each test here is one of those attacks,
executed through the real machinery (capabilities, switcher, allocator,
revoker) and required to fail deterministically.
"""

import pytest

from repro.allocator import TemporalSafetyMode
from repro.capability import Capability, Permission as P
from repro.capability.errors import (
    BoundsFault,
    OTypeFault,
    PermissionFault,
    SealedFault,
    TagFault,
)
from repro.machine import System
from repro.pipeline import CoreKind


@pytest.fixture
def system():
    return System.build(core=CoreKind.IBEX, mode=TemporalSafetyMode.HARDWARE)


class TestPoint1_NoAccessWithoutPointer:
    """B must not access A's object unless passed a pointer to it."""

    def test_knowing_the_address_is_not_enough(self, system):
        target = system.malloc(64)
        address = target.base
        # B starts from NULL and sets the address it "knows": the result
        # is untagged — addresses are not authority.
        forged = Capability.null(address)
        with pytest.raises(TagFault):
            forged.check_access(address, 4, (P.LD,))

    def test_cannot_rewiden_a_narrow_grant(self, system):
        target = system.malloc(64)
        narrow = target.set_bounds(8)
        from repro.capability.errors import MonotonicityFault

        with pytest.raises(MonotonicityFault):
            narrow.set_bounds(64)


class TestPoint2_NoOutOfBounds:
    """Given a valid pointer, B must not access outside the object."""

    def test_adjacent_heap_object_unreachable(self, system):
        a = system.malloc(64)
        b = system.malloc(64)
        # Walk off the end of a towards b:
        with pytest.raises(BoundsFault):
            a.check_access(a.top, 4, (P.LD,))
        # Even after pointer arithmetic, bounds (or the tag) stop it.
        walked = a.set_address(b.base)
        assert not walked.tag or not walked.in_bounds(b.base, 4)


class TestPoint3_NoUseAfterFree:
    """B must not access an object (or its memory) after it is freed."""

    def test_uaf_blocked_immediately_after_free(self, system):
        victim = system.malloc(64)
        system.free(victim)
        # Quarantine is architectural: the revocation bit is already
        # set, so the load filter kills any copy B tries to load.
        assert system.revocation_map.is_revoked(victim.base)
        loaded = system.load_filter.filter(victim)
        assert not loaded.tag

    def test_stale_copy_in_memory_dies_before_reuse(self, system):
        victim = system.malloc(64)
        stash = system.malloc(64)  # B's storage
        system.bus.write_capability(stash.base, victim)
        system.free(victim)
        system.allocator.revoke_now()
        assert not system.bus.read_capability(stash.base).tag

    def test_no_temporal_aliasing_after_reuse(self, system):
        victim = system.malloc(64)
        stash = system.malloc(64)
        system.bus.write_capability(stash.base, victim)
        system.free(victim)
        # Exhaust the heap so the allocator *must* reclaim quarantine
        # (forcing a revocation pass) before it can reuse the memory.
        big = system.memory_map.heap.size * 3 // 5
        blob = system.malloc(big)
        system.free(blob)
        blob = system.malloc(big)
        system.free(blob)
        assert system.allocator.stats.revocation_passes >= 1
        # The reuse happened only after the stale copy was destroyed.
        assert not system.bus.read_capability(stash.base).tag


class TestPoint4_NoStackPointerEscape:
    """B must not hold a pointer to A's on-stack object after the call."""

    def test_stack_reference_destroyed_on_return(self, system):
        thread = system.main_thread
        switcher = system.switcher
        evil = system.loader if False else None  # readability
        comp = system.app  # reuse the app compartment as the callee
        holder = {}

        def callee(ctx, stack_arg):
            # B stores the delegated stack pointer in the only place it
            # can: its own (chopped) stack.
            ctx.store_stack_cap(0, stack_arg)
            holder["slot"] = ctx._stack_slot(0)
            return True

        comp.export("callee", callee)
        system.switcher.compartment("alloc")  # ensure registry intact
        from repro.rtos.compartment import ImportToken
        from repro.capability.otypes import RTOS_DATA_OTYPES

        # Build the token the loader would have minted (the loader is
        # finalized, so mint via the still-held switcher authority).
        entry = switcher.register_export_entry("app", "callee", comp.globals_cap)
        sealed = comp.globals_cap.set_address(entry).seal(
            switcher.unseal_authority.set_address(
                RTOS_DATA_OTYPES["compartment-export"]
            )
        )
        token = ImportToken("app", "callee", sealed)

        # A's on-stack object: a local capability into A's frame.
        stack_obj = (
            thread.stack_cap.set_address(thread.sp - 64).set_bounds(32)
        )
        assert switcher.call(thread, token, stack_obj)
        # After return the switcher zeroed the callee's frame: the
        # stored capability is gone (tag cleared by the zeroing write).
        bank = system.bus.bank_for(holder["slot"], 8)
        assert not bank.tag_at(holder["slot"])


class TestPoint5_NoEphemeralCapture:
    """A temporarily delegated pointer must not outlive the call."""

    def test_local_argument_cannot_reach_globals(self, system):
        delegated = system.malloc(64).make_local()
        with pytest.raises(PermissionFault):
            system.app.store_global_cap("stolen", delegated)

    def test_local_argument_cannot_reach_heap(self, system):
        """Heap capabilities carry no SL either: the stack really is

        the only home for locals."""
        delegated = system.malloc(64).make_local()
        target = system.malloc(64)
        assert P.SL not in target.perms
        # A csc through `target` of the local value must fault; emulate
        # the architectural check directly:
        from repro.capability.errors import PermissionFault as PF

        if delegated.tag and delegated.is_local:
            with pytest.raises(PF):
                if P.SL not in target.perms:
                    raise PF("store of local capability requires SL")


class TestPoint6_ImmutableReference:
    """B must not modify an object passed via immutable reference."""

    def test_readonly_view_rejects_stores(self, system):
        obj = system.malloc(64)
        readonly = obj.readonly()
        with pytest.raises(PermissionFault):
            readonly.check_access(readonly.base, 4, (P.SD,))
        # And the view cannot be upgraded back.
        assert P.SD not in readonly.and_perms(obj.perms).perms


class TestPoint7_DeepImmutability:
    """B must not modify anything reachable from a deep-RO reference."""

    def test_loaded_pointers_lose_store_rights(self, system):
        from repro.capability import attenuate_loaded

        inner = system.malloc(32)
        outer = system.malloc(16)
        system.bus.write_capability(outer.base, inner)
        deep_ro = outer.readonly()  # clears SD, SL and LM
        loaded = attenuate_loaded(
            system.bus.read_capability(outer.base), deep_ro
        )
        assert loaded.tag
        assert P.SD not in loaded.perms
        assert P.LM not in loaded.perms  # and so on, transitively


class TestPoint8_OpaqueReferences:
    """B must not tamper with an object passed via opaque reference."""

    def test_sealed_reference_is_opaque(self, system):
        handle_key = system.sealing.mint_key("a-service-object")
        handle = system.sealing.seal(handle_key, {"state": 1})
        cap = handle.sealed_cap
        with pytest.raises(SealedFault):
            cap.check_access(cap.address, 4, (P.LD,))
        with pytest.raises((SealedFault, TagFault, Exception)):
            cap.set_bounds(8)

    def test_wrong_key_cannot_unseal(self, system):
        key = system.sealing.mint_key("a")
        other = system.sealing.mint_key("b")
        handle = system.sealing.seal(key, "secret")
        with pytest.raises(PermissionFault):
            system.sealing.unseal(other, handle)
