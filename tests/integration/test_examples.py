"""Every example script must run clean — they are the documentation."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parents[2] / "examples"


def run_example(name, *args, timeout=120):
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )


@pytest.mark.parametrize(
    "script,args",
    [
        ("quickstart.py", ()),
        ("memory_safety_tour.py", ()),
        ("compartment_firmware.py", ()),
        ("baremetal_assembly.py", ()),
        ("multithreaded_sensors.py", ()),
        ("image_audit.py", ()),
        ("iot_application.py", ("2",)),
    ],
)
def test_example_runs_clean(script, args):
    result = run_example(script, *args)
    assert result.returncode == 0, result.stderr


def test_memory_safety_tour_blocks_all_eight():
    result = run_example("memory_safety_tour.py")
    assert "8/8 attacks blocked" in result.stdout


def test_quickstart_shows_the_story():
    result = run_example("quickstart.py")
    assert "tag=False" in result.stdout
    assert "out-of-bounds read" in result.stdout


def test_baremetal_uaf_dies():
    result = run_example("baremetal_assembly.py")
    assert "cheri-tag-violation" in result.stdout
