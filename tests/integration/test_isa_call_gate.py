"""An ISA-level compartment call gate, in actual simulated assembly.

This is the architectural skeleton of the RTOS switcher (paper §2.6,
§5.2) built from raw instructions: the caller holds only a *sealed*
entry token; jumping through it atomically unseals and transfers
control (non-monotonic transfer of control, §2.5); the callee regains
its private data capability from a special register; the caller's
private state is a register the callee never receives in usable form.
"""

import pytest

from repro.capability import Permission as P, SentryType, make_roots
from repro.isa import CPU, ExecutionMode, Trap, assemble
from repro.memory import SystemBus, TaggedMemory

CODE_BASE = 0x2000_0000
CALLER_SECRET_AT = 0x2000_8000
CALLEE_PRIVATE_AT = 0x2000_9000

GATE_PROGRAM = """
# --- caller compartment ------------------------------------------------
caller:
    # s0 = caller's private data; t0 = sealed entry token (set up by
    # the loader / test harness).  The caller cannot unseal t0 — it can
    # only jump through it.
    li a0, 5
    jalr ra, t0                 # through the gate (auto-unseal)
    # back here with the result in a0; callee is gone.
    halt

# --- callee compartment -------------------------------------------------
callee_entry:
    # The callee's private data capability is parked in mtdc by the
    # loader; the entry stub retrieves it (this PCC has SR).
    cspecialrw s1, mtdc, c0
    lw t1, 0(s1)                # read callee-private state
    add a0, a0, t1              # result = arg + private
    sw a0, 4(s1)                # update private state
    jalr c0, ra                 # return through the link sentry
"""


@pytest.fixture
def machine():
    bus = SystemBus()
    bus.attach_sram(TaggedMemory(CODE_BASE, 0x1_0000))
    roots = make_roots()
    program = assemble(GATE_PROGRAM)
    cpu = CPU(bus, ExecutionMode.CHERIOT)
    cpu.load_program(program, CODE_BASE, pcc=roots.executable, entry="caller")

    # The "loader": build the callee's sealed entry token and park the
    # callee's private data capability in mtdc.
    entry_pc = CODE_BASE + 4 * program.entry("callee_entry")
    entry_cap = roots.executable.set_address(entry_pc)
    token = entry_cap.seal_sentry(SentryType.INHERIT)
    callee_private = roots.memory.set_address(CALLEE_PRIVATE_AT).set_bounds(64)
    bus.write_word(CALLEE_PRIVATE_AT, 37, 4)
    cpu.regs.write_scr("mtdc", callee_private)
    cpu.regs.write(5, token)  # t0

    # Caller private data the callee must not reach.
    caller_private = roots.memory.set_address(CALLER_SECRET_AT).set_bounds(64)
    bus.write_word(CALLER_SECRET_AT, 0x5EC, 4)
    cpu.regs.write(8, caller_private)  # s0
    return cpu, bus, roots, token


class TestCallGate:
    def test_gate_round_trip(self, machine):
        cpu, bus, _, _ = machine
        cpu.run()
        assert cpu.regs.read_int(10) == 5 + 37  # arg + callee private
        assert bus.read_word(CALLEE_PRIVATE_AT + 4, 4) == 42

    def test_token_is_opaque_to_the_caller(self, machine):
        """The caller cannot dereference or modify the sealed token —

        only jump through it."""
        cpu, _, _, token = machine
        with pytest.raises(Exception):
            token.check_access(token.address, 4, (P.LD,))
        assert not token.set_address(token.address + 4).tag

    def test_entry_point_is_the_only_way_in(self, machine):
        """Jumping into the middle of the callee is impossible without

        an unsealed code capability — which the caller never had."""
        cpu, bus, roots, token = machine
        # The caller's only executable authority is its PCC; the token
        # is sealed.  Forging a mid-function target from the token:
        forged = token.unseal_for_jump if False else None
        mid = token.inc_address(8)  # sealed + address move = untagged
        assert not mid.tag

    def test_callee_cannot_be_entered_without_the_token(self, machine):
        """A caller with a *data* capability to the entry address still

        cannot jump: jump targets need EX."""
        cpu, bus, roots, _ = machine
        data_alias = roots.memory.set_address(cpu.pc).set_bounds(4)
        cpu.regs.write(5, data_alias)  # replace the token
        with pytest.raises(Trap):
            cpu.run()
