"""Tests for the System facade: construction across every configuration."""

import pytest

from repro.allocator import TemporalSafetyMode as M
from repro.machine import System
from repro.pipeline import CoreKind


class TestBuildMatrix:
    @pytest.mark.parametrize("core", [CoreKind.FLUTE, CoreKind.IBEX])
    @pytest.mark.parametrize("mode", list(M))
    @pytest.mark.parametrize("hwm", [False, True])
    def test_every_configuration_boots_and_allocates(self, core, mode, hwm):
        system = System.build(core=core, mode=mode, hwm_enabled=hwm)
        cap = system.malloc(48)
        assert cap.tag and cap.length >= 48
        system.free(cap)
        assert system.core_model.cycles > 0

    def test_lazy_top_level_import(self):
        import repro

        assert repro.System is System
        assert repro.CoreKind is CoreKind


class TestWiring:
    @pytest.fixture
    def system(self):
        return System.build()

    def test_allocator_is_a_compartment_with_mmio_grants(self, system):
        alloc = system.switcher.compartment("alloc")
        bitmap = alloc.load_global_cap("revocation-bitmap")
        assert bitmap.base == system.memory_map.revocation_mmio.base
        # No other compartment holds the grant.
        with pytest.raises(KeyError):
            system.app.load_global_cap("revocation-bitmap")

    def test_revoker_reachable_through_mmio(self, system):
        from repro.revoker.hardware import REG_EPOCH

        base = system.memory_map.revoker_mmio.base
        assert system.bus.read_word(base + REG_EPOCH, 4) == system.epoch.value

    def test_revocation_bitmap_reachable_through_mmio(self, system):
        cap = system.malloc(64)
        system.free(cap)
        base = system.memory_map.revocation_mmio.base
        offset = (cap.base - system.memory_map.heap.base) // 8 // 8
        word = system.bus.read_word(base + (offset & ~3), 4)
        assert word != 0

    def test_malloc_goes_through_the_switcher(self, system):
        calls = system.switcher.stats.calls
        system.free(system.malloc(16))
        assert system.switcher.stats.calls == calls + 2

    def test_roots_erased_after_build(self, system):
        from repro.rtos.loader import LoaderError

        with pytest.raises(LoaderError):
            system.loader.add_compartment("latecomer")

    def test_reset_cycles(self, system):
        system.free(system.malloc(16))
        system.reset_cycles()
        assert system.core_model.cycles == 0

    def test_wait_policy_matches_core(self):
        """Ibex has the completion interrupt; Flute polls (7.2.2)."""
        ibex = System.build(core=CoreKind.IBEX)
        flute = System.build(core=CoreKind.FLUTE)
        big = ibex.memory_map.heap.size * 3 // 5
        for system in (ibex, flute):
            blob = system.malloc(big)
            system.free(blob)
            blob = system.malloc(big)  # blocks on a revocation pass
            system.free(blob)
        assert flute.allocator.stats.revocation_passes >= 1
        assert ibex.allocator.stats.revocation_passes >= 1


class TestIntrospection:
    def test_stats_summary_shape(self):
        system = System.build()
        system.free(system.malloc(32))
        summary = system.stats_summary()
        assert summary["heap"]["mallocs"] == 1
        assert summary["switcher"]["calls"] == 2
        assert summary["cycles"] > 0
        assert summary["live_allocations"] == 0

    def test_audit_accessible(self):
        system = System.build()
        report = system.audit()
        assert any(r.export == "malloc" for r in report.exports)


class TestMakeCpu:
    def test_cheriot_cpu_shares_bus_and_filter(self):
        from repro.isa import ExecutionMode

        system = System.build(load_filter_enabled=True)
        cpu = system.make_cpu(ExecutionMode.CHERIOT)
        assert cpu.bus is system.bus
        assert cpu.load_filter is system.load_filter
        assert cpu.timing is system.core_model

    def test_filterless_system_gives_filterless_cpu(self):
        from repro.isa import ExecutionMode

        system = System.build(load_filter_enabled=False)
        assert system.make_cpu(ExecutionMode.CHERIOT).load_filter is None

    def test_rv32e_cpu_with_pmp(self):
        from repro.isa import ExecutionMode, PMPEntry, PMPUnit

        system = System.build()
        pmp = PMPUnit()
        pmp.set_entry(0, PMPEntry(0x2000_0000, 0x1000, read=True))
        cpu = system.make_cpu(ExecutionMode.RV32E, pmp=pmp)
        assert cpu.pmp is pmp


class TestBackgroundPassVisibility:
    def test_reap_gated_on_wall_clock_completion(self):
        """A threshold-triggered background pass finishes functionally

        at kick, but its results only become reapable after its wall
        time has elapsed on the core clock."""
        from repro.allocator import TemporalSafetyMode

        system = System.build(mode=TemporalSafetyMode.HARDWARE,
                              quarantine_threshold=4096)
        # Cross the threshold: a background pass starts.
        caps = [system.malloc(1024) for _ in range(5)]
        for cap in caps:
            system.free(cap)
        assert system.allocator.stats.revocation_passes >= 1
        quarantined = system.allocator.quarantined_bytes
        assert quarantined > 0  # not yet reapable: the pass is "running"
        # Burn cycles past the pass deadline; the next allocator entry
        # collects the results.
        system.core_model.charge(10_000_000)
        system.free(system.malloc(16))
        assert system.allocator.quarantined_bytes < quarantined
