"""Negative control: the load filter is load-bearing.

With the filter disabled, a stale capability stashed in memory remains
loadable (and usable!) during the quarantine window — exactly the
weaker "use after reallocation only" model of prior MMU-based work the
paper improves on (section 3.3).  These tests pin down that the strong
guarantee really comes from the filter, not from some accident of the
allocator model.
"""

import pytest

from repro.allocator import TemporalSafetyMode
from repro.capability import make_roots
from repro.isa import ExecutionMode, Trap, TrapCause, assemble
from repro.machine import System
from repro.pipeline import CoreKind


def _stale_attack(system):
    """Stash a pointer, free it, reload and dereference via the ISA."""
    victim = system.malloc(64)
    stash = system.malloc(64)
    system.bus.write_capability(stash.base, victim)
    system.free(victim)  # quarantined; no sweep yet

    cpu = system.make_cpu(ExecutionMode.CHERIOT)
    cpu.load_program(
        assemble("clc a0, 0(s0)\nlw a1, 0(a0)\nhalt"),
        system.memory_map.code.base + 0x8000,
        pcc=make_roots().executable,
    )
    cpu.regs.write(8, stash)
    return cpu


class TestFilterIsLoadBearing:
    def test_with_filter_uaf_dies_during_quarantine(self):
        system = System.build(core=CoreKind.IBEX, load_filter_enabled=True)
        cpu = _stale_attack(system)
        with pytest.raises(Trap) as excinfo:
            cpu.run()
        assert excinfo.value.cause is TrapCause.CHERI_TAG

    def test_without_filter_quarantine_window_is_exploitable(self):
        """Disable the filter: the same attack *succeeds* until a sweep

        runs — the weaker model the paper refuses to settle for."""
        system = System.build(core=CoreKind.IBEX, load_filter_enabled=False)
        cpu = _stale_attack(system)
        cpu.run()  # no trap: the UAF read went through
        assert cpu.regs.read(10).tag  # the stale capability survived

    def test_without_filter_sweep_still_saves_reuse(self):
        """Even filterless, the sweep invalidates before reuse — the

        'use after reallocation' half of the guarantee holds."""
        system = System.build(core=CoreKind.IBEX, load_filter_enabled=False)
        victim = system.malloc(64)
        stash = system.malloc(64)
        system.bus.write_capability(stash.base, victim)
        system.free(victim)
        system.allocator.revoke_now()  # the sweep clears the memory tag
        cpu = system.make_cpu(ExecutionMode.CHERIOT)
        cpu.load_program(
            assemble("clc a0, 0(s0)\nlw a1, 0(a0)\nhalt"),
            system.memory_map.code.base + 0x8000,
            pcc=make_roots().executable,
        )
        cpu.regs.write(8, stash)
        with pytest.raises(Trap) as excinfo:
            cpu.run()
        assert excinfo.value.cause is TrapCause.CHERI_TAG
