"""Multi-hart revoker snooping (paper section 3.3.3, closing remark).

"In cases where microcontrollers use multiple cores for performance
isolation then the revoker would need to snoop on all memory traffic
from either core."  Our bus broadcasts every store to registered
snoopers regardless of which agent issued it, so the race fix holds
with a second hart sharing the memory system.
"""

import pytest

from repro.capability import Permission as P, make_roots
from repro.isa import CPU, ExecutionMode, assemble
from repro.memory import RevocationMap, SystemBus, TaggedMemory
from repro.revoker import BackgroundRevoker

SRAM_BASE = 0x2000_0000
HEAP_BASE = 0x2000_8000


@pytest.fixture
def shared_system():
    bus = SystemBus()
    bus.attach_sram(TaggedMemory(SRAM_BASE, 0x1_0000))
    rmap = RevocationMap(HEAP_BASE, 0x8000)
    roots = make_roots()
    revoker = BackgroundRevoker(bus, rmap)
    return bus, rmap, roots, revoker


def test_second_hart_store_is_snooped_mid_flight(shared_system):
    """Hart B overwrites a word the revoker holds in flight; the snoop

    must force a reload so B's live capability survives the sweep."""
    bus, rmap, roots, revoker = shared_system
    stale = roots.memory.set_address(HEAP_BASE).set_bounds(64)
    live = roots.memory.set_address(HEAP_BASE + 0x1000).set_bounds(64)
    target = SRAM_BASE + 0x40
    bus.write_capability(target, stale)
    rmap.paint(HEAP_BASE, 64)

    revoker.mmio_write(0x0, target)
    revoker.mmio_write(0x4, target + 0x20)
    revoker.kick()
    revoker.step()  # the word is now in flight

    # Hart B: an independent CPU sharing the same bus, running a store
    # to exactly that address.
    hart_b = CPU(bus, ExecutionMode.CHERIOT)
    hart_b.load_program(
        assemble("csc s1, 0(s0)\nhalt"), SRAM_BASE + 0x8000, pcc=roots.executable
    )
    hart_b.regs.write(
        8, roots.memory.set_address(target).set_bounds(16)
    )
    hart_b.regs.write(9, live)
    hart_b.run()

    revoker.run_to_completion(detailed=True)
    survivor = bus.read_capability(target)
    assert survivor.tag
    assert survivor.base == live.base
    assert revoker.stats.reloads >= 1


def test_two_harts_share_temporal_safety(shared_system):
    """Both harts' stashes are swept; both live pointers survive."""
    bus, rmap, roots, revoker = shared_system
    freed = roots.memory.set_address(HEAP_BASE + 0x100).set_bounds(32)
    kept = roots.memory.set_address(HEAP_BASE + 0x2000).set_bounds(32)

    # Hart A stashes the doomed pointer, hart B the live one.
    for hart, (cap, slot) in enumerate(
        [(freed, SRAM_BASE + 0x100), (kept, SRAM_BASE + 0x200)]
    ):
        cpu = CPU(bus, ExecutionMode.CHERIOT)
        cpu.load_program(
            assemble("csc s1, 0(s0)\nhalt"),
            SRAM_BASE + 0x8000 + hart * 0x100,
            pcc=roots.executable,
        )
        cpu.regs.write(8, roots.memory.set_address(slot).set_bounds(16))
        cpu.regs.write(9, cap)
        cpu.run()

    rmap.paint(HEAP_BASE + 0x100, 32)
    revoker.mmio_write(0x0, SRAM_BASE)
    revoker.mmio_write(0x4, SRAM_BASE + 0x1000)
    revoker.kick()
    revoker.run_to_completion()

    assert not bus.read_capability(SRAM_BASE + 0x100).tag
    assert bus.read_capability(SRAM_BASE + 0x200).tag
