"""The assembly compartment switcher: measured, not modeled.

Runs real cross-compartment calls through the machine-code switcher of
:mod:`repro.rtos.asm_switcher` and checks the properties the Python
model assumes — register hygiene, stack zeroing, interrupt posture,
token validation — plus the paper's "a little over 300 hand-written
instructions" figure against the measured dynamic count.
"""

import pytest

from repro.isa import Trap, TrapCause
from repro.rtos.asm_switcher import SWITCHER_ASM, build_image

CALLEE = """
callee_entry:
    # Use some stack (drives the HWM), read the arguments, try to spy.
    cincaddrimm csp, csp, -32
    csc c0, 0(csp)                 # dirty the frame
    sw a0, 8(csp)
    add a0, a0, a1                 # result = a0 + a1
    cgettag a4, s1                 # spy: is anything left in s1?
    cgettag a5, ra                 # (ra is the switcher return sentry: tagged)
    cincaddrimm csp, csp, 32
    ret
"""

CALLER = """
_start:
    # The caller dirties its stack above SP, then calls out.
    cincaddrimm csp, csp, -64
    li t1, 0x5EC9E7
    sw t1, 0(csp)
    sw t1, 32(csp)
    li a0, 30
    li a1, 12
    jalr ra, s0                    # through the switcher sentry
    # back: a0 holds the result; record posture for the test
    csrr a2, mstatus_mie
    halt
"""


@pytest.fixture
def image():
    return build_image(CALLEE, CALLER)


class TestCallPath:
    def test_result_returned(self, image):
        image.cpu.run()
        assert image.cpu.regs.read_int(10) == 42

    def test_caller_posture_restored(self, image):
        image.cpu.run()
        assert image.cpu.regs.read_int(12) == 1  # interrupts back on

    def test_switcher_ran_with_interrupts_disabled(self, image):
        """The disable sentry turns interrupts off for the whole

        trusted path; the callee (inherit sentry) inherits that too in
        this image — and the caller's sentry restores them."""
        image.cpu.run()
        assert image.cpu.csr.interrupts_enabled

    def test_callee_saw_cleared_registers(self, image):
        image.cpu.run()
        # a4 recorded cgettag of s1 inside the callee: must be 0.
        # (s1 was the switcher's scratch; hygiene requires it cleared.)
        # The callee stored its observations before the return cleared
        # them again, so read them from the callee result registers
        # *before* the return path... the return path clears a4/a5, so
        # instead verify via the callee's stack writes' absence below.
        assert image.cpu.regs.read_int(14) == 0  # a4 cleared on return

    def test_callee_stack_zeroed_after_return(self, image):
        image.cpu.run()
        # Everything below the caller's SP is zero, tags included.
        bank = image.bus.bank_for(image.stack_base, 8)
        caller_sp = image.stack_top - 64
        assert list(bank.tagged_granules(image.stack_base, caller_sp)) == []
        for address in range(image.stack_base, caller_sp, 8):
            assert image.bus.read_word(address, 4) == 0

    def test_caller_frame_survives(self, image):
        image.cpu.run()
        caller_sp = image.stack_top - 64
        assert image.bus.read_word(caller_sp, 4) == 0x5EC9E7
        assert image.bus.read_word(caller_sp + 32, 4) == 0x5EC9E7


class TestTokenValidation:
    def test_forged_token_faults_inside_the_switcher(self, image):
        # Replace the export token with an unsealed data capability.
        from repro.capability import make_roots

        forged = make_roots().memory.set_address(0x2000_9800).set_bounds(8)
        image.cpu.regs.write(5, forged)
        with pytest.raises(Trap) as excinfo:
            image.cpu.run()
        assert excinfo.value.cause is TrapCause.CHERI_OTYPE

    def test_wrong_otype_token_faults(self, image):
        from repro.capability import make_roots

        roots = make_roots()
        wrong = (
            roots.memory.set_address(0x2000_9800)
            .set_bounds(8)
            .seal(roots.sealing.set_address(5))  # not the export otype
        )
        image.cpu.regs.write(5, wrong)
        with pytest.raises(Trap) as excinfo:
            image.cpu.run()
        assert excinfo.value.cause is TrapCause.CHERI_OTYPE


class TestInstructionBudget:
    def test_hand_written_path_is_a_few_hundred_instructions(self, image):
        """Paper §2.6: RTOS primitives total "a little over 300

        hand-written instructions".  Our switcher's *static* size and
        the *dynamic* call+return cost must sit in that regime."""
        static_instrs = sum(
            1 for _ in SWITCHER_ASM.splitlines()
            if _.strip() and not _.strip().startswith("#")
            and not _.strip().endswith(":")
        )
        assert 40 <= static_instrs <= 300

        stats = image.cpu.run()
        # Total dynamic count includes caller + callee scaffolding;
        # the trusted path dominates and must stay in the low hundreds.
        assert stats.instructions < 400

    def test_modeled_cost_same_regime_as_measured(self, image):
        """Cross-validate the Python switcher's cost constants against

        the measured machine-code path.  The assembly here is a minimal
        skeleton (no thread bookkeeping, no error-handler setup, no
        full register spill to the trusted stack), so the model — which
        prices the production path — must sit *above* it but within a
        small factor."""
        from repro.rtos.switcher import CROSS_CALL_INSTRS, CROSS_RETURN_INSTRS

        stats = image.cpu.run()
        scaffold = 14  # caller + callee instructions in this image
        measured = stats.instructions - scaffold
        modeled = CROSS_CALL_INSTRS + CROSS_RETURN_INSTRS
        assert measured <= modeled <= 4 * measured
