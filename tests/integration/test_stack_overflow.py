"""Stack overflow: bounded stack capabilities make it a clean trap.

On CHERIoT the stack pointer is a capability bounded to the thread's
(chopped) stack, so runaway recursion faults deterministically at the
first out-of-bounds frame store — no guard pages, no MMU, no silent
corruption of whatever lies below the stack.  On rv32e the same
program marches straight into adjacent memory.
"""

import pytest

from repro.capability import Permission as P, make_roots
from repro.cc import ir
from repro.cc.lower import Target, compile_module
from repro.isa import CPU, ExecutionMode, Trap, TrapCause, assemble
from repro.memory import SystemBus, TaggedMemory

CODE_BASE = 0x2000_0000
DATA_BASE = 0x2001_0000
STACK_BASE = 0x2001_8000
STACK_SIZE = 0x800  # deliberately small
CANARY_AT = STACK_BASE - 128  # an "adjacent concern" below the stack
CANARY_LEN = 128

V, C, B = ir.Var, ir.Const, ir.BinOp


def recursion_module():
    """f(n) = n ? f(n-1)+1 : 0 with a fat local array per frame."""
    module = ir.Module()
    fn = ir.Function(
        "f",
        params=[ir.Param("n", ir.INT)],
        locals={"r": ir.INT},
        arrays={"frame_pad": 64},
    )
    fn.body = [
        # Touch the pad so every frame really writes to the stack.
        ir.Store(ir.LocalArrayRef("frame_pad"), V("n")),
        ir.If(
            B("==", V("n"), C(0)),
            (ir.Return(C(0)),),
        ),
        ir.Assign("r", ir.CallExpr("f", (B("-", V("n"), C(1)),))),
        ir.Return(B("+", V("r"), C(1))),
    ]
    module.add_function(fn)
    return module


def run(target, depth):
    module = recursion_module()
    compiled = compile_module(module, target, data_base=DATA_BASE)
    program = assemble(
        compiled.assembly + f"_start:\nli a0, {depth}\njal ra, f\nhalt\n"
    )
    bus = SystemBus()
    bus.attach_sram(TaggedMemory(CODE_BASE, 0x2_0000))
    bus.write_bytes(CANARY_AT, b"\xCC" * CANARY_LEN)
    cheriot = target is Target.CHERIOT
    cpu = CPU(bus, ExecutionMode.CHERIOT if cheriot else ExecutionMode.RV32E)
    if cheriot:
        roots = make_roots()
        cpu.load_program(program, CODE_BASE, pcc=roots.executable, entry="_start")
        stack = (
            roots.memory.set_address(STACK_BASE)
            .set_bounds(STACK_SIZE)
            .set_address(STACK_BASE + STACK_SIZE - 16)
            .clear_perms(P.GL)
        )
        cpu.regs.write(2, stack)
        cpu.regs.write(3, roots.memory.set_address(DATA_BASE).set_bounds(0x1000))
    else:
        cpu.load_program(program, CODE_BASE, entry="_start")
        cpu.regs.write_int(2, STACK_BASE + STACK_SIZE - 16)
        cpu.regs.write_int(3, DATA_BASE)
    cpu.run(max_steps=2_000_000)
    return cpu, bus


class TestStackOverflow:
    def test_shallow_recursion_fine_on_both(self):
        for target in (Target.RV32E, Target.CHERIOT):
            cpu, _ = run(target, depth=5)
            assert cpu.regs.read_int(10) == 5

    def test_cheriot_overflow_is_a_clean_bounds_trap(self):
        with pytest.raises(Trap) as excinfo:
            run(Target.CHERIOT, depth=200)
        assert excinfo.value.cause in (
            TrapCause.CHERI_BOUNDS,
            TrapCause.CHERI_TAG,  # csp untagged once below base
        )

    def test_rv32e_overflow_tramples_adjacent_memory(self):
        """The vulnerability class: rv32e recursion walks through the

        canary below the stack without any fault at the point of
        damage."""
        module = recursion_module()
        compiled = compile_module(module, Target.RV32E, data_base=DATA_BASE)
        program = assemble(
            compiled.assembly + "_start:\nli a0, 200\njal ra, f\nhalt\n"
        )
        bus = SystemBus()
        bus.attach_sram(TaggedMemory(CODE_BASE, 0x2_0000))
        bus.write_bytes(CANARY_AT, b"\xCC" * CANARY_LEN)
        cpu = CPU(bus, ExecutionMode.RV32E)
        cpu.load_program(program, CODE_BASE, entry="_start")
        cpu.regs.write_int(2, STACK_BASE + STACK_SIZE - 16)
        cpu.regs.write_int(3, DATA_BASE)
        try:
            cpu.run(max_steps=2_000_000)
        except Trap:
            pass  # it may crash later — after the damage is done
        assert bus.read_bytes(CANARY_AT, CANARY_LEN) != b"\xCC" * CANARY_LEN
