"""Tests for blocked-wait accounting over hardware revocation passes."""

import pytest

from repro.rtos.waiting import POLL_STOLEN_BEATS, make_hardware_wait_policy


class TestInterruptDrivenWait:
    def test_charges_wall_plus_reschedules(self, scheduler):
        policy = make_hardware_wait_policy(scheduler, completion_interrupt=True)
        wall = 10_000
        charged = policy(wall)
        assert charged > wall
        ticks = wall // scheduler.timeslice_cycles
        assert charged <= wall + (ticks + 3) * scheduler.context_switch_cost()

    def test_zero_wait_free(self, scheduler):
        policy = make_hardware_wait_policy(scheduler, completion_interrupt=True)
        assert policy(0) == 0


class TestPollingWait:
    def test_polling_slows_the_sweep_itself(self, scheduler):
        """Flute has no completion interrupt: the wake-and-poll memory

        traffic takes precedence over the revoker and stretches the
        sweep (section 7.2.2)."""
        interrupt = make_hardware_wait_policy(scheduler, completion_interrupt=True)
        polling = make_hardware_wait_policy(scheduler, completion_interrupt=False)
        wall = 50_000
        assert polling(wall) > interrupt(wall)

    def test_poll_interference_scales_with_duration(self, scheduler):
        policy = make_hardware_wait_policy(scheduler, completion_interrupt=False)
        short = policy(10_000)
        long = policy(100_000)
        assert long > 9 * short  # superlinear-ish due to stolen beats

    def test_stats_recorded(self, scheduler):
        policy = make_hardware_wait_policy(scheduler, completion_interrupt=False)
        policy(10_000)
        assert policy.stats.waits == 1
        assert policy.stats.polls > 0
        assert policy.stats.wall_cycles >= 10_000
