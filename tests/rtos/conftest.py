"""Shared fixtures: a minimal two-compartment system with a thread."""

import pytest

from repro.capability import make_roots
from repro.isa import CSRFile
from repro.memory import SystemBus, TaggedMemory, default_memory_map
from repro.pipeline import CoreKind, make_core_model
from repro.rtos import CompartmentSwitcher, Loader, Scheduler


@pytest.fixture
def mm():
    return default_memory_map()


@pytest.fixture
def bus(mm):
    bus = SystemBus()
    bus.attach_sram(TaggedMemory(mm.code.base, mm.sram_bytes))
    return bus


@pytest.fixture
def roots():
    return make_roots()


@pytest.fixture
def core():
    return make_core_model(CoreKind.IBEX)


@pytest.fixture
def csr():
    return CSRFile(hwm_enabled=True)


@pytest.fixture
def switcher(bus, csr, roots, core):
    return CompartmentSwitcher(bus, csr, roots.sealing, core)


@pytest.fixture
def loader(mm, roots, switcher):
    return Loader(mm, roots, switcher)


@pytest.fixture
def scheduler(csr, core):
    return Scheduler(csr, core, timeslice_cycles=500)


@pytest.fixture
def two_compartments(loader):
    """Compartments "client" and "service" with one linked export."""
    client = loader.add_compartment("client")
    service = loader.add_compartment("service")

    def ping(ctx, value):
        ctx.use_stack(64)
        return value + 1

    service.export("ping", ping)
    loader.link("client", "service", "ping")
    return client, service


@pytest.fixture
def thread(loader, csr, scheduler):
    thread = loader.add_thread("t0", stack_size=1024, priority=1)
    scheduler.add_thread(thread)
    scheduler.switch_to(thread)
    return thread
