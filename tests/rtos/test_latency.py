"""Tests for the interrupt-latency monitor and the real-time bound."""

import pytest

from repro.allocator import TemporalSafetyMode
from repro.machine import System
from repro.pipeline import CoreKind
from repro.rtos import InterruptLatencyMonitor
from repro.rtos.compartment import InterruptPosture


def monitored_system(**kw):
    system = System.build(core=CoreKind.IBEX, **kw)
    monitor = InterruptLatencyMonitor(system.csr, system.core_model)
    return system, monitor


class TestMonitor:
    def test_observes_switcher_critical_sections(self):
        system, monitor = monitored_system(finalize=False)
        comp = system.loader.add_compartment("crit")
        comp.export("entry", lambda ctx: ctx.use_stack(64),
                    posture=InterruptPosture.DISABLED)
        system.loader.finalize()
        token = comp.get_import if False else None
        from repro.rtos.compartment import ImportToken
        # Call through the switcher (mint a token the loader way is
        # finalized; reuse app's machinery via direct export call path).
        system.switcher.call(
            system.main_thread,
            _mint(system, "crit", "entry"),
        )
        assert len(monitor.windows) == 1
        assert monitor.worst_case > 0

    def test_observes_software_sweep_batches(self):
        system, monitor = monitored_system(mode=TemporalSafetyMode.SOFTWARE)
        system.allocator.revoke_now()
        batches = (
            system.memory_map.heap.size
            // (system.software_revoker.batch_granules * 8)
        )
        assert len(monitor.windows) == batches

    def test_reset(self):
        system, monitor = monitored_system(mode=TemporalSafetyMode.SOFTWARE)
        system.allocator.revoke_now()
        monitor.reset()
        assert monitor.worst_case == 0


class TestRealTimeBound:
    def test_window_bounded_by_batch_not_heap(self):
        """The §2.1 claim: the interrupts-off window is a constant of

        the image (the batch), not of how much work the sweep does."""
        worst = {}
        for heap_multiplier in (1, 4):
            from repro.memory import default_memory_map

            mm = default_memory_map(heap_size=0x1_0000 * heap_multiplier)
            system = System.build(
                core=CoreKind.IBEX,
                mode=TemporalSafetyMode.SOFTWARE,
                memory_map=mm,
            )
            monitor = InterruptLatencyMonitor(system.csr, system.core_model)
            system.allocator.revoke_now()
            worst[heap_multiplier] = monitor.worst_case
        assert worst[1] == worst[4]  # 4x the heap, same worst window

    def test_window_scales_with_batch_size(self):
        worst = {}
        for batch in (32, 128):
            system, monitor = monitored_system(mode=TemporalSafetyMode.SOFTWARE)
            system.software_revoker.batch_granules = batch
            system.allocator.revoke_now()
            worst[batch] = monitor.worst_case
        assert worst[128] == pytest.approx(4 * worst[32], rel=0.05)


def _mint(system, compartment, export):
    """Mint an import token the way the loader would (tests only)."""
    from repro.capability.otypes import RTOS_DATA_OTYPES
    from repro.rtos.compartment import ImportToken

    comp = system.switcher.compartment(compartment)
    entry = system.switcher.register_export_entry(
        compartment, export, comp.globals_cap
    )
    sealed = comp.globals_cap.set_address(entry).seal(
        system.switcher.unseal_authority.set_address(
            RTOS_DATA_OTYPES["compartment-export"]
        )
    )
    return ImportToken(compartment, export, sealed)
