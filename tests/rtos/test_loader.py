"""Tests for the RTOS loader: carving, linking, root discipline."""

import pytest

from repro.capability import Permission as P
from repro.capability.otypes import RTOS_DATA_OTYPES
from repro.rtos.loader import Loader, LoaderError


class TestCompartmentCarving:
    def test_compartments_get_disjoint_regions(self, loader):
        a = loader.add_compartment("a")
        b = loader.add_compartment("b")
        assert a.globals_region.top <= b.globals_region.base
        assert a.code_cap.top <= b.code_cap.base

    def test_code_cap_is_executable_not_writable(self, loader):
        comp = loader.add_compartment("c")
        assert comp.code_cap.has(P.EX, P.LD)
        assert P.SD not in comp.code_cap.perms

    def test_globals_cap_has_no_sl(self, loader):
        comp = loader.add_compartment("c")
        assert P.SL not in comp.globals_cap.perms
        assert comp.globals_cap.has(P.LD, P.SD, P.MC)

    def test_duplicate_name_rejected(self, loader):
        loader.add_compartment("dup")
        with pytest.raises(LoaderError):
            loader.add_compartment("dup")

    def test_region_exhaustion(self, loader, mm):
        with pytest.raises(LoaderError):
            loader.add_compartment("huge", globals_size=mm.globals_.size + 16)


class TestThreads:
    def test_stack_cap_is_local_with_sl(self, loader):
        thread = loader.add_thread("t", stack_size=1024)
        assert thread.stack_cap.is_local
        assert P.SL in thread.stack_cap.perms
        assert thread.sp == thread.stack_region.top

    def test_stacks_disjoint(self, loader):
        t1 = loader.add_thread("t1")
        t2 = loader.add_thread("t2")
        assert t1.stack_region.top <= t2.stack_region.base

    def test_tids_unique(self, loader):
        assert loader.add_thread("x").tid != loader.add_thread("y").tid


class TestLinking:
    def test_link_produces_sealed_token(self, loader):
        a = loader.add_compartment("a")
        b = loader.add_compartment("b")
        b.export("fn", lambda ctx: None)
        token = loader.link("a", "b", "fn")
        assert token.sealed_cap.is_sealed
        assert token.sealed_cap.otype == RTOS_DATA_OTYPES["compartment-export"]
        assert a.get_import("b", "fn") is token

    def test_link_requires_existing_export(self, loader):
        loader.add_compartment("a")
        loader.add_compartment("b")
        with pytest.raises(KeyError):
            loader.link("a", "b", "missing")

    def test_link_unknown_compartment(self, loader):
        loader.add_compartment("a")
        with pytest.raises(LoaderError):
            loader.link("a", "ghost", "fn")


class TestMMIOGrants:
    def test_grant_stores_capability_in_compartment(self, loader, mm):
        comp = loader.add_compartment("alloc")
        cap = loader.grant_mmio("alloc", mm.revocation_mmio, "bitmap")
        assert comp.load_global_cap("bitmap") == cap
        assert cap.base == mm.revocation_mmio.base
        assert cap.top == mm.revocation_mmio.top

    def test_other_compartments_have_no_grant(self, loader, mm):
        loader.add_compartment("alloc")
        other = loader.add_compartment("other")
        loader.grant_mmio("alloc", mm.revocation_mmio, "bitmap")
        with pytest.raises(KeyError):
            other.load_global_cap("bitmap")


class TestRootDiscipline:
    def test_finalize_erases_roots(self, loader):
        loader.add_compartment("a")
        loader.finalize()
        with pytest.raises(LoaderError):
            loader.add_compartment("b")
        with pytest.raises(LoaderError):
            loader.add_thread("t")
