"""Tests for the virtualised sealing service (paper footnote 5)."""

import pytest

from repro.capability import make_roots
from repro.capability.errors import OTypeFault, PermissionFault, TagFault
from repro.rtos.sealing_service import SealKey, SealedHandle, SealingService


@pytest.fixture
def service():
    roots = make_roots()
    table = roots.memory.set_address(0x2004_0000).set_bounds(4096)
    return SealingService(roots.sealing, table)


class TestSealUnseal:
    def test_roundtrip(self, service):
        key = service.mint_key("connection")
        handle = service.seal(key, {"socket": 7})
        assert service.unseal(key, handle) == {"socket": 7}

    def test_many_virtual_types(self, service):
        """The whole point: unboundedly many types over one otype."""
        keys = [service.mint_key(f"type{i}") for i in range(100)]
        handles = [service.seal(k, i) for i, k in enumerate(keys)]
        for i, (k, h) in enumerate(zip(keys, handles)):
            assert service.unseal(k, h) == i

    def test_wrong_key_faults(self, service):
        key_a = service.mint_key("a")
        key_b = service.mint_key("b")
        handle = service.seal(key_a, "secret")
        with pytest.raises(PermissionFault):
            service.unseal(key_b, handle)

    def test_forged_key_faults(self, service):
        handle = service.seal(service.mint_key("a"), 1)
        with pytest.raises(PermissionFault):
            service.unseal(SealKey("a", 999), handle)

    def test_tampered_handle_faults(self, service):
        key = service.mint_key("a")
        handle = service.seal(key, 1)
        bad = SealedHandle(handle.sealed_cap.untagged(), handle.index)
        with pytest.raises(TagFault):
            service.unseal(key, bad)

    def test_handle_is_opaque_sealed_cap(self, service):
        handle = service.seal(service.mint_key("a"), 1)
        assert handle.sealed_cap.is_sealed

    def test_release_destroys(self, service):
        key = service.mint_key("a")
        handle = service.seal(key, 1)
        service.release(key, handle)
        with pytest.raises(OTypeFault):
            service.unseal(key, handle)
