"""Tests for the thread executive."""

import pytest

from repro.rtos.executive import Executive, Watchdog
from repro.rtos.thread import ThreadState


@pytest.fixture
def executive(scheduler, core):
    return Executive(scheduler, core)


def make_thread(loader, scheduler, name, priority=1, stack_size=512):
    return loader.add_thread(name, stack_size=stack_size, priority=priority)


class TestBasics:
    def test_single_thread_runs_to_completion(self, executive, loader, scheduler, core):
        log = []

        def body():
            log.append("a")
            core.charge(10)
            yield
            log.append("b")

        thread = make_thread(loader, scheduler, "t")
        executive.spawn(thread, body())
        stats = executive.run()
        assert log == ["a", "b"]
        assert thread.state is ThreadState.FINISHED
        assert stats.threads_finished == 1

    def test_interleaving_by_priority(self, executive, loader, scheduler, core):
        order = []

        def worker(name, chunks):
            def body():
                for i in range(chunks):
                    order.append(name)
                    core.charge(scheduler.timeslice_cycles + 1)
                    yield
            return body()

        high = make_thread(loader, scheduler, "high", priority=5)
        low = make_thread(loader, scheduler, "low", priority=1)
        executive.spawn(low, worker("low", 2))
        executive.spawn(high, worker("high", 2))
        executive.run()
        # High priority runs all its chunks before low gets any.
        assert order == ["high", "high", "low", "low"]

    def test_round_robin_within_priority(self, executive, loader, scheduler, core):
        order = []

        def worker(name):
            def body():
                for _ in range(3):
                    order.append(name)
                    core.charge(scheduler.timeslice_cycles + 1)
                    yield
            return body()

        a = make_thread(loader, scheduler, "a", priority=2)
        b = make_thread(loader, scheduler, "b", priority=2)
        executive.spawn(a, worker("a"))
        executive.spawn(b, worker("b"))
        executive.run()
        assert order[:4] in (["a", "b", "a", "b"], ["b", "a", "b", "a"])


class TestBlocking:
    def test_sleep_orders_by_deadline(self, executive, loader, scheduler, core):
        order = []

        def sleeper(name, delay):
            def body():
                yield ("sleep", delay)
                order.append(name)
            return body()

        late = make_thread(loader, scheduler, "late", priority=1)
        soon = make_thread(loader, scheduler, "soon", priority=1)
        executive.spawn(late, sleeper("late", 5000))
        executive.spawn(soon, sleeper("soon", 100))
        executive.run()
        assert order == ["soon", "late"]

    def test_block_on_predicate(self, executive, loader, scheduler, core):
        box = {"ready": False}
        order = []

        def producer():
            core.charge(50)
            yield
            box["ready"] = True
            order.append("produced")

        def consumer():
            yield ("block", lambda: box["ready"])
            order.append("consumed")

        consumer_thread = make_thread(loader, scheduler, "consumer", priority=5)
        producer_thread = make_thread(loader, scheduler, "producer", priority=1)
        executive.spawn(consumer_thread, consumer())
        executive.spawn(producer_thread, producer())
        executive.run()
        assert order == ["produced", "consumed"]

    def test_deadlock_detected(self, executive, loader, scheduler, core):
        def stuck():
            yield ("block", lambda: False)

        thread = make_thread(loader, scheduler, "stuck")
        executive.spawn(thread, stuck())
        with pytest.raises(RuntimeError, match="deadlock"):
            executive.run()

    def test_context_switch_costs_charged(self, executive, loader, scheduler, core):
        def body():
            yield ("sleep", 10)

        a = make_thread(loader, scheduler, "a")
        b = make_thread(loader, scheduler, "b")
        executive.spawn(a, body())
        executive.spawn(b, body())
        before = core.cycles
        executive.run()
        assert core.cycles - before >= 2 * scheduler.context_switch_cost()

    def test_duplicate_spawn_rejected(self, executive, loader, scheduler):
        thread = make_thread(loader, scheduler, "once")
        executive.spawn(thread, iter(()))
        with pytest.raises(ValueError):
            executive.spawn(thread, iter(()))


class TestDiagnostics:
    def test_deadlock_message_names_every_stuck_thread(
        self, executive, loader, scheduler, core
    ):
        def stuck():
            yield ("block", lambda: False)

        alpha = make_thread(loader, scheduler, "alpha")
        beta = make_thread(loader, scheduler, "beta")
        executive.spawn(alpha, stuck())
        executive.spawn(beta, stuck())
        with pytest.raises(RuntimeError) as excinfo:
            executive.run()
        message = str(excinfo.value)
        assert "deadlock" in message
        assert f"'alpha' (tid {alpha.tid}) blocked on predicate" in message
        assert f"'beta' (tid {beta.tid}) blocked on predicate" in message
        assert f"cycle {core.cycles}" in message

    def test_step_budget_message_reports_wait_kinds(
        self, executive, loader, scheduler, core
    ):
        def spin():
            while True:
                core.charge(scheduler.timeslice_cycles + 1)
                yield

        def long_sleep():
            yield ("sleep", 10**9)

        spinner = make_thread(loader, scheduler, "spinner")
        sleeper = make_thread(loader, scheduler, "sleeper")
        executive.spawn(spinner, spin())
        executive.spawn(sleeper, long_sleep())
        with pytest.raises(RuntimeError) as excinfo:
            executive.run(max_steps=10)
        message = str(excinfo.value)
        assert "exceeded 10 steps" in message
        assert "'spinner'" in message
        assert "'sleeper'" in message
        assert "sleeping until cycle" in message


class TestWatchdog:
    def test_config_validated(self):
        with pytest.raises(ValueError):
            Watchdog(action="reboot")
        with pytest.raises(ValueError):
            Watchdog(action="restart")  # needs restart_factory

    def test_cycle_budget_kills_runaway_thread(self, loader, scheduler, core):
        executive = Executive(
            scheduler, core, watchdog=Watchdog(thread_cycle_budget=100)
        )
        done = []

        def hog():
            while True:
                core.charge(60)
                yield

        def polite():
            core.charge(10)
            yield
            done.append("polite")

        runaway = make_thread(loader, scheduler, "hog", priority=5)
        good = make_thread(loader, scheduler, "good", priority=1)
        executive.spawn(runaway, hog())
        executive.spawn(good, polite())
        stats = executive.run()
        assert runaway.state is ThreadState.FINISHED
        assert done == ["polite"]  # the rest of the system kept running
        assert stats.watchdog_kills == 1
        (event,) = [e for e in stats.watchdog_events if e[0] == "hog"]
        assert event[1].startswith("kill: exceeded cycle budget")

    def test_restart_gives_the_thread_a_fresh_body(self, loader, scheduler, core):
        def hog():
            while True:
                core.charge(60)
                yield

        def reformed(thread):
            core.charge(10)
            yield

        executive = Executive(
            scheduler,
            core,
            watchdog=Watchdog(
                thread_cycle_budget=100,
                action="restart",
                restart_factory=lambda thread: reformed(thread),
            ),
        )
        thread = make_thread(loader, scheduler, "flaky")
        executive.spawn(thread, hog())
        stats = executive.run()
        assert stats.watchdog_restarts == 1
        assert stats.watchdog_kills == 0
        assert thread.state is ThreadState.FINISHED  # ran to completion

    def test_crash_looping_restart_is_killed_after_max_restarts(
        self, loader, scheduler, core
    ):
        def hog(thread=None):
            while True:
                core.charge(60)
                yield

        executive = Executive(
            scheduler,
            core,
            watchdog=Watchdog(
                thread_cycle_budget=100,
                action="restart",
                restart_factory=hog,
                max_restarts=2,
            ),
        )
        thread = make_thread(loader, scheduler, "crashloop")
        executive.spawn(thread, hog())
        stats = executive.run()
        assert stats.watchdog_restarts == 2
        assert stats.watchdog_kills == 1
        assert thread.state is ThreadState.FINISHED

    def test_break_deadlocks_expires_the_wait_set(self, loader, scheduler, core):
        executive = Executive(
            scheduler, core, watchdog=Watchdog(break_deadlocks=True)
        )

        def stuck():
            yield ("block", lambda: False)

        a = make_thread(loader, scheduler, "a")
        b = make_thread(loader, scheduler, "b")
        executive.spawn(a, stuck())
        executive.spawn(b, stuck())
        stats = executive.run()  # returns instead of raising
        assert stats.deadlocks_broken == 1
        assert stats.watchdog_kills == 2
        assert {e[1] for e in stats.watchdog_events} == {
            "kill: deadlocked predicate wait"
        }
