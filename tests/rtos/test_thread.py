"""Tests for the Thread record and its stack invariants."""

import pytest

from repro.capability import Capability, Permission as P
from repro.memory.layout import Region
from repro.rtos.thread import Thread, ThreadState

STACK = Region("t.stack", 0x2005_0000, 1024)


def make_stack_cap(perms):
    return Capability.from_bounds(STACK.base, STACK.size, perms)


GOOD = {P.LD, P.SD, P.MC, P.SL, P.LM, P.LG}


class TestThread:
    def test_sp_defaults_to_top(self):
        thread = Thread(1, "t", STACK, make_stack_cap(GOOD))
        assert thread.sp == STACK.top
        assert thread.stack_used == 0
        assert thread.stack_free == STACK.size

    def test_stack_cap_must_carry_sl(self):
        with pytest.raises(ValueError):
            Thread(1, "t", STACK, make_stack_cap(GOOD - {P.SL}))

    def test_stack_cap_must_be_local(self):
        with pytest.raises(ValueError):
            Thread(1, "t", STACK, make_stack_cap(GOOD | {P.GL}))

    def test_usage_accounting(self):
        thread = Thread(1, "t", STACK, make_stack_cap(GOOD))
        thread.sp = STACK.top - 256
        assert thread.stack_used == 256
        assert thread.stack_free == STACK.size - 256

    def test_initial_state(self):
        thread = Thread(1, "t", STACK, make_stack_cap(GOOD))
        assert thread.state is ThreadState.READY
        assert thread.hwm_state is None
