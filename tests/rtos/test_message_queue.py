"""Tests for inter-compartment message queues."""

import pytest

from repro.capability import Capability, Permission as P, make_roots
from repro.capability.errors import PermissionFault
from repro.rtos.message_queue import MessageQueue, QueueEmpty, QueueFull

RW = {P.GL, P.LD, P.SD, P.MC, P.LM, P.LG}


@pytest.fixture
def queue():
    return MessageQueue(capacity=4, name="test")


class TestRing:
    def test_fifo_order(self, queue):
        for value in (1, 2, 3):
            queue.send(value)
        assert [queue.receive() for _ in range(3)] == [1, 2, 3]

    def test_full(self, queue):
        for value in range(4):
            queue.send(value)
        assert queue.full
        with pytest.raises(QueueFull):
            queue.send(99)
        assert not queue.try_send(99)

    def test_empty(self, queue):
        with pytest.raises(QueueEmpty):
            queue.receive()
        assert queue.try_receive() is None

    def test_stats(self, queue):
        queue.send(1)
        queue.send(2)
        queue.receive()
        assert queue.stats.sends == 2
        assert queue.stats.receives == 1
        assert queue.stats.high_watermark == 2

    def test_bad_capacity(self):
        with pytest.raises(ValueError):
            MessageQueue(0)


class TestCapabilityFlow:
    def test_global_capability_flows(self, queue):
        cap = Capability.from_bounds(0x2000_0000, 64, RW)
        queue.send(cap)
        assert queue.receive() == cap

    def test_local_capability_rejected(self, queue):
        """The SL rule: queue storage is not stack, so locals can't

        pass through — no laundering of ephemeral delegations."""
        local = Capability.from_bounds(0x2000_0000, 64, RW).make_local()
        with pytest.raises(PermissionFault):
            queue.send(local)
        assert queue.stats.rejected_locals == 1
        assert queue.empty  # nothing was enqueued

    def test_local_inside_tuple_rejected(self, queue):
        local = Capability.from_bounds(0x2000_0000, 64, RW).make_local()
        with pytest.raises(PermissionFault):
            queue.send(("wrapped", local))

    def test_untagged_local_bits_pass(self, queue):
        junk = Capability.from_bounds(0x2000_0000, 64, RW).make_local().untagged()
        queue.send(junk)  # just bits; no authority moves
