"""Tests for compartment error handlers and recovery (section 5.2).

A contained fault unwinds the crashed frame first; only then does the
faulting compartment's error handler get to choose how the fault
surfaces: unwind to the caller, retry the entry, or restart the
compartment with its globals reset to the loaded image.
"""

import pytest

from repro.capability import Permission
from repro.capability.errors import SealedFault, TagFault
from repro.rtos import (
    CompartmentFault,
    FaultInfo,
    RecoveryAction,
)
from repro.rtos.compartment import ImportToken
from repro.rtos.switcher import FAULT_UNWIND_INSTRS, MAX_FAULT_RETRIES


@pytest.fixture
def recoverable(loader, roots):
    """"client" calling "flaky", whose export faults on demand.

    ``flaky.state`` controls the behaviour: ``fail_times`` is how many
    calls should fault before succeeding; ``calls`` counts attempts.
    """
    client = loader.add_compartment("client")
    flaky = loader.add_compartment("flaky")
    flaky.state["fail_times"] = 0
    flaky.state["calls"] = 0

    def entry(ctx, value):
        ctx.use_stack(64)
        flaky.state["calls"] += 1
        if flaky.state["calls"] <= flaky.state["fail_times"]:
            bad = roots.memory.set_address(0x2004_8000).set_bounds(8)
            bad.check_access(bad.top + 8, 4, (Permission.LD,))
        return value * 2

    flaky.export("entry", entry)
    loader.link("client", "flaky", "entry")
    return client, flaky


class TestDefaultUnwind:
    def test_no_handler_means_unwind(self, recoverable, switcher, thread):
        client, flaky = recoverable
        flaky.state["fail_times"] = 1
        with pytest.raises(CompartmentFault):
            switcher.call(thread, client.get_import("flaky", "entry"), 3)
        assert switcher.stats.error_handlers_invoked == 0
        assert switcher.call_depth == 0

    def test_handler_sees_fault_info_not_the_frame(
        self, recoverable, switcher, thread
    ):
        client, flaky = recoverable
        flaky.state["fail_times"] = 1
        seen = []

        def handler(info):
            seen.append(info)
            return RecoveryAction.UNWIND

        flaky.set_error_handler(handler)
        with pytest.raises(CompartmentFault):
            switcher.call(thread, client.get_import("flaky", "entry"), 3)
        (info,) = seen
        assert isinstance(info, FaultInfo)
        assert info.compartment == "flaky"
        assert info.export == "entry"
        assert info.cause_type == "BoundsFault"
        assert info.depth == 1  # contained at the first trusted-stack frame
        assert info.retries == 0
        assert switcher.stats.error_handlers_invoked == 1


class TestRetry:
    def test_retry_reenters_and_succeeds(self, recoverable, switcher, thread):
        client, flaky = recoverable
        flaky.state["fail_times"] = 1
        flaky.set_error_handler(lambda info: RecoveryAction.RETRY)
        result = switcher.call(thread, client.get_import("flaky", "entry"), 21)
        assert result == 42
        assert flaky.state["calls"] == 2
        assert switcher.stats.faults_retried == 1
        assert switcher.call_depth == 0

    def test_retry_is_bounded(self, recoverable, switcher, thread):
        """A handler stuck on RETRY must not wedge the caller forever."""
        client, flaky = recoverable
        flaky.state["fail_times"] = 10_000
        retries_seen = []

        def handler(info):
            retries_seen.append(info.retries)
            return RecoveryAction.RETRY

        flaky.set_error_handler(handler)
        with pytest.raises(CompartmentFault):
            switcher.call(thread, client.get_import("flaky", "entry"), 1)
        assert switcher.stats.faults_retried == MAX_FAULT_RETRIES
        assert flaky.state["calls"] == 1 + MAX_FAULT_RETRIES
        assert retries_seen == list(range(MAX_FAULT_RETRIES + 1))


class TestRestart:
    def test_restart_resets_globals_to_loaded_image(
        self, recoverable, switcher, thread, loader
    ):
        client, flaky = recoverable
        loader.finalize()  # snapshots the globals the RESTART path restores
        flaky.state["fail_times"] = 1
        flaky.set_error_handler(lambda info: RecoveryAction.RESTART)
        with pytest.raises(CompartmentFault):
            switcher.call(thread, client.get_import("flaky", "entry"), 3)
        assert flaky.restarts == 1
        assert switcher.stats.compartments_restarted == 1
        # The mutated counters reverted to their finalize-time values.
        assert flaky.state["calls"] == 0
        assert flaky.state["fail_times"] == 0

    def test_end_to_end_fault_restart_then_clean_call(
        self, recoverable, switcher, thread, loader
    ):
        """The ISSUE's acceptance scenario: an injected fault triggers

        the registered handler, the compartment restarts, and the very
        next cross-compartment call succeeds against clean state."""
        client, flaky = recoverable
        loader.finalize()  # the clean image: fail_times=0
        # Post-boot corruption: the compartment's state now makes every
        # call fault, until a restart reloads the clean image.
        flaky.state["fail_times"] = 10_000
        flaky.set_error_handler(lambda info: RecoveryAction.RESTART)
        with pytest.raises(CompartmentFault):
            switcher.call(thread, client.get_import("flaky", "entry"), 3)
        assert flaky.restarts == 1
        assert switcher.call(thread, client.get_import("flaky", "entry"), 21) == 42
        assert switcher.call_depth == 0


class TestHandlerMisbehaviour:
    def test_faulting_handler_forces_unwind(
        self, recoverable, switcher, thread, roots
    ):
        client, flaky = recoverable
        flaky.state["fail_times"] = 1

        def bad_handler(info):
            raise TagFault("handler dereferenced a dead pointer")

        flaky.set_error_handler(bad_handler)
        with pytest.raises(CompartmentFault):
            switcher.call(thread, client.get_import("flaky", "entry"), 3)
        assert switcher.stats.error_handler_faults == 1
        assert switcher.stats.faults_retried == 0
        assert switcher.call_depth == 0

    def test_non_action_return_forces_unwind(self, recoverable, switcher, thread):
        client, flaky = recoverable
        flaky.state["fail_times"] = 1
        flaky.set_error_handler(lambda info: "retry")  # not a RecoveryAction
        with pytest.raises(CompartmentFault):
            switcher.call(thread, client.get_import("flaky", "entry"), 3)
        assert switcher.stats.faults_retried == 0


class TestUnwindCost:
    def test_fault_unwind_charges_the_error_path(
        self, recoverable, switcher, thread, core
    ):
        """A contained fault costs the return path *plus* the hand-written

        error path (trap triage, trusted-stack walk, register clearing)."""
        client, flaky = recoverable
        token = client.get_import("flaky", "entry")
        before = core.cycles
        switcher.call(thread, token, 1)
        ok_cost = core.cycles - before

        flaky.state["fail_times"] = 10_000  # every call faults now
        before = core.cycles
        with pytest.raises(CompartmentFault):
            switcher.call(thread, token, 1)
        fault_cost = core.cycles - before
        assert fault_cost >= ok_cost + FAULT_UNWIND_INSTRS


class TestTokenRelabelling:
    def test_valid_sealed_cap_under_wrong_names_is_rejected(
        self, recoverable, switcher, thread, loader, roots
    ):
        """A replayed sealed capability cannot be relabelled: the sealed

        address names the export-table entry, and the token's names must
        agree with it (section 2.6)."""
        client, flaky = recoverable
        other = loader.add_compartment("other")
        other.export("secret", lambda ctx: "the goods")
        loader.link("client", "other", "secret")
        genuine = client.get_import("flaky", "entry")
        forged = ImportToken("other", "secret", genuine.sealed_cap)
        with pytest.raises(SealedFault):
            switcher.call(thread, forged)
        assert switcher.stats.forged_tokens_rejected == 1
        assert switcher.stats.calls == 0


class TestNestedFaults:
    def test_three_deep_fault_unwinds_only_the_faulting_frame(
        self, loader, switcher, thread, roots
    ):
        """A -> B -> C where C faults: C's frame unwinds, B catches the

        CompartmentFault at its own depth and finishes normally, A never
        sees the fault (satellite: nested cross-compartment faults)."""
        a = loader.add_compartment("a")
        b = loader.add_compartment("b")
        c = loader.add_compartment("c")
        depths = {}

        def entry_a(ctx):
            ctx.use_stack(32)
            depths["a"] = switcher.call_depth
            return "A saw " + ctx.call("b", "middle")

        def middle(ctx):
            ctx.use_stack(32)
            depths["b_before"] = switcher.call_depth
            try:
                ctx.call("c", "crash")
            except CompartmentFault as fault:
                depths["b_after"] = switcher.call_depth
                return f"B caught {fault.cause_type} from {fault.compartment}"
            return "C did not fault?"

        def crash(ctx):
            ctx.use_stack(32)
            depths["c"] = switcher.call_depth
            bad = roots.memory.set_address(0x2004_9000).set_bounds(8)
            bad.check_access(bad.top + 4, 4, (Permission.LD,))

        a.export("entry", entry_a)
        b.export("middle", middle)
        c.export("crash", crash)
        loader.link("a", "a", "entry")
        loader.link("a", "b", "middle")
        loader.link("b", "c", "crash")

        result = switcher.call(thread, a.get_import("a", "entry"))
        assert result == "A saw B caught BoundsFault from c"
        assert depths == {"a": 1, "b_before": 2, "c": 3, "b_after": 2}
        assert switcher.call_depth == 0
        assert switcher.stats.faults_contained == 1
