"""Tests for the trusted compartment switcher (sections 2.6, 5.2)."""

import pytest

from repro.capability import Capability, Permission as P
from repro.capability.errors import PermissionFault, SealedFault, TagFault
from repro.rtos.compartment import ImportToken, InterruptPosture
from repro.rtos.switcher import CROSS_CALL_INSTRS


class TestBasicCalls:
    def test_call_returns_value(self, two_compartments, switcher, thread, loader):
        client, _ = two_compartments
        token = client.get_import("service", "ping")
        assert switcher.call(thread, token, 41) == 42

    def test_nested_calls(self, loader, switcher, thread):
        a = loader.add_compartment("a")
        b = loader.add_compartment("b")

        def outer(ctx, value):
            ctx.use_stack(64)
            return ctx.call("b", "double", value) + 1

        def double(ctx, value):
            ctx.use_stack(64)
            return value * 2

        a.export("outer", outer)
        b.export("double", double)
        loader.link("a", "b", "double")
        loader.link("a", "a", "outer")
        token = a.get_import("a", "outer")
        assert switcher.call(thread, token, 10) == 21
        assert switcher.call_depth == 0

    def test_sp_restored_after_call(self, two_compartments, switcher, thread):
        client, _ = two_compartments
        sp_before = thread.sp
        switcher.call(thread, client.get_import("service", "ping"), 1)
        assert thread.sp == sp_before

    def test_cycles_charged(self, two_compartments, switcher, thread, core):
        client, _ = two_compartments
        before = core.cycles
        switcher.call(thread, client.get_import("service", "ping"), 1)
        assert core.cycles - before >= CROSS_CALL_INSTRS


class TestTokenValidation:
    def test_forged_unsealed_token_rejected(self, two_compartments, switcher, thread, roots):
        forged = ImportToken(
            "service", "ping",
            roots.memory.set_address(0x2004_0000).set_bounds(16),
        )
        with pytest.raises(SealedFault):
            switcher.call(thread, forged, 1)

    def test_untagged_token_rejected(self, two_compartments, switcher, thread):
        client, _ = two_compartments
        good = client.get_import("service", "ping")
        forged = ImportToken(
            good.compartment_name, good.export_name, good.sealed_cap.untagged()
        )
        with pytest.raises(TagFault):
            switcher.call(thread, forged, 1)

    def test_wrong_otype_token_rejected(self, two_compartments, switcher, thread, roots):
        seal = roots.sealing.set_address(3)  # allocator-token, not export
        cap = roots.memory.set_address(0x2004_0000).set_bounds(16).seal(seal)
        forged = ImportToken("service", "ping", cap)
        with pytest.raises(SealedFault):
            switcher.call(thread, forged, 1)


class TestStackChopping:
    def test_callee_stack_is_bounded_below_sp(self, loader, switcher, thread):
        comp = loader.add_compartment("probe")
        seen = {}

        def probe(ctx):
            seen["stack"] = ctx.stack_cap
            return None

        comp.export("probe", probe)
        loader.link("probe", "probe", "probe")
        switcher.call(thread, comp.get_import("probe", "probe"))
        stack_cap = seen["stack"]
        assert stack_cap.base == thread.stack_region.base
        assert stack_cap.top <= thread.sp
        assert P.SL in stack_cap.perms
        assert stack_cap.is_local

    def test_callee_cannot_see_caller_frames(self, loader, switcher, thread, bus):
        """The chop: callee's stack capability tops out at the caller's

        SP, so the caller's frames are simply not addressable."""
        comp = loader.add_compartment("probe")
        caller_frame = thread.sp + 8  # inside the caller's used region

        def probe(ctx):
            with pytest.raises(Exception):
                ctx.stack_cap.check_access(caller_frame, 4, (P.LD,))
            return True

        comp.export("probe", probe)
        loader.link("probe", "probe", "probe")
        assert switcher.call(thread, comp.get_import("probe", "probe"))


class TestStackZeroing:
    def _leaky_pair(self, loader):
        comp = loader.add_compartment("leaky")

        def write_secret(ctx):
            ctx.use_stack(64)
            ctx.switcher.bus.write_word(ctx.sp + 8, 0x5EC9E7, 4)
            return ctx.sp + 8

        def read_addr(ctx, address):
            return ctx.switcher.bus.read_word(address, 4)

        comp.export("write_secret", write_secret)
        comp.export("read_addr", read_addr)
        loader.link("leaky", "leaky", "write_secret")
        loader.link("leaky", "leaky", "read_addr")
        return comp

    def test_callee_stack_zeroed_on_return(self, loader, switcher, thread):
        comp = self._leaky_pair(loader)
        address = switcher.call(thread, comp.get_import("leaky", "write_secret"))
        leaked = switcher.call(thread, comp.get_import("leaky", "read_addr"), address)
        assert leaked == 0  # the switcher zeroed the callee's frame

    def test_hwm_bounds_zeroing(self, loader, switcher, thread, core, csr):
        """With the HWM, only the dirtied bytes are cleared; without,

        the entire unused stack is — the paper's 5.2.1 mechanism."""
        comp = loader.add_compartment("busy")

        def entry(ctx):
            ctx.use_stack(64)

        comp.export("entry", entry)
        loader.link("busy", "busy", "entry")
        token = comp.get_import("busy", "entry")
        switcher.stats.bytes_zeroed = 0
        switcher.call(thread, token)
        with_hwm = switcher.stats.bytes_zeroed

        csr.hwm_enabled = False
        switcher.stats.bytes_zeroed = 0
        switcher.call(thread, token)
        without_hwm = switcher.stats.bytes_zeroed
        assert with_hwm < without_hwm
        # Without HWM both directions clear the whole unused region.
        unused = thread.sp - thread.stack_region.base
        assert without_hwm == 2 * unused


class TestEphemeralDelegation:
    def test_local_argument_cannot_be_captured(self, loader, switcher, thread, roots):
        """Section 5.2: strip GL from an argument and the callee can

        store it only on its (zeroed-on-return) stack."""
        comp = loader.add_compartment("grabby")

        def grab(ctx, cap):
            with pytest.raises(PermissionFault):
                ctx.store_global_cap("stolen", cap)
            # The stack *is* allowed (SL) ...
            ctx.store_stack_cap(0, cap)
            return True

        comp.export("grab", grab)
        loader.link("grabby", "grabby", "grab")
        delegated = (
            roots.memory.set_address(0x2004_1000).set_bounds(64).make_local()
        )
        assert switcher.call(thread, comp.get_import("grabby", "grab"), delegated)
        # ... but the frame was zeroed on return: nothing survives.
        bank = switcher.bus.bank_for(thread.stack_region.base, 8)
        assert list(bank.tagged_granules(
            thread.stack_region.base, thread.sp
        )) == []

    def test_global_argument_can_be_captured(self, loader, switcher, thread, roots):
        comp = loader.add_compartment("keeper")

        def keep(ctx, cap):
            ctx.store_global_cap("kept", cap)
            return True

        comp.export("keep", keep)
        loader.link("keeper", "keeper", "keep")
        shared = roots.memory.set_address(0x2004_1000).set_bounds(64)
        assert switcher.call(thread, comp.get_import("keeper", "keep"), shared)
        assert comp.load_global_cap("kept") == shared


class TestInterruptPosture:
    def test_disabled_export_runs_without_interrupts(
        self, loader, switcher, thread, csr
    ):
        comp = loader.add_compartment("critical")
        seen = {}

        def entry(ctx):
            seen["enabled"] = csr.interrupts_enabled

        comp.export("entry", entry, posture=InterruptPosture.DISABLED)
        loader.link("critical", "critical", "entry")
        csr.interrupts_enabled = True
        switcher.call(thread, comp.get_import("critical", "entry"))
        assert seen["enabled"] is False
        assert csr.interrupts_enabled is True  # restored

    def test_posture_restored_after_exception(self, loader, switcher, thread, csr):
        comp = loader.add_compartment("thrower")

        def entry(ctx):
            raise RuntimeError("callee exploded")

        comp.export("entry", entry, posture=InterruptPosture.DISABLED)
        loader.link("thrower", "thrower", "entry")
        with pytest.raises(RuntimeError):
            switcher.call(thread, comp.get_import("thrower", "entry"))
        assert csr.interrupts_enabled
        assert switcher.call_depth == 0
