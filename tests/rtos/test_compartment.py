"""Tests for compartments: exports, imports and the SL globals rule."""

import pytest

from repro.capability import Capability, Permission as P
from repro.capability.errors import PermissionFault
from repro.rtos.compartment import Compartment, InterruptPosture

RW = {P.GL, P.LD, P.SD, P.MC, P.LM, P.LG}


def make_compartment(name="c"):
    code = Capability.from_bounds(0x2000_0000, 4096, {P.GL, P.EX, P.LD, P.MC})
    globals_ = Capability.from_bounds(0x2004_0000, 4096, RW)
    return Compartment(name, code, globals_)


class TestConstruction:
    def test_code_must_be_executable(self):
        data = Capability.from_bounds(0x2000_0000, 4096, RW)
        globals_ = Capability.from_bounds(0x2004_0000, 4096, RW)
        with pytest.raises(PermissionFault):
            Compartment("bad", data, globals_)

    def test_globals_must_not_carry_sl(self):
        """Section 5.2: the compartment's global pointer has SL cleared

        so the stack stays the only home for local capabilities."""
        code = Capability.from_bounds(0x2000_0000, 4096, {P.GL, P.EX, P.LD, P.MC})
        globals_sl = Capability.from_bounds(0x2004_0000, 4096, RW | {P.SL})
        with pytest.raises(PermissionFault):
            Compartment("bad", code, globals_sl)


class TestExportsImports:
    def test_export_and_lookup(self):
        comp = make_compartment()
        export = comp.export("entry", lambda ctx: 1)
        assert comp.get_export("entry") is export
        assert export.posture == InterruptPosture.ENABLED

    def test_duplicate_export_rejected(self):
        comp = make_compartment()
        comp.export("entry", lambda ctx: 1)
        with pytest.raises(ValueError):
            comp.export("entry", lambda ctx: 2)

    def test_unknown_export(self):
        with pytest.raises(KeyError):
            make_compartment().get_export("missing")

    def test_unknown_import(self):
        with pytest.raises(KeyError):
            make_compartment().get_import("other", "fn")


class TestGlobalCapabilitySlots:
    def test_global_cap_storable(self):
        comp = make_compartment()
        cap = Capability.from_bounds(0x2004_0000, 64, RW)
        comp.store_global_cap("buffer", cap)
        assert comp.load_global_cap("buffer") == cap

    def test_local_cap_store_faults(self):
        """Storing a local capability needs SL; globals never have it."""
        comp = make_compartment()
        local = Capability.from_bounds(0x2004_0000, 64, RW).make_local()
        with pytest.raises(PermissionFault):
            comp.store_global_cap("stolen", local)

    def test_untagged_local_bits_are_storable(self):
        """Untagged values are just bits — the SL check is about

        *capabilities*, not patterns."""
        comp = make_compartment()
        junk = Capability.from_bounds(0x2004_0000, 64, RW).make_local().untagged()
        comp.store_global_cap("junk", junk)

    def test_non_capability_rejected(self):
        with pytest.raises(TypeError):
            make_compartment().store_global_cap("x", 42)
