"""Tests for compartment fault containment (blast-radius limiting)."""

import pytest

from repro.capability import Permission
from repro.capability.errors import BoundsFault
from repro.rtos.switcher import CompartmentFault


@pytest.fixture
def faulty_pair(loader, roots):
    """"victim" exporting a service, "buggy" exporting a faulting entry."""
    victim = loader.add_compartment("victim")
    buggy = loader.add_compartment("buggy")

    def service(ctx, value):
        ctx.use_stack(64)
        return value * 2

    def explode(ctx):
        ctx.use_stack(64)
        # A classic compartment bug: walk off the end of a buffer.
        buffer = roots.memory.set_address(0x2004_8000).set_bounds(16)
        buffer.check_access(buffer.top + 4, 4, (Permission.LD,))

    def explode_python(ctx):
        raise MemoryError("non-architectural callee crash")

    victim.export("service", service)
    buggy.export("explode", explode)
    buggy.export("explode_python", explode_python)
    loader.link("victim", "buggy", "explode")
    loader.link("victim", "victim", "service")
    loader.link("buggy", "buggy", "explode_python")
    return victim, buggy


class TestContainment:
    def test_fault_surfaces_as_compartment_fault(
        self, faulty_pair, switcher, thread
    ):
        victim, buggy = faulty_pair
        token = victim.get_import("buggy", "explode")
        with pytest.raises(CompartmentFault) as excinfo:
            switcher.call(thread, token)
        assert excinfo.value.compartment == "buggy"
        assert excinfo.value.export == "explode"
        assert excinfo.value.cause_type == "BoundsFault"
        assert switcher.stats.faults_contained == 1

    def test_system_survives_a_faulting_callee(
        self, faulty_pair, switcher, thread, csr
    ):
        victim, buggy = faulty_pair
        with pytest.raises(CompartmentFault):
            switcher.call(thread, victim.get_import("buggy", "explode"))
        # The switcher unwound cleanly: depth zero, posture restored,
        # SP restored, and other compartments keep working.
        assert switcher.call_depth == 0
        assert csr.interrupts_enabled
        result = switcher.call(thread, victim.get_import("victim", "service"), 21)
        assert result == 42

    def test_faulting_callee_stack_is_zeroed(self, faulty_pair, switcher, thread, bus):
        victim, buggy = faulty_pair
        with pytest.raises(CompartmentFault):
            switcher.call(thread, victim.get_import("buggy", "explode"))
        bank = bus.bank_for(thread.stack_region.base, 8)
        assert list(
            bank.tagged_granules(thread.stack_region.base, thread.sp)
        ) == []

    def test_nested_fault_unwinds_one_level(self, loader, switcher, thread, roots):
        outer_comp = loader.add_compartment("outer")
        inner_comp = loader.add_compartment("inner")

        def outer(ctx):
            ctx.use_stack(64)
            try:
                return ctx.call("inner", "bad")
            except CompartmentFault as fault:
                return f"recovered from {fault.compartment}"

        def bad(ctx):
            bad_cap = roots.memory.set_address(0x2004_9000).set_bounds(8)
            bad_cap.check_access(0x2004_9008, 4, (Permission.LD,))

        outer_comp.export("outer", outer)
        inner_comp.export("bad", bad)
        loader.link("outer", "inner", "bad")
        loader.link("outer", "outer", "outer")
        result = switcher.call(thread, outer_comp.get_import("outer", "outer"))
        assert result == "recovered from inner"
        assert switcher.call_depth == 0

    def test_non_architectural_errors_propagate_raw(
        self, faulty_pair, switcher, thread
    ):
        """Only architectural faults are the switcher's business; a

        Python-level bug in the *model* must not be masked."""
        victim, buggy = faulty_pair
        with pytest.raises(MemoryError):
            switcher.call(thread, buggy.get_import("buggy", "explode_python"))
        assert switcher.call_depth == 0  # unwind still happened
