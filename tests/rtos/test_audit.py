"""Tests for the image audit (section 3.1.2's auditability claim)."""

from repro.machine import System
from repro.rtos import InterruptPosture, audit_image


class TestAudit:
    def test_system_image_audits_clean(self):
        system = System.build()
        report = audit_image(system.switcher)
        names = {(r.compartment, r.export) for r in report.exports}
        assert ("alloc", "malloc") in names
        assert ("alloc", "free") in names
        # Only the allocator holds the revocation MMIO grants.
        assert "revocation-bitmap" in report.grants["alloc"]
        assert "revocation-bitmap" not in report.grants["app"]

    def test_interrupts_disabled_enumeration(self):
        system = System.build(finalize=False)
        critical = system.loader.add_compartment("critical")
        critical.export("nmi_window", lambda ctx: None,
                        posture=InterruptPosture.DISABLED)
        system.loader.finalize()
        report = audit_image(system.switcher)
        disabled = {(r.compartment, r.export) for r in report.interrupts_disabled}
        assert disabled == {("critical", "nmi_window")}

    def test_render(self):
        system = System.build()
        text = audit_image(system.switcher).render()
        assert "image audit" in text
        assert "alloc" in text
        assert "total exports" in text
