"""Tests for the scheduler and context-switch cost accounting."""

import pytest

from repro.isa import CSRFile
from repro.pipeline import CoreKind, make_core_model
from repro.rtos import Scheduler
from repro.rtos.scheduler import CONTEXT_SWITCH_BASE_INSTRS, HWM_CSR_EXTRA_INSTRS
from repro.rtos.thread import ThreadState


@pytest.fixture
def threads(loader, scheduler):
    a = loader.add_thread("a", priority=2)
    b = loader.add_thread("b", priority=1)
    c = loader.add_thread("c", priority=2)
    for t in (a, b, c):
        scheduler.add_thread(t)
    return a, b, c


class TestSelection:
    def test_highest_priority_wins(self, scheduler, threads):
        a, b, c = threads
        assert scheduler.pick_next().priority == 2

    def test_round_robin_within_priority(self, scheduler, threads):
        a, b, c = threads
        scheduler.switch_to(a)
        nxt = scheduler.pick_next()
        assert nxt is c  # the other priority-2 thread

    def test_blocked_threads_skipped(self, scheduler, threads):
        a, b, c = threads
        a.state = ThreadState.BLOCKED
        c.state = ThreadState.BLOCKED
        assert scheduler.pick_next() is b

    def test_no_ready_threads(self, scheduler, threads):
        for t in threads:
            t.state = ThreadState.BLOCKED
        assert scheduler.pick_next() is None


class TestContextSwitch:
    def test_switch_updates_states(self, scheduler, threads):
        a, b, _ = threads
        scheduler.switch_to(a)
        assert a.state is ThreadState.RUNNING
        scheduler.switch_to(b)
        assert a.state is ThreadState.READY
        assert b.state is ThreadState.RUNNING

    def test_switch_saves_and_restores_hwm(self, scheduler, threads, csr):
        """The two extra CSRs of section 5.2.1 travel with the thread."""
        a, b, _ = threads
        scheduler.switch_to(a)
        csr.note_store(a.stack_region.top - 64)
        mark = csr.high_water_mark
        scheduler.switch_to(b)
        assert csr.high_water_mark == b.stack_region.top  # fresh thread
        scheduler.switch_to(a)
        assert csr.high_water_mark == mark

    def test_switch_to_self_is_free(self, scheduler, threads, core):
        a, *_ = threads
        scheduler.switch_to(a)
        cycles = core.cycles
        scheduler.switch_to(a)
        assert core.cycles == cycles

    def test_hwm_hardware_costs_two_extra_csrs(self, bus, roots):
        """The visible Ibex effect at 128 KiB (section 7.2.2): each

        switch saves/restores mshwm and mshwmb when fitted."""
        core = make_core_model(CoreKind.IBEX)
        with_hwm = Scheduler(CSRFile(hwm_enabled=True), core)
        without = Scheduler(CSRFile(hwm_enabled=False), core)
        assert (
            with_hwm.context_switch_cost() > without.context_switch_cost()
        )

    def test_unknown_thread_rejected(self, scheduler, threads, loader):
        stranger = loader.add_thread("stranger")
        with pytest.raises(ValueError):
            scheduler.switch_to(stranger)

    def test_duplicate_tid_rejected(self, scheduler, threads):
        with pytest.raises(ValueError):
            scheduler.add_thread(threads[0])


class TestPreemption:
    def test_preempt_switches_and_counts(self, scheduler, threads, core):
        a, b, c = threads
        scheduler.switch_to(a)
        before = scheduler.stats.context_switches
        scheduler.preempt()
        assert scheduler.stats.timer_ticks == 1
        assert scheduler.current in (a, c)
        assert scheduler.stats.context_switches >= before
