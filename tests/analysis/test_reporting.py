"""Tests for the text table/series renderers."""

from repro.analysis.reporting import format_series, format_table, size_label


class TestFormatTable:
    def test_alignment(self):
        text = format_table(
            ["name", "value"], [("short", 1), ("much-longer-name", 22)]
        )
        lines = text.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines[2:])

    def test_empty_rows(self):
        text = format_table(["a"], [])
        assert "a" in text


class TestFormatSeries:
    def test_contains_all_labels_and_sizes(self):
        series = {
            "Baseline": [(32, 1.0), (1024, 1.0)],
            "Software": [(32, 1.4), (1024, 3.2)],
        }
        text = format_series(series, "Figure 6")
        assert "Figure 6" in text
        assert "Baseline" in text and "Software" in text
        assert "32B" in text and "1KiB" in text
        assert "#" in text

    def test_empty(self):
        assert "no data" in format_series({}, "t")


class TestSizeLabel:
    def test_labels(self):
        assert size_label(32) == "32B"
        assert size_label(2048) == "2KiB"
        assert size_label(1 << 20) == "1MiB"
