"""Tests for the encoding precision / fragmentation analysis (3.2.3)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.fragmentation import (
    average_fragmentation,
    check_cheriot_encoder,
    fragmentation_sweep,
    max_precise_length,
    padded_length,
    rule_of_thumb_fragmentation,
)


class TestPaddedLength:
    def test_small_lengths_exact(self):
        for n in (1, 8, 100, 511):
            assert padded_length(n, 9) == n

    def test_larger_lengths_align(self):
        assert padded_length(512, 9) == 512
        assert padded_length(513, 9) == 514  # e=1: round to 2
        assert padded_length(100_000, 9) == 100_096  # e=8: round to 256

    def test_three_bit_mantissa_pads_hard(self):
        assert padded_length(9, 3) == 10  # e=1 already at 9 bytes

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            padded_length(0, 9)

    @given(st.integers(min_value=1, max_value=1 << 30))
    def test_never_shrinks_and_bounded(self, length):
        padded = padded_length(length, 9)
        assert padded >= length
        assert padded < length * 1.01 + 512  # fragmentation tiny at m=9


class TestPaperClaims:
    def test_max_precise_is_511(self):
        assert max_precise_length(9) == 511

    def test_nine_bit_fragmentation_tiny(self):
        measured = average_fragmentation(9, min_length=512)
        assert measured < 0.005  # well under half a percent
        assert rule_of_thumb_fragmentation(9) == pytest.approx(0.00195, abs=1e-4)

    def test_three_bit_fragmentation_unacceptable(self):
        """The CHERI-Concentrate-for-32-bit layout the paper rejects."""
        measured = average_fragmentation(3, min_length=8)
        assert measured > 0.05
        assert rule_of_thumb_fragmentation(3) == 0.125

    def test_nine_bit_improves_three_bit_by_orders_of_magnitude(self):
        nine = average_fragmentation(9, min_length=512)
        three = average_fragmentation(3, min_length=8)
        assert three > 30 * nine


class TestEncoderCrossCheck:
    def test_formula_matches_real_encoder(self):
        lengths = [1, 17, 511, 512, 1000, 4096, 100_000, 1 << 20]
        for length, allocated in check_cheriot_encoder(lengths):
            assert allocated == padded_length(length, 9)

    def test_sweep_points(self):
        points = fragmentation_sweep([100, 1000], 9)
        assert points[0].padding == 0
        assert points[1].overhead >= 0
