"""Tests for the energy/battery model."""

import pytest

from repro.analysis.energy import (
    IDLE_FRACTION,
    EnergyEstimate,
    estimate_energy,
    security_battery_cost,
)
from repro.hw.area_power import rv32e, with_background_revoker


class TestEstimates:
    def test_power_scales_with_frequency(self):
        slow = estimate_energy(0.2, 60, clock_mhz=20)
        fast = estimate_energy(0.2, 60, clock_mhz=200)
        assert fast.active_mw == pytest.approx(10 * slow.active_mw)

    def test_idle_dominates_at_low_duty_cycle(self):
        est = estimate_energy(cpu_load=0.15, duration_s=60)
        idle_part = (1 - est.cpu_load) * est.idle_mw
        active_part = est.cpu_load * est.active_mw
        assert est.average_mw == pytest.approx(idle_part + active_part)
        assert idle_part > active_part * 0.3  # idle is a real factor

    def test_battery_life_reasonable(self):
        """A mostly-idle 20 MHz core on a coin cell: weeks, not hours."""
        est = estimate_energy(cpu_load=0.15, duration_s=60)
        assert 30 < est.cr2032_days < 10_000

    def test_higher_load_shorter_life(self):
        idle = estimate_energy(0.05, 60)
        busy = estimate_energy(0.95, 60)
        assert busy.cr2032_days < idle.cr2032_days

    def test_variant_selection(self):
        base = estimate_energy(0.2, 60, variant=rv32e())
        full = estimate_energy(0.2, 60, variant=with_background_revoker())
        assert full.energy_mj > base.energy_mj


class TestSecurityCost:
    def test_cheriot_vs_pmp_within_tens_of_percent(self):
        """The adopter's question: complete memory safety costs a

        bounded, modest battery premium over the PMP status quo."""
        cheriot, pmp, extra = security_battery_cost(cpu_load=0.15, duration_s=60)
        assert 0 < extra < 0.5
        assert cheriot.average_mw > pmp.average_mw

    def test_premium_tracks_the_power_ratio(self):
        cheriot, pmp, extra = security_battery_cost(cpu_load=1.0, duration_s=1)
        from repro.hw.area_power import rv32e_pmp16, with_background_revoker

        ratio = with_background_revoker().power_mw / rv32e_pmp16().power_mw
        assert 1 + extra == pytest.approx(ratio)
