"""Tests for the Figure 1/2 renderers (enumerated from the code)."""

from repro.analysis.encoding_tables import (
    enumerate_formats,
    format_figure1,
    format_figure2,
)
from repro.capability.permissions import Permission as P


class TestEnumeration:
    def test_all_64_words_covered(self):
        groups = enumerate_formats()
        assert sum(len(v) for v in groups.values()) == 64

    def test_paper_figure2_group_sizes(self):
        """mem-cap-rw: GL+SL+LM+LG optional -> 16 encodings; cap-ro: 8;

        cap-wo: 2 (GL only); no-cap: 6 (GL x (LD,SD) minus the 00
        collision with cap-wo); executable: 16; sealing: 16."""
        groups = {k: len(v) for k, v in enumerate_formats().items()}
        assert groups == {
            "mem-cap-rw": 16,
            "mem-cap-ro": 8,
            "mem-cap-wo": 2,
            "mem-no-cap": 6,
            "executable": 16,
            "sealing": 16,
        }

    def test_implied_permissions_match_paper(self):
        groups = enumerate_formats()
        rw_common = frozenset.intersection(*(p for _, p in groups["mem-cap-rw"]))
        assert {P.LD, P.MC, P.SD} <= rw_common
        exec_common = frozenset.intersection(*(p for _, p in groups["executable"]))
        assert {P.EX, P.LD, P.MC} <= exec_common


class TestRendering:
    def test_figure2_text(self):
        text = format_figure2()
        for fmt in ("mem-cap-rw", "executable", "sealing"):
            assert fmt in text
        assert "EX LD MC" in text

    def test_figure1_text(self):
        text = format_figure1()
        assert "E'4" in text and "B'9" in text and "T'9" in text
