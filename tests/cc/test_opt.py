"""Tests for the peephole optimizer: smaller code, same answers."""

import pytest

from repro.cc.lower import Target, compile_module
from repro.cc.opt import peephole
from repro.workloads.kernels import ALL_KERNELS
from tests.workloads.test_kernels import DATA_BASE, execute


class TestPatterns:
    def test_store_load_fusion(self):
        lines = ["    sw t0, 8(sp)", "    lw t1, 8(sp)"]
        out, removed = peephole(lines)
        assert out == ["    sw t0, 8(sp)", "    mv t1, t0"]

    def test_store_reload_same_register_dropped(self):
        out, removed = peephole(["    csc t0, 0(csp)", "    clc t0, 0(csp)"])
        assert out == ["    csc t0, 0(csp)"]
        assert removed == 1

    def test_capability_fusion_uses_cmove(self):
        out, _ = peephole(["    csc t0, 16(csp)", "    clc a0, 16(csp)"])
        assert out[-1] == "    cmove a0, t0"

    def test_label_breaks_the_block(self):
        lines = ["    sw t0, 8(sp)", "target:", "    lw t1, 8(sp)"]
        out, removed = peephole(lines)
        assert out == lines and removed == 0

    def test_mismatched_slots_untouched(self):
        lines = ["    sw t0, 8(sp)", "    lw t1, 16(sp)"]
        assert peephole(lines)[0] == lines

    def test_mixed_width_untouched(self):
        """sw followed by clc must NOT fuse: the 4-byte store cleared

        the granule's tag; the reload correctly yields untagged bits."""
        lines = ["    sw t0, 8(csp)", "    clc t1, 8(csp)"]
        assert peephole(lines)[0] == lines

    def test_self_move_dropped(self):
        out, removed = peephole(["    mv t0, t0", "    add a0, a0, a1"])
        assert out == ["    add a0, a0, a1"]


class TestSemanticsPreserved:
    @pytest.mark.parametrize("builder", ALL_KERNELS, ids=lambda b: b.__name__)
    @pytest.mark.parametrize("target", [Target.RV32E, Target.CHERIOT])
    def test_kernels_still_match_oracles(self, builder, target):
        module, entry, args, oracle = builder()
        compiled = compile_module(
            module, target, data_base=DATA_BASE, optimize=True
        )
        # Run through the shared executor harness with optimized code.
        from repro.cc.lower import CodeGen

        result = _execute_compiled(compiled, entry, args, target)
        assert result == oracle

    def test_optimizer_shrinks_code(self):
        module, entry, args, _ = ALL_KERNELS[0]()
        plain = compile_module(module, Target.CHERIOT, data_base=DATA_BASE)
        tight = compile_module(
            module, Target.CHERIOT, data_base=DATA_BASE, optimize=True
        )
        assert len(tight.assembly.splitlines()) < len(plain.assembly.splitlines())


def _execute_compiled(compiled, entry, args, target):
    from repro.capability import Permission as P, make_roots
    from repro.isa import CPU, ExecutionMode, assemble
    from repro.memory import SystemBus, TaggedMemory
    from tests.workloads.test_kernels import CODE_BASE, STACK_TOP

    setup = "\n".join(f"li a{i}, {v}" for i, v in enumerate(args))
    program = assemble(compiled.assembly + f"_start:\n{setup}\njal ra, {entry}\nhalt\n")
    bus = SystemBus()
    bus.attach_sram(TaggedMemory(CODE_BASE, 0x4_0000))
    for layout in compiled.globals_layout.values():
        if layout.init:
            bus.write_bytes(DATA_BASE + layout.offset, layout.init)
    cheriot = target is Target.CHERIOT
    cpu = CPU(bus, ExecutionMode.CHERIOT if cheriot else ExecutionMode.RV32E)
    if cheriot:
        roots = make_roots()
        cpu.load_program(program, CODE_BASE, pcc=roots.executable, entry="_start")
        cpu.regs.write(
            2,
            roots.memory.set_address(STACK_TOP - 0x4000)
            .set_bounds(0x4000)
            .set_address(STACK_TOP - 16)
            .clear_perms(P.GL),
        )
        cpu.regs.write(3, roots.memory.set_address(DATA_BASE).set_bounds(0x8000))
    else:
        cpu.load_program(program, CODE_BASE, entry="_start")
        cpu.regs.write_int(2, STACK_TOP - 16)
        cpu.regs.write_int(3, DATA_BASE)
    cpu.run(max_steps=5_000_000)
    return cpu.regs.read_int(10)
