"""Tests for the mini compiler: both targets, same semantics."""

import pytest

from repro.capability import Permission as P, make_roots
from repro.cc import ir
from repro.cc.lower import Target, compile_module
from repro.isa import CPU, ExecutionMode, Trap, assemble
from repro.memory import SystemBus, TaggedMemory

CODE_BASE = 0x2000_0000
DATA_BASE = 0x2001_0000
STACK_TOP = 0x2002_0000

V, C, B = ir.Var, ir.Const, ir.BinOp


def run_function(module, entry, args=(), target=Target.CHERIOT,
                 fixed_compiler=False):
    """Compile, load and execute ``entry``; returns (a0, cpu)."""
    compiled = compile_module(
        module, target, fixed_compiler=fixed_compiler, data_base=DATA_BASE
    )
    arg_setup = "\n".join(f"li a{i}, {val}" for i, val in enumerate(args))
    driver = f"_start:\n{arg_setup}\njal ra, {entry}\nhalt\n"
    program = assemble(compiled.assembly + driver)

    bus = SystemBus()
    bus.attach_sram(TaggedMemory(0x2000_0000, 0x2_0000))
    cheriot = target is Target.CHERIOT
    cpu = CPU(bus, mode=ExecutionMode.CHERIOT if cheriot else ExecutionMode.RV32E)
    if cheriot:
        roots = make_roots()
        cpu.load_program(program, CODE_BASE, pcc=roots.executable, entry="_start")
        stack = (
            roots.memory.set_address(DATA_BASE + 0x1000)
            .set_bounds(STACK_TOP - DATA_BASE - 0x1000)
            .set_address(STACK_TOP - 16)
            .clear_perms(P.GL)
        )
        cpu.regs.write(2, stack)
        cpu.regs.write(3, roots.memory.set_address(DATA_BASE).set_bounds(0x1000))
    else:
        cpu.load_program(program, CODE_BASE, entry="_start")
        cpu.regs.write_int(2, STACK_TOP - 16)
        cpu.regs.write_int(3, DATA_BASE)
    cpu.run(max_steps=2_000_000)
    return cpu.regs.read_int(10), cpu


def simple_module():
    m = ir.Module()
    fn = ir.Function(
        "triangle",
        params=[ir.Param("n", ir.INT)],
        locals={"i": ir.INT, "acc": ir.INT},
    )
    fn.body = [
        ir.Assign("acc", C(0)),
        ir.Assign("i", C(1)),
        ir.While(
            B("<=", V("i"), V("n")),
            (
                ir.Assign("acc", B("+", V("acc"), V("i"))),
                ir.Assign("i", B("+", V("i"), C(1))),
            ),
        ),
        ir.Return(V("acc")),
    ]
    m.add_function(fn)
    return m


class TestBothTargets:
    @pytest.mark.parametrize("target", [Target.RV32E, Target.CHERIOT])
    def test_triangle_number(self, target):
        result, _ = run_function(simple_module(), "triangle", (10,), target)
        assert result == 55

    @pytest.mark.parametrize("target", [Target.RV32E, Target.CHERIOT])
    def test_globals_and_pointers(self, target):
        m = ir.Module()
        m.add_global("table", 64)
        fn = ir.Function("fill_and_sum", locals={"i": ir.INT, "p": ir.PTR, "acc": ir.INT})
        fn.body = [
            ir.Assign("i", C(0)),
            ir.While(
                B("<", V("i"), C(8)),
                (
                    ir.Assign("p", ir.PtrAdd(ir.GlobalRef("table"), B("*", V("i"), C(4)))),
                    ir.Store(V("p"), B("*", V("i"), V("i"))),
                    ir.Assign("i", B("+", V("i"), C(1))),
                ),
            ),
            ir.Assign("acc", C(0)),
            ir.Assign("i", C(0)),
            ir.While(
                B("<", V("i"), C(8)),
                (
                    ir.Assign("p", ir.PtrAdd(ir.GlobalRef("table"), B("*", V("i"), C(4)))),
                    ir.Assign("acc", B("+", V("acc"), ir.Load(V("p")))),
                    ir.Assign("i", B("+", V("i"), C(1))),
                ),
            ),
            ir.Return(V("acc")),
        ]
        m.add_function(fn)
        result, _ = run_function(m, "fill_and_sum", (), target)
        assert result == sum(i * i for i in range(8))

    @pytest.mark.parametrize("target", [Target.RV32E, Target.CHERIOT])
    def test_local_arrays(self, target):
        m = ir.Module()
        fn = ir.Function(
            "revsum",
            locals={"i": ir.INT, "p": ir.PTR, "acc": ir.INT},
            arrays={"buf": 32},
        )
        fn.body = [
            ir.Assign("i", C(0)),
            ir.While(
                B("<", V("i"), C(8)),
                (
                    ir.Assign("p", ir.PtrAdd(ir.LocalArrayRef("buf"), B("*", V("i"), C(4)))),
                    ir.Store(V("p"), B("+", V("i"), C(100))),
                    ir.Assign("i", B("+", V("i"), C(1))),
                ),
            ),
            ir.Assign("p", ir.PtrAdd(ir.LocalArrayRef("buf"), C(28))),
            ir.Assign("acc", ir.Load(V("p"))),
            ir.Return(V("acc")),
        ]
        m.add_function(fn)
        result, _ = run_function(m, "revsum", (), target)
        assert result == 107

    @pytest.mark.parametrize("target", [Target.RV32E, Target.CHERIOT])
    def test_function_calls(self, target):
        m = simple_module()
        caller = ir.Function("twice", params=[ir.Param("n", ir.INT)], locals={"r": ir.INT})
        caller.body = [
            ir.Assign("r", ir.CallExpr("triangle", (V("n"),))),
            ir.Return(B("*", V("r"), C(2))),
        ]
        m.add_function(caller)
        result, _ = run_function(m, "twice", (4,), target)
        assert result == 20


class TestCheriotSpecifics:
    def test_array_overrun_traps_on_cheriot_only(self):
        m = ir.Module()
        fn = ir.Function("overrun", locals={"p": ir.PTR}, arrays={"buf": 16})
        fn.body = [
            ir.Assign("p", ir.PtrAdd(ir.LocalArrayRef("buf"), C(16))),
            ir.Store(V("p"), C(1)),  # one past the end
            ir.Return(C(0)),
        ]
        m.add_function(fn)
        # CHERIoT: the csetboundsimm-derived capability traps the store
        # precisely at the faulting instruction.
        with pytest.raises(Trap) as cheri_trap:
            run_function(m, "overrun", (), Target.CHERIOT)
        assert "bounds" in str(cheri_trap.value)
        # rv32e: the one-past store lands on the saved return address
        # (classic stack smashing) and `ret` jumps into the weeds — the
        # attacker-controlled-control-flow class CHERIoT kills.
        with pytest.raises(Trap) as rv_trap:
            run_function(m, "overrun", (), Target.RV32E)
        assert rv_trap.value.pc == 1  # control flow went to the stored value

    def test_compiler_bugs_add_instructions(self):
        m = ir.Module()
        m.add_global("g", 16)
        fn = ir.Function("touch", locals={"p": ir.PTR, "x": ir.INT})
        fn.body = [
            ir.Assign("p", ir.GlobalRef("g")),
            ir.Assign("x", ir.Load(V("p"), 4)),
            ir.Return(V("x")),
        ]
        m.add_function(fn)
        buggy = compile_module(m, Target.CHERIOT, data_base=DATA_BASE)
        fixed = compile_module(
            m, Target.CHERIOT, fixed_compiler=True, data_base=DATA_BASE
        )
        assert buggy.assembly.count("csetboundsimm") > fixed.assembly.count(
            "csetboundsimm"
        )
        assert buggy.assembly.count("cincaddrimm") > fixed.assembly.count(
            "cincaddrimm"
        )

    def test_pointer_slots_are_capability_width(self):
        m = simple_module()
        fn = ir.Function("ptrslot", locals={"p": ir.PTR})
        fn.body = [ir.Assign("p", ir.GlobalRef("g")), ir.Return(C(0))]
        m.add_global("g", 8)
        m.add_function(fn)
        cheriot = compile_module(m, Target.CHERIOT, data_base=DATA_BASE)
        assert "csc" in cheriot.assembly  # pointer spill is a cap store
        rv32e = compile_module(m, Target.RV32E, data_base=DATA_BASE)
        assert "csc" not in rv32e.assembly


class TestIRValidation:
    def test_nested_calls_rejected(self):
        m = simple_module()
        bad = ir.Function("bad", locals={"r": ir.INT})
        bad.body = [
            ir.Assign("r", ir.CallExpr("triangle", (ir.CallExpr("triangle", (C(1),)),)))
        ]
        m.add_function(bad)
        with pytest.raises(ir.IRError):
            compile_module(m, Target.RV32E, data_base=DATA_BASE)

    def test_unknown_variable_rejected(self):
        m = ir.Module()
        fn = ir.Function("bad")
        fn.body = [ir.Return(V("ghost"))]
        m.add_function(fn)
        with pytest.raises(ir.IRError):
            compile_module(m, Target.RV32E, data_base=DATA_BASE)

    def test_unknown_function_call_rejected(self):
        m = ir.Module()
        fn = ir.Function("bad")
        fn.body = [ir.ExprStmt(ir.CallExpr("missing", ()))]
        m.add_function(fn)
        with pytest.raises(ir.IRError):
            compile_module(m, Target.RV32E, data_base=DATA_BASE)

    def test_duplicate_function_rejected(self):
        m = simple_module()
        with pytest.raises(ir.IRError):
            m.add_function(ir.Function("triangle"))
