"""Tests for the IR data model itself."""

import pytest

from repro.cc import ir


class TestModule:
    def test_global_sizes_rounded_to_granule(self):
        m = ir.Module()
        g = m.add_global("x", 5)
        assert g.size == 8

    def test_duplicate_global_rejected(self):
        m = ir.Module()
        m.add_global("x", 8)
        with pytest.raises(ir.IRError):
            m.add_global("x", 8)

    def test_duplicate_function_rejected(self):
        m = ir.Module()
        m.add_function(ir.Function("f"))
        with pytest.raises(ir.IRError):
            m.add_function(ir.Function("f"))


class TestFunction:
    def test_type_of_params_and_locals(self):
        fn = ir.Function(
            "f",
            params=[ir.Param("p", ir.PTR)],
            locals={"x": ir.INT},
        )
        assert fn.type_of("p") == ir.PTR
        assert fn.type_of("x") == ir.INT

    def test_type_of_unknown_raises(self):
        with pytest.raises(ir.IRError):
            ir.Function("f").type_of("ghost")


class TestNodes:
    def test_expressions_are_immutable(self):
        node = ir.BinOp("+", ir.Const(1), ir.Const(2))
        with pytest.raises(Exception):
            node.op = "-"

    def test_load_defaults(self):
        load = ir.Load(ir.Var("p"))
        assert load.size == 4 and not load.signed and not load.as_ptr
