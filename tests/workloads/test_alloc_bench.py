"""Tests for the allocation microbenchmark harness (Table 4, Figs 5/6).

These use a reduced total (64 KiB instead of 1 MiB) so the orderings
can be asserted quickly; the full-size runs live in ``benchmarks/``.
"""

import pytest

from repro.allocator import TemporalSafetyMode as M
from repro.pipeline import CoreKind
from repro.workloads.alloc_bench import (
    format_table4,
    overhead_series,
    run_alloc_bench,
    table4,
)

TOTAL = 64 * 1024


def cycles(core, mode, hwm, size, total=TOTAL):
    return run_alloc_bench(core, mode, hwm, size, total).cycles


class TestConfigurationOrdering:
    @pytest.mark.parametrize("core", [CoreKind.FLUTE, CoreKind.IBEX])
    def test_temporal_safety_costs_stack_up(self, core):
        """Baseline <= Metadata <= Hardware <= Software at small sizes.

        The total is large enough that quarantine crosses the sweep
        threshold several times, so the revoker choice matters."""
        total = 512 * 1024
        base = cycles(core, M.BASELINE, False, 64, total)
        meta = cycles(core, M.METADATA, False, 64, total)
        hard = cycles(core, M.HARDWARE, False, 64, total)
        soft = cycles(core, M.SOFTWARE, False, 64, total)
        assert base < meta < hard < soft

    def test_revocation_dominates_at_large_sizes(self):
        """Figure 5/6 right edge: at 128 KiB the sweep is nearly the

        whole story."""
        base = cycles(CoreKind.IBEX, M.BASELINE, False, 128 * 1024, 1 << 20)
        soft = cycles(CoreKind.IBEX, M.SOFTWARE, False, 128 * 1024, 1 << 20)
        assert soft > 20 * base

    def test_hardware_revoker_much_cheaper_than_software(self):
        soft = cycles(CoreKind.IBEX, M.SOFTWARE, False, 128 * 1024, 1 << 20)
        hard = cycles(CoreKind.IBEX, M.HARDWARE, False, 128 * 1024, 1 << 20)
        assert hard < soft / 1.5


class TestHighWaterMark:
    @pytest.mark.parametrize("core", [CoreKind.FLUTE, CoreKind.IBEX])
    def test_hwm_saves_at_small_sizes(self, core):
        without = cycles(core, M.BASELINE, False, 32)
        with_hwm = cycles(core, M.BASELINE, True, 32)
        saving = (without - with_hwm) / without
        assert 0.05 < saving < 0.30  # "reduces the total cost by 10%"

    def test_hwm_saving_fades_at_large_sizes(self):
        small_without = cycles(CoreKind.FLUTE, M.BASELINE, False, 32)
        small_with = cycles(CoreKind.FLUTE, M.BASELINE, True, 32)
        large_without = cycles(CoreKind.FLUTE, M.SOFTWARE, False, 32 * 1024, 1 << 19)
        large_with = cycles(CoreKind.FLUTE, M.SOFTWARE, True, 32 * 1024, 1 << 19)
        small_save = (small_without - small_with) / small_without
        large_save = (large_without - large_with) / large_without
        assert large_save < small_save

    def test_ibex_hwm_penalty_when_revoker_bound(self):
        """The paper's surprise: at 128 KiB on Ibex, Hardware(S) is

        *slower* than Hardware — two more CSRs per context switch while
        blocked on the revoker (section 7.2.2)."""
        without = cycles(CoreKind.IBEX, M.HARDWARE, False, 128 * 1024, 1 << 20)
        with_hwm = cycles(CoreKind.IBEX, M.HARDWARE, True, 128 * 1024, 1 << 20)
        assert with_hwm > without

    def test_software_with_hwm_beats_baseline_on_ibex_small(self):
        """Section 7.2.2: on Ibex the HWM brings full temporal safety

        (software revoker!) below the no-HWM baseline at 32/64 bytes."""
        for size in (32, 64):
            baseline = cycles(CoreKind.IBEX, M.BASELINE, False, size)
            soft_hwm = cycles(CoreKind.IBEX, M.SOFTWARE, True, size)
            assert soft_hwm < baseline


class TestHarness:
    def test_result_metadata(self):
        result = run_alloc_bench(CoreKind.IBEX, M.HARDWARE, True, 1024, TOTAL)
        assert result.iterations == TOTAL // 1024
        assert result.label == "Hardware (S)"
        assert result.cycles_per_iteration > 0

    def test_table4_and_series(self):
        results = table4(CoreKind.IBEX, sizes=(64, 4096), total_bytes=TOTAL)
        assert len(results) == 2 * 4 * 2
        series = overhead_series(results)
        assert "Baseline" in series and "Software (S)" in series
        for points in series.values():
            assert [x for x, _ in points] == [64, 4096]
        baseline = dict(series["Baseline"])
        assert baseline[64] == pytest.approx(1.0)
        text = format_table4(results)
        assert "64B" in text and "4KiB" in text
