"""Cross-ISA validation: every kernel matches its Python oracle on

both targets, with and without the compiler-bug modelling, and the
initialized global data actually reaches simulated memory."""

import pytest

from repro.capability import Permission as P, make_roots
from repro.cc.lower import Target, compile_module
from repro.isa import CPU, ExecutionMode, assemble
from repro.memory import SystemBus, TaggedMemory
from repro.workloads.kernels import (
    ALL_KERNELS,
    binary_search_kernel,
    bubble_sort_kernel,
    crc32_kernel,
    fibonacci_kernel,
    string_search_kernel,
)

CODE_BASE = 0x2000_0000
DATA_BASE = 0x2002_0000
STACK_TOP = 0x2004_0000


def execute(module, entry, args, target, fixed_compiler=False):
    compiled = compile_module(
        module, target, fixed_compiler=fixed_compiler, data_base=DATA_BASE
    )
    setup = "\n".join(f"li a{i}, {v}" for i, v in enumerate(args))
    program = assemble(compiled.assembly + f"_start:\n{setup}\njal ra, {entry}\nhalt\n")

    bus = SystemBus()
    bus.attach_sram(TaggedMemory(CODE_BASE, 0x4_0000))
    # Install initialized globals (the loader's .data copy).
    for layout in compiled.globals_layout.values():
        if layout.init:
            bus.write_bytes(DATA_BASE + layout.offset, layout.init)

    cheriot = target is Target.CHERIOT
    cpu = CPU(bus, ExecutionMode.CHERIOT if cheriot else ExecutionMode.RV32E)
    if cheriot:
        roots = make_roots()
        cpu.load_program(program, CODE_BASE, pcc=roots.executable, entry="_start")
        cpu.regs.write(
            2,
            roots.memory.set_address(STACK_TOP - 0x4000)
            .set_bounds(0x4000)
            .set_address(STACK_TOP - 16)
            .clear_perms(P.GL),
        )
        cpu.regs.write(3, roots.memory.set_address(DATA_BASE).set_bounds(0x8000))
    else:
        cpu.load_program(program, CODE_BASE, entry="_start")
        cpu.regs.write_int(2, STACK_TOP - 16)
        cpu.regs.write_int(3, DATA_BASE)
    cpu.run(max_steps=5_000_000)
    return cpu.regs.read_int(10)


@pytest.mark.parametrize("builder", ALL_KERNELS, ids=lambda b: b.__name__)
@pytest.mark.parametrize("target", [Target.RV32E, Target.CHERIOT])
def test_kernel_matches_oracle(builder, target):
    module, entry, args, oracle = builder()
    assert execute(module, entry, args, target) == oracle


@pytest.mark.parametrize("builder", ALL_KERNELS, ids=lambda b: b.__name__)
def test_fixed_compiler_same_semantics(builder):
    """The bug fixes change cycle counts, never answers."""
    module, entry, args, oracle = builder()
    assert execute(module, entry, args, Target.CHERIOT, fixed_compiler=True) == oracle


class TestSpecificKernels:
    def test_crc32_known_vector(self):
        module, entry, args, oracle = crc32_kernel(b"123456789")
        # The canonical CRC-32 check value.
        assert oracle == 0xCBF43926
        assert execute(module, entry, args, Target.CHERIOT) == 0xCBF43926

    def test_search_miss_returns_minus_one(self):
        module, entry, args, oracle = string_search_kernel(needle=b"zebra")
        assert oracle == 0xFFFFFFFF
        assert execute(module, entry, args, Target.RV32E) == 0xFFFFFFFF

    def test_fibonacci_values(self):
        for n, expected in ((0, 0), (1, 1), (10, 55), (47, 2971215073)):
            module, entry, args, oracle = fibonacci_kernel(n)
            assert oracle == expected

    def test_binary_search_miss(self):
        module, entry, args, oracle = binary_search_kernel(target=5000)
        assert oracle == 0xFFFFFFFF
        assert execute(module, entry, args, Target.CHERIOT) == 0xFFFFFFFF
