"""Tests for the CoreMark workalike (Table 3)."""

import pytest

from repro.pipeline import CoreKind
from repro.workloads.coremark import (
    build_coremark_module,
    run_coremark,
    table3,
)


@pytest.fixture(scope="module")
def results():
    """One iteration per config is enough for correctness checks."""
    out = {}
    for core in (CoreKind.FLUTE, CoreKind.IBEX):
        for config in ("rv32e", "cheriot", "cheriot+filter"):
            out[(core, config)] = run_coremark(core, config, iterations=1)
    return out


class TestFunctionalCorrectness:
    def test_crc_identical_across_all_configs(self, results):
        """Same computation under every ISA/filter configuration."""
        crcs = {r.crc for r in results.values()}
        assert len(crcs) == 1
        assert crcs.pop() != 0

    def test_instruction_counts_differ_by_isa_not_core(self, results):
        """The timing model, not the functional run, separates cores."""
        for config in ("rv32e", "cheriot"):
            flute = results[(CoreKind.FLUTE, config)]
            ibex = results[(CoreKind.IBEX, config)]
            assert flute.instructions == ibex.instructions

    def test_cheriot_executes_more_instructions(self, results):
        """Bounds-setting and the compiler bugs cost instructions."""
        rv = results[(CoreKind.IBEX, "rv32e")]
        ch = results[(CoreKind.IBEX, "cheriot")]
        assert ch.instructions > rv.instructions


class TestOverheadShapes:
    def test_capability_overhead_larger_on_ibex(self, results):
        """Table 3: Ibex pays more for capabilities (narrow bus)."""
        def overhead(core):
            base = results[(core, "rv32e")].cycles
            return (results[(core, "cheriot")].cycles - base) / base

        assert overhead(CoreKind.IBEX) > overhead(CoreKind.FLUTE)

    def test_load_filter_free_on_flute(self, results):
        assert (
            results[(CoreKind.FLUTE, "cheriot+filter")].cycles
            == results[(CoreKind.FLUTE, "cheriot")].cycles
        )

    def test_load_filter_costs_on_ibex(self, results):
        assert (
            results[(CoreKind.IBEX, "cheriot+filter")].cycles
            > results[(CoreKind.IBEX, "cheriot")].cycles
        )

    def test_overheads_in_paper_regime(self, results):
        """Rough magnitudes: Flute caps ~6%, Ibex caps ~13%, Ibex

        filter total ~21% (we accept a generous band)."""
        def overhead(core, config):
            base = results[(core, "rv32e")].cycles
            return 100 * (results[(core, config)].cycles - base) / base

        assert 2 < overhead(CoreKind.FLUTE, "cheriot") < 10
        assert 6 < overhead(CoreKind.IBEX, "cheriot") < 18
        assert 12 < overhead(CoreKind.IBEX, "cheriot+filter") < 28


class TestHarness:
    def test_bad_config_rejected(self):
        with pytest.raises(ValueError):
            run_coremark(CoreKind.IBEX, "mystery")

    def test_module_layouts_differ_by_pointer_size(self):
        m4 = build_coremark_module(4)
        m8 = build_coremark_module(8)
        assert m8.globals["nodes"].size == 2 * m4.globals["nodes"].size

    def test_table3_shape(self):
        rows = table3(iterations=1)
        assert len(rows) == 6
        for row in rows:
            if row["config"] == "rv32e":
                assert row["score_scaled"] == pytest.approx(row["paper_score"])
            assert row["cycles"] > 0


class TestKernelProfile:
    @pytest.fixture(scope="class")
    def profiles(self):
        from repro.workloads.coremark import run_kernel_profile

        return {
            config: run_kernel_profile(CoreKind.IBEX, config, iterations=1)
            for config in ("rv32e", "cheriot", "cheriot+filter")
        }

    def test_all_kernels_profiled(self, profiles):
        assert set(profiles["rv32e"]) == {"list", "matrix", "state"}
        assert all(v > 0 for v in profiles["rv32e"].values())

    def test_list_kernel_suffers_most_from_the_filter(self, profiles):
        """The pointer-chasing kernel pays the load filter hardest —

        every `next` is a clc (paper's Table 3 discussion)."""
        def filter_overhead(kernel):
            base = profiles["cheriot"][kernel]
            return (profiles["cheriot+filter"][kernel] - base) / base

        assert filter_overhead("list") > filter_overhead("matrix")
        assert filter_overhead("list") > filter_overhead("state")

    def test_capability_overhead_ordering(self, profiles):
        """list (pointer traffic) > state (globals only) for caps too."""
        def caps_overhead(kernel):
            base = profiles["rv32e"][kernel]
            return (profiles["cheriot"][kernel] - base) / base

        assert caps_overhead("list") > caps_overhead("state")

    def test_bad_config_rejected(self):
        from repro.workloads.coremark import run_kernel_profile

        with pytest.raises(ValueError):
            run_kernel_profile(CoreKind.IBEX, "bogus")
