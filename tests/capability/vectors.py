"""Golden conformance vectors for the capability encoding.

Deterministically generated (seeded) encode/decode/pack cases, pinned
as literal expectations so any change to the stored format — field
positions, permission compression, bounds decode — fails loudly and is
visible in review.  A second implementation (RTL, another simulator)
can consume the same vectors: each entry is

    (packed_64bit_hex, tag, address, base, top, otype, perm_names)
"""

from __future__ import annotations

import random
from typing import List, Tuple

from repro.capability import Capability, unpack
from repro.capability.encoding import pack


def generate_vectors(count: int = 64, seed: int = 0x0C4E) -> List[Tuple]:
    """Regenerate the vector list (used to refresh GOLDEN_VECTORS)."""
    from repro.capability import Permission as P, make_roots

    rng = random.Random(seed)
    roots = make_roots()
    vectors: List[Tuple] = []
    for _ in range(count):
        base = rng.randrange(0, 1 << 28) & ~0x7
        length = rng.choice([8, 16, 24, 64, 100, 256, 511, 512, 4096, 1 << 16])
        if base + length > (1 << 32):
            continue
        root = roots.memory if rng.random() < 0.7 else roots.executable
        try:
            cap = root.set_address(base).set_bounds(length)
        except Exception:
            continue
        if rng.random() < 0.3:
            cap = cap.clear_perms(P.SD, P.SL)
        if rng.random() < 0.2:
            cap = cap.make_local()
        if rng.random() < 0.2 and not cap.is_executable:
            cap = cap.seal(roots.sealing.set_address(rng.randrange(1, 8)))
        vectors.append(
            (
                f"{pack(cap):016x}",
                cap.tag,
                cap.address,
                cap.base,
                cap.top,
                cap.otype,
                tuple(sorted(p.name for p in cap.perms)),
            )
        )
    return vectors


#: Pinned output of ``generate_vectors()`` — regenerate ONLY when the
#: stored format deliberately changes, and say so in the changelog.
GOLDEN_VECTORS = [
    ('7e05d1e8069771d0', True, 110588368, 110588368, 110588880, 0, ('GL', 'LD', 'LG', 'LM', 'MC', 'SD', 'SL')),
    ('1e13cee80584de78', True, 92593784, 92593776, 92597888, 0, ('EX', 'LD', 'LG', 'LM', 'MC', 'SR')),
    ('7e02317c0431ad18', True, 70364440, 70364440, 70364540, 0, ('GL', 'LD', 'LG', 'LM', 'MC', 'SD', 'SL')),
    ('5e02f19009244978', True, 153373048, 153373048, 153373072, 0, ('EX', 'GL', 'LD', 'LG', 'LM', 'MC', 'SR')),
    ('7e025168012be328', True, 19653416, 19653416, 19653480, 0, ('GL', 'LD', 'LG', 'LM', 'MC', 'SD', 'SL')),
    ('3e03f03805b873f8', True, 95974392, 95974392, 95974456, 0, ('LD', 'LG', 'LM', 'MC', 'SD', 'SL')),
    ('7e02617007ccb930', True, 130857264, 130857264, 130857328, 0, ('GL', 'LD', 'LG', 'LM', 'MC', 'SD', 'SL')),
    ('7e8010200297f408', True, 43512840, 43512840, 43512864, 2, ('GL', 'LD', 'LG', 'LM', 'MC', 'SD', 'SL')),
    ('5e0271500ca3c738', True, 212059960, 212059960, 212059984, 0, ('EX', 'GL', 'LD', 'LG', 'LM', 'MC', 'SR')),
    ('3f914da6056daa60', True, 91073120, 91073120, 91077216, 6, ('LD', 'LG', 'LM', 'MC', 'SD', 'SL')),
    ('1e03900806d7fdc8', True, 114818504, 114818504, 114818568, 0, ('EX', 'LD', 'LG', 'LM', 'MC', 'SR')),
    ('3e04512801321850', True, 20060240, 20060240, 20060752, 0, ('LD', 'LG', 'LM', 'MC', 'SD', 'SL')),
    ('7e02215004abb510', True, 78361872, 78361872, 78361936, 0, ('GL', 'LD', 'LG', 'LM', 'MC', 'SD', 'SL')),
    ('7e82f07805c3a378', True, 96707448, 96707448, 96707704, 2, ('GL', 'LD', 'LG', 'LM', 'MC', 'SD', 'SL')),
    ('5e0321a008da8390', True, 148538256, 148538256, 148538272, 0, ('EX', 'GL', 'LD', 'LG', 'LM', 'MC', 'SR')),
    ('6e00512806005828', True, 100685864, 100685864, 100686120, 0, ('GL', 'LD', 'LG', 'LM', 'MC')),
    ('5e0361f0013dd9b0', True, 20830640, 20830640, 20830704, 0, ('EX', 'GL', 'LD', 'LG', 'LM', 'MC', 'SR')),
    ('7e01a0cf0df834d0', True, 234370256, 234370256, 234370767, 0, ('GL', 'LD', 'LG', 'LM', 'MC', 'SD', 'SL')),
    ('7e02317c0164db18', True, 23386904, 23386904, 23387004, 0, ('GL', 'LD', 'LG', 'LM', 'MC', 'SD', 'SL')),
    ('7e00e088081cec70', True, 136113264, 136113264, 136113288, 0, ('GL', 'LD', 'LG', 'LM', 'MC', 'SD', 'SL')),
    ('3e5372ba0d083b98', True, 218643352, 218643344, 218647456, 1, ('LD', 'LG', 'LM', 'MC', 'SD', 'SL')),
    ('1e01e1f00ebff4f0', True, 247461104, 247461104, 247461360, 0, ('EX', 'LD', 'LG', 'LM', 'MC', 'SR')),
    ('6e01c0e80a7fb0e0', True, 176140512, 176140512, 176140520, 0, ('GL', 'LD', 'LG', 'LM', 'MC')),
    ('7f41309706b39a98', True, 112433816, 112433816, 112434327, 5, ('GL', 'LD', 'LG', 'LM', 'MC', 'SD', 'SL')),
    ('5e03f0f80f117df8', True, 252804600, 252804600, 252804856, 0, ('EX', 'GL', 'LD', 'LG', 'LM', 'MC', 'SR')),
    ('3e03f00809c403f8', True, 163841016, 163841016, 163841032, 0, ('LD', 'LG', 'LM', 'MC', 'SD', 'SL')),
    ('7e11d1e807ce2e80', True, 130952832, 130952832, 130956928, 0, ('GL', 'LD', 'LG', 'LM', 'MC', 'SD', 'SL')),
    ('5e03a0d001fc17d0', True, 33298384, 33298384, 33298640, 0, ('EX', 'GL', 'LD', 'LG', 'LM', 'MC', 'SR')),
    ('7e0130a006f6c698', True, 116835992, 116835992, 116836000, 0, ('GL', 'LD', 'LG', 'LM', 'MC', 'SD', 'SL')),
    ('5e01e0f80a9cd8f0', True, 178051312, 178051312, 178051320, 0, ('EX', 'GL', 'LD', 'LG', 'LM', 'MC', 'SR')),
    ('1e04b15807c2bcb0', True, 130202800, 130202800, 130203312, 0, ('EX', 'LD', 'LG', 'LM', 'MC', 'SR')),
    ('5e01e108009b34f0', True, 10171632, 10171632, 10171656, 0, ('EX', 'GL', 'LD', 'LG', 'LM', 'MC', 'SR')),
    ('5e01a0e80513e6d0', True, 85190352, 85190352, 85190376, 0, ('EX', 'GL', 'LD', 'LG', 'LM', 'MC', 'SR')),
    ('7e0780c009ac6380', True, 162292608, 162292608, 162293120, 0, ('GL', 'LD', 'LG', 'LM', 'MC', 'SD', 'SL')),
    ('5e0321a00c234190', True, 203637136, 203637136, 203637152, 0, ('EX', 'GL', 'LD', 'LG', 'LM', 'MC', 'SR')),
    ('7e22723a01c739b8', True, 29833656, 29833472, 29899264, 0, ('GL', 'LD', 'LG', 'LM', 'MC', 'SD', 'SL')),
    ('7e02719c040d8b38', True, 67996472, 67996472, 67996572, 0, ('GL', 'LD', 'LG', 'LM', 'MC', 'SD', 'SL')),
    ('3e02d1670ea6df68', True, 245817192, 245817192, 245817703, 0, ('LD', 'LG', 'LM', 'MC', 'SD', 'SL')),
    ('7e00908804b31248', True, 78844488, 78844488, 78844552, 0, ('GL', 'LD', 'LG', 'LM', 'MC', 'SD', 'SL')),
    ('6e2344a30b57a2f0', True, 190292720, 190292480, 190358272, 0, ('GL', 'LD', 'LG', 'LM', 'MC')),
    ('3e03309806d98f98', True, 114921368, 114921368, 114921624, 0, ('LD', 'LG', 'LM', 'MC', 'SD', 'SL')),
    ('7e022120073e0b10', True, 121506576, 121506576, 121506592, 0, ('GL', 'LD', 'LG', 'LM', 'MC', 'SD', 'SL')),
    ('6e11dfef0a040ef0', True, 168038128, 168038128, 168042224, 0, ('GL', 'LD', 'LG', 'LM', 'MC')),
    ('7e03f000089fcff8', True, 144691192, 144691192, 144691200, 0, ('GL', 'LD', 'LG', 'LM', 'MC', 'SD', 'SL')),
    ('5e03008008138d80', True, 135499136, 135499136, 135499392, 0, ('EX', 'GL', 'LD', 'LG', 'LM', 'MC', 'SR')),
    ('1e00709c0f6f1e38', True, 258940472, 258940472, 258940572, 0, ('EX', 'LD', 'LG', 'LM', 'MC', 'SR')),
    ('7ec3c0e00e259be0', True, 237345760, 237345760, 237346016, 3, ('GL', 'LD', 'LG', 'LM', 'MC', 'SD', 'SL')),
    ('7e00805805d68c40', True, 97946688, 97946688, 97946712, 0, ('GL', 'LD', 'LG', 'LM', 'MC', 'SD', 'SL')),
    ('7e422150008f5f10', True, 9395984, 9395984, 9396048, 1, ('GL', 'LD', 'LG', 'LM', 'MC', 'SD', 'SL')),
    ('7e07309801491f30', True, 21569328, 21569328, 21569840, 0, ('GL', 'LD', 'LG', 'LM', 'MC', 'SD', 'SL')),
    ('6e02c1a003840d60', True, 58985824, 58985824, 58985888, 0, ('GL', 'LD', 'LG', 'LM', 'MC')),
    ('5e027150010bf538', True, 17560888, 17560888, 17560912, 0, ('EX', 'GL', 'LD', 'LG', 'LM', 'MC', 'SR')),
    ('7f12422106619210', True, 107057680, 107057680, 107061776, 4, ('GL', 'LD', 'LG', 'LM', 'MC', 'SD', 'SL')),
    ('5e06d0680d99a6d0', True, 228173520, 228173520, 228174032, 0, ('EX', 'GL', 'LD', 'LG', 'LM', 'MC', 'SR')),
    ('1e02215002b8ff10', True, 45678352, 45678352, 45678416, 0, ('EX', 'LD', 'LG', 'LM', 'MC', 'SR')),
    ('7e8381d80326c7c0', True, 52873152, 52873152, 52873176, 2, ('GL', 'LD', 'LG', 'LM', 'MC', 'SD', 'SL')),
    ('3e0180d00cda42c0', True, 215630528, 215630528, 215630544, 0, ('LD', 'LG', 'LM', 'MC', 'SD', 'SL')),
    ('5e02b168009c4358', True, 10240856, 10240856, 10240872, 0, ('EX', 'GL', 'LD', 'LG', 'LM', 'MC', 'SR')),
    ('7e0001ff09414200', True, 155271680, 155271680, 155272191, 0, ('GL', 'LD', 'LG', 'LM', 'MC', 'SD', 'SL')),
    ('7e01711c0784f0b8', True, 126152888, 126152888, 126152988, 0, ('GL', 'LD', 'LG', 'LM', 'MC', 'SD', 'SL')),
    ('7e1350a905c27a88', True, 96631432, 96631424, 96635536, 0, ('GL', 'LD', 'LG', 'LM', 'MC', 'SD', 'SL')),
    ('7e8120f406eb3e90', True, 116080272, 116080272, 116080372, 2, ('GL', 'LD', 'LG', 'LM', 'MC', 'SD', 'SL')),
    ('5e00a068071fc250', True, 119521872, 119521872, 119521896, 0, ('EX', 'GL', 'LD', 'LG', 'LM', 'MC', 'SR')),
    ('3e02613801d33730', True, 30619440, 30619440, 30619448, 0, ('LD', 'LG', 'LM', 'MC', 'SD', 'SL')),
]
