"""Property tests for single-bit upsets in the stored capability format.

The claim under test (paper section 3.2, and the fault-injection
campaign's architectural footing): a single bit flip in a capability's
64-bit stored encoding can never *silently* widen authority.  Flips
that travel through the architectural store path kill the granule's tag
outright; guarded manipulation of a live capability either preserves
its bounds and permissions exactly or leaves the result untagged.
"""

from hypothesis import given
from hypothesis import strategies as st
import pytest

from repro.capability import Capability, Permission as P
from repro.capability.errors import MonotonicityFault, TagFault
from repro.memory import TaggedMemory

RW = {P.GL, P.LD, P.SD, P.MC, P.SL, P.LM, P.LG}

MEM_BASE = 0x2000_0000
MEM_SIZE = 0x1_0000


@st.composite
def capabilities(draw):
    """Tagged RW capabilities with exactly representable bounds."""
    length = draw(st.integers(min_value=8, max_value=MEM_SIZE // 2))
    base = draw(st.integers(min_value=0, max_value=MEM_SIZE - length))
    perms = draw(
        st.sets(
            st.sampled_from(sorted(RW, key=lambda p: p.name)), min_size=1
        ).map(frozenset)
    )
    cap = Capability.from_bounds(MEM_BASE + (base & ~7), length, perms | {P.LD})
    return cap


class TestStorePathFlips:
    @given(
        cap=capabilities(),
        slot=st.integers(min_value=0, max_value=7),
        bit_offset=st.integers(min_value=0, max_value=63),
    )
    def test_any_single_bit_flip_in_memory_untags(self, cap, slot, bit_offset):
        """Flipping ANY bit of a stored capability through the store

        path leaves an untagged granule: the damaged bits can never be
        dereferenced, whatever they now decode to."""
        mem = TaggedMemory(MEM_BASE, MEM_SIZE)
        address = MEM_BASE + 8 * slot
        mem.write_capability(address, cap)
        assert mem.tag_at(address)

        byte_addr = address + bit_offset // 8
        byte = mem.read_bytes(byte_addr, 1)[0]
        mem.write_bytes(byte_addr, bytes([byte ^ (1 << (bit_offset % 8))]))

        assert not mem.tag_at(address)
        damaged = mem.read_capability(address)
        assert not damaged.tag
        with pytest.raises(TagFault):
            damaged.check_access(damaged.address, 1, (P.LD,))


class TestGuardedManipulation:
    @given(cap=capabilities(), bit=st.integers(min_value=0, max_value=31))
    def test_address_warp_never_widens(self, cap, bit):
        """``set_address`` with an arbitrarily corrupted address either

        clears the tag (unrepresentable) or leaves authority intact —
        never a tagged capability with moved bounds."""
        warped = cap.set_address(cap.address ^ (1 << bit))
        if warped.tag:
            assert warped.base == cap.base
            assert warped.top == cap.top
            assert warped.perms == cap.perms
        else:
            with pytest.raises(TagFault):
                warped.check_access(warped.address, 1, (P.LD,))

    @given(
        cap=capabilities(),
        extra=st.integers(min_value=1, max_value=1 << 30),
    )
    def test_bounds_can_never_grow(self, cap, extra):
        """``set_bounds`` is monotonic: any request reaching past the

        current top faults instead of widening."""
        want = (cap.top - cap.address) + extra
        with pytest.raises(MonotonicityFault):
            cap.set_bounds(want)

    @given(cap=capabilities(), shrink=st.integers(min_value=8, max_value=64))
    def test_shrinking_stays_inside(self, cap, shrink):
        narrowed = cap.set_bounds(min(shrink, cap.top - cap.address))
        if narrowed.tag:
            assert narrowed.base >= cap.base
            assert narrowed.top <= cap.top
