"""Stateful property: no sequence of guarded operations gains authority.

The paper's summary of guarded manipulation (section 2.4): bounds may
be narrowed but neither widened nor displaced; permissions may be shed
but not regained; tags may be cleared but never set.  We drive random
operation sequences against a capability and require the invariant to
hold at every step — the closest Python analogue of proving
monotonicity over the ISA.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.capability import Capability, Permission as P, make_roots
from repro.capability.errors import CapabilityError

ALL_PERMS = list(P)

operations = st.lists(
    st.one_of(
        st.tuples(st.just("inc_address"), st.integers(-(1 << 16), 1 << 16)),
        st.tuples(st.just("set_address"), st.integers(0, (1 << 32) - 1)),
        st.tuples(st.just("set_bounds"), st.integers(0, 1 << 20)),
        st.tuples(
            st.just("and_perms"),
            st.sets(st.sampled_from(ALL_PERMS), max_size=12).map(frozenset),
        ),
        st.tuples(st.just("clear_tag"), st.none()),
        st.tuples(st.just("make_local"), st.none()),
        st.tuples(st.just("readonly"), st.none()),
    ),
    max_size=12,
)


def apply_op(cap: Capability, op, arg):
    if op == "inc_address":
        return cap.inc_address(arg)
    if op == "set_address":
        return cap.set_address(arg)
    if op == "set_bounds":
        return cap.set_bounds(arg)
    if op == "and_perms":
        return cap.and_perms(arg)
    if op == "clear_tag":
        return cap.untagged()
    if op == "make_local":
        return cap.make_local()
    if op == "readonly":
        return cap.readonly()
    raise AssertionError(op)


@settings(max_examples=200, deadline=None)
@given(operations)
def test_no_operation_sequence_escalates(script):
    origin = make_roots().memory.set_address(0x2000_0000).set_bounds(4096)
    cap = origin
    for op, arg in script:
        try:
            cap = apply_op(cap, op, arg)
        except CapabilityError:
            continue  # a refused operation leaves authority unchanged
        # The running value never exceeds the origin's authority:
        if cap.tag:
            assert cap.base >= origin.base
            assert cap.top <= origin.top
            assert cap.perms <= origin.perms
    # And a cleared tag never comes back.
    dead = cap.untagged()
    for op, arg in script:
        try:
            dead = apply_op(dead, op, arg)
        except CapabilityError:
            continue
        assert not dead.tag


@settings(max_examples=100, deadline=None)
@given(operations, operations)
def test_sealing_freezes_authority(script_a, script_b):
    """Whatever you do around a seal/unseal pair, the unsealed value

    has exactly the pre-seal authority."""
    roots = make_roots()
    cap = roots.memory.set_address(0x2000_0000).set_bounds(1024)
    for op, arg in script_a:
        try:
            cap = apply_op(cap, op, arg)
        except CapabilityError:
            continue
    if not cap.tag:
        return
    authority = roots.sealing.set_address(3)
    sealed = cap.seal(authority)
    # Sealed capabilities are frozen: mutations fault or untag.
    for op, arg in script_b:
        try:
            mutated = apply_op(sealed, op, arg)
        except CapabilityError:
            continue
        if op in ("inc_address", "set_address") and mutated.tag:
            raise AssertionError("sealed capability moved with tag intact")
    assert sealed.unseal(authority) == cap
