"""The stored capability format is pinned by golden vectors.

Any change to field positions, the permission compression or the
bounds decode makes these fail — deliberately.  To evolve the format,
regenerate `vectors.GOLDEN_VECTORS` and account for it in review.
"""

from repro.capability import unpack
from repro.capability.encoding import pack

from .vectors import GOLDEN_VECTORS, generate_vectors


class TestGoldenVectors:
    def test_vectors_are_pinned_and_current(self):
        """The pinned literals equal what the implementation produces

        today — i.e. the format has not drifted."""
        assert GOLDEN_VECTORS == generate_vectors()

    def test_unpack_agrees_with_every_vector(self):
        for packed_hex, tag, address, base, top, otype, perm_names in GOLDEN_VECTORS:
            cap = unpack(int(packed_hex, 16), tag)
            assert cap.address == address
            assert cap.base == base
            assert cap.top == top
            assert cap.otype == otype
            assert tuple(sorted(p.name for p in cap.perms)) == perm_names

    def test_pack_roundtrips_every_vector(self):
        for packed_hex, tag, *_ in GOLDEN_VECTORS:
            bits = int(packed_hex, 16)
            assert pack(unpack(bits, tag)) == bits

    def test_vector_corpus_is_diverse(self):
        assert len(GOLDEN_VECTORS) >= 40
        assert any(otype != 0 for *_, otype, _p in GOLDEN_VECTORS)
        assert any("EX" in perms for *_, perms in GOLDEN_VECTORS)
        assert any("GL" not in perms for *_, perms in GOLDEN_VECTORS)
