"""Tests for the 64-bit stored capability format (paper Figure 1)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.capability import Capability, Permission as P, make_roots
from repro.capability.bounds import EncodedBounds
from repro.capability.compression import decompress
from repro.capability.encoding import pack, pack_metadata, unpack

RW = {P.GL, P.LD, P.SD, P.MC, P.SL, P.LM, P.LG}


class TestLayout:
    def test_address_in_low_word(self):
        cap = Capability.from_bounds(0x1234_5678, 8, RW)
        assert pack(cap) & 0xFFFFFFFF == 0x1234_5678

    def test_reserved_bit_is_meta_msb(self):
        cap = Capability.from_bounds(0, 8, RW)
        flagged = Capability(
            address=cap.address,
            bounds=cap.bounds,
            perms=cap.perms,
            tag=True,
            reserved=True,
        )
        assert pack_metadata(flagged) >> 31 == 1
        assert pack_metadata(cap) >> 31 == 0

    def test_field_positions(self):
        bounds = EncodedBounds(exponent_field=0xA, base_field=0x155, top_field=0x0AA)
        cap = Capability(address=0, bounds=bounds, perms=frozenset(), otype=5, tag=False)
        meta = pack_metadata(cap)
        assert (meta >> 0) & 0x1FF == 0x0AA  # T
        assert (meta >> 9) & 0x1FF == 0x155  # B
        assert (meta >> 18) & 0xF == 0xA  # E
        assert (meta >> 22) & 0x7 == 5  # otype
        assert (meta >> 25) & 0x3F == 0  # compressed perms


class TestRoundtrip:
    def test_simple(self):
        cap = Capability.from_bounds(0x2000_0000, 4096, RW)
        assert unpack(pack(cap), True) == cap

    def test_roots_roundtrip(self):
        for root in make_roots():
            assert unpack(pack(root), True) == root

    def test_tag_is_out_of_band(self):
        cap = Capability.from_bounds(0x1000, 16, RW)
        recovered = unpack(pack(cap), False)
        assert not recovered.tag
        assert recovered.untagged() == cap.untagged()

    @given(st.integers(min_value=0, max_value=(1 << 64) - 1))
    def test_any_bits_unpack_then_repack_stable(self, bits):
        """Memory holds arbitrary bits; decode must be total and stable

        after one normalization (the permission field snaps to its
        canonical format on the first pass)."""
        cap = unpack(bits, False)
        again = unpack(pack(cap), False)
        assert again == cap

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            unpack(1 << 64, False)
        with pytest.raises(ValueError):
            unpack(-1, False)


class TestPermFieldAgainstCompression:
    def test_perm_field_decodes_via_compression_module(self):
        cap = Capability.from_bounds(0x80, 8, {P.LD, P.MC, P.LM})
        meta = pack_metadata(cap)
        assert decompress((meta >> 25) & 0x3F) == cap.perms
