"""Tests for the architectural permission set (paper Table 1)."""

import pytest

from repro.capability.permissions import (
    ARCHITECTURAL_ORDER,
    Permission,
    from_architectural_word,
    perm_set,
    to_architectural_word,
)


class TestArchitecturalOrder:
    def test_twelve_permissions(self):
        assert len(ARCHITECTURAL_ORDER) == 12
        assert len(set(ARCHITECTURAL_ORDER)) == 12

    def test_commonly_cleared_permissions_are_low_bits(self):
        """Section 3.2.1: GL, LG, LM, SD live in the lowest bits so one

        compressed-immediate AND can clear them."""
        low_four = set(ARCHITECTURAL_ORDER[:4])
        assert low_four == {
            Permission.GL,
            Permission.LG,
            Permission.LM,
            Permission.SD,
        }

    def test_word_for_low_mask_fits_compressed_immediate(self):
        mask = to_architectural_word(
            {Permission.GL, Permission.LG, Permission.LM, Permission.SD}
        )
        assert mask == 0b1111


class TestWordRoundtrip:
    def test_empty(self):
        assert to_architectural_word(()) == 0
        assert from_architectural_word(0) == frozenset()

    def test_all(self):
        word = to_architectural_word(ARCHITECTURAL_ORDER)
        assert word == (1 << 12) - 1
        assert from_architectural_word(word) == frozenset(ARCHITECTURAL_ORDER)

    @pytest.mark.parametrize("perm", list(Permission))
    def test_single_bits(self, perm):
        word = to_architectural_word({perm})
        assert bin(word).count("1") == 1
        assert from_architectural_word(word) == {perm}

    def test_out_of_range_word_rejected(self):
        with pytest.raises(ValueError):
            from_architectural_word(1 << 12)
        with pytest.raises(ValueError):
            from_architectural_word(-1)

    def test_perm_set_builder(self):
        assert perm_set(Permission.LD, Permission.MC) == frozenset(
            {Permission.LD, Permission.MC}
        )
