"""Exhaustive cross-check of the bounds decoder against an independent

reference implementation.

The paper checked its encoding with Sail's SMT backend.  Our strongest
software equivalent: a second, naive implementation of Figure 3 written
in a deliberately different style (big-integer bit strings, no
wraparound tricks), compared exhaustively over small exponents and
densely-sampled field values, plus every corner the corrections table
can reach.
"""

import pytest

from repro.capability.bounds import EncodedBounds, decode


def reference_decode(address: int, e_field: int, b_field: int, t_field: int):
    """Figure 3, transliterated: explicit bit-slicing, no masking tricks."""
    e = 24 if e_field == 0xF else e_field
    # a_top = a[31 : e+9], a_mid = a[e+8 : e]
    a_top = address >> (e + 9)
    a_mid = (address >> e) % 512

    if a_mid < b_field:
        c_b = -1
        c_t = 0 if t_field < b_field else -1
    else:
        c_b = 0
        c_t = 1 if t_field < b_field else 0

    base = (a_top + c_b) * (2 ** (e + 9)) + b_field * (2 ** e)
    top = (a_top + c_t) * (2 ** (e + 9)) + t_field * (2 ** e)
    # The hardware computes these in 32/33-bit modular arithmetic.
    base %= 2 ** 32
    top %= 2 ** 33
    return base, top


class TestExhaustive:
    def test_every_correction_case_small_exponents(self):
        """Dense sweep at e in {0, 1}: all four correction rows, both

        window positions, field extremes."""
        for e_field in (0, 1):
            for b_field in (0, 1, 255, 256, 510, 511):
                for t_field in (0, 1, 255, 256, 510, 511):
                    enc = EncodedBounds(e_field, b_field, t_field)
                    for address in range(0, 0x1000, 0x40 >> e_field or 1):
                        assert decode(address, enc) == reference_decode(
                            address, e_field, b_field, t_field
                        )

    def test_window_straddles_at_every_exponent(self):
        """Addresses straddling the 2**(e+9) region boundary are where

        the corrections bite; check them at every storable exponent."""
        for e_field in list(range(15)):
            e = 24 if e_field == 0xF else e_field
            region = 1 << (e + 9)
            for b_field, t_field in ((0x1F0, 0x010), (0x100, 0x0FF), (1, 0)):
                enc = EncodedBounds(e_field, b_field, t_field)
                for region_index in (0, 1, 2):
                    for offset in (-2 << e, -1 << e, 0, 1 << e, 2 << e):
                        address = region * region_index + offset
                        if 0 <= address < (1 << 32):
                            assert decode(address, enc) == reference_decode(
                                address, e_field, b_field, t_field
                            ), (e_field, b_field, t_field, hex(address))

    def test_full_space_exponent(self):
        for b_field, t_field in ((0, 256), (0, 0), (5, 300), (400, 100)):
            enc = EncodedBounds(0xF, b_field, t_field)
            for address in (0, 1, 0xFFFF_FFFF, 0x8000_0000, 0x00FF_FFFF):
                assert decode(address, enc) == reference_decode(
                    address, 0xF, b_field, t_field
                )

    def test_randomized_agreement(self):
        import random

        rng = random.Random(0xC4E21)
        for _ in range(20_000):
            e_field = rng.randrange(16)
            b_field = rng.randrange(512)
            t_field = rng.randrange(512)
            address = rng.randrange(1 << 32)
            enc = EncodedBounds(e_field, b_field, t_field)
            assert decode(address, enc) == reference_decode(
                address, e_field, b_field, t_field
            )
