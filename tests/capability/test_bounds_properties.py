"""Property-based checks on the bounds encoding.

The paper verified encoding properties with Sail's SMT backend
(section 3.2.3); these hypothesis properties are our equivalent:
containment, monotone rounding, precision for small objects, and the
no-representable-range-below-base guarantee.
"""

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.capability.bounds import (
    ADDRESS_BITS,
    MAX_PRECISE_LENGTH,
    BoundsError,
    decode,
    encode,
    is_representable,
)

addresses = st.integers(min_value=0, max_value=(1 << ADDRESS_BITS) - 1)
lengths = st.integers(min_value=0, max_value=1 << ADDRESS_BITS)


def _fits(base, length):
    return base + length <= (1 << ADDRESS_BITS)


@given(addresses, lengths)
def test_requested_region_always_contained(base, length):
    """csetbounds never narrows below the request (monotone outward)."""
    assume(_fits(base, length))
    enc, actual_base, actual_top = encode(base, length)
    assert actual_base <= base
    assert actual_top >= base + length


@given(addresses, lengths)
def test_decode_at_base_matches_encoded_bounds(base, length):
    assume(_fits(base, length))
    enc, actual_base, actual_top = encode(base, length)
    assert decode(base, enc) == (actual_base, actual_top)


@given(addresses, st.integers(min_value=1, max_value=MAX_PRECISE_LENGTH))
def test_small_objects_encode_exactly(base, length):
    """Objects of up to 511 bytes can always be represented precisely."""
    assume(_fits(base, length))
    enc, actual_base, actual_top = encode(base, length, exact=True)
    assert (actual_base, actual_top) == (base, base + length)


@given(addresses, lengths)
def test_rounding_bounded_by_exponent_granule(base, length):
    """Padding on either side is strictly less than one 2**e granule."""
    assume(_fits(base, length))
    enc, actual_base, actual_top = encode(base, length)
    granule = 1 << enc.exponent
    assert base - actual_base < granule
    assert actual_top - (base + length) < granule


@given(addresses, lengths, addresses)
def test_representable_addresses_preserve_decode(base, length, probe):
    """is_representable is exactly 'decode unchanged' (the tag rule)."""
    assume(_fits(base, length))
    enc, actual_base, actual_top = encode(base, length)
    if is_representable(probe, enc, actual_base, actual_top):
        assert decode(probe, enc) == (actual_base, actual_top)
    else:
        assert decode(probe, enc) != (actual_base, actual_top)


@given(addresses, st.integers(min_value=1, max_value=1 << 20))
def test_no_representable_addresses_below_base(base, length):
    """Section 3.2.3: in all cases addresses below the base are invalid."""
    assume(_fits(base, length))
    enc, actual_base, actual_top = encode(base, length)
    assume(actual_base > 0)
    assert not is_representable(actual_base - 1, enc, actual_base, actual_top)


@given(addresses, st.integers(min_value=1, max_value=1 << 20))
def test_all_in_bounds_addresses_representable(base, length):
    """Every address inside the object decodes to the same bounds —

    pointer arithmetic within the object can never untag."""
    assume(_fits(base, length))
    enc, actual_base, actual_top = encode(base, length)
    span = actual_top - actual_base
    for offset in {0, 1, span // 2, span - 1}:
        probe = actual_base + offset
        if probe < (1 << ADDRESS_BITS):
            assert is_representable(probe, enc, actual_base, actual_top)
