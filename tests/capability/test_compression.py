"""Tests for the 6-bit compressed permission formats (paper Figure 2)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.capability.compression import (
    FORMAT_EXECUTABLE,
    FORMAT_MEM_CAP_RO,
    FORMAT_MEM_CAP_RW,
    FORMAT_MEM_CAP_WO,
    FORMAT_MEM_NO_CAP,
    FORMAT_SEALING,
    and_perms,
    classify,
    compress,
    decompress,
    normalize,
)
from repro.capability.permissions import Permission as P

perm_subsets = st.sets(st.sampled_from(list(P)), max_size=12).map(frozenset)


class TestFormats:
    def test_mem_cap_rw(self):
        perms = frozenset({P.GL, P.LD, P.SD, P.MC, P.SL, P.LM, P.LG})
        assert classify(perms) == FORMAT_MEM_CAP_RW
        assert decompress(compress(perms)) == perms

    def test_mem_cap_ro(self):
        perms = frozenset({P.LD, P.MC, P.LM, P.LG})
        assert classify(perms) == FORMAT_MEM_CAP_RO
        assert decompress(compress(perms)) == perms

    def test_mem_cap_wo(self):
        perms = frozenset({P.SD, P.MC})
        assert classify(perms) == FORMAT_MEM_CAP_WO
        assert decompress(compress(perms)) == perms

    def test_mem_no_cap(self):
        for perms in ({P.LD}, {P.SD}, {P.LD, P.SD}, {P.GL, P.LD}):
            perms = frozenset(perms)
            assert classify(perms) == FORMAT_MEM_NO_CAP
            assert decompress(compress(perms)) == perms

    def test_executable(self):
        perms = frozenset({P.GL, P.EX, P.LD, P.MC, P.SR, P.LM, P.LG})
        assert classify(perms) == FORMAT_EXECUTABLE
        assert decompress(compress(perms)) == perms

    def test_sealing(self):
        perms = frozenset({P.GL, P.SE, P.US, P.U0})
        assert classify(perms) == FORMAT_SEALING
        assert decompress(compress(perms)) == perms

    def test_empty_set_is_representable(self):
        assert normalize(frozenset()) == frozenset()
        assert decompress(compress(frozenset())) == frozenset()

    def test_classify_rejects_unrepresentable(self):
        with pytest.raises(ValueError):
            classify(frozenset({P.MC}))  # MC without LD or SD


class TestHardwareGuarantees:
    def test_w_xor_x(self):
        """W^X: no representable set holds both EX and SD (section 3.1.1)."""
        for word in range(64):
            perms = decompress(word)
            assert not (P.EX in perms and P.SD in perms)

    def test_sealing_never_mixes_with_memory(self):
        for word in range(64):
            perms = decompress(word)
            if perms & {P.SE, P.US, P.U0}:
                assert not perms & {P.LD, P.SD, P.MC, P.EX}

    def test_mc_requires_load_or_store(self):
        for word in range(64):
            perms = decompress(word)
            if P.MC in perms:
                assert perms & {P.LD, P.SD}


class TestNormalize:
    @given(perm_subsets)
    def test_monotone(self, perms):
        """normalize never *adds* permissions."""
        assert normalize(perms) <= perms

    @given(perm_subsets)
    def test_idempotent(self, perms):
        once = normalize(perms)
        assert normalize(once) == once

    @given(perm_subsets)
    def test_result_roundtrips(self, perms):
        result = normalize(perms)
        assert decompress(compress(result)) == result

    def test_wx_conflict_drops_execute(self):
        result = normalize(frozenset({P.EX, P.LD, P.MC, P.SD}))
        assert P.EX not in result
        assert {P.LD, P.SD, P.MC} <= result

    def test_sealing_dropped_when_memory_present(self):
        result = normalize(frozenset({P.LD, P.SE}))
        assert result == frozenset({P.LD})


class TestAndPerms:
    @given(perm_subsets, perm_subsets)
    def test_candperm_is_monotone_intersection(self, perms, mask):
        result = and_perms(perms, mask)
        assert result <= (frozenset(perms) & frozenset(mask))

    def test_clearing_store_keeps_load(self):
        rw = frozenset({P.GL, P.LD, P.SD, P.MC, P.SL, P.LM, P.LG})
        ro = and_perms(rw, rw - {P.SD, P.SL})
        assert P.SD not in ro and P.LD in ro and P.MC in ro


class TestExhaustiveDecode:
    def test_every_word_decodes_to_representable_set(self):
        for word in range(64):
            perms = decompress(word)
            assert normalize(perms) == perms

    def test_decode_is_injective_up_to_normal_forms(self):
        """Every representable set has exactly one encoding."""
        seen = {}
        for word in range(64):
            perms = decompress(word)
            recoded = compress(perms)
            # Re-encoding a decoded word must be stable.
            assert decompress(recoded) == perms
            seen.setdefault(perms, set()).add(recoded)
        for encodings in seen.values():
            assert len(encodings) == 1
