"""Tests for the reset roots (section 3.1.1) and otype space (3.2.2)."""

import pytest

from repro.capability import Capability, Permission as P, make_roots
from repro.capability.otypes import (
    FORWARD_SENTRY_OTYPES,
    OTYPE_UNSEALED,
    RETURN_SENTRY_OTYPES,
    RTOS_DATA_OTYPES,
    SEALED_OTYPE_COUNT,
    SOFTWARE_EXECUTABLE_OTYPES,
    SentryType,
    is_sentry,
    is_valid_otype,
    return_sentry_for_posture,
)


class TestRoots:
    def test_three_roots(self):
        roots = make_roots()
        assert len(roots) == 3

    def test_memory_root_covers_space_and_writes(self):
        memory = make_roots().memory
        assert memory.base == 0 and memory.top == 1 << 32
        assert memory.has(P.LD, P.SD, P.MC, P.SL, P.LG, P.LM, P.GL)
        assert not memory.is_executable

    def test_executable_root_wx(self):
        executable = make_roots().executable
        assert executable.has(P.EX, P.SR)
        assert P.SD not in executable.perms  # W^X at the root already

    def test_sealing_root_covers_otype_space(self):
        sealing = make_roots().sealing
        assert sealing.base == 0 and sealing.top == 8
        assert sealing.has(P.SE, P.US, P.U0)
        assert not sealing.has(P.LD)

    def test_roots_are_tagged_and_unsealed(self):
        for root in make_roots():
            assert root.tag and not root.is_sealed


class TestOtypeSpace:
    def test_seven_sealed_values_per_namespace(self):
        assert SEALED_OTYPE_COUNT == 7

    def test_valid_range(self):
        assert is_valid_otype(0) and is_valid_otype(7)
        assert not is_valid_otype(8) and not is_valid_otype(-1)

    def test_five_sentries_two_for_software(self):
        """Five executable otypes consumed by/reserved for sentries,

        leaving two for software use (section 3.2.2)."""
        assert len(FORWARD_SENTRY_OTYPES) + len(RETURN_SENTRY_OTYPES) == 5
        assert len(SOFTWARE_EXECUTABLE_OTYPES) == 2
        used = (
            set(int(s) for s in SentryType)
            | set(SOFTWARE_EXECUTABLE_OTYPES)
            | {OTYPE_UNSEALED}
        )
        assert used == set(range(8))

    def test_rtos_allocates_four_data_otypes(self):
        assert len(RTOS_DATA_OTYPES) == 4
        assert OTYPE_UNSEALED not in RTOS_DATA_OTYPES.values()

    def test_is_sentry_respects_namespace(self):
        # otype 1 is a sentry only in the *executable* namespace.
        assert is_sentry(1, executable=True)
        assert not is_sentry(1, executable=False)
        assert not is_sentry(6, executable=True)  # software otype

    def test_return_sentry_captures_posture(self):
        assert return_sentry_for_posture(True) is SentryType.RETURN_ENABLED
        assert return_sentry_for_posture(False) is SentryType.RETURN_DISABLED
