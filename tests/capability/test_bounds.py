"""Tests for the E/B/T bounds encoding (paper Figure 3, section 3.2.3)."""

import pytest

from repro.capability.bounds import (
    ADDRESS_BITS,
    E_FIELD_MAX,
    EXPONENT_MAX,
    MAX_PRECISE_LENGTH,
    BoundsError,
    EncodedBounds,
    decode,
    encode,
    exponent_for_length,
    is_representable,
)


class TestFieldValidation:
    def test_field_ranges(self):
        EncodedBounds(0, 0, 0)
        EncodedBounds(0xF, 0x1FF, 0x1FF)
        with pytest.raises(BoundsError):
            EncodedBounds(16, 0, 0)
        with pytest.raises(BoundsError):
            EncodedBounds(0, 512, 0)
        with pytest.raises(BoundsError):
            EncodedBounds(0, 0, 512)

    def test_exponent_special_value(self):
        assert EncodedBounds(0xF, 0, 0).exponent == EXPONENT_MAX
        assert EncodedBounds(7, 0, 0).exponent == 7


class TestDecodeCorrections:
    """The four correction rows of Figure 3."""

    def test_no_no(self):
        # a_mid >= B and T >= B: both corrections zero.
        enc = EncodedBounds(0, 0x10, 0x20)
        base, top = decode(0x18, enc)
        assert (base, top) == (0x10, 0x20)

    def test_no_yes(self):
        # a_mid >= B, T < B: top is in the next 2**(e+9) region (c_t=+1).
        enc = EncodedBounds(0, 0x1F0, 0x010)
        address = 0x1F4
        base, top = decode(address, enc)
        assert base == 0x1F0
        assert top == 0x210  # 0x010 plus one region of 0x200

    def test_yes_no_case(self):
        # a_mid < B and T >= B: whole object is in the previous region.
        enc = EncodedBounds(0, 0x1F0, 0x1F8)
        address = 0x204  # a_mid = 0x004 < B
        base, top = decode(address, enc)
        assert base == 0x1F0
        assert top == 0x1F8

    def test_yes_yes(self):
        # a_mid < B, T < B: base in previous region, top in this one.
        enc = EncodedBounds(0, 0x1F0, 0x010)
        address = 0x200  # a_mid = 0 < B
        base, top = decode(address, enc)
        assert base == 0x1F0
        assert top == 0x210

    def test_exponent_scales_fields(self):
        enc = EncodedBounds(4, 2, 6)
        base, top = decode(0x40, enc)
        assert base == 2 << 4
        assert top == 6 << 4


class TestFullSpaceRoot:
    def test_root_covers_whole_address_space(self):
        enc, base, top = encode(0, 1 << ADDRESS_BITS)
        assert enc.exponent_field == E_FIELD_MAX
        assert (base, top) == (0, 1 << ADDRESS_BITS)
        assert decode(0, enc) == (0, 1 << ADDRESS_BITS)
        # Representable at arbitrary addresses too.
        assert decode(0xDEADBEEF, enc) == (0, 1 << ADDRESS_BITS)


class TestEncode:
    @pytest.mark.parametrize("length", [1, 8, 64, 255, 510, 511])
    def test_small_objects_always_precise(self, length):
        """Objects up to 511 bytes are exactly representable at any base."""
        for base in (0, 1, 7, 0x1234, 0xFFFF_F000):
            if base + length > (1 << ADDRESS_BITS):
                continue
            enc, actual_base, actual_top = encode(base, length, exact=True)
            assert actual_base == base
            assert actual_top == base + length
            assert enc.exponent == 0

    def test_larger_objects_round_outward(self):
        enc, base, top = encode(3, 1000)
        assert base <= 3
        assert top >= 1003
        assert (top - base) % (1 << enc.exponent) == 0

    def test_exact_raises_when_rounding_needed(self):
        with pytest.raises(BoundsError):
            encode(3, 1000, exact=True)

    def test_negative_length_rejected(self):
        with pytest.raises(BoundsError):
            encode(0, -1)

    def test_too_large_rejected(self):
        with pytest.raises(BoundsError):
            encode(8, 1 << ADDRESS_BITS)

    def test_encode_decode_roundtrip_when_exact(self):
        enc, base, top = encode(0x2000, 4096, exact=True)
        assert decode(0x2000, enc) == (0x2000, 0x2000 + 4096)

    def test_exponent_for_length(self):
        assert exponent_for_length(0) == 0
        assert exponent_for_length(511) == 0
        assert exponent_for_length(512) == 1
        assert exponent_for_length(1 << ADDRESS_BITS) == EXPONENT_MAX

    def test_unstorable_exponent_band_bumps_to_24(self):
        """Exponents 15..23 cannot be stored in the 4-bit E field."""
        length = 511 << 15  # needs e == 15
        enc, base, top = encode(0, length)
        assert enc.exponent_field == E_FIELD_MAX
        assert enc.exponent == EXPONENT_MAX
        assert top >= length


class TestRepresentability:
    def test_within_bounds_always_representable(self):
        enc, base, top = encode(0x1000, 256, exact=True)
        for address in (base, base + 1, top - 1):
            assert is_representable(address, enc, base, top)

    def test_below_base_is_never_representable(self):
        """Section 3.2.3: addresses below the base are invalid."""
        enc, base, top = encode(0x1000, 256, exact=True)
        assert not is_representable(base - 1, enc, base, top)
        assert not is_representable(base - 0x200, enc, base, top)

    def test_far_above_top_not_representable(self):
        enc, base, top = encode(0x1000, 256, exact=True)
        assert not is_representable(top + 0x10000, enc, base, top)

    def test_out_of_range_address(self):
        enc, base, top = encode(0x1000, 256)
        assert not is_representable(-1, enc, base, top)
        assert not is_representable(1 << 32, enc, base, top)
