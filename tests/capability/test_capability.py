"""Tests for the Capability value and guarded manipulation (section 2.4)."""

import pytest

from repro.capability import (
    Capability,
    Permission as P,
    SentryType,
    attenuate_loaded,
    make_roots,
)
from repro.capability.errors import (
    BoundsFault,
    MonotonicityFault,
    OTypeFault,
    PermissionFault,
    SealedFault,
    TagFault,
)

RW = {P.GL, P.LD, P.SD, P.MC, P.SL, P.LM, P.LG}


@pytest.fixture
def cap():
    return Capability.from_bounds(0x2000_0000, 256, RW)


@pytest.fixture
def roots():
    return make_roots()


class TestConstruction:
    def test_null(self):
        null = Capability.null()
        assert not null.tag
        assert null.perms == frozenset()
        assert null.address == 0

    def test_from_bounds(self, cap):
        assert cap.tag
        assert cap.base == 0x2000_0000
        assert cap.top == 0x2000_0100
        assert cap.length == 256

    def test_unrepresentable_address_rejected(self):
        with pytest.raises(Exception):
            Capability.from_bounds(0x2000_0000, 64, RW, address=0x3000_0000)


class TestAddressMoves:
    def test_in_bounds_move_keeps_tag(self, cap):
        moved = cap.inc_address(100)
        assert moved.tag and moved.address == cap.address + 100
        assert (moved.base, moved.top) == (cap.base, cap.top)

    def test_move_below_base_clears_tag(self, cap):
        moved = cap.inc_address(-1)
        assert not moved.tag

    def test_far_move_clears_tag(self, cap):
        moved = cap.set_address(0x1000_0000)
        assert not moved.tag

    def test_sealed_address_move_clears_tag(self, cap, roots):
        sealed = cap.seal(roots.sealing.set_address(3))
        assert not sealed.set_address(cap.address + 8).tag

    def test_untagged_moves_freely(self, cap):
        junk = cap.untagged().set_address(0)
        assert not junk.tag


class TestBoundsNarrowing:
    def test_narrow_ok(self, cap):
        narrow = cap.inc_address(16).set_bounds(32)
        assert (narrow.base, narrow.top) == (cap.base + 16, cap.base + 48)

    def test_widen_rejected(self, cap):
        with pytest.raises(MonotonicityFault):
            cap.set_bounds(512)

    def test_displace_rejected(self, cap):
        # Address at top: zero length is fine, but going beyond faults.
        at_top = cap.set_address(cap.top - 8)
        with pytest.raises(MonotonicityFault):
            at_top.set_bounds(64)

    def test_untagged_source_faults(self, cap):
        with pytest.raises(TagFault):
            cap.untagged().set_bounds(16)

    def test_sealed_source_faults(self, cap, roots):
        sealed = cap.seal(roots.sealing.set_address(2))
        with pytest.raises(SealedFault):
            sealed.set_bounds(16)


class TestPermissions:
    def test_and_perms_monotone(self, cap):
        ro = cap.and_perms(RW - {P.SD, P.SL})
        assert P.SD not in ro.perms
        # A second and_perms can never regain SD.
        assert P.SD not in ro.and_perms(RW).perms

    def test_readonly_is_deep(self, cap):
        ro = cap.readonly()
        assert P.SD not in ro.perms
        assert P.LM not in ro.perms  # transitively read-only

    def test_make_local(self, cap):
        assert cap.is_global
        local = cap.make_local()
        assert local.is_local and local.tag


class TestSealing:
    def test_seal_unseal_roundtrip(self, cap, roots):
        auth = roots.sealing.set_address(3)
        sealed = cap.seal(auth)
        assert sealed.is_sealed and sealed.otype == 3
        unsealed = sealed.unseal(auth)
        assert unsealed == cap

    def test_seal_without_se_faults(self, cap, roots):
        no_se = roots.sealing.clear_perms(P.SE).set_address(3)
        with pytest.raises(PermissionFault):
            cap.seal(no_se)

    def test_unseal_wrong_otype_faults(self, cap, roots):
        sealed = cap.seal(roots.sealing.set_address(3))
        with pytest.raises(OTypeFault):
            sealed.unseal(roots.sealing.set_address(4))

    def test_sealed_cannot_be_dereferenced(self, cap, roots):
        sealed = cap.seal(roots.sealing.set_address(3))
        with pytest.raises(SealedFault):
            sealed.check_access(sealed.address, 4, (P.LD,))

    def test_seal_otype_out_of_authority_bounds(self, cap, roots):
        narrow = roots.sealing.set_bounds(2)  # otypes [0, 2)
        with pytest.raises(BoundsFault):
            cap.seal(narrow.set_address(5))

    def test_seal_zero_otype_rejected(self, cap, roots):
        with pytest.raises(OTypeFault):
            cap.seal(roots.sealing.set_address(0))


class TestSentries:
    def test_sentry_requires_executable(self, cap):
        with pytest.raises(PermissionFault):
            cap.seal_sentry(SentryType.INHERIT)

    def test_sentry_roundtrip(self, roots):
        code = roots.executable.set_address(0x100)
        sentry = code.seal_sentry(SentryType.DISABLE_INTERRUPTS)
        assert sentry.is_sentry
        unsealed = sentry.unseal_for_jump()
        assert not unsealed.is_sealed

    def test_non_sentry_jump_unseal_faults(self, cap, roots):
        sealed = cap.seal(roots.sealing.set_address(3))
        with pytest.raises(OTypeFault):
            sealed.unseal_for_jump()


class TestCheckAccess:
    def test_order_tag_before_perms(self, cap):
        untagged = cap.untagged()
        with pytest.raises(TagFault):
            untagged.check_access(cap.base, 4, (P.EX,))

    def test_permission_fault(self, cap):
        ro = cap.clear_perms(P.SD)
        with pytest.raises(PermissionFault):
            ro.check_access(cap.base, 4, (P.SD,))

    def test_bounds_fault(self, cap):
        with pytest.raises(BoundsFault):
            cap.check_access(cap.top - 2, 4, (P.LD,))
        with pytest.raises(BoundsFault):
            cap.check_access(cap.base - 1, 1, (P.LD,))

    def test_whole_object_access_ok(self, cap):
        cap.check_access(cap.base, cap.length, (P.LD, P.SD))


class TestLoadAttenuation:
    """Recursive LG / LM stripping (section 3.1.1)."""

    def test_full_authority_passes_through(self, cap):
        assert attenuate_loaded(cap, cap) == cap

    def test_no_lg_strips_global_and_lg(self, cap):
        authority = cap.clear_perms(P.LG)
        loaded = attenuate_loaded(cap, authority)
        assert P.GL not in loaded.perms
        assert P.LG not in loaded.perms
        assert loaded.is_local

    def test_no_lm_strips_stores_and_lm(self, cap):
        authority = cap.clear_perms(P.LM)
        loaded = attenuate_loaded(cap, authority)
        assert P.SD not in loaded.perms
        assert P.LM not in loaded.perms
        assert P.LD in loaded.perms

    def test_attenuation_is_recursive_by_construction(self, cap):
        """A capability loaded via a no-LG authority itself lacks LG, so

        anything later loaded through *it* is attenuated too — the
        delegate-a-data-structure-root property."""
        first = attenuate_loaded(cap, cap.clear_perms(P.LG))
        second = attenuate_loaded(cap, first)
        assert second.is_local and P.LG not in second.perms

    def test_untagged_not_touched(self, cap):
        junk = cap.untagged()
        assert attenuate_loaded(junk, cap.clear_perms(P.LG, P.LM)) == junk

    def test_executable_keeps_perms_under_lm(self, roots):
        code = roots.executable.set_address(0x40)
        loaded = attenuate_loaded(code, roots.memory.clear_perms(P.LM))
        assert P.EX in loaded.perms
