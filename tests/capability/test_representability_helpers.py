"""Tests for cram/crrl — the allocator's representability arithmetic."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.capability.bounds import (
    encode,
    representable_alignment_mask,
    representable_length,
)


class TestKnownValues:
    def test_small_lengths_need_no_alignment(self):
        assert representable_alignment_mask(100) == 0xFFFFFFFF
        assert representable_length(100) == 100
        assert representable_length(511) == 511

    def test_larger_lengths_round(self):
        assert representable_length(513) == 514  # e=1
        assert representable_alignment_mask(513) == 0xFFFFFFFE
        assert representable_length(100_000) == 100_096  # e=8

    def test_zero(self):
        assert representable_length(0) == 0


class TestAgainstEncoder:
    @given(st.integers(min_value=1, max_value=1 << 28))
    def test_crrl_base_zero_matches_encoder(self, length):
        """Encoding [0, crrl(len)) is exact — the contract malloc uses."""
        rounded = representable_length(length)
        enc, base, top = encode(0, rounded, exact=True)
        assert (base, top) == (0, rounded)

    @given(
        st.integers(min_value=1, max_value=1 << 24),
        st.integers(min_value=0, max_value=(1 << 30)),
    )
    def test_cram_aligned_base_encodes_exactly(self, length, raw_base):
        mask = representable_alignment_mask(length)
        base = raw_base & mask
        rounded = representable_length(length)
        if base + rounded <= 1 << 32:
            enc, actual_base, actual_top = encode(base, rounded, exact=True)
            assert (actual_base, actual_top) == (base, base + rounded)


class TestISAInstructions:
    def test_cram_crrl_execute(self):
        from repro.capability import make_roots
        from repro.isa import CPU, ExecutionMode, assemble
        from repro.memory import SystemBus, TaggedMemory

        bus = SystemBus()
        bus.attach_sram(TaggedMemory(0x2000_0000, 0x1000))
        cpu = CPU(bus, ExecutionMode.CHERIOT)
        cpu.load_program(
            assemble("li a0, 100000\ncram a1, a0\ncrrl a2, a0\nhalt"),
            0x2000_0000,
            pcc=make_roots().executable,
        )
        cpu.run()
        assert cpu.regs.read_int(11) == representable_alignment_mask(100_000)
        assert cpu.regs.read_int(12) == representable_length(100_000)

    def test_illegal_in_rv32e(self):
        from repro.isa import CPU, ExecutionMode, Trap, assemble
        from repro.memory import SystemBus, TaggedMemory

        bus = SystemBus()
        bus.attach_sram(TaggedMemory(0x2000_0000, 0x1000))
        cpu = CPU(bus, ExecutionMode.RV32E)
        cpu.load_program(assemble("cram a1, a0\nhalt"), 0x2000_0000)
        with pytest.raises(Trap):
            cpu.run()
