"""Tests for trap vectoring, mret, and timer interrupts."""

import pytest

from repro.isa import ClintTimer, ExecutionMode, Trap, TrapCause
from repro.pipeline import CoreKind, make_core_model
from .conftest import CODE_BASE, make_cpu

HANDLER_SUFFIX = """
_handler:
    csrr a3, mcause
    addi a4, a4, 1                 # count handler entries
    cspecialrw t0, mepcc, c0
    cincaddrimm t0, t0, 4          # skip the faulting instruction
    cspecialrw c0, mepcc, t0
    mret
"""


def with_handler(bus, roots, body):
    cpu = make_cpu(bus, roots, body + HANDLER_SUFFIX, entry="_start")
    handler_index = cpu.program.entry("_handler")
    cpu.regs.write_scr(
        "mtcc", roots.executable.set_address(CODE_BASE + 4 * handler_index)
    )
    return cpu


class TestSynchronousVectoring:
    def test_fault_enters_handler_and_resumes(self, bus, roots):
        cpu = with_handler(
            bus, roots,
            """
            _start:
            li a0, 0
            lw a1, 0(a0)      # null dereference
            li a2, 7          # execution resumes here after mret
            halt
            """,
        )
        cpu.run()
        assert cpu.regs.read_int(14) == 1  # handler ran once
        assert cpu.regs.read_int(12) == 7  # and execution resumed
        assert cpu.csr.read("mcause") == TrapCause.CHERI_TAG.code
        assert cpu.last_trap.cause is TrapCause.CHERI_TAG

    def test_no_vector_installed_propagates(self, bus, roots):
        cpu = make_cpu(bus, roots, "li a0, 0\nlw a1, 0(a0)\nhalt")
        with pytest.raises(Trap):
            cpu.run()

    def test_vector_disables_interrupts_mret_restores(self, bus, roots):
        cpu = with_handler(
            bus, roots,
            """
            _start:
            li a0, 0
            lw a1, 0(a0)
            csrr a5, mstatus_mie    # after mret: interrupts back on
            halt
            """,
        )
        seen = []
        cpu.run()
        assert cpu.regs.read_int(15) == 1

    def test_mepc_holds_faulting_pc(self, bus, roots):
        cpu = with_handler(
            bus, roots,
            "_start:\nnop\nli a0, 0\nlw a1, 0(a0)\nhalt\n",
        )
        cpu.run()
        assert cpu.csr.read("mepc") == CODE_BASE + 8  # third instruction

    def test_rv32e_mode_never_vectors(self, bus, roots):
        cpu = make_cpu(bus, roots, "clc a0, 0(s0)\nhalt", mode=ExecutionMode.RV32E)
        with pytest.raises(Trap):
            cpu.run()


class TestTimerInterrupts:
    def _looping_cpu(self, bus, roots, extra=""):
        return with_handler(
            bus, roots,
            f"""
            _start:
            li a0, 2000
            {extra}
            loop:
            addi a0, a0, -1
            bnez a0, loop
            halt
            """,
        )

    def test_timer_preempts_loop(self, bus, roots):
        core = make_core_model(CoreKind.IBEX)
        cpu = self._looping_cpu(bus, roots)
        cpu.timing = core
        timer = ClintTimer(core, interval=500)
        cpu.timer = timer
        cpu.run()
        assert timer.fired >= 2
        assert cpu.regs.read_int(14) == timer.fired  # handler per fire
        assert cpu.csr.read("mcause") == TrapCause.TIMER_INTERRUPT.code

    def test_interrupts_disabled_holds_timer_off(self, bus, roots):
        core = make_core_model(CoreKind.IBEX)
        cpu = self._looping_cpu(bus, roots, extra="csrci mstatus_mie, 1")
        cpu.timing = core
        timer = ClintTimer(core, interval=300)
        cpu.timer = timer
        cpu.run()
        # The timer posts, but the CPU never takes it: posture wins.
        assert cpu.regs.read_int(14) == 0
        assert cpu.interrupt_pending is TrapCause.TIMER_INTERRUPT

    def test_timer_mmio_interface(self):
        core = make_core_model(CoreKind.IBEX)
        timer = ClintTimer(core)
        timer.mmio_write(0x0, 123)
        timer.mmio_write(0x8, 50)
        assert timer.mmio_read(0x0) == 123
        assert timer.mmio_read(0x8) == 50
        core.charge(200)
        assert timer.mmio_read(0x4) == 200


class TestVectoringCost:
    def test_trap_entry_charges_redirect(self, bus, roots):
        core = make_core_model(CoreKind.IBEX)
        cpu = with_handler(bus, roots, "_start:\nli a0, 0\nlw a1, 0(a0)\nhalt\n")
        cpu.timing = core
        cpu.run()
        assert core.cycles > 0
