"""Tests for the disassembler."""

from repro.isa import assemble, disassemble, format_instruction


class TestDisassembly:
    def test_roundtrip_readability(self):
        program = assemble(
            """
            start:
                li a0, 5
                lw a1, -8(sp)
                beqz a1, start
                csc cra, 0(csp)
                halt
            """
        )
        text = disassemble(program, code_base=0x2000_0000)
        assert "start:" in text
        assert "li a0, 5" in text
        assert "lw a1, -8(sp)" in text
        assert "0x20000000" in text
        assert "<0x20000000>" in text  # resolved branch target

    def test_reassembles(self):
        """The mnemonic+operand part of each line re-assembles."""
        program = assemble("loop: addi a0, a0, -1\nbnez a0, loop\nhalt")
        for instr in program.instructions:
            line = format_instruction(instr, 0)
            mnemonic = line.split()[0]
            assert mnemonic == instr.mnemonic

    def test_compiler_output_disassembles(self):
        from repro.cc import ir
        from repro.cc.lower import Target, compile_module

        m = ir.Module()
        fn = ir.Function("f", locals={"x": ir.INT})
        fn.body = [ir.Assign("x", ir.Const(1)), ir.Return(ir.Var("x"))]
        m.add_function(fn)
        compiled = compile_module(m, Target.CHERIOT)
        program = assemble(compiled.assembly)
        assert "cincaddrimm" in disassemble(program)
