"""Shared fixtures for ISA tests: a small machine in both modes."""

import pytest

from repro.capability import Capability, Permission as P, make_roots
from repro.isa import CPU, ExecutionMode, LoadFilter, assemble
from repro.memory import RevocationMap, SystemBus, TaggedMemory

CODE_BASE = 0x2000_0000
DATA_BASE = 0x2000_8000
HEAP_BASE = 0x2000_C000
HEAP_SIZE = 0x4000


@pytest.fixture
def bus():
    bus = SystemBus()
    bus.attach_sram(TaggedMemory(0x2000_0000, 0x1_0000))
    return bus


@pytest.fixture
def roots():
    return make_roots()


@pytest.fixture
def rmap():
    return RevocationMap(HEAP_BASE, HEAP_SIZE)


def make_cpu(bus, roots, source, mode=ExecutionMode.CHERIOT, load_filter=None,
             entry=""):
    """Assemble and load a program; returns the ready-to-run CPU."""
    cpu = CPU(bus, mode=mode, load_filter=load_filter)
    program = assemble(source)
    if mode is ExecutionMode.CHERIOT:
        cpu.load_program(program, CODE_BASE, pcc=roots.executable, entry=entry)
    else:
        cpu.load_program(program, CODE_BASE, entry=entry)
    return cpu


@pytest.fixture
def data_cap(roots):
    """A 256-byte RW data window at DATA_BASE."""
    return roots.memory.set_address(DATA_BASE).set_bounds(256)
