"""Tests for the CSR file and the stack high-water-mark pair (5.2.1)."""

import pytest

from repro.isa.csr import CSRError, CSRFile, HWMState


class TestBasics:
    def test_unknown_csr(self):
        csr = CSRFile()
        with pytest.raises(CSRError):
            csr.read("nonexistent")
        with pytest.raises(CSRError):
            csr.write("nonexistent", 1)

    def test_interrupt_posture(self):
        csr = CSRFile()
        assert csr.interrupts_enabled
        csr.interrupts_enabled = False
        assert not csr.interrupts_enabled
        assert csr.read("mstatus_mie") == 0

    def test_writes_mask_to_32_bits(self):
        csr = CSRFile()
        csr.write("mcause", 1 << 35 | 5)
        assert csr.read("mcause") == 5


class TestHighWaterMark:
    def test_mark_tracks_lowest_store(self):
        csr = CSRFile()
        csr.set_stack(0x1000, 0x2000)
        csr.note_store(0x1800)
        csr.note_store(0x1400)
        csr.note_store(0x1600)  # above current mark: no change
        assert csr.high_water_mark == 0x1400

    def test_stores_outside_stack_ignored(self):
        csr = CSRFile()
        csr.set_stack(0x1000, 0x2000)
        csr.note_store(0x0800)
        csr.note_store(0x2800)
        assert csr.high_water_mark == 0x2000

    def test_reset_pulls_mark_back_up(self):
        csr = CSRFile()
        csr.set_stack(0x1000, 0x2000)
        csr.note_store(0x1100)
        csr.reset_high_water_mark(0x1C00)
        assert csr.high_water_mark == 0x1C00

    def test_disabled_hardware_never_moves(self):
        """The non-(S) configurations: the CSRs exist but the mark is

        never updated, so the switcher sees the whole stack as dirty."""
        csr = CSRFile(hwm_enabled=False)
        csr.set_stack(0x1000, 0x2000)
        csr.note_store(0x1100)
        assert csr.high_water_mark == 0x2000

    def test_save_restore_roundtrip(self):
        """Both CSRs must be saved/restored on context switch (5.2.1)."""
        csr = CSRFile()
        csr.set_stack(0x1000, 0x2000)
        csr.note_store(0x1200)
        saved = csr.save_hwm()
        assert saved == HWMState(0x1000, 0x1200)
        csr.set_stack(0x3000, 0x4000)
        csr.restore_hwm(saved)
        assert csr.stack_base == 0x1000
        assert csr.high_water_mark == 0x1200
