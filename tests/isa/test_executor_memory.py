"""Tests for load/store semantics: capability checks, clc/csc, the

load filter, and the stack high-water mark hook."""

import pytest

from repro.capability import Capability, Permission as P
from repro.isa import ExecutionMode, LoadFilter, Trap, TrapCause
from .conftest import DATA_BASE, HEAP_BASE, make_cpu


class TestPlainLoadsStores:
    def test_word_roundtrip(self, bus, roots, data_cap):
        cpu = make_cpu(bus, roots, "li a0, 0x1234\nsw a0, 8(s0)\nlw a1, 8(s0)\nhalt")
        cpu.regs.write(8, data_cap)
        cpu.run()
        assert cpu.regs.read_int(11) == 0x1234

    def test_byte_sign_extension(self, bus, roots, data_cap):
        cpu = make_cpu(
            bus, roots,
            "li a0, 0x80\nsb a0, 0(s0)\nlb a1, 0(s0)\nlbu a2, 0(s0)\nhalt",
        )
        cpu.regs.write(8, data_cap)
        cpu.run()
        assert cpu.regs.read_int(11) == 0xFFFF_FF80
        assert cpu.regs.read_int(12) == 0x80

    def test_halfword(self, bus, roots, data_cap):
        cpu = make_cpu(
            bus, roots,
            "li a0, 0x8001\nsh a0, 2(s0)\nlh a1, 2(s0)\nlhu a2, 2(s0)\nhalt",
        )
        cpu.regs.write(8, data_cap)
        cpu.run()
        assert cpu.regs.read_int(11) == 0xFFFF_8001
        assert cpu.regs.read_int(12) == 0x8001

    def test_misaligned_traps(self, bus, roots, data_cap):
        cpu = make_cpu(bus, roots, "lw a0, 2(s0)\nhalt")
        cpu.regs.write(8, data_cap)
        with pytest.raises(Trap) as excinfo:
            cpu.run()
        assert excinfo.value.cause is TrapCause.MISALIGNED


class TestCapabilityChecks:
    def test_untagged_authority_traps(self, bus, roots, data_cap):
        cpu = make_cpu(bus, roots, "lw a0, 0(s0)\nhalt")
        cpu.regs.write(8, data_cap.untagged())
        with pytest.raises(Trap) as excinfo:
            cpu.run()
        assert excinfo.value.cause is TrapCause.CHERI_TAG

    def test_out_of_bounds_traps(self, bus, roots, data_cap):
        cpu = make_cpu(bus, roots, "lw a0, 256(s0)\nhalt")
        cpu.regs.write(8, data_cap)
        with pytest.raises(Trap) as excinfo:
            cpu.run()
        assert excinfo.value.cause is TrapCause.CHERI_BOUNDS

    def test_store_without_sd_traps(self, bus, roots, data_cap):
        cpu = make_cpu(bus, roots, "sw a0, 0(s0)\nhalt")
        cpu.regs.write(8, data_cap.clear_perms(P.SD))
        with pytest.raises(Trap) as excinfo:
            cpu.run()
        assert excinfo.value.cause is TrapCause.CHERI_PERMISSION

    def test_load_without_ld_traps(self, bus, roots, data_cap):
        cpu = make_cpu(bus, roots, "lw a0, 0(s0)\nhalt")
        cpu.regs.write(8, data_cap.clear_perms(P.LD))
        with pytest.raises(Trap):
            cpu.run()

    def test_rv32e_mode_has_no_capability_checks(self, bus, roots):
        cpu = make_cpu(
            bus, roots, "li s0, 0x20008000\nli a0, 7\nsw a0, 0(s0)\nlw a1, 0(s0)\nhalt",
            mode=ExecutionMode.RV32E,
        )
        cpu.run()
        assert cpu.regs.read_int(11) == 7


class TestCapabilityLoadsStores:
    def test_clc_csc_roundtrip(self, bus, roots, data_cap):
        cpu = make_cpu(bus, roots, "csc s1, 0(s0)\nclc a0, 0(s0)\nhalt")
        cpu.regs.write(8, data_cap)
        cpu.regs.write(9, data_cap.set_bounds(16))
        cpu.run()
        assert cpu.regs.read(10) == data_cap.set_bounds(16)
        assert cpu.stats.cap_loads == 1 and cpu.stats.cap_stores == 1

    def test_clc_requires_mc(self, bus, roots, data_cap):
        cpu = make_cpu(bus, roots, "clc a0, 0(s0)\nhalt")
        cpu.regs.write(8, data_cap.and_perms({P.GL, P.LD, P.SD}))
        with pytest.raises(Trap) as excinfo:
            cpu.run()
        assert excinfo.value.cause is TrapCause.CHERI_PERMISSION

    def test_clc_in_rv32e_is_illegal(self, bus, roots):
        cpu = make_cpu(bus, roots, "clc a0, 0(s0)\nhalt", mode=ExecutionMode.RV32E)
        with pytest.raises(Trap) as excinfo:
            cpu.run()
        assert excinfo.value.cause is TrapCause.ILLEGAL_INSTRUCTION

    def test_store_local_requires_sl(self, bus, roots, data_cap):
        """A tagged local capability can only be stored via SL (2.6)."""
        cpu = make_cpu(bus, roots, "csc s1, 0(s0)\nhalt")
        cpu.regs.write(8, data_cap.clear_perms(P.SL))
        cpu.regs.write(9, data_cap.make_local())
        with pytest.raises(Trap) as excinfo:
            cpu.run()
        assert excinfo.value.cause is TrapCause.CHERI_PERMISSION

    def test_global_cap_stores_anywhere(self, bus, roots, data_cap):
        cpu = make_cpu(bus, roots, "csc s1, 0(s0)\nhalt")
        cpu.regs.write(8, data_cap.clear_perms(P.SL))
        cpu.regs.write(9, data_cap)  # global
        cpu.run()

    def test_loaded_cap_attenuated_by_lg(self, bus, roots, data_cap):
        cpu = make_cpu(bus, roots, "csc s1, 0(s0)\nclc a0, 0(s0)\nhalt")
        cpu.regs.write(8, data_cap.clear_perms(P.LG))
        cpu.regs.write(9, data_cap)
        cpu.run()
        loaded = cpu.regs.read(10)
        assert loaded.is_local and P.LG not in loaded.perms

    def test_loaded_cap_attenuated_by_lm(self, bus, roots, data_cap):
        cpu = make_cpu(bus, roots, "csc s1, 0(s0)\nclc a0, 0(s0)\nhalt")
        cpu.regs.write(8, data_cap.clear_perms(P.LM))
        cpu.regs.write(9, data_cap)
        cpu.run()
        loaded = cpu.regs.read(10)
        assert P.SD not in loaded.perms and P.LM not in loaded.perms


class TestLoadFilter:
    def test_revoked_base_strips_tag(self, bus, roots, rmap):
        heap_cap = roots.memory.set_address(HEAP_BASE).set_bounds(64)
        stash = roots.memory.set_address(DATA_BASE).set_bounds(64)
        bus.write_capability(DATA_BASE, heap_cap)
        rmap.paint(HEAP_BASE, 64)  # "freed"
        cpu = make_cpu(
            bus, roots, "clc a0, 0(s0)\nhalt", load_filter=LoadFilter(rmap)
        )
        cpu.regs.write(8, stash)
        cpu.run()
        assert not cpu.regs.read(10).tag
        assert cpu.load_filter.stats.tags_stripped == 1

    def test_unrevoked_cap_passes(self, bus, roots, rmap):
        heap_cap = roots.memory.set_address(HEAP_BASE).set_bounds(64)
        stash = roots.memory.set_address(DATA_BASE).set_bounds(64)
        bus.write_capability(DATA_BASE, heap_cap)
        cpu = make_cpu(
            bus, roots, "clc a0, 0(s0)\nhalt", load_filter=LoadFilter(rmap)
        )
        cpu.regs.write(8, stash)
        cpu.run()
        assert cpu.regs.read(10).tag

    def test_filter_checks_base_not_address(self, bus, roots, rmap):
        """A stale pointer moved past the freed region still dies: the

        filter looks up the *base*, which monotonicity pins inside the
        original object (section 3.3.2)."""
        heap_cap = roots.memory.set_address(HEAP_BASE).set_bounds(64)
        moved = heap_cap.inc_address(60)
        stash = roots.memory.set_address(DATA_BASE).set_bounds(64)
        bus.write_capability(DATA_BASE, moved)
        rmap.paint(HEAP_BASE, 8)  # only the first granule painted
        cpu = make_cpu(
            bus, roots, "clc a0, 0(s0)\nhalt", load_filter=LoadFilter(rmap)
        )
        cpu.regs.write(8, stash)
        cpu.run()
        assert not cpu.regs.read(10).tag


class TestStackHighWaterMark:
    def test_stores_move_the_mark(self, bus, roots, data_cap):
        cpu = make_cpu(bus, roots, "sw a0, 64(s0)\nsw a0, 32(s0)\nsw a0, 48(s0)\nhalt")
        cpu.regs.write(8, data_cap)
        cpu.csr.set_stack(DATA_BASE, DATA_BASE + 256)
        cpu.run()
        assert cpu.csr.high_water_mark == DATA_BASE + 32

    def test_stores_outside_stack_dont_move_mark(self, bus, roots, data_cap):
        cpu = make_cpu(bus, roots, "sw a0, 0(s0)\nhalt")
        cpu.regs.write(8, data_cap)
        cpu.csr.set_stack(DATA_BASE + 128, DATA_BASE + 256)
        cpu.run()
        assert cpu.csr.high_water_mark == DATA_BASE + 256
