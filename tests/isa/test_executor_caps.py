"""Tests for capability-manipulation instructions through the executor."""

import pytest

from repro.capability import Permission as P, to_architectural_word
from repro.isa import Trap, TrapCause
from .conftest import DATA_BASE, make_cpu


class TestInspection:
    def test_getters(self, bus, roots, data_cap):
        cpu = make_cpu(
            bus, roots,
            """
            cgetaddr a0, s0
            cgetbase a1, s0
            cgetlen a2, s0
            cgettag a3, s0
            cgettype a4, s0
            halt
            """,
        )
        cpu.regs.write(8, data_cap.inc_address(4))
        cpu.run()
        assert cpu.regs.read_int(10) == DATA_BASE + 4
        assert cpu.regs.read_int(11) == DATA_BASE
        assert cpu.regs.read_int(12) == 256
        assert cpu.regs.read_int(13) == 1
        assert cpu.regs.read_int(14) == 0

    def test_cgetperm_matches_architectural_word(self, bus, roots, data_cap):
        cpu = make_cpu(bus, roots, "cgetperm a0, s0\nhalt")
        cpu.regs.write(8, data_cap)
        cpu.run()
        assert cpu.regs.read_int(10) == to_architectural_word(data_cap.perms)


class TestManipulation:
    def test_csetbounds_narrows(self, bus, roots, data_cap):
        cpu = make_cpu(
            bus, roots,
            "cincaddrimm t0, s0, 16\nli t1, 32\ncsetbounds a0, t0, t1\nhalt",
        )
        cpu.regs.write(8, data_cap)
        cpu.run()
        result = cpu.regs.read(10)
        assert (result.base, result.top) == (DATA_BASE + 16, DATA_BASE + 48)

    def test_csetbounds_widen_traps(self, bus, roots, data_cap):
        cpu = make_cpu(bus, roots, "li t1, 4096\ncsetbounds a0, s0, t1\nhalt")
        cpu.regs.write(8, data_cap)
        with pytest.raises(Trap) as excinfo:
            cpu.run()
        assert excinfo.value.cause is TrapCause.CHERI_MONOTONICITY

    def test_candperm_sheds(self, bus, roots, data_cap):
        mask = to_architectural_word(frozenset(data_cap.perms) - {P.SD, P.SL})
        cpu = make_cpu(bus, roots, f"li t1, {mask}\ncandperm a0, s0, t1\nhalt")
        cpu.regs.write(8, data_cap)
        cpu.run()
        assert P.SD not in cpu.regs.read(10).perms

    def test_ccleartag(self, bus, roots, data_cap):
        cpu = make_cpu(bus, roots, "ccleartag a0, s0\nhalt")
        cpu.regs.write(8, data_cap)
        cpu.run()
        assert not cpu.regs.read(10).tag

    def test_csetaddr_out_of_representable_untags(self, bus, roots, data_cap):
        cpu = make_cpu(bus, roots, "li t1, 0x10000000\ncsetaddr a0, s0, t1\nhalt")
        cpu.regs.write(8, data_cap)
        cpu.run()
        assert not cpu.regs.read(10).tag

    def test_csub(self, bus, roots, data_cap):
        cpu = make_cpu(bus, roots, "cincaddrimm t0, s0, 24\ncsub a0, t0, s0\nhalt")
        cpu.regs.write(8, data_cap)
        cpu.run()
        assert cpu.regs.read_int(10) == 24

    def test_ctestsubset(self, bus, roots, data_cap):
        cpu = make_cpu(
            bus, roots,
            "ctestsubset a0, s0, s1\nctestsubset a1, s1, s0\nhalt",
        )
        cpu.regs.write(8, data_cap)
        cpu.regs.write(9, data_cap.set_bounds(64).clear_perms(P.SD))
        cpu.run()
        assert cpu.regs.read_int(10) == 1  # s1 subset of s0
        assert cpu.regs.read_int(11) == 0


class TestSealingInstructions:
    def test_cseal_cunseal(self, bus, roots, data_cap):
        cpu = make_cpu(bus, roots, "cseal a0, s0, s1\ncunseal a1, a0, s1\nhalt")
        cpu.regs.write(8, data_cap)
        cpu.regs.write(9, roots.sealing.set_address(3))
        cpu.run()
        assert cpu.regs.read(10).otype == 3
        assert cpu.regs.read(11) == data_cap

    def test_cseal_without_authority_traps(self, bus, roots, data_cap):
        cpu = make_cpu(bus, roots, "cseal a0, s0, s1\nhalt")
        cpu.regs.write(8, data_cap)
        cpu.regs.write(9, roots.sealing.clear_perms(P.SE).set_address(3))
        with pytest.raises(Trap) as excinfo:
            cpu.run()
        assert excinfo.value.cause is TrapCause.CHERI_PERMISSION


class TestSpecialRegisters:
    def test_cspecialrw_swaps(self, bus, roots, data_cap):
        cpu = make_cpu(
            bus, roots,
            "cspecialrw a0, mtdc, s0\ncspecialrw a1, mtdc, c0\nhalt",
        )
        cpu.regs.write(8, data_cap)
        cpu.run()
        assert not cpu.regs.read(10).tag  # old mtdc was null
        assert cpu.regs.read(11) == data_cap  # read back what we wrote

    def test_cspecialrw_requires_sr(self, bus, roots, data_cap):
        cpu = make_cpu(bus, roots, "cspecialrw a0, mtdc, s0\nhalt")
        cpu.pcc = cpu.pcc.clear_perms(P.SR)
        cpu.regs.write(8, data_cap)
        with pytest.raises(Trap) as excinfo:
            cpu.run()
        assert excinfo.value.cause is TrapCause.CHERI_PERMISSION

    def test_protected_csr_requires_sr(self, bus, roots):
        cpu = make_cpu(bus, roots, "csrr a0, mshwm\nhalt")
        cpu.pcc = cpu.pcc.clear_perms(P.SR)
        with pytest.raises(Trap) as excinfo:
            cpu.run()
        assert excinfo.value.cause is TrapCause.CHERI_PERMISSION

    def test_mcycle_readable_without_sr(self, bus, roots):
        cpu = make_cpu(bus, roots, "csrr a0, mcycle\nhalt")
        cpu.pcc = cpu.pcc.clear_perms(P.SR)
        cpu.run()
