"""Tests for the 16-entry PMP baseline (Table 2 comparator)."""

import pytest

from repro.isa import ExecutionMode, PMPEntry, PMPUnit, PMPViolation, Trap, TrapCause
from repro.isa.pmp import PMP_ENTRIES
from .conftest import make_cpu


class TestEntries:
    def test_napot_validation(self):
        PMPEntry(0x1000, 0x1000, read=True)
        with pytest.raises(ValueError):
            PMPEntry(0x1000, 0x1800, read=True)  # not a power of two
        with pytest.raises(ValueError):
            PMPEntry(0x800, 0x1000, read=True)  # misaligned
        with pytest.raises(ValueError):
            PMPEntry(0, 2, read=True)  # below minimum grain

    def test_sixteen_entries(self):
        unit = PMPUnit()
        assert len(unit.entries) == PMP_ENTRIES
        with pytest.raises(ValueError):
            unit.set_entry(16, None)


class TestChecks:
    def test_matching_entry_grants(self):
        unit = PMPUnit()
        unit.set_entry(0, PMPEntry(0x1000, 0x1000, read=True, write=True))
        unit.check(0x1800, 4, "r")
        unit.check(0x1800, 4, "w")
        with pytest.raises(PMPViolation):
            unit.check(0x1800, 4, "x")

    def test_priority_lowest_index_wins(self):
        unit = PMPUnit()
        unit.set_entry(0, PMPEntry(0x1000, 0x1000, read=True))
        unit.set_entry(1, PMPEntry(0x1000, 0x1000, read=True, write=True))
        with pytest.raises(PMPViolation):
            unit.check(0x1000, 4, "w")  # entry 0 matches first, no W

    def test_no_match_default_allows(self):
        unit = PMPUnit()
        unit.check(0x9000_0000, 4, "w")

    def test_access_straddling_region_boundary(self):
        unit = PMPUnit()
        unit.set_entry(0, PMPEntry(0x1000, 0x1000, read=True))
        # Straddles out of the region: entry does not match, default-allow.
        unit.check(0x1FFE, 4, "r")


class TestPMPOnCPU:
    def test_pmp_blocks_store_in_rv32e_mode(self, bus, roots):
        from repro.isa import CPU
        from repro.isa.assembler import assemble
        from .conftest import CODE_BASE

        unit = PMPUnit()
        unit.set_entry(0, PMPEntry(0x2000_8000, 0x1000, read=True))  # no write
        cpu = CPU(bus, mode=ExecutionMode.RV32E, pmp=unit)
        cpu.load_program(assemble("li s0, 0x20008000\nsw a0, 0(s0)\nhalt"), CODE_BASE)
        with pytest.raises(Trap) as excinfo:
            cpu.run()
        assert excinfo.value.cause is TrapCause.PMP_FAULT

    def test_pmp_grants_read(self, bus, roots):
        from repro.isa import CPU
        from repro.isa.assembler import assemble
        from .conftest import CODE_BASE

        unit = PMPUnit()
        unit.set_entry(0, PMPEntry(0x2000_8000, 0x1000, read=True))
        cpu = CPU(bus, mode=ExecutionMode.RV32E, pmp=unit)
        cpu.load_program(assemble("li s0, 0x20008000\nlw a0, 0(s0)\nhalt"), CODE_BASE)
        cpu.run()
