"""Property test: every instruction round-trips through disassembly.

For any instruction the assembler can produce, rendering it back with
``to_source`` and reassembling must yield the identical mnemonic and
operand tuple — the disassembler is a faithful inverse, not just a
pretty-printer.  Strategies draw mnemonics from the live
``INSTRUCTION_SPECS`` table, so a new instruction added with an operand
kind the renderer mishandles fails here immediately.
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

from repro.isa import assemble, to_source  # noqa: E402
from repro.isa.csr import CSR_NAMES  # noqa: E402
from repro.isa.disassembler import instruction_to_source, source_labels  # noqa: E402
from repro.isa.instructions import INSTRUCTION_SPECS  # noqa: E402
from repro.isa.registers import SCR_NAMES  # noqa: E402

SENTRY_KINDS = ("inherit", "disable", "enable", "ret_dis", "ret_en")

#: Immediates the assembler accepts: any Python int literal in decimal.
_imm = st.integers(min_value=-(1 << 31), max_value=(1 << 31) - 1)
_reg = st.integers(min_value=0, max_value=15)


def _operand_strategy(kind: str, program_len: int):
    if kind in ("rd", "rs", "rt"):
        return _reg
    if kind == "imm":
        return _imm
    if kind == "mem":
        return st.tuples(_imm, _reg)
    if kind == "label":
        # A label operand is an instruction index; allow the
        # one-past-the-end marker the assembler also accepts.
        return st.integers(min_value=0, max_value=program_len)
    if kind == "csr":
        return st.sampled_from(CSR_NAMES)
    if kind == "scr":
        return st.sampled_from(SCR_NAMES)
    if kind == "str":
        return st.sampled_from(SENTRY_KINDS)
    raise AssertionError(f"unknown operand kind {kind!r}")


@st.composite
def programs(draw):
    """A random well-formed program as (mnemonic, operands) tuples."""
    mnemonics = draw(
        st.lists(
            st.sampled_from(sorted(INSTRUCTION_SPECS)), min_size=1, max_size=12
        )
    )
    instrs = []
    for mnemonic in mnemonics:
        spec = INSTRUCTION_SPECS[mnemonic]
        kinds = [k for k in spec.signature.split(",") if k]
        operands = tuple(
            draw(_operand_strategy(kind, len(mnemonics))) for kind in kinds
        )
        instrs.append((mnemonic, operands))
    return instrs


def _assemble_fields(instrs):
    """Build a program from field tuples by writing assembler text."""
    lines = []
    for index in range(len(instrs) + 1):
        lines.append(f".L{index}:")
        if index < len(instrs):
            mnemonic, operands = instrs[index]
            lines.append(f"    {_render(mnemonic, operands)}")
    return assemble("\n".join(lines))


def _render(mnemonic, operands):
    kinds = [k for k in INSTRUCTION_SPECS[mnemonic].signature.split(",") if k]
    parts = []
    for kind, operand in zip(kinds, operands):
        if kind in ("rd", "rs", "rt"):
            parts.append(f"x{operand}")
        elif kind == "mem":
            parts.append(f"{operand[0]}(x{operand[1]})")
        elif kind == "label":
            parts.append(f".L{operand}")
        else:
            parts.append(str(operand))
    return f"{mnemonic} {', '.join(parts)}".strip()


@settings(max_examples=200, deadline=None)
@given(programs())
def test_every_instruction_round_trips(instrs):
    program = _assemble_fields(instrs)
    rebuilt = assemble(to_source(program))
    assert len(rebuilt) == len(program)
    for original, again in zip(program.instructions, rebuilt.instructions):
        assert again.mnemonic == original.mnemonic
        assert again.operands == original.operands


@settings(max_examples=200, deadline=None)
@given(programs())
def test_label_indices_survive_even_when_names_differ(instrs):
    program = _assemble_fields(instrs)
    rebuilt = assemble(to_source(program))
    for (mnemonic, _), original, again in zip(
        instrs, program.instructions, rebuilt.instructions
    ):
        kinds = [k for k in INSTRUCTION_SPECS[mnemonic].signature.split(",") if k]
        for kind, before, after in zip(kinds, original.operands, again.operands):
            if kind == "label":
                assert before == after


def test_source_labels_prefers_program_names():
    program = assemble("entry:\n    nop\n    j entry\n")
    assert source_labels(program) == {0: "entry"}
    assert "entry:" in to_source(program)


def test_instruction_to_source_renders_each_kind():
    program = assemble(
        "top:\n"
        "    addi a0, a1, -42\n"
        "    clc ct0, 8(csp)\n"
        "    csrr t1, mcycle\n"
        "    cspecialrw ct2, mtdc, ct0\n"
        "    csealentry ct0, ct1, inherit\n"
        "    bne a0, zero, top\n"
    )
    labels = source_labels(program)
    rendered = [
        instruction_to_source(instr, labels) for instr in program.instructions
    ]
    assert rendered[0] == "addi a0, a1, -42"
    assert rendered[1] == "clc t0, 8(sp)"
    assert rendered[2] == "csrr t1, mcycle"
    assert rendered[3] == "cspecialrw t2, mtdc, t0"
    assert rendered[4] == "csealentry t0, t1, inherit"
    assert rendered[5] == "bne a0, zero, top"
