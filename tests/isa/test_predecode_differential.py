"""Differential golden-trace tests: pre-decoded vs interpretive stepping.

The executor's hot path resolves handlers and operand metadata once at
``load_program`` time (``predecode=True``, the default) and authorizes
fetches against a cached PCC window.  These tests pin that fast path to
the seed's interpretive semantics (``predecode=False``): over randomized
programs — ALU, memory, branches, capability manipulation, traps — the
two must produce an *identical* architectural trace: same per-step PCs,
same register file (full capabilities, not just addresses), same traps,
same retired-instruction statistics, and same modelled cycles.
"""

from dataclasses import fields

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.capability import make_roots
from repro.isa import CPU, ExecutionMode, Halted, Trap, assemble
from repro.memory import SystemBus, TaggedMemory
from repro.pipeline import CoreKind, make_core_model

CODE_BASE = 0x2000_0000
DATA_BASE = 0x2000_8000
DATA_SIZE = 0x100

_REGS = ["t0", "t1", "t2", "s1", "a0", "a1", "a2", "a3"]
_ALU_RR = ["add", "sub", "and", "or", "xor", "sll", "srl", "sra",
           "slt", "sltu", "mul", "mulh", "mulhu", "div", "divu", "rem", "remu"]
_ALU_RI = ["addi", "andi", "ori", "xori", "slti", "sltiu"]
_BRANCHES = ["beq", "bne", "blt", "bge", "bltu", "bgeu"]
_CAP_UN = ["cgetaddr", "cgetbase", "cgettop", "cgetlen", "cgetperm",
           "cgettag", "cgettype"]

regs = st.sampled_from(_REGS)
imms = st.integers(min_value=-2048, max_value=2047)
# Offsets deliberately straddle the data capability's bounds so some
# accesses trap — fault behaviour must match too.
mem_offsets = st.sampled_from([0, 4, 8, 64, DATA_SIZE - 4, DATA_SIZE, 0x7FC])


@st.composite
def body_line(draw, line_no, n_lines):
    kind = draw(st.integers(min_value=0, max_value=6))
    rd, rs, rt = draw(regs), draw(regs), draw(regs)
    if kind == 0:
        return f"{draw(st.sampled_from(_ALU_RR))} {rd}, {rs}, {rt}"
    if kind == 1:
        return f"{draw(st.sampled_from(_ALU_RI))} {rd}, {rs}, {draw(imms)}"
    if kind == 2:
        return f"li {rd}, {draw(st.integers(min_value=0, max_value=0xFFFFFFFF))}"
    if kind == 3:  # load/store through the data capability in s0
        op = draw(st.sampled_from(["lw", "sw", "lh", "lb", "lbu", "lhu", "sb"]))
        scale = {"lw": 4, "sw": 4, "lh": 2, "lhu": 2, "sh": 2}.get(op, 1)
        offset = draw(mem_offsets) // scale * scale
        return f"{op} {rd}, {offset}(s0)"
    if kind == 4:  # capability-width load/store
        op = draw(st.sampled_from(["clc", "csc"]))
        offset = draw(mem_offsets) // 8 * 8
        return f"{op} {rd}, {offset}(s0)"
    if kind == 5:  # capability manipulation
        which = draw(st.integers(min_value=0, max_value=2))
        if which == 0:
            return f"{draw(st.sampled_from(_CAP_UN))} {rd}, s0"
        if which == 1:
            return f"cincaddrimm {rd}, s0, {draw(imms)}"
        return f"csetaddr {rd}, s0, {rs}"
    # Forward-only branch: always to the terminating label, so every
    # generated program halts.
    return f"{draw(st.sampled_from(_BRANCHES))} {rs}, {rt}, done"


@st.composite
def mixed_program(draw):
    n = draw(st.integers(min_value=1, max_value=30))
    lines = [draw(body_line(i, n)) for i in range(n)]
    return "\n".join(lines) + "\ndone: halt\n"


def _fresh_cpu(predecode):
    bus = SystemBus()
    bus.attach_sram(TaggedMemory(CODE_BASE, 0x1_0000))
    roots = make_roots()
    cpu = CPU(bus, ExecutionMode.CHERIOT, predecode=predecode)
    cpu.timing = make_core_model(CoreKind.IBEX)
    return cpu, roots


def _load(cpu, roots, program):
    cpu.load_program(program, CODE_BASE, pcc=roots.executable)
    # s0 holds a bounded data capability; some generated offsets
    # exceed its bounds on purpose.
    data = roots.memory.set_address(DATA_BASE).set_bounds(DATA_SIZE)
    cpu.regs.write(8, data)


def _golden_trace(cpu, max_steps=400):
    """Step until halt/trap/budget, recording every architectural event."""
    events = []
    for _ in range(max_steps):
        pc = cpu.pc
        try:
            cpu.step()
        except Halted:
            events.append(("halt", pc))
            break
        except Trap as trap:
            events.append(("trap", pc, trap.cause, trap.pc, str(trap)))
            break
        events.append(("step", pc, cpu.pc))
    return events


def _state(cpu):
    stats = tuple(getattr(cpu.stats, f.name) for f in fields(cpu.stats))
    return cpu.regs.snapshot(), stats, cpu.pc, cpu.timing.cycles


class TestPredecodeDifferential:
    @settings(max_examples=150, deadline=None)
    @given(mixed_program())
    def test_golden_trace_identical(self, source):
        program = assemble(source)
        traces, states = [], []
        for predecode in (False, True):
            cpu, roots = _fresh_cpu(predecode)
            _load(cpu, roots, program)
            traces.append(_golden_trace(cpu))
            states.append(_state(cpu))
        assert traces[0] == traces[1]
        ref_regs, ref_stats, ref_pc, ref_cycles = states[0]
        new_regs, new_stats, new_pc, new_cycles = states[1]
        assert new_regs == ref_regs  # full capability equality, incl. tags
        assert new_stats == ref_stats
        assert new_pc == ref_pc
        assert new_cycles == ref_cycles

    def test_trap_vectoring_identical(self):
        # With a trap vector installed, a faulting access vectors into
        # the handler in both modes — and the fast path's fetch-window
        # cache must be invalidated by the PCC swap.
        source = """
            li a0, 42
            lw a1, 0x7FC(s0)
            li a0, 99
            halt
        handler:
            li a2, 7
            halt
        """
        program = assemble(source)
        finals = []
        for predecode in (False, True):
            cpu, roots = _fresh_cpu(predecode)
            _load(cpu, roots, program)
            handler_pc = CODE_BASE + 4 * program.entry("handler")
            cpu.regs.write_scr("mtcc", roots.executable.set_address(handler_pc))
            cpu.run()
            finals.append(_state(cpu))
        assert finals[0] == finals[1]
        # The handler actually ran: a2 == 7, and a0 kept its pre-fault value.
        regs = finals[1][0]
        assert regs[12].address == 7
        assert regs[10].address == 42

    def test_unvectored_trap_identical(self):
        source = "li a0, 1\nlw a1, 0x7FC(s0)\nhalt\n"
        program = assemble(source)
        results = []
        for predecode in (False, True):
            cpu, roots = _fresh_cpu(predecode)
            _load(cpu, roots, program)
            events = _golden_trace(cpu)
            results.append((events, _state(cpu)))
        assert results[0] == results[1]
        assert results[1][0][-1][0] == "trap"

    def test_illegal_mnemonic_traps_identically(self):
        from repro.isa.assembler import Program
        from repro.isa.instructions import Instruction

        program = Program(
            instructions=(
                Instruction("addi", (10, 0, 5), text="addi a0, zero, 5"),
                Instruction("frobnicate", (), text="frobnicate"),
            ),
            labels={},
        )
        results = []
        for predecode in (False, True):
            cpu, roots = _fresh_cpu(predecode)
            _load(cpu, roots, program)
            results.append(_golden_trace(cpu))
        assert results[0] == results[1]
        kind, _, cause, _, message = results[1][-1]
        assert kind == "trap"
        assert "frobnicate" in message

    def test_running_off_the_end_identical(self):
        program = assemble("li a0, 5\nnop\n")  # no halt
        results = []
        for predecode in (False, True):
            cpu, roots = _fresh_cpu(predecode)
            _load(cpu, roots, program)
            results.append(_golden_trace(cpu))
        assert results[0] == results[1]
        assert results[1][-1][0] == "trap"
