"""Property-based fuzzing of the executor.

The simulator must be *total*: any instruction sequence either executes,
raises an architectural :class:`Trap`, or halts — never a Python-level
error.  Random programs also cross-check the two execution modes on the
architectural integer subset (they must agree bit-for-bit).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.capability import make_roots
from repro.isa import CPU, ExecutionMode, Halted, Trap, assemble
from repro.isa.instructions import Instruction
from repro.memory import SystemBus, TaggedMemory

CODE_BASE = 0x2000_0000

_REGS = ["zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2",
         "s0", "s1", "a0", "a1", "a2", "a3", "a4", "a5"]

_ALU_RR = ["add", "sub", "and", "or", "xor", "sll", "srl", "sra",
           "slt", "sltu", "mul", "mulh", "mulhu", "div", "divu", "rem", "remu"]
_ALU_RI = ["addi", "andi", "ori", "xori", "slti", "sltiu"]
_SHIFT_RI = ["slli", "srli", "srai"]

regs = st.sampled_from(_REGS)
imms = st.integers(min_value=-2048, max_value=2047)
shamts = st.integers(min_value=0, max_value=31)


@st.composite
def alu_line(draw):
    kind = draw(st.integers(min_value=0, max_value=3))
    rd, rs, rt = draw(regs), draw(regs), draw(regs)
    if kind == 0:
        return f"{draw(st.sampled_from(_ALU_RR))} {rd}, {rs}, {rt}"
    if kind == 1:
        return f"{draw(st.sampled_from(_ALU_RI))} {rd}, {rs}, {draw(imms)}"
    if kind == 2:
        return f"{draw(st.sampled_from(_SHIFT_RI))} {rd}, {rs}, {draw(shamts)}"
    return f"li {rd}, {draw(st.integers(min_value=0, max_value=0xFFFFFFFF))}"


@st.composite
def alu_program(draw):
    lines = draw(st.lists(alu_line(), min_size=1, max_size=40))
    return "\n".join(lines) + "\nhalt\n"


def _fresh_cpu(mode):
    bus = SystemBus()
    bus.attach_sram(TaggedMemory(CODE_BASE, 0x1_0000))
    return CPU(bus, mode)


class TestALUFuzz:
    @settings(max_examples=120, deadline=None)
    @given(alu_program())
    def test_modes_agree_on_integer_subset(self, source):
        program = assemble(source)
        results = []
        for mode in (ExecutionMode.RV32E, ExecutionMode.CHERIOT):
            cpu = _fresh_cpu(mode)
            if mode is ExecutionMode.CHERIOT:
                cpu.load_program(program, CODE_BASE, pcc=make_roots().executable)
            else:
                cpu.load_program(program, CODE_BASE)
            cpu.run()
            results.append([cpu.regs.read_int(i) for i in range(16)])
        assert results[0] == results[1]

    @settings(max_examples=120, deadline=None)
    @given(alu_program())
    def test_registers_stay_32_bit(self, source):
        cpu = _fresh_cpu(ExecutionMode.RV32E)
        cpu.load_program(assemble(source), CODE_BASE)
        cpu.run()
        for i in range(16):
            assert 0 <= cpu.regs.read_int(i) <= 0xFFFFFFFF


@st.composite
def chaotic_instruction(draw):
    """Any mnemonic with plausible-shaped but arbitrary operands."""
    from repro.isa.instructions import INSTRUCTION_SPECS

    mnemonic = draw(
        st.sampled_from(
            [m for m, s in INSTRUCTION_SPECS.items()
             if "label" not in s.signature and m != "halt"]
        )
    )
    spec = INSTRUCTION_SPECS[mnemonic]
    parts = []
    for kind in [k for k in spec.signature.split(",") if k]:
        if kind in ("rd", "rs", "rt"):
            parts.append(draw(regs))
        elif kind == "imm":
            parts.append(str(draw(st.integers(min_value=-4096, max_value=4096))))
        elif kind == "mem":
            parts.append(f"{draw(st.integers(min_value=-64, max_value=64))}({draw(regs)})")
        elif kind == "csr":
            parts.append(draw(st.sampled_from(
                ["mstatus_mie", "mcause", "mepc", "mshwm", "mshwmb", "mcycle", "bogus"]
            )))
        elif kind == "scr":
            parts.append(draw(st.sampled_from(["mtdc", "mepcc", "mscratchc"])))
        elif kind == "str":
            parts.append(draw(st.sampled_from(["inherit", "disable", "enable", "junk"])))
    return f"{mnemonic} {', '.join(parts)}".strip()


class TestChaosFuzz:
    @settings(max_examples=150, deadline=None)
    @given(st.lists(chaotic_instruction(), min_size=1, max_size=15))
    def test_simulator_is_total(self, lines):
        """Arbitrary instruction soup: only Trap / Halted / clean run.

        CSRError (a model-API error for unknown CSR names) is accepted
        too — the assembler passes names through by design.
        """
        from repro.isa.csr import CSRError

        source = "\n".join(lines) + "\nhalt\n"
        try:
            program = assemble(source)
        except Exception:
            return  # assembler rejection is fine
        cpu = _fresh_cpu(ExecutionMode.CHERIOT)
        cpu.load_program(program, CODE_BASE, pcc=make_roots().executable)
        cpu.regs.write(8, make_roots().memory.set_address(CODE_BASE + 0x8000).set_bounds(256))
        try:
            cpu.run(max_steps=2000)
        except (Trap, Halted, CSRError, RuntimeError):
            pass
