"""Tests for ALU, branch and register-file semantics."""

import pytest

from repro.isa import ExecutionMode
from .conftest import make_cpu


def run(bus, roots, body, mode=ExecutionMode.CHERIOT):
    cpu = make_cpu(bus, roots, body + "\nhalt\n", mode=mode)
    cpu.run()
    return cpu


class TestArithmetic:
    def test_add_sub(self, bus, roots):
        cpu = run(bus, roots, "li a0, 7\nli a1, 5\nadd a2, a0, a1\nsub a3, a0, a1")
        assert cpu.regs.read_int(12) == 12
        assert cpu.regs.read_int(13) == 2

    def test_wraparound(self, bus, roots):
        cpu = run(bus, roots, "li a0, 0xFFFFFFFF\naddi a0, a0, 2")
        assert cpu.regs.read_int(10) == 1

    def test_logic(self, bus, roots):
        cpu = run(
            bus, roots,
            "li a0, 0b1100\nli a1, 0b1010\n"
            "and a2, a0, a1\nor a3, a0, a1\nxor a4, a0, a1",
        )
        assert cpu.regs.read_int(12) == 0b1000
        assert cpu.regs.read_int(13) == 0b1110
        assert cpu.regs.read_int(14) == 0b0110

    def test_shifts(self, bus, roots):
        cpu = run(
            bus, roots,
            "li a0, 0x80000000\nsrli a1, a0, 4\nsrai a2, a0, 4\n"
            "li a3, 3\nslli a3, a3, 2",
        )
        assert cpu.regs.read_int(11) == 0x0800_0000
        assert cpu.regs.read_int(12) == 0xF800_0000
        assert cpu.regs.read_int(13) == 12

    def test_set_less_than(self, bus, roots):
        cpu = run(
            bus, roots,
            "li a0, -1\nli a1, 1\nslt a2, a0, a1\nsltu a3, a0, a1",
        )
        assert cpu.regs.read_int(12) == 1  # signed: -1 < 1
        assert cpu.regs.read_int(13) == 0  # unsigned: 0xFFFFFFFF > 1

    def test_mul_div_rem(self, bus, roots):
        cpu = run(
            bus, roots,
            "li a0, -6\nli a1, 4\nmul a2, a0, a1\ndiv a3, a0, a1\nrem a4, a0, a1",
        )
        assert cpu.regs.read_int(12) == (-24) & 0xFFFFFFFF
        assert cpu.regs.read_int(13) == (-1) & 0xFFFFFFFF
        assert cpu.regs.read_int(14) == (-2) & 0xFFFFFFFF

    def test_div_by_zero_is_all_ones(self, bus, roots):
        cpu = run(bus, roots, "li a0, 5\nli a1, 0\ndivu a2, a0, a1\nremu a3, a0, a1")
        assert cpu.regs.read_int(12) == 0xFFFF_FFFF
        assert cpu.regs.read_int(13) == 5

    def test_lui(self, bus, roots):
        cpu = run(bus, roots, "lui a0, 0x12345")
        assert cpu.regs.read_int(10) == 0x1234_5000


class TestZeroRegister:
    def test_reads_zero(self, bus, roots):
        cpu = run(bus, roots, "li a0, 9\nadd a1, zero, zero")
        assert cpu.regs.read_int(11) == 0

    def test_ignores_writes(self, bus, roots):
        cpu = run(bus, roots, "li zero, 42\nadd a0, zero, zero")
        assert cpu.regs.read_int(10) == 0


class TestBranches:
    def test_loop(self, bus, roots):
        cpu = run(
            bus, roots,
            """
            li a0, 0
            li a1, 5
            loop:
            add a0, a0, a1
            addi a1, a1, -1
            bnez a1, loop
            """,
        )
        assert cpu.regs.read_int(10) == 15
        assert cpu.stats.branches_taken == 4

    @pytest.mark.parametrize(
        "op,a,b,taken",
        [
            ("beq", 3, 3, True),
            ("bne", 3, 3, False),
            ("blt", -1, 1, True),
            ("bge", -1, 1, False),
            ("bltu", -1, 1, False),  # unsigned -1 is huge
            ("bgeu", -1, 1, True),
        ],
    )
    def test_conditions(self, bus, roots, op, a, b, taken):
        cpu = run(
            bus, roots,
            f"""
            li a0, {a}
            li a1, {b}
            li a2, 0
            {op} a0, a1, skip
            li a2, 1
            skip:
            """,
        )
        assert cpu.regs.read_int(12) == (0 if taken else 1)


class TestBothModes:
    def test_same_results_rv32e(self, bus, roots):
        source = "li a0, 10\nli a1, 3\nmul a2, a0, a1\naddi a2, a2, 7"
        cheriot = run(bus, roots, source)
        rv32e = run(bus, roots, source, mode=ExecutionMode.RV32E)
        assert cheriot.regs.read_int(12) == rv32e.regs.read_int(12) == 37
