"""Meta-tests: the spec table, dispatch table and assembler agree."""

from repro.isa.executor import _DISPATCH
from repro.isa.instructions import INSTRUCTION_SPECS
from repro.isa.registers import ABI_NAMES, REGISTER_NAMES, register_index

import pytest


class TestSpecDispatchAgreement:
    def test_every_spec_has_a_handler(self):
        missing = set(INSTRUCTION_SPECS) - set(_DISPATCH)
        assert not missing, f"specs without handlers: {missing}"

    def test_every_handler_has_a_spec(self):
        extra = set(_DISPATCH) - set(INSTRUCTION_SPECS)
        assert not extra, f"handlers without specs: {extra}"

    def test_signatures_are_well_formed(self):
        valid = {"rd", "rs", "rt", "imm", "mem", "label", "csr", "scr", "str"}
        for spec in INSTRUCTION_SPECS.values():
            for kind in [k for k in spec.signature.split(",") if k]:
                assert kind in valid, f"{spec.mnemonic}: bad kind {kind}"


class TestRegisterNames:
    def test_sixteen_abi_names(self):
        assert len(ABI_NAMES) == 16

    def test_all_spellings_resolve(self):
        for index, abi in enumerate(ABI_NAMES):
            assert register_index(abi) == index
            assert register_index(f"x{index}") == index
            assert register_index(f"c{index}") == index
            assert register_index(f"c{abi}") == index

    def test_fp_alias(self):
        assert register_index("fp") == register_index("s0") == 8

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            register_index("x16")
        with pytest.raises(ValueError):
            register_index("bogus")

    def test_case_insensitive(self):
        assert register_index("A0") == 10
