"""Trace-JIT tier unit tests: compilation, guards, invalidation, stats.

The differential matrix lives in ``test_block_cache.py`` (every
differential there runs interpreter / block cache / trace-JIT); this
file pins the JIT-specific machinery — threshold promotion, the
self-loop trace shape, guard bail-outs with prefix replay, dirty-range
invalidation of compiled code, the unsupported-block fallback, the
shared source→code cache, and the stats surface.
"""

from dataclasses import fields

import pytest

from repro.capability import make_roots
from repro.isa import CPU, ExecutionMode, Trap, assemble
from repro.isa import tracejit
from repro.memory import SystemBus, TaggedMemory
from repro.pipeline import CoreKind, make_core_model

CODE_BASE = 0x2000_0000
DATA_BASE = 0x2000_8000
DATA_SIZE = 0x100


def _make_cpu(source, jit_threshold=2, trace_jit=True, timing=True,
              mode=ExecutionMode.CHERIOT):
    bus = SystemBus()
    bus.attach_sram(TaggedMemory(CODE_BASE, 0x1_0000))
    roots = make_roots()
    cpu = CPU(
        bus, mode, trace_jit=trace_jit, jit_threshold=jit_threshold
    )
    if timing:
        cpu.timing = make_core_model(CoreKind.IBEX)
    program = assemble(source)
    if mode is ExecutionMode.CHERIOT:
        cpu.load_program(program, CODE_BASE, pcc=roots.executable)
        cpu.regs.write(
            8, roots.memory.set_address(DATA_BASE).set_bounds(DATA_SIZE)
        )
    else:
        cpu.load_program(program, CODE_BASE)
        cpu.regs.write_int(8, DATA_BASE)
    return cpu


def _compiled_blocks(cpu):
    # The block dict holds None for ranges that refused translation.
    return [
        b for b in cpu._blocks.values() if b is not None and b.jit is not None
    ]


class TestPromotion:
    def test_hot_self_loop_compiles_to_trace(self):
        cpu = _make_cpu(
            """
                li a0, 137
            loop:
                addi a0, a0, -1
                bnez a0, loop
                halt
            """
        )
        cpu.run()
        assert cpu.jit_stats.compiles >= 1
        assert cpu.jit_stats.executions > 0
        assert cpu.jit_stats.instructions > 0
        assert cpu.jit_stats.unsupported == 0
        loops = [b.jit for b in _compiled_blocks(cpu) if b.jit.self_loop]
        assert loops, "the hot back-edge block should compile as a trace"
        # The trace shape: an internal loop returning (next_pc, iters).
        assert "while True:" in loops[0].source
        assert "_it" in loops[0].source

    def test_cold_blocks_stay_fused(self):
        # A threshold higher than the iteration count (and a program
        # body unique to this test, so the shared code cache cannot
        # adopt it) must never compile.
        cpu = _make_cpu(
            """
                li a0, 7
            loop:
                addi a0, a0, -3
                addi a0, a0, 2
                bnez a0, loop
                halt
            """,
            jit_threshold=1000,
        )
        cpu.run()
        assert cpu.jit_stats.compiles == 0
        assert cpu.block_stats.executions > 0

    def test_disabled_never_compiles(self):
        cpu = _make_cpu(
            "li a0, 60\nloop:\naddi a0, a0, -1\nbnez a0, loop\nhalt\n",
            trace_jit=False,
        )
        cpu.run()
        assert cpu.jit_stats.compiles == 0
        assert cpu.jit_stats.executions == 0


class TestExecutionEquivalence:
    SOURCE = """
        li a0, 200
        li a1, 0
    loop:
        sw a1, 0(s0)
        lw a2, 0(s0)
        add a1, a1, a2
        addi a0, a0, -1
        bnez a0, loop
        halt
    """

    def _state(self, cpu):
        stats = tuple(getattr(cpu.stats, f.name) for f in fields(cpu.stats))
        cycles = (
            cpu.timing.cycles,
            cpu.timing.stats.stall_cycles,
            cpu.timing.stats.bus_beats,
        )
        return cpu.regs.snapshot(), stats, cycles, cpu.pc

    def test_jit_bit_identical_to_interpreter(self):
        ref = _make_cpu(self.SOURCE, trace_jit=False)
        ref._block_cache_enabled = False
        ref._update_fast_path()
        ref.run()
        jit = _make_cpu(self.SOURCE, jit_threshold=2)
        jit.run()
        assert jit.jit_stats.executions > 0
        assert self._state(jit) == self._state(ref)

    def test_executions_count_loop_iterations(self):
        # Each completed trace-loop iteration counts once, so the
        # counter is comparable with BlockCacheStats.executions.
        cpu = _make_cpu(
            "li a0, 100\nloop:\naddi a0, a0, -1\nbnez a0, loop\nhalt\n",
            jit_threshold=2,
        )
        cpu.run()
        fused = cpu.block_stats.executions
        compiled = cpu.jit_stats.executions
        # 100 back-edge executions split between the two tiers (plus
        # the entry/exit blocks); nothing double-counted.
        assert compiled > 50
        assert fused + compiled <= 110


class TestGuardBail:
    SOURCE = """
        li a0, 80
    loop:
        lw a1, 0(s1)
        cincaddrimm s1, s1, 4
        addi a0, a0, -1
        bnez a0, loop
        halt
    """

    def _run(self, **kwargs):
        cpu = _make_cpu(self.SOURCE, **kwargs)
        roots = make_roots()
        # s1 walks off the end of a 64-word buffer on iteration 65,
        # faulting inside the (by then compiled) trace loop.
        cpu.regs.write(
            9, roots.memory.set_address(DATA_BASE).set_bounds(DATA_SIZE)
        )
        with pytest.raises(Trap) as excinfo:
            cpu.run()
        trap = excinfo.value
        stats = tuple(getattr(cpu.stats, f.name) for f in fields(cpu.stats))
        return cpu, (trap.cause, trap.pc, str(trap), cpu.regs.snapshot(),
                     stats, cpu.timing.cycles)

    def test_mid_trace_fault_replays_exactly(self):
        ref_cpu, ref = self._run(trace_jit=False)
        jit_cpu, jit = self._run(jit_threshold=2)
        assert jit_cpu.jit_stats.guard_bails >= 1
        assert jit_cpu.jit_stats.executions > 0
        assert jit == ref


class TestRecoveryResume:
    """A guard bail leaves the CPU consistent enough to *resume*.

    The recovery machinery (compartment RETRY handlers, the executive's
    watchdog) re-drives a CPU after a fault; that only works if a trap
    thrown out of compiled code leaves pc and registers exactly where
    the interpreter would.  Repair the faulting capability at the trap
    point, continue the run, and the completed state must be
    bit-identical across tiers.
    """

    SOURCE = TestGuardBail.SOURCE

    def _fault_repair_resume(self, **kwargs):
        cpu = _make_cpu(self.SOURCE, **kwargs)
        roots = make_roots()
        cpu.regs.write(
            9, roots.memory.set_address(DATA_BASE).set_bounds(DATA_SIZE)
        )
        with pytest.raises(Trap):
            cpu.run()
        # The handler's repair: a fresh buffer wide enough to finish.
        cpu.regs.write(
            9, roots.memory.set_address(DATA_BASE).set_bounds(0x1000)
        )
        cpu.run()
        stats = tuple(getattr(cpu.stats, f.name) for f in fields(cpu.stats))
        return cpu, (cpu.regs.snapshot(), stats, cpu.pc, cpu.timing.cycles)

    def test_resume_after_mid_trace_fault_matches_interpreter(self):
        ref_cpu, ref = self._fault_repair_resume(trace_jit=False)
        jit_cpu, jit = self._fault_repair_resume(jit_threshold=2)
        assert jit_cpu.jit_stats.guard_bails >= 1
        assert jit_cpu.halted and ref_cpu.halted
        assert jit == ref


class TestInvalidation:
    SOURCE = """
        li t0, 60
    loop:
        addi t0, t0, -1
        bnez t0, loop
        halt
    """

    def test_store_drops_compiled_code_and_recompiles(self):
        cpu = _make_cpu(self.SOURCE, jit_threshold=2)
        cpu.run()
        compiles = cpu.jit_stats.compiles
        assert compiles >= 1
        assert _compiled_blocks(cpu)
        cpu.bus.write_word(CODE_BASE + 4, 0x0000_0013)
        assert cpu.jit_stats.invalidations >= 1
        assert not _compiled_blocks(cpu)
        cpu.pc = CODE_BASE
        cpu.run()
        assert cpu.jit_stats.compiles > compiles


class TestUnsupportedFallback:
    def test_csr_read_never_enters_a_block(self):
        # Every fusable mnemonic has generator support; csrr is not
        # fusable, so it ends blocks at the cache layer and the JIT
        # never sees it — the loop still runs, interpreted around the
        # CSR read.
        cpu = _make_cpu(
            """
                li a0, 30
            loop:
                csrr t1, mcycle
                addi a0, a0, -1
                bnez a0, loop
                halt
            """,
            jit_threshold=2,
        )
        cpu.run()
        assert cpu.jit_stats.unsupported == 0
        assert cpu.regs.read_int(10) == 0

    def test_cheriot_only_instruction_in_rv32e_marks_unsupported(self):
        # In RV32E mode capability mnemonics are fusable (the table is
        # mode-independent) but execute to an illegal-instruction trap;
        # the generator refuses such blocks, which must stay on the
        # fused tier and raise the exact architectural fault.
        outcomes = []
        for trace_jit in (False, True):
            cpu = _make_cpu(
                "li a0, 1\ncgetlen a1, s0\nhalt\n",
                mode=ExecutionMode.RV32E,
                trace_jit=trace_jit,
                jit_threshold=2,
            )
            with pytest.raises(Trap) as excinfo:
                cpu.run()
            trap = excinfo.value
            outcomes.append((trap.cause, trap.pc, str(trap)))
            if trace_jit:
                assert cpu.jit_stats.unsupported >= 1
                assert cpu.jit_stats.compiles == 0
        assert outcomes[0] == outcomes[1]


class TestCodeCache:
    SOURCE = """
        li a0, 29
    loop:
        addi a0, a0, -2
        addi a0, a0, 1
        bnez a0, loop
        halt
    """

    def test_second_cpu_adopts_hot_code_below_threshold(self):
        # CPU 1 crosses the threshold and populates the shared
        # source->code cache; a fresh CPU 2 running the same image with
        # the default threshold (50 > 29 iterations) still executes
        # compiled code, via the first-execution cached-only probe.
        first = _make_cpu(self.SOURCE, jit_threshold=2)
        first.run()
        assert first.jit_stats.compiles >= 1
        second = _make_cpu(self.SOURCE, jit_threshold=50)
        second.run()
        assert second.jit_stats.executions > 0
        assert second.regs.read_int(10) == 0

    def test_code_cache_reuses_code_objects(self):
        first = _make_cpu(self.SOURCE, jit_threshold=2)
        first.run()
        blocks = _compiled_blocks(first)
        assert blocks
        src = blocks[0].jit.source
        assert src in tracejit._CODE_CACHE
        second = _make_cpu(self.SOURCE, jit_threshold=2)
        second.run()
        twins = [b for b in _compiled_blocks(second)
                 if b.jit.source == src]
        assert twins
        # Same source text -> the exec'd function shares one code object
        # (the cached module code's function constant).
        assert twins[0].jit.fn.__code__ in tracejit._CODE_CACHE[src].co_consts
        assert blocks[0].jit.fn.__code__ is twins[0].jit.fn.__code__


class TestStatsSurface:
    def test_reset_covers_every_field(self):
        stats = tracejit.TraceJITStats(
            compiles=1, executions=2, instructions=3, guard_bails=4,
            invalidations=5, unsupported=6,
        )
        stats.reset()
        assert all(getattr(stats, f.name) == 0 for f in fields(stats))

    def test_system_summary_exposes_tier_groups(self):
        from repro.machine import System

        system = System.build()
        summary = system.stats_summary()
        assert "block_cache" in summary
        assert "trace_jit" in summary
        assert set(summary["trace_jit"]) == {
            "compiles", "executions", "instructions", "guard_bails",
            "invalidations", "unsupported",
        }
        # CPUs the system creates aggregate into the registry groups.
        cpu = system.make_cpu()
        assert cpu.jit_stats is system.trace_jit_stats
        assert cpu.block_stats is system.block_cache_stats
