"""Tests for jumps, sentries and interrupt-posture control (section 3.1.2)."""

import pytest

from repro.capability import Permission as P, SentryType
from repro.isa import ExecutionMode, Trap, TrapCause
from .conftest import CODE_BASE, make_cpu


class TestJumps:
    def test_jal_and_ret(self, bus, roots):
        cpu = make_cpu(
            bus, roots,
            """
            jal ra, func
            li a1, 2
            halt
            func:
            li a0, 1
            ret
            """,
        )
        cpu.run()
        assert cpu.regs.read_int(10) == 1
        assert cpu.regs.read_int(11) == 2

    def test_link_register_is_return_sentry(self, bus, roots):
        cpu = make_cpu(bus, roots, "jal ra, target\ntarget: halt")
        cpu.run()
        link = cpu.regs.read(1)
        assert link.is_sentry
        assert link.otype == SentryType.RETURN_ENABLED

    def test_link_captures_disabled_posture(self, bus, roots):
        cpu = make_cpu(bus, roots, "jal ra, target\ntarget: halt")
        cpu.csr.interrupts_enabled = False
        cpu.run()
        assert cpu.regs.read(1).otype == SentryType.RETURN_DISABLED

    def test_rv32e_link_is_plain_address(self, bus, roots):
        cpu = make_cpu(bus, roots, "jal ra, target\ntarget: halt",
                       mode=ExecutionMode.RV32E)
        cpu.run()
        assert cpu.regs.read_int(1) == CODE_BASE + 4

    def test_jump_to_untagged_traps(self, bus, roots):
        cpu = make_cpu(bus, roots, "jalr c0, t0\nhalt")
        with pytest.raises(Trap) as excinfo:
            cpu.run()
        assert excinfo.value.cause is TrapCause.CHERI_TAG

    def test_jump_to_non_executable_traps(self, bus, roots, data_cap):
        cpu = make_cpu(bus, roots, "jalr c0, s0\nhalt")
        cpu.regs.write(8, data_cap)
        with pytest.raises(Trap) as excinfo:
            cpu.run()
        assert excinfo.value.cause is TrapCause.CHERI_PERMISSION


class TestSentries:
    def _sentry_cpu(self, bus, roots, sentry_kind):
        """Program: seal 'func' as a sentry, jump through it."""
        return make_cpu(
            bus, roots,
            f"""
            cmove t0, c7
            csealentry t0, t0, {sentry_kind}
            jalr ra, t0
            halt
            func:
            li a0, 1
            jalr c0, ra
            """,
        )

    def _with_func_cap(self, cpu, roots):
        func_cap = roots.executable.set_address(CODE_BASE + 4 * 4)
        cpu.regs.write(7, func_cap)  # c7 = t2
        return cpu

    def test_disable_interrupts_sentry(self, bus, roots):
        cpu = self._with_func_cap(self._sentry_cpu(bus, roots, "disable"), roots)
        postures = []
        original = cpu.ecall_handler
        cpu.run()
        # After return through the link sentry, the original (enabled)
        # posture is restored.
        assert cpu.csr.interrupts_enabled
        assert cpu.regs.read_int(10) == 1

    def test_enable_interrupts_sentry(self, bus, roots):
        cpu = self._with_func_cap(self._sentry_cpu(bus, roots, "enable"), roots)
        cpu.csr.interrupts_enabled = False
        cpu.run()
        # Link sentry captured the disabled posture; restored on return.
        assert not cpu.csr.interrupts_enabled

    def test_inherit_sentry_keeps_posture(self, bus, roots):
        cpu = self._with_func_cap(self._sentry_cpu(bus, roots, "inherit"), roots)
        cpu.csr.interrupts_enabled = True
        cpu.run()
        assert cpu.csr.interrupts_enabled

    def test_sealed_non_sentry_jump_traps(self, bus, roots, data_cap):
        cpu = make_cpu(bus, roots, "jalr c0, s0\nhalt")
        sealed = data_cap.seal(roots.sealing.set_address(3))
        cpu.regs.write(8, sealed)
        with pytest.raises(Trap) as excinfo:
            cpu.run()
        assert excinfo.value.cause is TrapCause.CHERI_SEAL

    def test_sentry_posture_applied_during_callee(self, bus, roots):
        """The callee really runs with interrupts off under a disable

        sentry: observe the CSR from inside via csrr (callee's PCC has
        SR because it derives from the executable root)."""
        cpu = make_cpu(
            bus, roots,
            """
            cmove t0, c7
            csealentry t0, t0, disable
            jalr ra, t0
            halt
            func:
            csrr a0, mstatus_mie
            jalr c0, ra
            """,
        )
        func_cap = roots.executable.set_address(CODE_BASE + 4 * 4)
        cpu.regs.write(7, func_cap)
        cpu.run()
        assert cpu.regs.read_int(10) == 0  # interrupts were off inside
        assert cpu.csr.interrupts_enabled  # and back on after return


class TestFetchChecks:
    def test_pcc_without_ex_traps(self, bus, roots):
        cpu = make_cpu(bus, roots, "nop\nhalt")
        cpu.pcc = cpu.pcc.clear_perms(P.EX)
        with pytest.raises(Trap) as excinfo:
            cpu.step()
        assert excinfo.value.cause is TrapCause.CHERI_PERMISSION

    def test_pc_outside_program_traps(self, bus, roots):
        cpu = make_cpu(bus, roots, "j end\nend: halt")
        cpu.pc = CODE_BASE + 0x1000
        with pytest.raises(Trap):
            cpu.step()
