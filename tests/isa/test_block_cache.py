"""Differential tests: the tiered executors vs single-stepping.

The superblock translation cache (:mod:`repro.isa.blockcache`) fuses
straight-line runs of pre-decoded instructions into one dispatch and
batch-charges their cycle costs; the trace-JIT tier
(:mod:`repro.isa.tracejit`) compiles hot blocks into specialised Python
functions on top of it.  The correctness contract of both is strict
*observational equivalence*: with any tier enabled, every architectural
outcome — golden traces, register files, retired-instruction stats, bus
counters, modelled cycles, trap causes and messages, even the cycle
count an MMIO device reads mid-run — must be bit-identical to pure
single-stepping.  These tests pin that contract across the CoreMark
workalike (both cores, all configs), the assembly compartment switcher
(the machinery the allocation benchmark models), a seeded
fault-injection campaign slice, and randomized programs; plus the
cache-management machinery itself (invalidation on code-region stores,
chained-block invalidation under self-modifying code, deoptimization
under observers, exact step budgets).

Every differential runs the full tier matrix in :data:`TIER_CONFIGS` —
interpreter, block cache only, block cache + trace-JIT.
"""

from dataclasses import fields

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.capability import make_roots
from repro.isa import CPU, ExecutionMode, Halted, Trap, assemble
from repro.isa.timer import ClintTimer
from repro.isa.trace import ExecutionTrace
from repro.memory import SystemBus, TaggedMemory
from repro.pipeline import CoreKind, make_core_model

CODE_BASE = 0x2000_0000
DATA_BASE = 0x2000_8000
DATA_SIZE = 0x100


#: The three execution tiers, as CPU kwargs.  ``jit_threshold=2`` makes
#: the trace-JIT engage within test-sized iteration counts (the default
#: 50 would leave most of these programs on the fused tier).
TIER_CONFIGS = (
    ("interp", dict(block_cache=False)),
    ("block", dict(block_cache=True, trace_jit=False)),
    ("jit", dict(block_cache=True, trace_jit=True, jit_threshold=2)),
)


def _fresh_cpu(block_cache=True, predecode=True, **tier_kwargs):
    bus = SystemBus()
    bus.attach_sram(TaggedMemory(CODE_BASE, 0x1_0000))
    roots = make_roots()
    cpu = CPU(
        bus,
        ExecutionMode.CHERIOT,
        predecode=predecode,
        block_cache=block_cache,
        **tier_kwargs,
    )
    cpu.timing = make_core_model(CoreKind.IBEX)
    return cpu, roots


def _load(cpu, roots, program):
    cpu.load_program(program, CODE_BASE, pcc=roots.executable)
    data = roots.memory.set_address(DATA_BASE).set_bounds(DATA_SIZE)
    cpu.regs.write(8, data)


def _state(cpu):
    """Full observable state: registers, stats, bus counters, cycles."""
    stats = tuple(getattr(cpu.stats, f.name) for f in fields(cpu.stats))
    bus_stats = tuple(
        getattr(cpu.bus.stats, f.name) for f in fields(cpu.bus.stats)
    )
    timing = cpu.timing
    cycles = (timing.cycles, timing.stats.stall_cycles, timing.stats.bus_beats)
    return cpu.regs.snapshot(), stats, bus_stats, cpu.pc, cycles


def _run_all(source, max_steps=100_000):
    """Run one program under every tier; return (states, cpus), in
    :data:`TIER_CONFIGS` order (interpreter first)."""
    program = assemble(source)
    states, cpus = [], []
    for _name, cfg in TIER_CONFIGS:
        cpu, roots = _fresh_cpu(**cfg)
        _load(cpu, roots, program)
        cpu.run(max_steps=max_steps)
        states.append(_state(cpu))
        cpus.append(cpu)
    return states, cpus


class TestStraightLineEquivalence:
    def test_mem_loop_bit_identical(self):
        source = """
            li a0, 200
            li a1, 0
        loop:
            sw a1, 0(s0)
            lw a2, 0(s0)
            add a1, a1, a2
            addi a0, a0, -1
            bnez a0, loop
            halt
        """
        states, cpus = _run_all(source)
        assert states[1] == states[0]
        assert states[2] == states[0]
        # Each tier actually ran (this is not a vacuous pass).
        assert cpus[1].block_stats.executions > 0
        assert cpus[1].block_stats.instructions > 0
        assert cpus[2].jit_stats.compiles > 0
        assert cpus[2].jit_stats.executions > 0

    def test_cap_ops_and_cap_memory_bit_identical(self):
        source = """
            li a0, 50
        loop:
            csc c8, 0(s0)
            clc c9, 0(s0)
            cgetlen a2, s1
            cincaddrimm s1, s0, 8
            csetaddr s1, s1, a2
            addi a0, a0, -1
            bnez a0, loop
            halt
        """
        states, cpus = _run_all(source)
        assert states[1] == states[0]
        assert states[2] == states[0]
        assert cpus[1].block_stats.executions > 0
        assert cpus[2].jit_stats.executions > 0

    def test_load_use_hazard_window_identical(self):
        # Back-to-back load/consume pairs at the block entry, interior,
        # and exit: the batch charge must reproduce every stall.
        source = """
            li a0, 40
        loop:
            lw a1, 0(s0)
            add a2, a1, a1
            lw a3, 4(s0)
            addi a0, a0, -1
            bnez a0, loop
            add a4, a3, a3
            halt
        """
        states, _ = _run_all(source)
        assert states[1] == states[0]
        assert states[2] == states[0]

    def test_division_and_multiply_costs_identical(self):
        source = """
            li a0, 30
            li a1, 7
        loop:
            mul a2, a0, a1
            div a3, a2, a1
            rem a4, a2, a1
            addi a0, a0, -1
            bnez a0, loop
            halt
        """
        states, _ = _run_all(source)
        assert states[1] == states[0]
        assert states[2] == states[0]


class TestFaultEquivalence:
    def test_unvectored_mid_block_fault_identical(self):
        # The lw faults (out of s0's bounds) in the middle of a fused
        # run; the prefix must be accounted exactly and the Trap must
        # carry the same cause, pc and message.
        source = """
            li a0, 1
            li a1, 2
            lw a2, 0x7FC(s0)
            li a3, 4
            halt
        """
        program = assemble(source)
        outcomes = []
        for _name, cfg in TIER_CONFIGS:
            cpu, roots = _fresh_cpu(**cfg)
            _load(cpu, roots, program)
            with pytest.raises(Trap) as excinfo:
                cpu.run()
            trap = excinfo.value
            outcomes.append(
                (trap.cause, trap.pc, str(trap), _state(cpu))
            )
        assert outcomes[1] == outcomes[0]
        assert outcomes[2] == outcomes[0]

    def test_vectored_mid_block_fault_identical(self):
        source = """
            li a0, 42
            li a1, 1
            lw a2, 0x7FC(s0)
            li a0, 99
            halt
        handler:
            li a3, 7
            halt
        """
        program = assemble(source)
        states = []
        for _name, cfg in TIER_CONFIGS:
            cpu, roots = _fresh_cpu(**cfg)
            _load(cpu, roots, program)
            handler_pc = CODE_BASE + 4 * program.entry("handler")
            cpu.regs.write_scr("mtcc", roots.executable.set_address(handler_pc))
            cpu.run()
            states.append(_state(cpu))
        assert states[1] == states[0]
        assert states[2] == states[0]
        regs = states[1][0]
        assert regs[13].address == 7  # the handler ran
        assert regs[10].address == 42  # pre-fault value preserved

    def test_step_budget_boundary_identical(self):
        source = """
            li a0, 10
        loop:
            addi a0, a0, -1
            bnez a0, loop
            halt
        """
        program = assemble(source)
        cpu, roots = _fresh_cpu(block_cache=False)
        _load(cpu, roots, program)
        cpu.run()
        retired = cpu.stats.instructions

        # One step short must raise the same RuntimeError (message
        # includes pc and retired count — pinning exact accounting);
        # exactly enough must halt with identical stats.
        for budget, expect_halt in ((retired - 1, False), (retired, True)):
            outcomes = []
            for _name, cfg in TIER_CONFIGS:
                cpu, roots = _fresh_cpu(**cfg)
                _load(cpu, roots, program)
                try:
                    cpu.run(max_steps=budget)
                    outcomes.append(("halted", _state(cpu)))
                except RuntimeError as exc:
                    outcomes.append(("exceeded", str(exc), _state(cpu)))
            assert outcomes[1] == outcomes[0]
            assert outcomes[2] == outcomes[0]
            assert (outcomes[0][0] == "halted") is expect_halt


class TestDeoptimization:
    def test_retire_hooks_force_single_stepping(self):
        # An attached trace (retire hook) must see the identical
        # per-instruction stream — the fused path never engages.
        source = """
            li a0, 20
        loop:
            sw a0, 0(s0)
            lw a1, 0(s0)
            addi a0, a0, -1
            bnez a0, loop
            halt
        """
        program = assemble(source)
        traces, states = [], []
        for _name, cfg in TIER_CONFIGS:
            cpu, roots = _fresh_cpu(**cfg)
            _load(cpu, roots, program)
            trace = ExecutionTrace(code_base=CODE_BASE).attach(cpu)
            cpu.run()
            traces.append(trace.entries)
            states.append(_state(cpu))
            assert cpu.block_stats.executions == 0
            assert cpu.jit_stats.executions == 0
        assert traces[1] == traces[0]
        assert traces[2] == traces[0]
        assert states[1] == states[0]
        assert states[2] == states[0]

    def test_pre_step_hook_forces_single_stepping(self):
        source = "li a0, 5\nloop:\naddi a0, a0, -1\nbnez a0, loop\nhalt\n"
        program = assemble(source)
        cpu, roots = _fresh_cpu(block_cache=True)
        _load(cpu, roots, program)
        seen = []
        cpu.pre_step_hook = lambda c: seen.append(c.pc)
        cpu.run()
        assert cpu.block_stats.executions == 0
        # The hook saw every step, in order.
        assert len(seen) == cpu.stats.instructions

    def test_block_cache_disabled_never_fuses(self):
        source = "li a0, 5\nloop:\naddi a0, a0, -1\nbnez a0, loop\nhalt\n"
        program = assemble(source)
        cpu, roots = _fresh_cpu(block_cache=False)
        _load(cpu, roots, program)
        cpu.run()
        assert cpu.block_stats.executions == 0
        assert cpu.block_stats.translations == 0


class TestInvalidation:
    SOURCE = """
        li t0, 3
    loop1:
        addi t0, t0, -1
        bnez t0, loop1
        halt
    """

    def test_store_into_code_region_invalidates_and_retranslates(self):
        program = assemble(self.SOURCE)
        cpu, roots = _fresh_cpu(block_cache=True)
        _load(cpu, roots, program)
        cpu.run()
        assert cpu.block_stats.executions > 0
        translations_before = cpu.block_stats.translations
        assert cpu.block_stats.invalidations == 0

        # A write into the cached code range must drop the overlapping
        # blocks...
        cpu.bus.write_word(CODE_BASE + 4, 0x0000_0013)
        assert cpu.block_stats.invalidations >= 1

        # ...and re-execution must re-translate, not reuse stale blocks.
        cpu.pc = CODE_BASE
        cpu.run()
        assert cpu.block_stats.translations > translations_before

    def test_in_program_store_to_code_invalidates(self):
        # The program itself stores into its own code range mid-run —
        # the architectural results must still match single-stepping,
        # and the cached run must notice the dirty range.
        source = """
            li t0, 3
        loop1:
            addi t0, t0, -1
            bnez t0, loop1
            bnez a2, done
            li a2, 1
            sw a3, 4(s1)
            li t0, 3
            j loop1
        done:
            halt
        """
        program = assemble(source)
        states, counters = [], []
        for _name, cfg in TIER_CONFIGS:
            cpu, roots = _fresh_cpu(**cfg)
            _load(cpu, roots, program)
            # s1: write authority over the code region (loop1's range).
            cpu.regs.write(
                9, roots.memory.set_address(CODE_BASE).set_bounds(0x100)
            )
            cpu.run()
            states.append(_state(cpu))
            counters.append(cpu.block_stats.invalidations)
        assert states[1] == states[0]
        assert states[2] == states[0]
        assert counters[1] >= 1  # the cached runs saw the dirty store
        assert counters[2] >= 1

    def test_store_outside_code_region_does_not_invalidate(self):
        source = """
            li t0, 3
        loop1:
            sw t0, 0(s0)
            addi t0, t0, -1
            bnez t0, loop1
            halt
        """
        program = assemble(source)
        cpu, roots = _fresh_cpu(block_cache=True)
        _load(cpu, roots, program)
        cpu.run()
        assert cpu.block_stats.executions > 0
        assert cpu.block_stats.invalidations == 0


class TestSuccessorBlockInvalidation:
    """Self-modifying code rewriting a *successor* block while its
    predecessor's compiled trace is mid-execution.

    The predecessor is a hot self-loop (a compiled trace at
    ``jit_threshold=2``) whose body stores into the code range of the
    block that executes after the loop exits.  The dirty-range hooks
    must drop the successor's translation (and compiled code) on every
    such store — while the predecessor keeps looping — and the
    architectural outcome must stay bit-identical to single-stepping.
    The decoded program image is fixed at load time (the simulator's
    predecode contract), so the observable effects are the bus/stat
    stream and the invalidation counters, not new instruction bytes.
    """

    @settings(max_examples=25, deadline=None)
    @given(
        loops=st.integers(min_value=3, max_value=40),
        victim_word=st.integers(min_value=0, max_value=2),
        value=st.integers(min_value=0, max_value=0xFFFF_FFFF),
    )
    def test_trace_loop_rewrites_successor(self, loops, victim_word, value):
        # Two rounds: round 1 executes (and caches) the successor block
        # at label succ, and heats loop1 past the JIT threshold; in
        # round 2 the compiled trace's store drops succ's translation
        # mid-loop.  The store hits the victim word inside succ.
        source = f"""
            li a5, 2
            li a3, {value}
        round:
            li t0, {loops}
        loop1:
            sw a3, 0(s1)
            addi t0, t0, -1
            bnez t0, loop1
        succ:
            li a1, 11
            addi a1, a1, 3
            add a2, a1, a1
            addi a5, a5, -1
            bnez a5, round
            halt
        """
        program = assemble(source)
        succ_pc = CODE_BASE + 4 * program.entry("succ")
        states, counters = [], []
        for _name, cfg in TIER_CONFIGS:
            cpu, roots = _fresh_cpu(**cfg)
            _load(cpu, roots, program)
            # s1: write authority aimed at the victim word of succ.
            cpu.regs.write(
                9,
                roots.memory.set_address(succ_pc + 4 * victim_word)
                .set_bounds(4),
            )
            cpu.run()
            states.append(_state(cpu))
            counters.append(
                (cpu.block_stats.invalidations, cpu.jit_stats.invalidations)
            )
        assert states[1] == states[0]
        assert states[2] == states[0]
        # Both cached tiers saw the successor's range go dirty.
        assert counters[1][0] >= 1
        assert counters[2][0] >= 1

    @settings(max_examples=25, deadline=None)
    @given(
        loops=st.integers(min_value=3, max_value=30),
        value=st.integers(min_value=0, max_value=0xFFFF_FFFF),
    )
    def test_chained_blocks_rewrite_each_other(self, loops, value):
        # Two blocks chained by compiled ``j`` terminators: A stores
        # into B's range every round while the executor's chained
        # dispatch alternates A -> B -> A.  B must be dropped and
        # re-translated (and re-compiled once hot again) every round.
        source = f"""
            li t0, {loops}
            li a3, {value}
        blockA:
            sw a3, 0(s1)
            addi t0, t0, -1
            beqz t0, done
            j blockB
        blockB:
            addi a2, a2, 1
            j blockA
        done:
            li a1, 5
            halt
        """
        program = assemble(source)
        victim_pc = CODE_BASE + 4 * program.entry("blockB")
        states, counters = [], []
        for _name, cfg in TIER_CONFIGS:
            cpu, roots = _fresh_cpu(**cfg)
            _load(cpu, roots, program)
            cpu.regs.write(
                9, roots.memory.set_address(victim_pc).set_bounds(4)
            )
            cpu.run()
            states.append(_state(cpu))
            counters.append(cpu.block_stats.invalidations)
        assert states[1] == states[0]
        assert states[2] == states[0]
        # Every store dropped the successor: one invalidation per round.
        assert counters[1] >= loops - 1
        assert counters[2] >= loops - 1


class TestMMIOCycleExactness:
    def test_mtime_reads_mid_block_identical(self):
        # A fused block that loads the CLINT's mtime must observe the
        # same cycle counts single-stepping would: the executor streams
        # cycle charges ahead of every memory operation.
        source = """
            li a0, 6
            li a2, 0
        loop:
            lw a1, 4(s0)
            add a2, a2, a1
            addi a0, a0, -1
            bnez a0, loop
            halt
        """
        program = assemble(source)
        timer_base = 0x4000_0000
        sums, states = [], []
        for name, cfg in TIER_CONFIGS:
            bus = SystemBus()
            bus.attach_sram(TaggedMemory(CODE_BASE, 0x1_0000))
            core_model = make_core_model(CoreKind.IBEX)
            bus.attach_device(timer_base, 0x100, ClintTimer(core_model))
            cpu = CPU(bus, ExecutionMode.RV32E, **cfg)
            cpu.timing = core_model
            cpu.load_program(program, CODE_BASE)
            cpu.regs.write_int(8, timer_base)
            cpu.run()
            sums.append(cpu.regs.read_int(12))
            states.append(
                (
                    tuple(getattr(cpu.stats, f.name) for f in fields(cpu.stats)),
                    core_model.cycles,
                    bus.stats.mmio_reads,
                )
            )
            if name != "interp":
                assert cpu.block_stats.executions > 0
        assert sums[1] == sums[0]
        assert sums[2] == sums[0]
        assert states[1] == states[0]
        assert states[2] == states[0]
        assert sums[0] > 0  # mtime actually advanced during the run


class TestWorkloadEquivalence:
    @pytest.mark.parametrize("core", [CoreKind.FLUTE, CoreKind.IBEX])
    @pytest.mark.parametrize(
        "config", ["rv32e", "cheriot", "cheriot+filter"]
    )
    def test_coremark_bit_identical(self, core, config):
        from repro.workloads.coremark import run_coremark

        ref = run_coremark(core, config, iterations=1, block_cache=False)
        mid = run_coremark(core, config, iterations=1, trace_jit=False)
        new = run_coremark(core, config, iterations=1)
        for result in (mid, new):
            assert (result.cycles, result.instructions, result.crc) == (
                ref.cycles,
                ref.instructions,
                ref.crc,
            )

    def test_asm_switcher_bit_identical(self):
        # The assembly compartment switcher: sentries, trusted-stack
        # manipulation, stack zeroing, CSR access — the machinery the
        # allocation benchmark's cross-compartment calls model.
        from repro.rtos.asm_switcher import build_image

        from tests.integration.test_asm_switcher import CALLEE, CALLER

        states = []
        for _name, cfg in TIER_CONFIGS:
            image = build_image(CALLEE, CALLER, **cfg)
            image.cpu.run()
            states.append(_state_no_timing(image.cpu))
        assert states[1] == states[0]
        assert states[2] == states[0]
        assert states[1][1][0] > 50  # the full call/return path ran
        assert states[1][0][10].address == 42  # callee's result in a0

    def test_fault_campaign_slice_bit_identical(self, monkeypatch):
        # 1000 seeded injections: every scenario, outcome, detail and
        # wrong-result flag must match across all three tiers.
        # (Injection hooks deoptimize per-step; hook-free phases run
        # fused/compiled.)
        from repro.faultinject import engine as engine_mod
        from repro.faultinject.campaign import run_campaign

        real_cpu = engine_mod.CPU
        records = []
        for _name, cfg in TIER_CONFIGS:

            def tiered_cpu(*args, _cfg=cfg, **kwargs):
                for key, value in _cfg.items():
                    kwargs.setdefault(key, value)
                return real_cpu(*args, **kwargs)

            monkeypatch.setattr(engine_mod, "CPU", tiered_cpu)
            records.append(run_campaign(1000).records)
        assert records[1] == records[0]
        assert records[2] == records[0]


def _state_no_timing(cpu):
    stats = tuple(getattr(cpu.stats, f.name) for f in fields(cpu.stats))
    bus_stats = tuple(
        getattr(cpu.bus.stats, f.name) for f in fields(cpu.bus.stats)
    )
    return cpu.regs.snapshot(), stats, bus_stats, cpu.pc


_REGS = ["t0", "t1", "t2", "s1", "a0", "a1", "a2", "a3"]
_ALU_RR = ["add", "sub", "and", "or", "xor", "sll", "srl", "mul", "div"]
_ALU_RI = ["addi", "andi", "ori", "xori", "slti"]

regs = st.sampled_from(_REGS)
imms = st.integers(min_value=-2048, max_value=2047)
mem_offsets = st.sampled_from([0, 4, 8, 64, DATA_SIZE - 4, DATA_SIZE])


@st.composite
def body_line(draw):
    kind = draw(st.integers(min_value=0, max_value=4))
    rd, rs, rt = draw(regs), draw(regs), draw(regs)
    if kind == 0:
        return f"{draw(st.sampled_from(_ALU_RR))} {rd}, {rs}, {rt}"
    if kind == 1:
        return f"{draw(st.sampled_from(_ALU_RI))} {rd}, {rs}, {draw(imms)}"
    if kind == 2:
        op = draw(st.sampled_from(["lw", "sw", "lb", "sb"]))
        scale = 4 if op in ("lw", "sw") else 1
        offset = draw(mem_offsets) // scale * scale
        return f"{op} {rd}, {offset}(s0)"
    if kind == 3:
        op = draw(st.sampled_from(["clc", "csc"]))
        offset = draw(mem_offsets) // 8 * 8
        return f"{op} {rd}, {offset}(s0)"
    return f"bne {rs}, {rt}, done"


@st.composite
def mixed_program(draw):
    n = draw(st.integers(min_value=1, max_value=24))
    lines = [draw(body_line()) for _ in range(n)]
    return "\n".join(lines) + "\ndone: halt\n"


class TestRandomizedEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(mixed_program())
    def test_run_outcome_identical(self, source):
        # Unlike the predecode differential (which single-steps), this
        # drives cpu.run() so fused blocks, mid-block faults and the
        # fall-back paths all engage.
        program = assemble(source)
        outcomes = []
        for _name, cfg in TIER_CONFIGS:
            cpu, roots = _fresh_cpu(**cfg)
            _load(cpu, roots, program)
            try:
                cpu.run(max_steps=500)
                outcomes.append(("halted", _state(cpu)))
            except Trap as trap:
                outcomes.append(
                    ("trap", trap.cause, trap.pc, str(trap), _state(cpu))
                )
            except RuntimeError as exc:
                outcomes.append(("exceeded", str(exc), _state(cpu)))
        assert outcomes[1] == outcomes[0]
        assert outcomes[2] == outcomes[0]
