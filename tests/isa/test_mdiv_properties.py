"""Property tests for the M-extension corner cases.

RISC-V defines every division edge: divide-by-zero returns all-ones
(``div``/``divu``) or the dividend (``rem``/``remu``), and the signed
overflow ``-2^31 / -1`` returns ``-2^31`` with remainder 0 — no traps.
The executor's handlers are cross-checked against an independent
reference model here, with the edge cases forced explicitly as well as
reached through random sign combinations.
"""

from hypothesis import example, given, settings
from hypothesis import strategies as st

from repro.capability import make_roots
from repro.isa import CPU, ExecutionMode, assemble
from repro.memory import SystemBus, TaggedMemory

CODE_BASE = 0x2000_0000
WORD = 0xFFFFFFFF
INT_MIN = -(1 << 31)


def _signed(value):
    value &= WORD
    return value - (1 << 32) if value & 0x8000_0000 else value


# --- independent reference model (RISC-V unprivileged spec, ch. M) ---

def ref_div(a, b):
    sa, sb = _signed(a), _signed(b)
    if sb == 0:
        return WORD
    if sa == INT_MIN and sb == -1:  # signed overflow
        return INT_MIN & WORD
    q = abs(sa) // abs(sb)
    return (-q if (sa < 0) != (sb < 0) else q) & WORD


def ref_rem(a, b):
    sa, sb = _signed(a), _signed(b)
    if sb == 0:
        return a & WORD
    if sa == INT_MIN and sb == -1:
        return 0
    return (sa - sb * _signed(ref_div(a, b))) & WORD


def ref_divu(a, b):
    return WORD if b == 0 else (a // b) & WORD


def ref_remu(a, b):
    return a & WORD if b == 0 else (a % b) & WORD


def ref_mulh(a, b):
    return ((_signed(a) * _signed(b)) >> 32) & WORD


def ref_mulhu(a, b):
    return ((a * b) >> 32) & WORD


REFERENCE = {
    "div": ref_div, "rem": ref_rem, "divu": ref_divu, "remu": ref_remu,
    "mulh": ref_mulh, "mulhu": ref_mulhu,
    "mul": lambda a, b: (_signed(a) * _signed(b)) & WORD,
}


def _execute(mnemonic, a, b):
    bus = SystemBus()
    bus.attach_sram(TaggedMemory(CODE_BASE, 0x1000))
    cpu = CPU(bus, ExecutionMode.CHERIOT)
    cpu.load_program(
        assemble(f"{mnemonic} a0, a1, a2\nhalt"),
        CODE_BASE,
        pcc=make_roots().executable,
    )
    cpu.regs.write_int(11, a & WORD)
    cpu.regs.write_int(12, b & WORD)
    cpu.run()
    return cpu.regs.read_int(10)


# Biased toward the interesting boundary values but still random.
operands = st.one_of(
    st.sampled_from([0, 1, WORD, 0x8000_0000, 0x7FFF_FFFF, 2, 0xFFFF_FFFE]),
    st.integers(min_value=0, max_value=WORD),
)


class TestDivisionProperties:
    @settings(max_examples=200, deadline=None)
    @given(mnemonic=st.sampled_from(sorted(REFERENCE)), a=operands, b=operands)
    @example(mnemonic="div", a=0x8000_0000, b=WORD)   # -2^31 / -1 overflow
    @example(mnemonic="rem", a=0x8000_0000, b=WORD)
    @example(mnemonic="div", a=0x8000_0000, b=0)      # divide by zero
    @example(mnemonic="rem", a=12345, b=0)
    @example(mnemonic="divu", a=7, b=0)
    @example(mnemonic="remu", a=7, b=0)
    @example(mnemonic="mulh", a=0x8000_0000, b=0x8000_0000)
    def test_matches_reference(self, mnemonic, a, b):
        assert _execute(mnemonic, a, b) == REFERENCE[mnemonic](a, b)

    @settings(max_examples=100, deadline=None)
    @given(a=operands, b=operands)
    def test_div_rem_identity(self, a, b):
        """For b != 0: a == b * (a div b) + (a rem b)  (mod 2^32)."""
        if (b & WORD) == 0:
            return
        q = _execute("div", a, b)
        r = _execute("rem", a, b)
        assert (_signed(b) * _signed(q) + _signed(r)) & WORD == a & WORD

    @settings(max_examples=100, deadline=None)
    @given(a=operands, b=operands)
    def test_rem_sign_follows_dividend(self, a, b):
        """Truncated division: a nonzero remainder has the dividend's sign."""
        if (b & WORD) == 0 or (a & WORD == 0x8000_0000 and b & WORD == WORD):
            return
        r = _signed(_execute("rem", a, b))
        if r != 0:
            assert (r < 0) == (_signed(a) < 0)
