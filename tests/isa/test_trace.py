"""Tests for the execution trace recorder."""

from repro.isa import CPU, ExecutionMode, ExecutionTrace, assemble
from repro.pipeline import CoreKind, make_core_model
from .conftest import CODE_BASE, make_cpu


class TestTrace:
    def _traced_run(self, bus, roots, source, **kw):
        cpu = make_cpu(bus, roots, source)
        trace = ExecutionTrace(code_base=CODE_BASE, **kw).attach(cpu)
        cpu.run()
        return trace

    def test_records_every_instruction(self, bus, roots):
        trace = self._traced_run(bus, roots, "li a0, 1\nli a1, 2\nadd a2, a0, a1\nhalt")
        assert len(trace) == 3  # halt raises before retire accounting
        assert trace.entries[0].text == "li a0, 1"
        assert trace.entries[0].pc == CODE_BASE
        assert trace.entries[2].pc == CODE_BASE + 8

    def test_branch_marking(self, bus, roots):
        trace = self._traced_run(
            bus, roots, "li a0, 1\nbnez a0, skip\nnop\nskip: halt"
        )
        assert any(e.branch_taken for e in trace.entries)

    def test_limit_drops_excess(self, bus, roots):
        trace = self._traced_run(
            bus, roots,
            "li a0, 100\nloop: addi a0, a0, -1\nbnez a0, loop\nhalt",
            limit=10,
        )
        assert len(trace) == 10
        assert trace.dropped > 0

    def test_hook_coexists_with_timing_model(self, bus, roots):
        """The hook style leaves the timing slot to the real model."""
        core = make_core_model(CoreKind.IBEX)
        cpu = make_cpu(bus, roots, "li a0, 1\nlw a1, 0(s0)\nhalt")
        from .conftest import DATA_BASE

        cpu.regs.write(8, roots.memory.set_address(DATA_BASE).set_bounds(64))
        cpu.timing = core
        trace = ExecutionTrace(code_base=CODE_BASE).attach(cpu)
        cpu.run()
        assert core.cycles > 0
        assert len(trace) == 2

    def test_legacy_timing_slot_chains(self, bus, roots):
        """The deprecated timing-slot style still records and chains."""
        core = make_core_model(CoreKind.IBEX)
        cpu = make_cpu(bus, roots, "li a0, 1\nlw a1, 0(s0)\nhalt")
        from .conftest import DATA_BASE

        cpu.regs.write(8, roots.memory.set_address(DATA_BASE).set_bounds(64))
        trace = ExecutionTrace(timing=core, code_base=CODE_BASE)
        cpu.timing = trace
        cpu.run()
        assert core.cycles > 0
        assert len(trace) == 2
        assert trace.params is core.params

    def test_detach_stops_recording(self, bus, roots):
        cpu = make_cpu(bus, roots, "li a0, 1\nli a1, 2\nadd a2, a0, a1\nhalt")
        trace = ExecutionTrace(code_base=CODE_BASE).attach(cpu)
        cpu.step()
        trace.detach(cpu)
        cpu.run()
        assert len(trace) == 1
        assert trace.entries[0].pc == CODE_BASE

    def test_histogram_and_render(self, bus, roots):
        trace = self._traced_run(
            bus, roots, "li a0, 3\nloop: addi a0, a0, -1\nbnez a0, loop\nhalt"
        )
        histogram = trace.mnemonic_histogram()
        assert histogram["addi"] == 3
        assert histogram["bnez"] == 3
        rendered = trace.render(last=2)
        assert rendered.count("\n") == 1


class TestTraceUnderPredecode:
    """The trace recorder sees real Instruction objects and per-retire
    info from the pre-decoded fast path, so its output must be identical
    to the interpretive reference path."""

    SOURCE = (
        "li a0, 3\n"
        "loop: addi a0, a0, -1\n"
        "lw a1, 0(s0)\n"
        "bnez a0, loop\n"
        "jal ra, leaf\n"
        "halt\n"
        "leaf: cgetaddr a2, s0\n"
        "ret\n"
    )

    def _render(self, predecode):
        from repro.capability import make_roots
        from repro.isa import assemble
        from repro.memory import SystemBus, TaggedMemory
        from .conftest import DATA_BASE

        bus = SystemBus()
        bus.attach_sram(TaggedMemory(CODE_BASE, 0x1_0000))
        roots = make_roots()
        cpu = CPU(bus, ExecutionMode.CHERIOT, predecode=predecode)
        cpu.load_program(assemble(self.SOURCE), CODE_BASE, pcc=roots.executable)
        cpu.regs.write(8, roots.memory.set_address(DATA_BASE).set_bounds(64))
        trace = ExecutionTrace(code_base=CODE_BASE).attach(cpu)
        cpu.run()
        return trace

    def test_render_identical_across_paths(self):
        interp = self._render(predecode=False)
        fast = self._render(predecode=True)
        assert fast.render() == interp.render()
        assert fast.mnemonic_histogram() == interp.mnemonic_histogram()
        assert [ (e.pc, e.text, e.timing_class, e.branch_taken)
                 for e in fast.entries ] == [
               (e.pc, e.text, e.timing_class, e.branch_taken)
                 for e in interp.entries ]
