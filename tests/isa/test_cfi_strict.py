"""Tests for the strict forward/backward sentry mode (paper footnote 4:

"Later revisions of CHERIoT will distinguish forward and backward
control-flow arcs")."""

import pytest

from repro.capability import make_roots
from repro.isa import CPU, ExecutionMode, Trap, TrapCause, assemble
from .conftest import CODE_BASE


def strict_cpu(bus, roots, source):
    cpu = CPU(bus, ExecutionMode.CHERIOT, cfi_strict=True)
    cpu.load_program(assemble(source), CODE_BASE, pcc=roots.executable)
    return cpu


class TestStrictCFI:
    def test_normal_call_return_still_works(self, bus, roots):
        cpu = strict_cpu(
            bus, roots,
            "jal ra, fn\nli a1, 2\nhalt\nfn: li a0, 1\nret",
        )
        cpu.run()
        assert cpu.regs.read_int(10) == 1 and cpu.regs.read_int(11) == 2

    def test_forward_sentry_call_works(self, bus, roots):
        cpu = strict_cpu(
            bus, roots,
            """
            cmove t0, c7
            csealentry t0, t0, inherit
            jalr ra, t0
            halt
            fn: jalr c0, ra
            """,
        )
        cpu.regs.write(7, roots.executable.set_address(CODE_BASE + 16))
        cpu.run()

    def test_return_through_forward_sentry_blocked(self, bus, roots):
        """A gadget `ret`ting through a stolen *function* sentry dies."""
        cpu = strict_cpu(
            bus, roots,
            """
            cmove ra, c7
            csealentry ra, ra, inherit   # ra now holds a FORWARD sentry
            ret                          # strict CFI: not a return arc
            target: halt
            """,
        )
        cpu.regs.write(7, roots.executable.set_address(CODE_BASE + 12))
        with pytest.raises(Trap) as excinfo:
            cpu.run()
        assert excinfo.value.cause is TrapCause.CHERI_SEAL
        assert "forward sentry" in excinfo.value.detail

    def test_call_through_return_sentry_blocked(self, bus, roots):
        """A gadget *calling* a stolen return sentry dies too."""
        cpu = strict_cpu(
            bus, roots,
            """
            cmove t0, c7
            csealentry t0, t0, ret_en    # t0 holds a RETURN sentry
            jalr ra, t0                  # strict CFI: not a call arc
            target: halt
            """,
        )
        cpu.regs.write(7, roots.executable.set_address(CODE_BASE + 12))
        with pytest.raises(Trap) as excinfo:
            cpu.run()
        assert excinfo.value.cause is TrapCause.CHERI_SEAL
        assert "return sentry" in excinfo.value.detail

    def test_legacy_mode_permits_mixed_arcs(self, bus, roots):
        """The paper's current revision does not distinguish arcs."""
        cpu = CPU(bus, ExecutionMode.CHERIOT, cfi_strict=False)
        cpu.load_program(
            assemble(
                "cmove ra, c7\ncsealentry ra, ra, inherit\nret\ntarget: halt"
            ),
            CODE_BASE,
            pcc=roots.executable,
        )
        cpu.regs.write(7, roots.executable.set_address(CODE_BASE + 12))
        cpu.run()  # allowed in the MICRO'23 revision
