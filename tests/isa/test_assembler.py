"""Tests for the two-pass assembler."""

import pytest

from repro.isa.assembler import AssemblerError, assemble


class TestBasics:
    def test_simple_program(self):
        prog = assemble("li a0, 5\nhalt\n")
        assert len(prog) == 2
        assert prog.instructions[0].mnemonic == "li"
        assert prog.instructions[0].operands == (10, 5)

    def test_comments_and_blanks(self):
        prog = assemble(
            """
            # a comment
            li a0, 1   ; trailing
            // c++ style
            halt
            """
        )
        assert len(prog) == 2

    def test_register_spellings(self):
        prog = assemble("add x10, a0, ca0\nhalt")
        assert prog.instructions[0].operands == (10, 10, 10)

    def test_immediates(self):
        prog = assemble("li t0, 0x10\nli t1, -5\nli t2, 0b101\nhalt")
        assert prog.instructions[0].operands[1] == 16
        assert prog.instructions[1].operands[1] == -5
        assert prog.instructions[2].operands[1] == 5

    def test_memory_operand(self):
        prog = assemble("lw a0, -8(sp)\nhalt")
        assert prog.instructions[0].operands == (10, (-8, 2))

    def test_size_bytes(self):
        assert assemble("nop\nnop\nhalt").size_bytes == 12


class TestLabels:
    def test_forward_and_backward(self):
        prog = assemble(
            """
            start:
                beqz a0, done
                j start
            done:
                halt
            """
        )
        assert prog.entry("start") == 0
        assert prog.entry("done") == 2
        assert prog.instructions[0].operands == (10, 2)
        assert prog.instructions[1].operands == (0,)

    def test_label_with_instruction_on_same_line(self):
        prog = assemble("loop: addi a0, a0, -1\nbnez a0, loop\nhalt")
        assert prog.entry("loop") == 0

    def test_duplicate_label(self):
        with pytest.raises(AssemblerError):
            assemble("x:\nx:\nnop")

    def test_undefined_label(self):
        with pytest.raises(AssemblerError):
            assemble("j nowhere\nhalt")

    def test_unknown_entry(self):
        prog = assemble("nop")
        with pytest.raises(AssemblerError):
            prog.entry("missing")


class TestErrors:
    def test_unknown_mnemonic(self):
        with pytest.raises(AssemblerError):
            assemble("frobnicate a0, a1")

    def test_wrong_operand_count(self):
        with pytest.raises(AssemblerError):
            assemble("add a0, a1")

    def test_bad_register(self):
        with pytest.raises(AssemblerError):
            assemble("add a0, a1, q7")

    def test_bad_immediate(self):
        with pytest.raises(AssemblerError):
            assemble("li a0, banana")

    def test_bad_memory_operand(self):
        with pytest.raises(AssemblerError):
            assemble("lw a0, a1")


class TestCapabilityMnemonics:
    def test_cap_ops_parse(self):
        prog = assemble(
            """
            cincaddrimm csp, csp, -16
            csc cra, 8(csp)
            clc cra, 8(csp)
            csetboundsimm ct0, ct0, 64
            csealentry ct1, ct0, disable
            cspecialrw ct2, mtdc, c0
            halt
            """
        )
        assert len(prog) == 7
        assert prog.instructions[4].operands == (6, 5, "disable")
        assert prog.instructions[5].operands == (7, "mtdc", 0)
