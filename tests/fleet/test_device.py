"""Device runner: pure function of the spec, tier-invariant numbers."""

from repro.fleet import DeviceSpec, run_device
from repro.fleet.device import latency_summary
from repro.fleet.shard import run_shard
from repro.fleet.plan import FleetPlan

#: Small workload so the whole module stays fast.
SPEC = DeviceSpec(device_id=3, fleet_seed=20260807, injections=1, alloc_ops=4)


class TestDeterminism:
    def test_same_spec_same_sample(self):
        assert run_device(SPEC) == run_device(SPEC)

    def test_different_devices_differ(self):
        other = DeviceSpec(device_id=4, fleet_seed=20260807,
                           injections=1, alloc_ops=4)
        a, b = run_device(SPEC), run_device(other)
        assert a["seed"] != b["seed"]
        assert a["kernel"]["iterations"] != b["kernel"]["iterations"] or (
            a["cycles"] != b["cycles"]
        )

    def test_tier_choice_never_changes_the_numbers(self):
        """The report's determinism rests on cycle-exact tiers: a device
        run with the trace-JIT must produce the identical sample."""
        jit = run_device(SPEC)
        interp = run_device(
            DeviceSpec(device_id=3, fleet_seed=20260807, injections=1,
                       alloc_ops=4, trace_jit=False)
        )
        assert jit == interp


class TestSampleShape:
    def test_sample_has_every_report_field(self):
        sample = run_device(SPEC)
        assert sample["device"] == 3
        assert sample["faults"]["injections"] == 1
        assert sample["faults"]["escaped"] == 0
        assert sample["throughput"]["calls"] == len(sample["latency_samples"])
        assert sample["latency"]["count"] == len(sample["latency_samples"])
        assert 0.0 < sample["revocation"]["duty_cycle"] < 1.0
        assert sample["kernel"]["instructions"] > 0

    def test_shard_concatenates_devices_in_order(self):
        plan = FleetPlan(devices=2, shard_size=2, injections_per_device=1,
                         alloc_ops=4)
        beats = []
        result = run_shard(
            plan.shards()[0],
            heartbeat=lambda device_id, done, telemetry: beats.append(
                (device_id, done, telemetry["counters"]["devices"])
            ),
        )
        assert [d["device"] for d in result["devices"]] == [0, 1]
        assert beats == [(0, 1, 1), (1, 2, 2)]
        assert result["fleet_seed"] == plan.seed


class TestLatencySummary:
    def test_empty_is_all_zero(self):
        summary = latency_summary([])
        assert summary == {
            "count": 0, "min": 0, "p50": 0, "p90": 0, "p99": 0,
            "max": 0, "mean": 0.0,
        }

    def test_percentiles_are_nearest_rank_order_independent(self):
        samples = list(range(1, 101))
        summary = latency_summary(samples)
        reversed_summary = latency_summary(list(reversed(samples)))
        assert summary == reversed_summary
        assert summary["p50"] == 50
        assert summary["p99"] == 99
        assert summary["min"] == 1 and summary["max"] == 100
        assert summary["mean"] == 50.5
