"""The merge: byte-stable, order-blind, and loud about missing shards."""

import pytest

from repro.fleet import FleetPlan, merge_report, render_report, run_shard
from repro.fleet.merge import MergeError

#: Tiny fleet so the module stays fast; module-level cache because the
#: shard runs are pure functions of the plan.
PLAN = FleetPlan(devices=4, shard_size=2, injections_per_device=1, alloc_ops=4)
_RESULTS = None


def shard_results():
    global _RESULTS
    if _RESULTS is None:
        _RESULTS = {s.shard_id: run_shard(s) for s in PLAN.shards()}
    return dict(_RESULTS)


class TestByteStability:
    def test_result_dict_order_never_matters(self):
        forward = shard_results()
        backward = dict(sorted(forward.items(), reverse=True))
        assert render_report(
            merge_report(PLAN, forward, {})
        ) == render_report(merge_report(PLAN, backward, {}))

    def test_devices_sorted_and_samples_stripped(self):
        report = merge_report(PLAN, shard_results(), {})
        ids = [d["device"] for d in report["devices"]]
        assert ids == sorted(ids) == list(range(4))
        assert all("latency_samples" not in d for d in report["devices"])

    def test_fleet_latency_pools_every_device_sample(self):
        report = merge_report(PLAN, shard_results(), {})
        per_device = sum(d["latency"]["count"] for d in report["devices"])
        assert report["aggregates"]["latency"]["count"] == per_device

    def test_report_names_plan_and_fingerprint(self):
        report = merge_report(PLAN, shard_results(), {})
        assert report["plan"] == PLAN.to_dict()
        assert report["fingerprint"] == PLAN.fingerprint()
        assert render_report(report).endswith("\n")


class TestDegradation:
    def test_quarantined_shard_is_annotated_not_dropped(self):
        results = shard_results()
        lost = results.pop(1)
        report = merge_report(PLAN, results, {1: "quarantined after 3 attempts"})
        (entry,) = report["degraded"]
        assert entry["shard"] == 1
        assert entry["devices"] == [2, 3]
        assert "quarantined" in entry["reason"]
        assert report["aggregates"]["devices_reporting"] == 2
        assert report["aggregates"]["devices_degraded"] == 2
        # The degraded devices' numbers are really excluded.
        full = merge_report(PLAN, shard_results(), {})
        lost_cycles = sum(d["cycles"] for d in lost["devices"])
        assert report["aggregates"]["total_cycles"] == (
            full["aggregates"]["total_cycles"] - lost_cycles
        )

    def test_missing_shard_refused(self):
        results = shard_results()
        results.pop(0)
        with pytest.raises(MergeError, match=r"shards \[0\]"):
            merge_report(PLAN, results, {})

    def test_completed_and_quarantined_refused(self):
        with pytest.raises(MergeError, match="both completed and quarantined"):
            merge_report(PLAN, shard_results(), {0: "but it also finished"})

    def test_seed_mismatch_refused(self):
        results = shard_results()
        results[0] = dict(results[0], fleet_seed=999)
        with pytest.raises(MergeError, match="seed"):
            merge_report(PLAN, results, {})
