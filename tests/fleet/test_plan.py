"""Plan layer: seeds, shard assignment, and the fingerprint pin."""

import pytest

from repro.fleet import FleetPlan
from repro.fleet.plan import ShardSpec, device_seed


class TestDeviceSeed:
    def test_deterministic_and_in_range(self):
        for device in range(100):
            seed = device_seed(20260807, device)
            assert seed == device_seed(20260807, device)
            assert 0 <= seed < 2**31

    def test_decorrelated_across_devices_and_fleets(self):
        seeds = {device_seed(20260807, d) for d in range(100)}
        assert len(seeds) == 100
        assert device_seed(1, 5) != device_seed(2, 5)


class TestShards:
    def test_contiguous_cover_every_device_exactly_once(self):
        plan = FleetPlan(devices=7, shard_size=3)
        shards = plan.shards()
        assert [s.shard_id for s in shards] == [0, 1, 2]
        covered = [d for s in shards for d in s.device_ids]
        assert covered == list(range(7))
        # The ragged tail shard holds the remainder.
        assert shards[-1].device_ids == (6,)

    def test_shards_carry_the_workload_knobs(self):
        plan = FleetPlan(
            devices=2, shard_size=1, seed=99, injections_per_device=5,
            alloc_ops=7, trace_jit=False,
        )
        for shard in plan.shards():
            assert shard.fleet_seed == 99
            assert shard.injections_per_device == 5
            assert shard.alloc_ops == 7
            assert shard.trace_jit is False

    def test_spec_round_trips_through_json_dict(self):
        spec = FleetPlan(devices=3, shard_size=2).shards()[1]
        assert ShardSpec.from_dict(spec.to_dict()) == spec

    def test_validation(self):
        with pytest.raises(ValueError):
            FleetPlan(devices=0)
        with pytest.raises(ValueError):
            FleetPlan(devices=1, shard_size=0)


class TestFingerprint:
    def test_stable_for_equal_plans(self):
        assert (
            FleetPlan(devices=8).fingerprint()
            == FleetPlan(devices=8).fingerprint()
        )

    def test_sensitive_to_every_knob(self):
        base = FleetPlan(devices=8)
        variants = [
            FleetPlan(devices=9),
            FleetPlan(devices=8, shard_size=3),
            FleetPlan(devices=8, seed=1),
            FleetPlan(devices=8, injections_per_device=4),
            FleetPlan(devices=8, alloc_ops=13),
            FleetPlan(devices=8, trace_jit=False),
        ]
        prints = {p.fingerprint() for p in variants}
        assert base.fingerprint() not in prints
        assert len(prints) == len(variants)

    def test_round_trip_preserves_fingerprint(self):
        plan = FleetPlan(devices=5, shard_size=2, seed=7)
        assert FleetPlan.from_dict(plan.to_dict()).fingerprint() == (
            plan.fingerprint()
        )
