"""Supervisor chaos tests: crash, hang, quarantine, SIGTERM + resume.

The chaos hooks live in the *worker* (`REPRO_FLEET_CHAOS` token
files), so everything exercised here — polling, kill escalation,
retry scheduling, checkpoint commits, quarantine verdicts — is the
production supervision path, not a test double.

The acceptance assert throughout: whatever the supervisor had to do to
keep the fleet alive, the merged report is byte-identical to the
undisturbed serial run.
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.fleet import (
    CheckpointStore,
    FleetPlan,
    FleetSupervisor,
    RetryPolicy,
    merge_report,
    render_report,
    run_shard,
)

ROOT = os.path.dirname(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
)

#: One device per shard keeps worker runtime ~= interpreter startup.
PLAN = FleetPlan(devices=3, shard_size=1, injections_per_device=1, alloc_ops=4)

#: Fast retries: these tests inject failures on purpose.
RETRY = RetryPolicy(max_attempts=3, base_delay=0.01, max_delay=0.05, seed=0)


def serial_bytes(plan=PLAN):
    return render_report(
        merge_report(plan, {s.shard_id: run_shard(s) for s in plan.shards()}, {})
    )


def chaos_token(chaos_dir, kind, shard_id):
    path = os.path.join(str(chaos_dir), f"{kind}-{shard_id}")
    with open(path, "w"):
        pass


class TestSupervisedRuns:
    def test_clean_parallel_run_matches_serial_bytes(self, tmp_path):
        supervisor = FleetSupervisor(
            PLAN, CheckpointStore(str(tmp_path / "ckpt")), jobs=3, retry=RETRY
        )
        results, quarantined = supervisor.run()
        assert quarantined == {}
        assert render_report(
            merge_report(PLAN, results, quarantined)
        ) == serial_bytes()
        assert supervisor.health.worker_launches == 3
        assert supervisor.health.shards_completed == 3

    def test_crashed_worker_is_retried_and_report_is_identical(self, tmp_path):
        chaos = tmp_path / "chaos"
        chaos.mkdir()
        chaos_token(chaos, "crash", 1)
        supervisor = FleetSupervisor(
            PLAN,
            CheckpointStore(str(tmp_path / "ckpt")),
            jobs=2,
            retry=RETRY,
            chaos_dir=str(chaos),
        )
        results, quarantined = supervisor.run()
        assert quarantined == {}
        assert render_report(
            merge_report(PLAN, results, quarantined)
        ) == serial_bytes()
        assert supervisor.health.worker_crashes == 1
        assert supervisor.health.retries == 1
        assert supervisor.health.worker_launches == 4

    def test_hung_worker_is_killed_and_retried(self, tmp_path):
        chaos = tmp_path / "chaos"
        chaos.mkdir()
        chaos_token(chaos, "hang", 0)
        supervisor = FleetSupervisor(
            PLAN,
            CheckpointStore(str(tmp_path / "ckpt")),
            jobs=3,
            timeout=3.0,
            retry=RETRY,
            chaos_dir=str(chaos),
        )
        results, quarantined = supervisor.run()
        assert quarantined == {}
        assert render_report(
            merge_report(PLAN, results, quarantined)
        ) == serial_bytes()
        assert supervisor.health.worker_timeouts == 1
        assert supervisor.health.retries == 1

    def test_stubborn_shard_is_quarantined_with_history(self, tmp_path):
        chaos = tmp_path / "chaos"
        chaos.mkdir()
        chaos_token(chaos, "stubborn", 2)
        supervisor = FleetSupervisor(
            PLAN,
            CheckpointStore(str(tmp_path / "ckpt")),
            jobs=2,
            retry=RetryPolicy(max_attempts=2, base_delay=0.01,
                              max_delay=0.05, seed=0),
            chaos_dir=str(chaos),
        )
        results, quarantined = supervisor.run()
        assert set(results) == {0, 1}
        assert set(quarantined) == {2}
        assert "quarantined after 2 attempts" in quarantined[2]
        # The worker's stderr made it into the verdict (diagnosability).
        assert "failing persistently" in quarantined[2]
        report = merge_report(PLAN, results, quarantined)
        (entry,) = report["degraded"]
        assert entry["shard"] == 2 and entry["devices"] == [2]
        assert supervisor.health.quarantined == 1

    def test_bad_result_payload_is_a_failure_not_a_merge_bomb(self, tmp_path):
        """A worker that exits 0 with a wrong-devices result must be
        treated as failed, not committed."""
        store = CheckpointStore(str(tmp_path / "ckpt"))
        supervisor = FleetSupervisor(
            PLAN, store, jobs=1,
            retry=RetryPolicy(max_attempts=1, seed=0),
        )
        real_harvest = supervisor._harvest

        def corrupted_harvest(state):
            result = real_harvest(state)
            if result is not None and state.spec.shard_id == 1:
                result = dict(result, devices=[])
                state.failures.append("devices stripped by test")
                return None
            return result

        supervisor._harvest = corrupted_harvest
        results, quarantined = supervisor.run()
        assert set(results) == {0, 2}
        assert 1 in quarantined


class TestSigtermResume:
    """The ISSUE's chaos scenario, end to end through the CLI."""

    def test_sigterm_then_resume_is_byte_identical(self, tmp_path):
        ckpt = str(tmp_path / "ckpt")
        out = str(tmp_path / "BENCH_fleet.json")
        cmd = [
            sys.executable,
            os.path.join(ROOT, "tools", "fleet_campaign.py"),
            "--devices", "3", "--shard-size", "1",
            "--injections", "1", "--alloc-ops", "4",
            "--jobs", "1",
            "--checkpoint-dir", ckpt,
            "--output", out,
            # Shard 2 hangs (once): the run wedges after shards 0 and 1
            # commit, which gives SIGTERM a stable window to land in.
            "--chaos-hang", "2",
            "--timeout", "60",
        ]
        proc = subprocess.Popen(
            cmd, cwd=ROOT, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            text=True,
        )
        deadline = time.monotonic() + 60
        want = {os.path.join(ckpt, f"shard-000{n}.json") for n in (0, 1)}
        while time.monotonic() < deadline:
            if all(os.path.exists(p) for p in want):
                break
            if proc.poll() is not None:
                break
            time.sleep(0.05)
        else:
            proc.kill()
            pytest.fail("first two shards never checkpointed")
        proc.send_signal(signal.SIGTERM)
        stdout, stderr = proc.communicate(timeout=60)
        assert proc.returncode == 130, stdout + stderr
        assert not os.path.exists(out)
        # Health sidecar recorded the interruption.
        with open(os.path.join(ckpt, "health.json")) as fh:
            health = json.load(fh)
        assert health["interrupted"] == 1

        resumed = subprocess.run(
            [
                sys.executable,
                os.path.join(ROOT, "tools", "fleet_campaign.py"),
                "--devices", "3", "--shard-size", "1",
                "--injections", "1", "--alloc-ops", "4",
                "--checkpoint-dir", ckpt, "--resume",
                "--output", out,
            ],
            cwd=ROOT, capture_output=True, text=True, timeout=120,
        )
        assert resumed.returncode == 0, resumed.stdout + resumed.stderr
        assert "resuming: 2 shard(s) already checkpointed" in resumed.stderr
        with open(out) as fh:
            assert fh.read() == serial_bytes()

    def test_resume_with_wrong_plan_is_refused(self, tmp_path):
        ckpt = str(tmp_path / "ckpt")
        store = CheckpointStore(ckpt)
        store.bind(PLAN, resume=False)
        other = FleetPlan(devices=5, shard_size=1)
        supervisor = FleetSupervisor(other, CheckpointStore(ckpt), jobs=1)
        from repro.fleet.checkpoint import CheckpointError

        with pytest.raises(CheckpointError, match="resume refused"):
            supervisor.run(resume=True)
