"""The streaming-shipment leg: heartbeat telemetry, live aggregation.

Workers piggyback their shard's cumulative telemetry block on the
heartbeat file; the supervisor folds the blocks into a live
:class:`~repro.obs.pipeline.FleetAggregator` and emits progress
callbacks.  The contract under test: the live view converges to
exactly the committed-result rollup, and streaming changes nothing
about the byte-stable report.
"""

import json
import subprocess
import sys
import os

from repro.fleet import (
    CheckpointStore,
    FleetPlan,
    FleetSupervisor,
    RetryPolicy,
    merge_report,
    render_report,
    run_shard,
)
from repro.obs.pipeline import (
    LATENCY_SKETCH,
    fleet_rollup,
    parse_heartbeat,
    shard_telemetry,
)

PLAN = FleetPlan(devices=3, shard_size=1, injections_per_device=1, alloc_ops=4)
RETRY = RetryPolicy(max_attempts=3, base_delay=0.01, max_delay=0.05, seed=0)
ROOT = os.path.dirname(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
)


class TestShardHeartbeat:
    def test_heartbeat_blocks_are_cumulative(self):
        plan = FleetPlan(devices=2, shard_size=2,
                         injections_per_device=1, alloc_ops=4)
        blocks = []
        run_shard(
            plan.shards()[0],
            heartbeat=lambda device_id, done, telemetry: blocks.append(
                (done, telemetry)
            ),
        )
        assert [done for done, _ in blocks] == [1, 2]
        assert blocks[0][1]["counters"]["devices"] == 1
        assert blocks[1][1]["counters"]["devices"] == 2
        # The last beat is the shard's whole block.
        result = run_shard(plan.shards()[0])
        assert blocks[-1][1] == shard_telemetry(result)


class TestWorkerWire:
    def test_worker_writes_parseable_heartbeats(self, tmp_path):
        spec = PLAN.shards()[0]
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(spec.to_dict()))
        out = tmp_path / "out.json"
        beat = tmp_path / "beat.json"
        subprocess.run(
            [sys.executable, "-m", "repro.fleet.worker",
             "--spec", str(spec_path), "--out", str(out),
             "--heartbeat", str(beat)],
            check=True,
            cwd=ROOT,
            env=dict(os.environ, PYTHONPATH=os.path.join(ROOT, "src")),
        )
        payload = parse_heartbeat(beat.read_text())
        assert payload is not None
        assert payload["shard"] == spec.shard_id
        assert payload["devices_done"] == len(spec.device_ids)
        result = json.loads(out.read_text())
        assert payload["telemetry"] == shard_telemetry(result)


class TestSupervisedStreaming:
    def test_live_aggregate_converges_to_the_rollup(self, tmp_path):
        summaries = []
        supervisor = FleetSupervisor(
            PLAN,
            CheckpointStore(str(tmp_path / "ckpt")),
            jobs=2,
            retry=RETRY,
            progress=summaries.append,
            progress_interval=0.0,
        )
        results, quarantined = supervisor.run()
        assert quarantined == {}
        assert summaries, "progress callback never fired"
        final = summaries[-1]
        rollup = fleet_rollup(PLAN, results, {})
        assert final["devices_done"] == PLAN.devices
        assert final["shards_completed"] == len(PLAN.shards())
        assert final["cycles"] == rollup["counters"]["cycles"]
        assert final["calls"] == rollup["counters"]["calls"]
        assert supervisor.live.combined()["sketches"][LATENCY_SKETCH] == (
            rollup["sketch"]
        )

    def test_resumed_shards_fold_into_the_live_view(self, tmp_path):
        store = CheckpointStore(str(tmp_path / "ckpt"))
        store.bind(PLAN, resume=False)
        store.commit(0, run_shard(PLAN.shards()[0]))
        summaries = []
        supervisor = FleetSupervisor(
            PLAN, store, jobs=2, retry=RETRY,
            progress=summaries.append, progress_interval=0.0,
        )
        results, _ = supervisor.run(resume=True)
        assert summaries[-1]["devices_done"] == PLAN.devices
        assert summaries[-1]["shards_completed"] == len(PLAN.shards())
        # Resume with streaming still merges byte-identically.
        assert render_report(merge_report(PLAN, results, {})) == render_report(
            merge_report(
                PLAN, {s.shard_id: run_shard(s) for s in PLAN.shards()}, {}
            )
        )
