"""Checkpoint store semantics and the seeded retry schedule."""

import json
import os

import pytest

from repro.fleet import CheckpointStore, FleetPlan, RetryPolicy
from repro.fleet.checkpoint import CheckpointError

PLAN = FleetPlan(devices=4, shard_size=2)


class TestCheckpointStore:
    def test_commit_then_completed_round_trips(self, tmp_path):
        store = CheckpointStore(str(tmp_path / "ckpt"))
        store.bind(PLAN, resume=False)
        store.commit(1, {"shard": 1, "devices": []})
        store.commit(0, {"shard": 0, "devices": []})
        assert set(store.completed()) == {0, 1}
        assert store.completed()[1]["shard"] == 1

    def test_commit_is_atomic_no_tmp_left_behind(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        store.bind(PLAN, resume=False)
        store.commit(0, {"shard": 0})
        names = os.listdir(str(tmp_path))
        assert "shard-0000.json" in names
        assert not any(n.endswith(".tmp") for n in names)

    def test_fresh_bind_clears_stale_shards(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        store.bind(PLAN, resume=False)
        store.commit(0, {"shard": 0})
        store.bind(PLAN, resume=False)  # a fresh run, same plan
        assert store.completed() == {}

    def test_resume_bind_keeps_committed_shards(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        store.bind(PLAN, resume=False)
        store.commit(0, {"shard": 0})
        store.bind(PLAN, resume=True)
        assert set(store.completed()) == {0}

    def test_resume_against_a_different_plan_is_refused(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        store.bind(PLAN, resume=False)
        other = FleetPlan(devices=6, shard_size=2)
        with pytest.raises(CheckpointError) as excinfo:
            store.bind(other, resume=True)
        message = str(excinfo.value)
        assert PLAN.fingerprint() in message
        assert other.fingerprint() in message

    def test_fresh_bind_against_a_different_plan_starts_over(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        store.bind(PLAN, resume=False)
        store.commit(0, {"shard": 0})
        store.bind(FleetPlan(devices=6, shard_size=2), resume=False)
        assert store.completed() == {}

    def test_malformed_shard_file_is_dropped_not_trusted(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        store.bind(PLAN, resume=False)
        store.commit(0, {"shard": 0})
        with open(store.shard_path(1), "w") as fh:
            fh.write("{truncated")
        assert set(store.completed()) == {0}
        assert not os.path.exists(store.shard_path(1))

    def test_corrupt_manifest_raises(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        with open(store.manifest_path, "w") as fh:
            fh.write("not json")
        with pytest.raises(CheckpointError):
            store.bind(PLAN, resume=True)

    def test_manifest_records_the_plan(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        store.bind(PLAN, resume=False)
        with open(store.manifest_path) as fh:
            manifest = json.load(fh)
        assert manifest["fingerprint"] == PLAN.fingerprint()
        assert FleetPlan.from_dict(manifest["plan"]) == PLAN


class TestRetryPolicy:
    def test_attempt_budget(self):
        policy = RetryPolicy(max_attempts=3)
        assert [policy.allows(n) for n in (1, 2, 3, 4)] == [
            True, True, True, False,
        ]

    def test_first_attempt_is_free(self):
        assert RetryPolicy().delay(shard_id=0, attempt=1) == 0.0

    def test_schedule_is_deterministic(self):
        a = RetryPolicy(seed=42)
        b = RetryPolicy(seed=42)
        schedule = [a.delay(3, n) for n in (2, 3, 4)]
        assert schedule == [b.delay(3, n) for n in (2, 3, 4)]

    def test_delays_grow_exponentially_within_jitter_band(self):
        policy = RetryPolicy(
            max_attempts=6, base_delay=0.1, factor=2.0, max_delay=10.0, seed=7
        )
        for attempt in range(2, 7):
            cap = min(10.0, 0.1 * 2.0 ** (attempt - 2))
            delay = policy.delay(0, attempt)
            assert cap * 0.5 <= delay <= cap

    def test_ceiling_is_respected(self):
        policy = RetryPolicy(
            max_attempts=20, base_delay=1.0, factor=10.0, max_delay=2.0
        )
        assert policy.delay(0, 10) <= 2.0

    def test_shards_are_decorrelated(self):
        policy = RetryPolicy(seed=1)
        assert policy.delay(0, 2) != policy.delay(1, 2)

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=5.0, max_delay=1.0)
