"""Control-flow graph construction over pre-decoded programs.

The CFG is the skeleton the abstract interpreter walks; a missing edge
is an unsoundness (unanalysed code) and a spurious one only costs
precision.  These tests pin block splitting, branch/call/ret edges,
the call-return fall-through, and cross-span edge reporting.
"""

from repro.isa import assemble
from repro.verify import build_cfg


def _blocks(cfg):
    return cfg.blocks


def test_straight_line_is_one_block():
    program = assemble("addi a0, a0, 1\naddi a0, a0, 2\nhalt\n")
    cfg = build_cfg(program, (0, 3), (0,))
    assert len(cfg.blocks) == 1
    block = cfg.block_at(0)
    assert (block.start, block.end) == (0, 3)
    assert block.successors == ()


def test_branch_splits_and_gets_two_successors():
    program = assemble(
        "top:\n"
        "    addi a0, a0, -1\n"
        "    bne a0, zero, top\n"
        "    halt\n"
    )
    cfg = build_cfg(program, (0, 3), (0,))
    blocks = _blocks(cfg)
    assert set(blocks) == {0, 2}
    assert sorted(blocks[0].successors) == [0, 2]


def test_jal_link_gets_call_return_fallthrough():
    # jal with a link register is a call: the block after it must be
    # reachable (execution resumes there when the callee returns).
    program = assemble(
        "    jal ra, func\n"
        "    halt\n"
        "func:\n"
        "    ret\n"
    )
    cfg = build_cfg(program, (0, 3), (0,))
    blocks = _blocks(cfg)
    assert sorted(blocks[0].successors) == [1, 2]
    # Plain `j` is a goto, not a call: no fall-through.
    program2 = assemble("    j func\n    halt\nfunc:\n    ret\n")
    cfg2 = build_cfg(program2, (0, 3), (0,))
    assert cfg2.block_at(0).successors == (2,)


def test_ret_and_halt_terminate():
    program = assemble("ret\nhalt\n")
    cfg = build_cfg(program, (0, 2), (0, 1))
    for block in cfg.blocks.values():
        assert block.successors == ()


def test_indirect_jumps_are_recorded():
    program = assemble("jalr ra, t0\nhalt\nret\n")
    cfg = build_cfg(program, (0, 3), (0, 2))
    assert 0 in cfg.indirect_sites
    assert 2 in cfg.indirect_sites


def test_out_of_span_target_is_a_cross_edge():
    program = assemble(
        "    j other\n"
        "    halt\n"
        "other:\n"
        "    halt\n"
    )
    cfg = build_cfg(program, (0, 2), (0,))
    assert cfg.cross_edges, "direct jump out of the span must be reported"
    (site, target) = cfg.cross_edges[0]
    assert site == 0 and target == 2
    # The out-of-span index never becomes a block successor.
    for block in cfg.blocks.values():
        assert all(0 <= s < 2 for s in block.successors)


def test_reachability_only_counts_entered_code():
    program = assemble(
        "entry:\n"
        "    halt\n"
        "dead:\n"
        "    addi a0, a0, 1\n"
        "    halt\n"
    )
    cfg = build_cfg(program, (0, 3), (0,))
    assert cfg.reachable() == {0}
