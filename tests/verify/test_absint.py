"""The abstract interpreter's property checks on small programs.

Each test builds a minimal one-compartment image around a handful of
instructions and asserts the verifier's verdict: a *violation* when the
defect holds for every concretisation, an *obligation* when the static
domain cannot decide, and a clean bill (with the property counted as
proven) for correct code.
"""

from repro.capability import Permission, make_roots
from repro.verify import CompartmentSpan, ImageSpec, verify_image
from repro.verify.domain import AbstractCap

CODE_BASE = 0x2000_0000


def _image(source, regs=None, pcc_has_sr=False, memory=None, **kwargs):
    from repro.isa import assemble

    program = assemble(source)
    span = CompartmentSpan(
        name="main",
        span=(0, len(program)),
        entries=(0,),
        entry_regs=regs or {},
        pcc_has_sr=pcc_has_sr,
    )
    return ImageSpec(
        name="test",
        program=program,
        code_base=CODE_BASE,
        compartments=(span,),
        memory=memory or {},
        **kwargs,
    )


def _heap(size=64, address=0x100):
    roots = make_roots()
    cap = roots.memory.set_address(address).set_bounds(size)
    return AbstractCap.from_capability(cap, "heap")


def _stack(size=0x100, address=0x9000):
    roots = make_roots()
    cap = (
        roots.memory.set_address(address)
        .set_bounds(size)
        .clear_perms(Permission.GL)
    )
    return AbstractCap.from_capability(cap, "stack")


def _categories(result, severity=None):
    return {
        f.category
        for f in result.findings
        if severity is None or f.severity == severity
    }


def test_clean_program_proves_bounds():
    result = verify_image(
        _image(
            "    sw zero, 0(s0)\n"
            "    lw a0, 4(s0)\n"
            "    halt\n",
            regs={8: _heap()},
        )
    )
    assert result.violations == []
    assert result.proven.get("bounds", 0) >= 2


def test_guaranteed_widen_is_a_violation():
    result = verify_image(
        _image(
            "    csetboundsimm t0, s0, 4096\n"
            "    halt\n",
            regs={8: _heap(size=64)},
        )
    )
    assert "monotonicity" in _categories(result, "violation")


def test_inbounds_narrow_is_proven_monotone():
    result = verify_image(
        _image(
            "    csetboundsimm t0, s0, 16\n"
            "    halt\n",
            regs={8: _heap(size=64)},
        )
    )
    assert result.violations == []
    assert result.proven.get("monotonicity", 0) >= 1


def test_definitely_out_of_bounds_store_is_a_violation():
    result = verify_image(
        _image(
            "    sw zero, 128(s0)\n"
            "    halt\n",
            regs={8: _heap(size=64)},
        )
    )
    assert "bounds" in _categories(result, "violation")


def test_store_via_untagged_value_is_a_violation():
    result = verify_image(
        _image(
            "    li t0, 0x100\n"
            "    sw zero, 0(t0)\n"
            "    halt\n"
        )
    )
    assert "untagged-deref" in _categories(result, "violation")


def test_stack_cap_stored_to_global_is_flagged():
    # s0 = stack capability (local), s1 = global stash: the store-local
    # rule makes the store trap, and the verifier reports it statically.
    result = verify_image(
        _image(
            "    csc s0, 0(s1)\n"
            "    halt\n",
            regs={8: _stack(), 9: _heap(address=0xA000)},
        )
    )
    cats = _categories(result)
    assert "store-local" in cats or "stack-escape" in cats


def test_stack_cap_to_stack_memory_is_fine():
    # Spilling the stack capability to the stack itself is the normal
    # calling convention; SL on the authority licenses it.
    result = verify_image(
        _image(
            "    csc s0, 0(s0)\n"
            "    halt\n",
            regs={8: _stack()},
        )
    )
    assert result.violations == []


def test_jump_to_untagged_register_is_a_violation():
    result = verify_image(
        _image(
            "    li t0, 0x2000_0000\n"
            "    jalr zero, t0\n"
        )
    )
    assert "untagged-jump" in _categories(result, "violation")


def test_invoking_sealed_non_sentry_is_a_violation():
    roots = make_roots()
    token = roots.memory.set_bounds(16).seal(roots.sealing.set_address(6))
    result = verify_image(
        _image(
            "    jalr zero, t0\n",
            regs={5: AbstractCap.from_capability(token, "token")},
        )
    )
    assert "sentry" in _categories(result, "violation")


def test_protected_csr_write_needs_system_register_permission():
    src = "    csrw mshwm, a0\n    halt\n"
    unprivileged = verify_image(_image(src, pcc_has_sr=False))
    assert "scr-access" in _categories(unprivileged, "violation")
    privileged = verify_image(_image(src, pcc_has_sr=True))
    assert privileged.violations == []


def test_cunseal_without_authority_is_a_violation():
    roots = make_roots()
    token = roots.memory.set_bounds(16).seal(roots.sealing.set_address(1))
    result = verify_image(
        _image(
            # t1 is a plain data capability, not a sealing authority.
            "    cunseal t0, t2, t1\n"
            "    halt\n",
            regs={
                5: _heap(),
                6: AbstractCap.from_capability(roots.memory.set_bounds(8), "x"),
                7: AbstractCap.from_capability(token, "token"),
            },
        )
    )
    assert "unseal" in _categories(result, "violation")


def test_candperm_always_proves_monotonicity():
    result = verify_image(
        _image(
            "    li t1, 0x3F\n"
            "    candperm t0, s0, t1\n"
            "    halt\n",
            regs={8: _heap()},
        )
    )
    assert result.violations == []
    assert result.proven.get("monotonicity", 0) >= 1


def test_cross_compartment_direct_jump_is_a_violation():
    from repro.isa import assemble

    program = assemble(
        "    j other\n"
        "    halt\n"
        "other:\n"
        "    halt\n"
    )
    spans = (
        CompartmentSpan(name="a", span=(0, 2), entries=(0,)),
        CompartmentSpan(name="b", span=(2, 3), entries=(2,)),
    )
    spec = ImageSpec(
        name="two",
        program=program,
        code_base=CODE_BASE,
        compartments=spans,
    )
    result = verify_image(spec)
    assert "cross-compartment" in _categories(result, "violation")


def test_unknown_values_yield_obligations_not_violations():
    # A completely unknown register: the verifier must not claim a
    # definite violation, only an undischarged obligation.
    result = verify_image(
        _image(
            "    sw zero, 0(a0)\n"
            "    halt\n",
            regs={10: AbstractCap.unknown()},
        )
    )
    assert result.violations == []
    assert result.obligations


def test_loop_reaches_fixpoint():
    result = verify_image(
        _image(
            "top:\n"
            "    cincaddrimm s0, s0, 4\n"
            "    addi t0, t0, -1\n"
            "    bne t0, zero, top\n"
            "    halt\n",
            regs={8: _heap(size=64)},
        )
    )
    # The address interval widens to unknown instead of diverging, and
    # nothing here is a definite violation.
    assert result.violations == []
    assert result.passes >= 1
