"""The stock audited images verify clean — the headline static claim.

``make audit`` stakes the repository's reputation on these: every
image the simulator actually runs (bare-metal example, fault-campaign
register walk, the assembly switcher, CoreMark) passes the abstract
interpreter with **zero** violations, and the committed baseline
reproduces bit-exactly.
"""

import pytest

from repro.verify import AUDITED_IMAGES, verify_image


@pytest.fixture(scope="module")
def results():
    return {
        name: verify_image(AUDITED_IMAGES[name]())
        for name in sorted(AUDITED_IMAGES)
    }


def test_the_audited_set_covers_the_workloads():
    assert set(AUDITED_IMAGES) >= {
        "baremetal",
        "regwalk",
        "switcher",
        "coremark",
    }


def test_every_stock_image_is_violation_free(results):
    for name, result in results.items():
        assert result.violations == [], (
            name,
            [f.to_dict() for f in result.violations],
        )


def test_every_image_actually_analysed_code(results):
    for name, result in results.items():
        assert result.instructions > 0, name
        assert result.blocks > 0, name


def test_switcher_proves_the_interesting_properties(results):
    proven = results["switcher"].proven
    # The switcher is where the architecture earns its keep: sealed
    # entry, SCR discipline, stack handoff and cross-compartment return
    # must all be discharged statically, not just not-violated.
    for prop in ("sentry", "scr-access", "store-local", "cross-compartment"):
        assert proven.get(prop, 0) >= 1, (prop, proven)


def test_verdicts_are_deterministic():
    once = verify_image(AUDITED_IMAGES["baremetal"]()).to_dict()
    again = verify_image(AUDITED_IMAGES["baremetal"]()).to_dict()
    assert once == again


def test_to_dict_shape(results):
    doc = results["baremetal"].to_dict()
    assert set(doc) >= {
        "image",
        "instructions",
        "blocks",
        "edges",
        "passes",
        "violations",
        "obligations",
        "proven",
    }
    assert isinstance(doc["violations"], list)
    assert all(isinstance(c, int) for c in doc["obligations"].values())
