"""Lattice laws for the abstract capability domain.

The worklist fixpoint in ``repro.verify.absint`` terminates and is
sound only if the domain behaves like a join-semilattice with a
widening: join must be commutative, idempotent and an upper bound;
widening must reach a fixed element in finitely many steps.  These
tests pin those laws on representative elements, plus the
capability-specific queries the transfer functions rely on.
"""

from repro.capability import Permission, make_roots
from repro.capability.otypes import SentryType
from repro.verify.domain import (
    AbstractCap,
    Tri,
    interval_add,
    interval_join,
    join_maps,
)

GL = Permission.GL
SD = Permission.SD
EX = Permission.EX


def _samples():
    roots = make_roots()
    return [
        AbstractCap.unknown(),
        AbstractCap.integer(),
        AbstractCap.const(42),
        AbstractCap.from_capability(
            roots.memory.set_address(0x100).set_bounds(64), "stack"
        ),
        AbstractCap.from_capability(roots.executable, "code"),
        AbstractCap.from_capability(
            roots.memory.set_bounds(16).seal(roots.sealing.set_address(3)),
            "token",
        ),
    ]


def test_tri_join_table():
    assert Tri.NO.join(Tri.NO) is Tri.NO
    assert Tri.YES.join(Tri.YES) is Tri.YES
    assert Tri.NO.join(Tri.YES) is Tri.MAYBE
    assert Tri.MAYBE.join(Tri.NO) is Tri.MAYBE
    assert Tri.YES.may and Tri.YES.must
    assert Tri.MAYBE.may and not Tri.MAYBE.must
    assert not Tri.NO.may


def test_interval_ops():
    assert interval_join((1, 3), (2, 9)) == (1, 9)
    assert interval_join(None, (2, 9)) is None
    assert interval_add((10, 20), 1, 2) == (11, 22)
    # Wrapping past 2^32 loses all information rather than lying.
    assert interval_add((0xFFFF_FFF0, 0xFFFF_FFFF), 0, 0x100) is None


def test_join_commutative_and_idempotent():
    for a in _samples():
        assert a.join(a) == a
        for b in _samples():
            assert a.join(b) == b.join(a)


def test_join_is_upper_bound():
    for a in _samples():
        for b in _samples():
            joined = a.join(b)
            assert joined.subsumes(a), (a.describe(), b.describe())
            assert joined.subsumes(b)


def test_subsumes_reflexive():
    for a in _samples():
        assert a.subsumes(a)


def test_widening_terminates():
    roots = make_roots()
    cap = AbstractCap.from_capability(
        roots.memory.set_address(0).set_bounds(64), "stack"
    )
    grower = AbstractCap.from_capability(
        roots.memory.set_address(0x1000).set_bounds(128), "stack"
    )
    for _ in range(8):
        widened = cap.join(grower).widened_against(cap)
        if widened == cap:
            break
        cap = widened
    else:
        raise AssertionError("widening failed to stabilise")
    # After widening, the still-growing components are at top.
    assert cap.addr is None and cap.bounds is None


def test_integer_has_no_capability_rights():
    n = AbstractCap.const(7)
    assert not n.may_be_tagged
    assert not n.may_have(SD)
    assert n.addr == (7, 7)
    assert n.must_be_unsealed


def test_from_capability_queries():
    roots = make_roots()
    mem = AbstractCap.from_capability(
        roots.memory.set_address(0x100).set_bounds(64), "heap"
    )
    assert mem.must_be_tagged
    assert mem.must_be_unsealed
    assert mem.must_have(SD)
    assert not mem.may_have(EX)
    assert not mem.may_be_local  # memory root carries GL
    assert mem.prov == frozenset({"heap"})


def test_local_means_no_global_permission():
    roots = make_roots()
    local = AbstractCap.from_capability(
        roots.memory.set_bounds(64).clear_perms(GL), "stack"
    )
    assert local.must_be_local
    glob = AbstractCap.from_capability(roots.memory.set_bounds(64), "heap")
    assert not glob.may_be_local
    # After a join the answer degrades to "maybe", never to a wrong "must".
    joined = local.join(glob)
    assert joined.may_be_local and not joined.must_be_local


def test_sealed_queries():
    roots = make_roots()
    token = AbstractCap.from_capability(
        roots.memory.set_bounds(16).seal(roots.sealing.set_address(3)), "tok"
    )
    assert token.must_be_sealed
    assert token.sealed_otypes() == frozenset({3})
    assert token.may_be_sealed_non_sentry()  # otype 3 without EX
    assert not token.untag().may_be_tagged


def test_sentry_queries():
    roots = make_roots()
    sentry = AbstractCap.from_capability(
        roots.executable.seal_sentry(SentryType.INHERIT), "code"
    )
    assert sentry.may_be_forward_sentry()
    assert not sentry.may_be_return_sentry()
    assert not sentry.may_be_sealed_non_sentry()


def test_address_range_queries():
    cap = AbstractCap.integer((0x100, 0x1FF))
    assert cap.addr_definitely_inside(0x100, 0x200)
    assert cap.addr_definitely_outside(0x200, 0x300)
    assert not cap.addr_definitely_inside(0x180, 0x200)
    assert not AbstractCap.unknown().addr_definitely_inside(0, 1 << 32)


def test_join_maps_keeps_union_of_keys():
    a = {"x": AbstractCap.const(1)}
    b = {"x": AbstractCap.const(2), "y": AbstractCap.integer()}
    merged = join_maps(a, b)
    assert set(merged) == {"x", "y"}
    assert merged["x"].addr == (1, 2)
