"""Static-vs-dynamic cross-validation (the falsifiability gate).

The verifier's claims are only worth committing if they are *checked
against reality*: every code-splice mutant is verified statically and
executed dynamically, and the two verdicts must agree in the one
direction soundness demands — nothing statically claimed safe may
escape at runtime.  (The converse is allowed: static analysis may flag
code whose defect the dynamic run never reaches.)
"""

import pytest

from repro.verify import run_crosscheck
from repro.verify.crosscheck import SPLICE_VARIANTS


@pytest.fixture(scope="module")
def report():
    return run_crosscheck()


def test_stock_guest_is_clean_both_ways(report):
    assert report["stock"]["static_violations"] == 0
    assert report["stock"]["dynamic"] == "clean"


def test_no_statically_clean_mutant_escapes(report):
    assert report["consistent"], [
        v for v in report["variants"] if not v["static_flagged"]
    ]


def test_the_splice_fault_class_is_caught_statically(report):
    # The acceptance bar: the verifier flags the code-splice fault
    # class, not just one lucky mutant.
    assert report["statically_flagged"] >= len(SPLICE_VARIANTS) // 2


def test_each_defect_class_maps_to_its_category(report):
    by_name = {v["name"]: v for v in report["variants"]}
    assert "monotonicity" in by_name["widen"]["static_categories"]
    assert "bounds" in by_name["oob-store"]["static_categories"]
    assert by_name["untag-jump"]["static_flagged"]
    assert by_name["cross-jump"]["static_flagged"]


def test_the_claimed_safe_control_stays_clean(report):
    control = next(v for v in report["variants"] if v["name"] == "drop-narrow")
    assert not control["static_flagged"]
    assert control["dynamic"] in ("clean", "detected")


def test_report_is_deterministic(report):
    assert report == run_crosscheck()
    names = [v["name"] for v in report["variants"]]
    assert names == sorted(names)
