"""The extended linkage report: sealed imports, classified grants.

``repro.rtos.audit`` grew import-token records and MMIO-classified
grant records (re-exported through ``repro.verify.policy`` as the one
linkage schema); the stock image's report is the reference instance.
"""

import pytest

from repro.machine import System
from repro.verify.policy import AuditReport, GrantRecord, ImportRecord, audit_image


@pytest.fixture(scope="module")
def report():
    system = System.build()
    return audit_image(system.switcher, system.loader.memory_map)


def test_report_records_sealed_imports(report):
    assert report.imports, "stock image has cross-compartment imports"
    for imp in report.imports:
        assert isinstance(imp, ImportRecord)
        assert imp.sealed
        assert imp.otype == 1  # compartment-export otype


def test_grants_are_classified_against_the_memory_map(report):
    kinds = {g.kind for g in report.grant_records}
    assert "revocation_mmio" in kinds
    assert "revoker_mmio" in kinds
    for grant in report.grant_records:
        assert isinstance(grant, GrantRecord)
        assert grant.base < grant.top


def test_mmio_grants_filter(report):
    mmio = report.mmio_grants()
    assert mmio
    assert all(g.kind != "data" for g in mmio)


def test_to_dict_is_the_one_schema(report):
    doc = report.to_dict()
    assert set(doc) == {"exports", "imports", "grants", "interrupts_disabled"}
    for imp in doc["imports"]:
        assert set(imp) == {
            "importer",
            "exporter",
            "export",
            "otype",
            "sealed",
            "entry_address",
        }
    for grant in doc["grants"]:
        assert set(grant) == {
            "compartment",
            "slot",
            "base",
            "top",
            "perms",
            "kind",
        }


def test_without_memory_map_grants_fall_back_to_data(tmp_path):
    system = System.build()
    report = audit_image(system.switcher)  # no classification possible
    assert isinstance(report, AuditReport)
    assert all(g.kind == "data" for g in report.grant_records)


def test_render_mentions_device_windows_and_imports(report):
    text = report.render()
    assert "device windows held:" in text
    assert "resolved imports:" in text
