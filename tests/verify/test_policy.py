"""The declarative policy engine over the linkage schema.

Rules are tested against hand-built report dicts (the engine accepts
either an :class:`AuditReport` or its ``to_dict`` form), plus one
integration check on the real stock image: the committed policy must
hold on it.
"""

import json
import os

from repro.verify import evaluate_policy

REPO = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))


def _report(**overrides):
    base = {
        "exports": [
            {
                "compartment": "alloc",
                "export": "malloc",
                "interrupt_posture": "enabled",
            }
        ],
        "imports": [
            {
                "importer": "app",
                "exporter": "alloc",
                "export": "malloc",
                "otype": 1,
                "sealed": True,
                "entry_address": 0x2000_0100,
            }
        ],
        "grants": [
            {
                "compartment": "alloc",
                "slot": "revocation-bitmap",
                "base": 0x8000_0000,
                "top": 0x8000_1000,
                "perms": ["GL", "LD", "MC", "SD"],
                "kind": "revocation_mmio",
            }
        ],
        "interrupts_disabled": [],
    }
    base.update(overrides)
    return base


def _rules(*rules):
    return {"rules": list(rules)}


def test_stock_shaped_report_passes_committed_policy_rules():
    with open(os.path.join(REPO, "AUDIT_policy.json")) as fh:
        policy = json.load(fh)
    report = _report()
    report["grants"][0]["kind"] = "revocation_mmio"
    assert evaluate_policy(report, policy) == []


def test_unsealed_import_fails():
    report = _report()
    report["imports"][0]["sealed"] = False
    violations = evaluate_policy(
        report, _rules({"rule": "sealed-imports", "otype": 1})
    )
    assert len(violations) == 1
    assert violations[0].rule == "sealed-imports"


def test_wrong_otype_fails():
    report = _report()
    report["imports"][0]["otype"] = 5
    violations = evaluate_policy(
        report, _rules({"rule": "sealed-imports", "otype": 1})
    )
    assert "otype 5" in violations[0].message


def test_import_must_target_a_real_export():
    report = _report()
    report["imports"][0]["export"] = "free"  # not exported above
    violations = evaluate_policy(
        report, _rules({"rule": "import-targets-exported"})
    )
    assert len(violations) == 1


def test_mmio_allowlist_blocks_unlisted_holder():
    violations = evaluate_policy(
        _report(), _rules({"rule": "mmio-allowlist", "allow": {}})
    )
    assert len(violations) == 1
    assert "device window" in violations[0].message
    allowed = evaluate_policy(
        _report(),
        _rules(
            {"rule": "mmio-allowlist", "allow": {"alloc": ["revocation_mmio"]}}
        ),
    )
    assert allowed == []


def test_plain_data_grants_need_no_mmio_authorisation():
    report = _report()
    report["grants"][0]["kind"] = "data"
    assert (
        evaluate_policy(report, _rules({"rule": "mmio-allowlist", "allow": {}}))
        == []
    )


def test_interrupts_disabled_allowlist():
    report = _report(interrupts_disabled=["alloc.malloc"])
    violations = evaluate_policy(
        report,
        _rules({"rule": "interrupts-disabled-allowlist", "allow": []}),
    )
    assert len(violations) == 1
    allowed = evaluate_policy(
        report,
        _rules(
            {
                "rule": "interrupts-disabled-allowlist",
                "allow": ["alloc.malloc"],
            }
        ),
    )
    assert allowed == []


def test_exec_grants_are_always_flagged():
    report = _report()
    report["grants"][0]["perms"] = ["GL", "LD", "EX"]
    violations = evaluate_policy(report, _rules({"rule": "no-exec-grants"}))
    assert len(violations) == 1


def test_unknown_rule_fails_closed():
    violations = evaluate_policy(_report(), _rules({"rule": "no-such-rule"}))
    assert len(violations) == 1
    assert "failing closed" in violations[0].message


def test_violations_are_deterministically_ordered():
    report = _report()
    report["imports"][0]["sealed"] = False
    report["grants"][0]["perms"] = ["EX"]
    policy = _rules(
        {"rule": "no-exec-grants"},
        {"rule": "sealed-imports"},
        {"rule": "mmio-allowlist", "allow": {}},
    )
    once = evaluate_policy(report, policy)
    again = evaluate_policy(report, dict(policy))
    assert [v.to_dict() for v in once] == [v.to_dict() for v in again]
    assert [v.rule for v in once] == sorted(v.rule for v in once)
