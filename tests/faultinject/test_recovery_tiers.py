"""Recovery machinery is tier-blind: interpreter vs block cache vs JIT.

The fleet runs its devices with the trace-JIT enabled, so the recovery
paths the paper's availability story depends on — compartment error
handlers (UNWIND / RETRY / RESTART) and the executive's watchdog
(kill / restart) — must behave *bit-identically* whether the faulting
kernel ran interpreted, as fused superblocks, or as compiled traces.
A fault raised from inside compiled code (a trace-JIT guard bail)
must surface through the switcher exactly like one raised by the
interpreter: same outcome, same stats, same registers, same simulated
cycles.

Every test here runs the identical scenario once per execution tier
and compares the complete observable state.  A cycle count that drifts
by even one would let shard placement (which warms the in-process JIT
differently) leak into the fleet report — the determinism contract of
:mod:`repro.fleet` rests on these asserts.
"""

from dataclasses import fields

import pytest

from repro.capability import make_roots
from repro.isa import CPU, CSRFile, ExecutionMode, assemble
from repro.memory import SystemBus, TaggedMemory, default_memory_map
from repro.pipeline import CoreKind, make_core_model
from repro.rtos import (
    CompartmentFault,
    CompartmentSwitcher,
    Loader,
    RecoveryAction,
    Scheduler,
)
from repro.rtos.executive import Executive, Watchdog
from repro.rtos.thread import ThreadState

#: The three execution tiers the same kernel must traverse identically.
TIERS = ("interp", "fused", "jit")

#: Offsets inside the code region, clear of anything the loader places.
_CODE_OFFSET = 0x2_0000
_BUF_OFFSET = 0x3_0000
_BUF_SIZE = 256

#: Enough back-edge executions to cross the JIT threshold mid-run.
_CLEAN_KERNEL = """\
    li a0, 40
    li a1, 0
loop:
    sw a1, 0(s0)
    lw a2, 0(s0)
    add a1, a1, a2
    addi a1, a1, 3
    addi a0, a0, -1
    bnez a0, loop
    halt
"""

#: Walks s1 one word past its bounds on iteration 17 — by which point
#: the JIT tier is executing compiled code, so the fault is a mid-trace
#: guard bail, not an interpreter exception.
_FAULTING_KERNEL = """\
    li a0, 40
loop:
    lw a1, 0(s1)
    cincaddrimm s1, s1, 4
    addi a0, a0, -1
    bnez a0, loop
    halt
"""

#: Never halts: the watchdog's cycle budget is the only way out.
_RUNAWAY_KERNEL = """\
    li a0, 1
loop:
    addi a0, a0, 1
    bnez a0, loop
    halt
"""


class _Stack:
    """One fresh RTOS stack (bus, switcher, loader, thread) per tier."""

    def __init__(self):
        self.mm = default_memory_map()
        self.bus = SystemBus()
        self.bus.attach_sram(TaggedMemory(self.mm.code.base, self.mm.sram_bytes))
        self.roots = make_roots()
        self.core = make_core_model(CoreKind.IBEX)
        self.csr = CSRFile(hwm_enabled=True)
        self.switcher = CompartmentSwitcher(
            self.bus, self.csr, self.roots.sealing, self.core
        )
        self.loader = Loader(self.mm, self.roots, self.switcher)
        self.scheduler = Scheduler(self.csr, self.core, timeslice_cycles=500)
        self.code_base = self.mm.code.base + _CODE_OFFSET
        self.buf_base = self.mm.code.base + _BUF_OFFSET

    def make_thread(self, name="t0"):
        thread = self.loader.add_thread(name, stack_size=1024, priority=1)
        self.scheduler.add_thread(thread)
        self.scheduler.switch_to(thread)
        return thread

    def make_cpu(self, tier):
        """A CPU at one execution tier, charging the shared core model."""
        if tier == "interp":
            kwargs = dict(block_cache=False, trace_jit=False)
        elif tier == "fused":
            kwargs = dict(block_cache=True, trace_jit=False)
        elif tier == "jit":
            kwargs = dict(block_cache=True, trace_jit=True, jit_threshold=2)
        else:  # pragma: no cover - typo guard
            raise ValueError(tier)
        return CPU(
            self.bus, ExecutionMode.CHERIOT, timing=self.core, **kwargs
        )

    def load_kernel(self, cpu, source, buf_reg=8, buf_size=_BUF_SIZE):
        cpu.load_program(assemble(source), self.code_base,
                         pcc=self.roots.executable)
        cpu.regs.write(
            buf_reg,
            self.roots.memory.set_address(self.buf_base).set_bounds(buf_size),
        )
        return cpu


def _switcher_state(stack):
    stats = stack.switcher.stats
    return tuple(getattr(stats, f.name) for f in fields(stats))


def _cpu_state(cpu):
    stats = tuple(getattr(cpu.stats, f.name) for f in fields(cpu.stats))
    return cpu.regs.snapshot(), stats, cpu.pc


def _assert_tier_blind(observations):
    """All tiers observed the same thing; name the divergence if not."""
    ref_tier = TIERS[0]
    for tier in TIERS[1:]:
        assert observations[tier] == observations[ref_tier], (
            f"tier {tier!r} diverged from {ref_tier!r}"
        )


def _flaky_compartment(stack, tier, fail_times):
    """"client" calling "compute", whose kernel faults ``fail_times``.

    A failing call runs the out-of-bounds kernel (the fault travels
    CPU -> Trap -> switcher containment); once the failures are spent,
    the clean kernel runs to halt and its checksum is the result.
    """
    client = stack.loader.add_compartment("client")
    compute = stack.loader.add_compartment("compute")
    compute.state["fail_times"] = fail_times
    compute.state["calls"] = 0
    cpus = []

    def entry(ctx, value):
        ctx.use_stack(64)
        compute.state["calls"] += 1
        cpu = stack.make_cpu(tier)
        cpus.append(cpu)
        if compute.state["calls"] <= compute.state["fail_times"]:
            # A 64-byte buffer under a 160-byte walk: faults mid-loop.
            stack.load_kernel(cpu, _FAULTING_KERNEL, buf_reg=9, buf_size=64)
        else:
            stack.load_kernel(cpu, _CLEAN_KERNEL)
        cpu.run()
        return (cpu.regs.read_int(11) + value) & 0xFFFF_FFFF

    compute.export("entry", entry)
    stack.loader.link("client", "compute", "entry")
    return client, compute, cpus


class TestErrorHandlerTiers:
    """UNWIND / RETRY / RESTART with the fault raised from the kernel."""

    def test_unwind_identical_across_tiers(self):
        observations = {}
        for tier in TIERS:
            stack = _Stack()
            thread = stack.make_thread()
            client, compute, cpus = _flaky_compartment(stack, tier, 1)
            seen = []
            compute.set_error_handler(
                lambda info: seen.append(
                    (info.compartment, info.export, info.cause_type,
                     info.depth, info.retries)
                )
                or RecoveryAction.UNWIND
            )
            with pytest.raises(CompartmentFault) as excinfo:
                stack.switcher.call(
                    thread, client.get_import("compute", "entry"), 5
                )
            observations[tier] = (
                excinfo.value.compartment,
                excinfo.value.cause_type,
                tuple(seen),
                _switcher_state(stack),
                _cpu_state(cpus[-1]),
                stack.core.cycles,
            )
            if tier == "jit":
                assert cpus[-1].jit_stats.guard_bails >= 1, (
                    "the fault must come from inside compiled code"
                )
        _assert_tier_blind(observations)

    def test_retry_identical_across_tiers(self):
        observations = {}
        for tier in TIERS:
            stack = _Stack()
            thread = stack.make_thread()
            client, compute, cpus = _flaky_compartment(stack, tier, 1)
            compute.set_error_handler(lambda info: RecoveryAction.RETRY)
            result = stack.switcher.call(
                thread, client.get_import("compute", "entry"), 5
            )
            observations[tier] = (
                result,
                compute.state["calls"],
                _switcher_state(stack),
                _cpu_state(cpus[-1]),
                stack.core.cycles,
            )
            if tier == "jit":
                # The retry's clean kernel ran hot enough to compile.
                assert cpus[-1].jit_stats.executions > 0
            else:
                assert cpus[-1].jit_stats.executions == 0
        _assert_tier_blind(observations)
        # The retry actually happened: two entries, one contained fault.
        assert observations["interp"][1] == 2

    def test_restart_identical_across_tiers(self):
        observations = {}
        for tier in TIERS:
            stack = _Stack()
            thread = stack.make_thread()
            client, compute, cpus = _flaky_compartment(stack, tier, 1)
            stack.loader.finalize()  # snapshot: fail_times=1, calls=0
            compute.set_error_handler(lambda info: RecoveryAction.RESTART)
            with pytest.raises(CompartmentFault):
                stack.switcher.call(
                    thread, client.get_import("compute", "entry"), 5
                )
            # The restart reloaded the image; the next call fails once
            # more, then a second restart... so clear the trigger the
            # way a fixed image would and verify a clean call succeeds.
            compute.state["fail_times"] = 0
            result = stack.switcher.call(
                thread, client.get_import("compute", "entry"), 5
            )
            observations[tier] = (
                result,
                compute.restarts,
                compute.state["calls"],
                _switcher_state(stack),
                _cpu_state(cpus[-1]),
                stack.core.cycles,
            )
        _assert_tier_blind(observations)
        assert observations["interp"][1] == 1  # exactly one restart


class TestWatchdogTiers:
    """Watchdog kill/restart over threads stepping CPUs in slices."""

    #: CPU steps per executive resume — small enough that the runaway
    #: thread is preempted many times before its budget expires.
    SLICE = 200

    def _sliced_body(self, stack, tier, source, cpus, buf_size=_BUF_SIZE):
        """A generator thread body driving one kernel in step slices."""

        def body(thread=None):
            cpu = stack.make_cpu(tier)
            cpus.append(cpu)
            stack.load_kernel(cpu, source, buf_size=buf_size)
            while True:
                try:
                    cpu.run(max_steps=self.SLICE)
                except RuntimeError:
                    yield None  # budget slice spent; preemption point
                else:
                    return  # halted

        return body

    def _run_fleet_of_two(self, tier, watchdog_factory):
        stack = _Stack()
        cpus = []
        hog_thread = stack.loader.add_thread("hog", stack_size=512, priority=5)
        good_thread = stack.loader.add_thread("good", stack_size=512, priority=1)
        executive = Executive(
            stack.scheduler, stack.core,
            watchdog=watchdog_factory(stack, tier, cpus),
        )
        executive.spawn(
            hog_thread, self._sliced_body(stack, tier, _RUNAWAY_KERNEL, cpus)()
        )
        executive.spawn(
            good_thread, self._sliced_body(stack, tier, _CLEAN_KERNEL, cpus)()
        )
        stats = executive.run()
        return stack, stats, hog_thread, good_thread, cpus

    def test_kill_identical_across_tiers(self):
        observations = {}
        for tier in TIERS:
            stack, stats, hog, good, cpus = self._run_fleet_of_two(
                tier,
                lambda stack, tier, cpus: Watchdog(thread_cycle_budget=3_000),
            )
            assert hog.state is ThreadState.FINISHED
            assert good.state is ThreadState.FINISHED
            observations[tier] = (
                tuple(
                    getattr(stats, f.name) for f in fields(stats)
                    if f.name != "watchdog_events"
                ),
                tuple(stats.watchdog_events),
                stack.core.cycles,
            )
        _assert_tier_blind(observations)
        events = observations["interp"][1]
        assert any(
            name == "hog" and reason.startswith("kill:")
            for name, reason in events
        )

    def test_restart_identical_across_tiers(self):
        observations = {}
        for tier in TIERS:
            def factory(stack, tier, cpus):
                return Watchdog(
                    thread_cycle_budget=3_000,
                    action="restart",
                    restart_factory=lambda thread: self._sliced_body(
                        stack, tier, _CLEAN_KERNEL, cpus
                    )(thread),
                )

            stack, stats, hog, good, cpus = self._run_fleet_of_two(
                tier, factory
            )
            assert hog.state is ThreadState.FINISHED
            observations[tier] = (
                stats.watchdog_restarts,
                stats.watchdog_kills,
                tuple(stats.watchdog_events),
                stack.core.cycles,
            )
            if tier == "jit":
                # At least one sliced kernel crossed the JIT threshold.
                assert any(c.jit_stats.executions > 0 for c in cpus)
        _assert_tier_blind(observations)
        assert observations["interp"][0] == 1  # restarted, then reformed
