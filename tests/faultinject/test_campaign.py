"""Tests for the fault-injection engine, monitor and campaign runner."""

import json
import os

import pytest

from repro.allocator import TemporalSafetyMode
from repro.faultinject import (
    FaultClass,
    FaultInjector,
    InvariantMonitor,
    Outcome,
    authority_subset,
    run_campaign,
)
from repro.machine import System
from repro.pipeline import CoreKind

SEED = 1234
SAMPLE = 150  # 30 per class — enough to hit every scenario variant


@pytest.fixture(scope="module")
def campaign():
    return run_campaign(total=SAMPLE, seed=SEED)


class TestDeterminism:
    def test_same_seed_reproduces_bit_identical_results(self, campaign):
        again = run_campaign(total=SAMPLE, seed=SEED)
        assert json.dumps(campaign.to_dict(), sort_keys=True) == json.dumps(
            again.to_dict(), sort_keys=True
        )
        assert [r.scenario for r in campaign.records] == [
            r.scenario for r in again.records
        ]

    def test_different_seed_differs(self, campaign):
        other = run_campaign(total=SAMPLE, seed=SEED + 1)
        assert [r.scenario for r in campaign.records] != [
            r.scenario for r in other.records
        ]

    def test_no_timestamps_or_environment_in_output(self, campaign):
        payload = json.dumps(campaign.to_dict())
        assert "time" not in payload
        assert "host" not in payload


class TestClaims:
    def test_zero_escapes(self, campaign):
        assert campaign.escaped == []
        assert campaign.detection_rate == 1.0

    def test_every_fault_class_injected(self, campaign):
        assert set(campaign.tally_by_class()) == {c.value for c in FaultClass}

    def test_outcome_mix_is_nontrivial(self, campaign):
        """A campaign where nothing masks (or nothing detects) is not

        exercising the system — it is exercising the harness."""
        tally = campaign.tally()
        assert tally["detected"] > 0
        assert tally["contained"] > 0
        assert tally["masked"] > 0

    def test_wrong_results_only_from_non_detected_runs(self, campaign):
        """Detected/escaped runs never complete, so they can never

        report a wrong result; data corruption is a masked phenomenon."""
        for record in campaign.records:
            if record.wrong_result:
                assert record.outcome in (Outcome.MASKED, Outcome.CONTAINED)

    def test_forged_tokens_always_stopped(self, campaign):
        forged = [
            r for r in campaign.records if r.scenario.startswith("splice:token")
        ]
        assert forged, "sample too small to cover token forgery"
        assert all(r.outcome is Outcome.DETECTED for r in forged)

    def test_revoked_replay_always_stopped(self, campaign):
        replays = [
            r for r in campaign.records if r.scenario == "splice:revoked-replay"
        ]
        assert replays, "sample too small to cover revoked replay"
        assert all(r.outcome is Outcome.DETECTED for r in replays)


class TestCommittedBaseline:
    BASELINE = os.path.join(os.path.dirname(__file__), "..", "..", "BENCH_faults.json")

    def test_baseline_records_zero_escapes(self):
        with open(self.BASELINE) as fh:
            baseline = json.load(fh)
        assert baseline["outcomes"]["escaped"] == 0
        assert baseline["escaped_details"] == []
        assert baseline["total_injections"] >= 10_000
        assert sum(baseline["outcomes"].values()) == baseline["total_injections"]
        assert set(baseline["by_class"]) == {c.value for c in FaultClass}


class TestMonitorOracle:
    """The escape oracle must be falsifiable: seeded violations that

    bypass the architecture (as a hardware bug would) must be caught."""

    @pytest.fixture
    def system(self):
        return System.build(core=CoreKind.IBEX, mode=TemporalSafetyMode.HARDWARE)

    def test_clean_system_passes(self, system):
        system.malloc(64)
        assert InvariantMonitor(system).check() == []

    def test_unpainted_quarantine_is_reported(self, system):
        """A broken free() that quarantines without painting leaves the

        chunk reachable — the heap invariant check must see it."""
        victim = system.malloc(64)
        system.free(victim)
        chunk = next(system.allocator.iter_quarantined())
        system.revocation_map.clear(chunk.address, chunk.size)  # simulate the bug
        problems = InvariantMonitor(system).check()
        assert any("unpainted" in p for p in problems)

    def test_reachable_revoked_pointer_is_reported(self, system):
        victim = system.malloc(64)
        holder = system.malloc(64)
        system.bus.write_capability(holder.base, victim)
        system.free(victim)
        chunk = next(system.allocator.iter_quarantined())
        system.revocation_map.clear(chunk.address, chunk.size)
        problems = InvariantMonitor(system).check()
        assert any("load filter" in p for p in problems)

    def test_painted_live_allocation_is_reported(self, system):
        live = system.malloc(64)
        system.revocation_map.paint(live.base, 8)
        problems = InvariantMonitor(system).check()
        assert any("revoked granule" in p for p in problems)

    def test_authority_subset(self, system):
        cap = system.malloc(64)
        assert authority_subset(cap.set_bounds(8), cap)
        assert authority_subset(cap.untagged(), cap)
        assert not authority_subset(system.allocator.memory_root, cap)


class TestInjectorUnits:
    def test_single_injection_record_shape(self):
        record = FaultInjector(seed=3).inject(0, FaultClass.TAG_FLIP)
        assert record.index == 0
        assert record.fault_class is FaultClass.TAG_FLIP
        assert record.scenario.startswith("tag-flip:")
        assert isinstance(record.outcome, Outcome)

    def test_invalid_campaign_args_rejected(self):
        with pytest.raises(ValueError):
            run_campaign(total=0)
        with pytest.raises(ValueError):
            run_campaign(total=5, classes=())
