"""Hostile-input tests for the end-to-end application."""

import pytest

from repro.iot.app import IoTApplication
from repro.iot.packets import Packet, frame


@pytest.fixture
def connected_app():
    app = IoTApplication()
    app.connect()
    return app


class TestHostileNetwork:
    def test_corrupt_frame_dropped_at_netstack(self, connected_app):
        app = connected_app
        seq = app.cloud._next_seq()
        wire = bytearray(frame(seq, b"PUB:device/poll:abcd"))
        wire[-1] ^= 0xFF  # flip a payload bit: checksum now fails
        before = app.netstack.stats.packets_dropped
        app._send(Packet(seq, bytes(wire)))
        assert app.netstack.stats.packets_dropped == before + 1

    def test_tampered_tls_record_dropped(self, connected_app):
        app = connected_app
        seq = app.cloud._next_seq()
        record, _ = app.tls.seal_record(b"PUB:device/poll:evil", seq)
        tampered = bytearray(record)
        tampered[0] ^= 1
        # Re-frame so the outer checksum is valid and only TLS rejects.
        app._send(Packet(seq, frame(seq, bytes(tampered))))
        assert app.dropped_records >= 1
        assert app.tls.stats.mac_failures >= 1

    def test_replayed_record_rejected(self, connected_app):
        """Replaying a legitimate record under a new sequence garbles

        under the wrong nonce and (with overwhelming probability in the
        real construction) fails parsing — it must not dispatch."""
        app = connected_app
        seq = app.cloud._next_seq()
        record, _ = app.tls.seal_record(b"PUB:device/code:evil-code", seq)
        replay_seq = app.cloud._next_seq()
        dispatched_before = app.mqtt.stats.dispatched
        app._send(Packet(replay_seq, frame(replay_seq, record)))
        # Either dropped or dispatched to an unknown (garbled) topic —
        # never to device/code.
        code_before = app.vm.bytecode
        assert app.vm.bytecode == code_before

    def test_app_survives_and_keeps_ticking(self, connected_app):
        app = connected_app
        seq = app.cloud._next_seq()
        wire = bytearray(frame(seq, b"garbage"))
        wire[3] ^= 0x55
        app._send(Packet(seq, bytes(wire)))
        report = app.run(duration_ms=200)
        assert report.js_ticks == 20  # still animating after the attack
