"""Differential proof: zero-copy changes cycle cost, never behaviour.

The zero-copy rebuild of the receive path is an optimisation with a
contract: for identical wire input, the application must observe
*identical* messages, state and drop accounting under both
disciplines — only the cycle economics may differ.  This suite holds
the seed application and the scaled pipeline to that contract, and
pins the fleet device sample (which now embeds a net-traffic phase)
across execution tiers.
"""

import json

import pytest

from repro.allocator import TemporalSafetyMode
from repro.fleet.device import DeviceSpec, run_device
from repro.iot.app import IoTApplication
from repro.iot.loadgen import NetLoadGen, drive
from repro.iot.sessions import NetPipeline
from repro.pipeline import CoreKind


def _app_observables(zero_copy: bool, duration_ms: int = 3_000) -> dict:
    app = IoTApplication(
        core=CoreKind.IBEX,
        mode=TemporalSafetyMode.HARDWARE,
        zero_copy=zero_copy,
    )
    report = app.run(duration_ms=duration_ms)
    return {
        "packets_received": report.packets_received,
        "js_ticks": report.js_ticks,
        "js_objects_allocated": report.js_objects_allocated,
        "led_final": tuple(report.led_final),
        "net_received": app.netstack.stats.packets_received,
        "net_bytes": app.netstack.stats.bytes_received,
        "dropped_corrupt": app.netstack.stats.dropped_corrupt,
        "dropped_out_of_order": app.netstack.stats.dropped_out_of_order,
        "mqtt_messages": app.mqtt.stats.dispatched,
        "tls_decrypted": app.tls.stats.records_decrypted,
    }


class TestSeedAppDifferential:
    def test_app_behaviour_identical_across_disciplines(self):
        assert _app_observables(True) == _app_observables(False)

    @pytest.mark.parametrize("zero_copy", [True, False])
    def test_cpu_load_regime_preserved(self, zero_copy):
        """The e2e benchmark's acceptance window holds in both modes.

        Its window is calibrated at the paper's 60 s run (the one-off
        80M-cycle handshake dominates anything much shorter).
        """
        app = IoTApplication(
            core=CoreKind.IBEX,
            mode=TemporalSafetyMode.HARDWARE,
            zero_copy=zero_copy,
        )
        report = app.run(duration_ms=60_000)
        assert 0.05 < report.cpu_load < 0.35
        assert report.js_ticks == 6000
        assert sum(report.led_final) == 1


def _pipeline_observables(zero_copy: bool) -> dict:
    pipeline = NetPipeline(zero_copy=zero_copy, collect_messages=True)
    pipeline.establish_many(range(1, 17))
    gen = NetLoadGen(
        range(1, 17), seed=20260807, corrupt_rate=0.15, reorder_rate=0.15
    )
    drive(pipeline, gen, rounds=3)
    stats = pipeline.stats
    return {
        "messages": pipeline.messages,
        "per_session": {
            conn_id: (
                session.delivered,
                session.delivered_bytes,
                session.expected_seq,
            )
            for conn_id, session in sorted(pipeline.sessions.items())
        },
        "packets_in": stats.packets_in,
        "packets_delivered": stats.packets_delivered,
        "payload_bytes_delivered": stats.payload_bytes_delivered,
        "dropped_corrupt": stats.dropped_corrupt,
        "dropped_out_of_order": stats.dropped_out_of_order,
        "dropped_tls": stats.dropped_tls,
        "dropped_app": stats.dropped_app,
        "crypto_cycles": stats.cycles_crypto,
    }


class TestScaledPipelineDifferential:
    def test_pipeline_behaviour_identical_across_disciplines(self):
        zero = _pipeline_observables(True)
        copy = _pipeline_observables(False)
        assert zero == copy
        assert zero["packets_delivered"] > 0
        assert zero["dropped_corrupt"] > 0  # the faults actually fired

    def test_cycles_differ_where_they_should(self):
        """The disciplines are not accidentally the same code path."""
        zero = NetPipeline(zero_copy=True)
        copy = NetPipeline(zero_copy=False)
        for pipeline in (zero, copy):
            pipeline.establish_many(range(1, 5))
            gen = NetLoadGen(range(1, 5), seed=1)
            drive(pipeline, gen, rounds=2)
        assert copy.stats.allocs > zero.stats.allocs
        assert copy.stats.cycles_driver > zero.stats.cycles_driver
        assert zero.stats.narrowings > 0
        assert copy.stats.narrowings == 0


class TestTierDifferential:
    """The device sample — net phase included — across execution tiers.

    The fleet's byte-identity contract says the execution tier of the
    device's CPU kernel can never leak into its report; the net phase
    rides the same sample, so it inherits the obligation.
    """

    @pytest.mark.parametrize("device_id", [0, 3])
    def test_device_sample_tier_invariant(self, device_id):
        jit = run_device(
            DeviceSpec(device_id=device_id, fleet_seed=20260807,
                       trace_jit=True)
        )
        interp = run_device(
            DeviceSpec(device_id=device_id, fleet_seed=20260807,
                       trace_jit=False)
        )
        assert json.dumps(jit, sort_keys=True) == json.dumps(
            interp, sort_keys=True
        )
        assert jit["net"]["counters"]["packets_delivered"] > 0

    def test_device_sample_run_to_run_stable(self):
        spec = DeviceSpec(device_id=1, fleet_seed=20260807)
        assert json.dumps(run_device(spec), sort_keys=True) == json.dumps(
            run_device(spec), sort_keys=True
        )
