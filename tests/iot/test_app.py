"""Tests for the end-to-end IoT application (section 7.2.3)."""

import pytest

from repro.allocator import TemporalSafetyMode
from repro.iot.app import IoTApplication
from repro.pipeline import CoreKind


@pytest.fixture(scope="module")
def short_run():
    app = IoTApplication(core=CoreKind.IBEX, mode=TemporalSafetyMode.HARDWARE)
    report = app.run(duration_ms=1000)
    return app, report


class TestEndToEnd:
    def test_bytecode_delivered_over_the_stack(self, short_run):
        app, report = short_run
        assert app.vm.has_program
        assert report.packets_received > 0

    def test_js_ticks_every_10ms(self, short_run):
        _, report = short_run
        assert report.js_ticks >= 90  # ~100 ticks in 1s, minus bootstrap

    def test_leds_animated(self, short_run):
        app, report = short_run
        assert sum(report.led_final) == 1  # exactly one LED in the chase

    def test_js_objects_heap_allocated_and_collected(self, short_run):
        app, report = short_run
        assert report.js_objects_allocated > 0
        assert report.gc_passes > 0

    def test_cpu_load_computed(self, short_run):
        """A 1 s window cannot amortize the TLS handshake (~4 s of

        20 MHz CPU), so load may exceed 1 here; the paper-scale figure
        is asserted over a longer window below."""
        _, report = short_run
        assert report.cpu_load > 0
        assert report.idle_fraction == pytest.approx(1 - report.cpu_load)

    def test_cpu_load_paper_regime_over_longer_window(self):
        app = IoTApplication(core=CoreKind.IBEX, mode=TemporalSafetyMode.HARDWARE)
        report = app.run(duration_ms=20_000)
        # Paper: 17.5 % over 60 s including connection establishment.
        # Over 20 s the handshake weighs 3x heavier, so accept < 45 %.
        assert 0.05 < report.cpu_load < 0.45

    def test_all_compartments_present(self, short_run):
        app, _ = short_run
        for name in ("alloc", "app", "tcpip", "tls", "mqtt", "jsvm"):
            assert app.system.switcher.compartment(name)

    def test_compartment_calls_went_through_switcher(self, short_run):
        app, _ = short_run
        assert app.system.switcher.stats.calls > 100


class TestSecurityPosture:
    def test_packet_buffers_quarantined_after_release(self, short_run):
        """Freed packet buffers are painted + quarantined: temporal

        safety covers every packet (paper 7.2.3)."""
        app, report = short_run
        allocator = app.system.allocator
        assert allocator.stats.frees > 0
        # Quarantine + revocation both exercised over the run.
        assert allocator.quarantined_bytes >= 0

    def test_loader_finalized(self, short_run):
        from repro.rtos.loader import LoaderError

        app, _ = short_run
        with pytest.raises(LoaderError):
            app.system.loader.add_compartment("late")
