"""Tests for the TLS compartment's record layer."""

import pytest

from repro.iot.tls import HANDSHAKE_CYCLES, TLSError, TLSSession

KEY = b"sixteen-byte-key"


@pytest.fixture
def session():
    tls = TLSSession(KEY)
    tls.handshake()
    return tls


class TestHandshake:
    def test_records_require_handshake(self):
        tls = TLSSession(KEY)
        with pytest.raises(TLSError):
            tls.seal_record(b"data", 1)
        with pytest.raises(TLSError):
            tls.open_record(b"data" * 4, 1)

    def test_handshake_cost_dominates(self):
        tls = TLSSession(KEY)
        assert tls.handshake() == HANDSHAKE_CYCLES
        _, record_cycles = tls.seal_record(b"x" * 100, 1)
        assert HANDSHAKE_CYCLES > 1000 * record_cycles

    def test_short_key_rejected(self):
        with pytest.raises(ValueError):
            TLSSession(b"short")


class TestRecords:
    def test_roundtrip(self, session):
        record, _ = session.seal_record(b"secret payload", nonce=5)
        plaintext, _ = session.open_record(record, nonce=5)
        assert plaintext == b"secret payload"

    def test_ciphertext_differs_from_plaintext(self, session):
        record, _ = session.seal_record(b"secret payload", nonce=5)
        assert b"secret" not in record

    def test_nonce_separates_records(self, session):
        a, _ = session.seal_record(b"same", nonce=1)
        b, _ = session.seal_record(b"same", nonce=2)
        assert a != b

    def test_tampering_detected(self, session):
        record, _ = session.seal_record(b"untouchable", nonce=9)
        tampered = bytearray(record)
        tampered[0] ^= 1
        with pytest.raises(TLSError):
            session.open_record(bytes(tampered), nonce=9)
        assert session.stats.mac_failures == 1

    def test_wrong_nonce_garbles_but_fails_mac_or_differs(self, session):
        record, _ = session.seal_record(b"hello", nonce=1)
        # The MAC is over the ciphertext, so it still verifies; but the
        # plaintext must not match (keystream differs).
        plaintext, _ = session.open_record(record, nonce=2)
        assert plaintext != b"hello"

    def test_cycles_scale_with_length(self, session):
        _, small = session.seal_record(b"x" * 10, 1)
        _, large = session.seal_record(b"x" * 1000, 2)
        assert large > 10 * small


class TestKeyIsolation:
    def test_key_not_reachable_from_public_api(self, session):
        """The compartment boundary story: nothing the record API

        returns contains the session key."""
        record, _ = session.seal_record(b"data", 1)
        assert KEY not in record
