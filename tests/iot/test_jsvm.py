"""Tests for the Microvium-like bytecode VM."""

import pytest

from repro.iot.jsvm import (
    NUM_LEDS,
    OP_ADD,
    OP_DROP,
    OP_GETF,
    OP_HALT,
    OP_JMP,
    OP_JNZ,
    OP_LED,
    OP_LOADG,
    OP_MOD,
    OP_MUL,
    OP_NEWOBJ,
    OP_PUSH,
    OP_SETF,
    OP_STOREG,
    OP_SUB,
    JavaScriptVM,
    VMError,
    led_animation_bytecode,
)


class _FakeHeap:
    """In-test allocator capturing malloc/free and field traffic."""

    def __init__(self):
        self.allocated = []
        self.freed = []
        self.fields = {}
        self._next = 0x1000

    def malloc(self, size):
        self._next += 0x100
        self.allocated.append((self._next, size))
        return self._next

    def free(self, cap):
        self.freed.append(cap)

    def write_field(self, cap, fld, value):
        self.fields[(cap, fld)] = value

    def read_field(self, cap, fld):
        return self.fields.get((cap, fld), 0)


@pytest.fixture
def heap():
    return _FakeHeap()


@pytest.fixture
def vm(heap):
    return JavaScriptVM(
        heap.malloc, heap.free, heap.write_field, heap.read_field,
        gc_interval_ticks=3,
    )


def run(vm, *code):
    vm.load_bytecode(bytes(code))
    return vm.run_tick()


class TestOpcodes:
    def test_arithmetic(self, vm):
        run(vm, OP_PUSH, 6, OP_PUSH, 7, OP_MUL, OP_STOREG, 0, OP_HALT)
        assert vm.globals[0] == 42

    def test_mod(self, vm):
        run(vm, OP_PUSH, 17, OP_PUSH, 5, OP_MOD, OP_STOREG, 0, OP_HALT)
        assert vm.globals[0] == 2

    def test_sub_wraps(self, vm):
        run(vm, OP_PUSH, 0, OP_PUSH, 1, OP_SUB, OP_STOREG, 0, OP_HALT)
        assert vm.globals[0] == 0xFFFFFFFF

    def test_jumps(self, vm):
        # if (1) g0 = 5 else g0 = 9
        run(
            vm,
            OP_PUSH, 1,
            OP_JNZ, 4,       # skip the else branch
            OP_PUSH, 9, OP_JMP, 2,
            OP_PUSH, 5,
            OP_STOREG, 0,
            OP_HALT,
        )
        assert vm.globals[0] == 5

    def test_led(self, vm):
        run(vm, OP_PUSH, 1, OP_LED, 3, OP_HALT)
        assert vm.leds[3] == 1

    def test_objects(self, vm, heap):
        run(
            vm,
            OP_NEWOBJ, 16,
            OP_PUSH, 77, OP_SETF, 2,
            OP_GETF, 2, OP_STOREG, 1,
            OP_HALT,
        )
        assert vm.globals[1] == 77
        assert len(heap.allocated) == 1

    def test_stack_underflow_faults(self, vm):
        with pytest.raises(VMError):
            run(vm, OP_ADD, OP_HALT)

    def test_bad_opcode_faults(self, vm):
        with pytest.raises(VMError):
            run(vm, 0x7F, OP_HALT)

    def test_setf_without_object_faults(self, vm):
        with pytest.raises(VMError):
            run(vm, OP_PUSH, 1, OP_SETF, 0, OP_HALT)

    def test_runaway_loop_bounded(self, vm):
        with pytest.raises(VMError):
            run(vm, OP_JMP, 0xFE)  # jump-to-self forever


class TestGC:
    def test_no_reuse_before_collection(self, vm, heap):
        """Microvium semantics: objects are freed only at GC passes."""
        vm.load_bytecode(bytes([OP_NEWOBJ, 16, OP_HALT]))
        vm.run_tick()
        vm.run_tick()
        assert heap.freed == []
        vm.run_tick()  # tick 3 = gc_interval -> collect
        assert len(heap.freed) == 3
        assert vm.live_objects == 0
        assert vm.stats.gc_passes == 1


class TestAnimationProgram:
    def test_led_chase(self, heap):
        vm = JavaScriptVM(
            heap.malloc, heap.free, heap.write_field, heap.read_field
        )
        vm.load_bytecode(led_animation_bytecode())
        for tick in range(1, 12):
            vm.run_tick()
            expected = tick % 8
            assert vm.leds == [1 if i == expected else 0 for i in range(NUM_LEDS)]

    def test_per_tick_objects(self, heap):
        vm = JavaScriptVM(
            heap.malloc, heap.free, heap.write_field, heap.read_field
        )
        vm.load_bytecode(led_animation_bytecode(objects_per_tick=3))
        vm.run_tick()
        assert len(heap.allocated) == 3

    def test_cycles_charged_per_op(self, heap):
        vm = JavaScriptVM(
            heap.malloc, heap.free, heap.write_field, heap.read_field
        )
        vm.load_bytecode(led_animation_bytecode())
        cycles = vm.run_tick()
        assert cycles >= vm.stats.ops_executed  # > 1 cycle/op

    def test_empty_vm_tick_is_free(self, vm):
        assert JavaScriptVM(
            vm._malloc, vm._free, vm._write_field, vm._read_field
        ).run_tick() == 0
