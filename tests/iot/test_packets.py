"""Tests for packet framing and the simulated cloud."""

import pytest

from repro.iot.packets import (
    CloudSource,
    FramingError,
    checksum16,
    frame,
    unframe,
)


class TestFraming:
    def test_roundtrip(self):
        wire = frame(7, b"payload")
        assert unframe(wire) == (7, b"payload")

    def test_checksum_detects_corruption(self):
        wire = bytearray(frame(1, b"hello world"))
        wire[8] ^= 0x40
        with pytest.raises(FramingError):
            unframe(bytes(wire))

    def test_truncation_detected(self):
        wire = frame(1, b"hello")
        with pytest.raises(FramingError):
            unframe(wire[:-2])

    def test_short_frame(self):
        with pytest.raises(FramingError):
            unframe(b"abc")

    def test_checksum_properties(self):
        assert checksum16(b"") == 0xFFFF
        assert checksum16(b"abc") != checksum16(b"abd")
        assert 0 <= checksum16(b"\xff" * 100) <= 0xFFFF


class TestCloudSource:
    def test_bootstrap_carries_full_bytecode(self):
        bytecode = bytes(range(200))
        cloud = CloudSource(bytecode)
        chunks = []
        for message in cloud.initial_messages():
            if message.body.startswith(b"PUB:device/code:"):
                chunks.append(message.body[len(b"PUB:device/code:"):])
        assert b"".join(chunks) == bytecode

    def test_bootstrap_ends_with_done_marker(self):
        cloud = CloudSource(b"\x01\x02\x03")
        assert cloud.initial_messages()[-1].body.startswith(b"PUB:device/code-done")

    def test_sequences_monotonic(self):
        cloud = CloudSource(b"x" * 100)
        seqs = [m.sequence for m in cloud.initial_messages()]
        seqs += [m.sequence for m in cloud.messages_for_tick(0, 2000)]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == len(seqs)

    def test_telemetry_schedule(self):
        cloud = CloudSource(b"", telemetry_interval_ms=1000)
        assert len(cloud.messages_for_tick(0, 10)) == 1  # t=0
        assert len(cloud.messages_for_tick(10, 10)) == 0
        assert len(cloud.messages_for_tick(995, 10)) == 1  # t=1000
        assert len(cloud.messages_for_tick(990, 2500)) == 3
