"""Pin the host-speed TLS fast paths to straightforward references.

``repro.iot.tls`` replaced its byte-at-a-time keystream, MAC and XOR
with table/big-int implementations so a 2048-session benchmark sweep
stays fast.  The *simulated* cycle constants are untouched; what must
hold is byte identity: every fast path produces exactly the bytes the
obvious implementation it replaced would have.  These references are
deliberately naive transcriptions of the original loops — if the fast
paths ever drift, every committed artifact built on record bytes
(BENCH_net.json, BENCH_fleet.json, OBS_slo.json) drifts with them.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.iot.tls import (
    CYCLES_PER_BYTE,
    CYCLES_PER_RECORD,
    TLSSession,
    _keystream,
    _mac16,
    _xor_bytes,
)

_M32 = 0xFFFFFFFF

keys = st.binary(min_size=8, max_size=32)
payloads = st.binary(max_size=300)
nonces = st.integers(min_value=0, max_value=1 << 32)


def reference_keystream(key: bytes, length: int, nonce: int) -> bytes:
    """The original rolling-LCG keystream, byte by byte."""
    out = bytearray()
    state = (nonce * 2654435761) & _M32
    for index in range(length):
        state = (state * 1103515245 + 12345 + key[index % len(key)]) & _M32
        out.append((state >> 16) & 0xFF)
    return bytes(out)


def reference_mac16(key: bytes, data: bytes) -> int:
    """The original ``*31``-fold MAC, byte by byte."""
    total = 0x5A5A
    for index, byte in enumerate(data):
        total = ((total * 31) & 0xFFFF) ^ byte ^ key[index % len(key)]
    return total


def reference_xor(data: bytes, stream: bytes) -> bytes:
    return bytes(a ^ b for a, b in zip(data, stream))


class TestKeystreamPinned:
    @given(key=keys, length=st.integers(0, 300), nonce=nonces)
    @settings(max_examples=100)
    def test_matches_reference(self, key, length, nonce):
        assert _keystream(key, length, nonce) == reference_keystream(
            key, length, nonce
        )

    def test_cache_does_not_leak_between_keys(self):
        # Interleave two keys and lengths so the per-key add-schedule
        # cache is exercised in both hit and grow paths.
        a, b = b"aaaaaaaa-key-one", b"key-two-bbbbbbbb"
        for length in (3, 64, 17, 200, 64):
            assert _keystream(a, length, 7) == reference_keystream(a, length, 7)
            assert _keystream(b, length, 7) == reference_keystream(b, length, 7)


class TestMacPinned:
    @given(key=keys, data=payloads)
    @settings(max_examples=100)
    def test_matches_reference(self, key, data):
        assert _mac16(key, data) == reference_mac16(key, data)

    def test_empty_data(self):
        assert _mac16(b"sixteen-byte-key", b"") == 0x5A5A


class TestXorPinned:
    @given(data=payloads)
    @settings(max_examples=50)
    def test_matches_reference(self, data):
        stream = reference_keystream(b"pinning-key", len(data), 1)
        assert _xor_bytes(data, stream) == reference_xor(data, stream)


class TestRecordsPinned:
    """seal/open composed from the references == the real session."""

    @given(key=keys, plaintext=payloads, nonce=nonces)
    @settings(max_examples=100)
    def test_seal_record_bytes(self, key, plaintext, nonce):
        session = TLSSession(key)
        session.handshake()
        record, cycles = session.seal_record(plaintext, nonce)
        stream = reference_keystream(key, len(plaintext), nonce)
        body = reference_xor(plaintext, stream)
        expected = body + reference_mac16(key, body).to_bytes(2, "little")
        assert record == expected
        assert cycles == CYCLES_PER_RECORD + CYCLES_PER_BYTE * len(plaintext)

    @given(key=keys, plaintext=payloads, nonce=nonces)
    @settings(max_examples=100)
    def test_open_record_roundtrip(self, key, plaintext, nonce):
        session = TLSSession(key)
        session.handshake()
        record, _ = session.seal_record(plaintext, nonce)
        opened, cycles = session.open_record(record, nonce)
        assert opened == plaintext
        assert cycles == CYCLES_PER_RECORD + CYCLES_PER_BYTE * len(plaintext)

    def test_pinned_vector(self):
        """One frozen byte vector, immune to reference-impl edits."""
        session = TLSSession(b"session-key-00000001")
        session.handshake()
        record, _ = session.seal_record(b"PUB:device/rpc:pinned", 3)
        assert record.hex() == (
            "9a821a82fe209ceeae35ee3583e0dae087d4d307023173"
        )
        assert session.open_record(record, 3)[0] == b"PUB:device/rpc:pinned"
