"""Tests for the TCP/IP and MQTT compartments."""

import pytest

from repro.capability import Permission as P, make_roots
from repro.iot.mqtt import MQTTClient, MQTTError
from repro.iot.netstack import NetworkStack
from repro.iot.packets import Packet, frame


class _Heap:
    """A tiny capability-backed buffer store for netstack tests."""

    def __init__(self):
        roots = make_roots()
        self._root = roots.memory
        self._next = 0x2006_0000
        self.buffers = {}
        self.freed = []

    def malloc(self, size):
        cap = self._root.set_address(self._next).set_bounds((size + 7) & ~7)
        self._next += 0x100
        return cap

    def free(self, cap):
        self.freed.append(cap.base)

    def write(self, cap, data):
        self.buffers[cap.base] = bytes(data)

    def read(self, cap, length):
        return self.buffers[cap.base][:length]


@pytest.fixture
def heap():
    return _Heap()


@pytest.fixture
def stack(heap):
    return NetworkStack(heap.malloc, heap.free, heap.write, heap.read)


class TestNetworkStack:
    def test_good_packet_lands_in_heap_buffer(self, stack, heap):
        wire = frame(1, b"hello")
        cap, length, cycles = stack.receive(Packet(1, wire))
        assert cap is not None and length == 5
        assert heap.read(cap, length) == b"hello"
        assert cycles > 0
        assert cap.length >= length

    def test_corrupt_packet_dropped(self, stack):
        wire = bytearray(frame(1, b"hello"))
        wire[-1] ^= 0xFF
        cap, length, _ = stack.receive(Packet(1, bytes(wire)))
        assert cap is None
        assert stack.stats.packets_dropped == 1

    def test_out_of_order_dropped(self, stack):
        stack.receive(Packet(1, frame(1, b"a")))
        cap, _, _ = stack.receive(Packet(3, frame(3, b"c")))
        assert cap is None
        assert stack.stats.out_of_order == 1

    def test_release_frees_buffer(self, stack, heap):
        cap, _, _ = stack.receive(Packet(1, frame(1, b"x")))
        stack.release(cap)
        assert heap.freed == [cap.base]

    def test_every_packet_is_a_separate_allocation(self, stack, heap):
        """Paper 7.2.3: per-packet heap allocations."""
        caps = []
        for seq in (1, 2, 3):
            cap, _, _ = stack.receive(Packet(seq, frame(seq, b"data")))
            caps.append(cap)
        bases = {c.base for c in caps}
        assert len(bases) == 3


class TestMQTT:
    def test_dispatch(self):
        client = MQTTClient()
        seen = []
        client.subscribe("a/b", seen.append)
        handlers, cycles = client.handle_record(b"PUB:a/b:payload")
        assert handlers == 1 and cycles > 0
        assert seen == [b"payload"]

    def test_multiple_subscribers(self):
        client = MQTTClient()
        seen = []
        client.subscribe("t", lambda p: seen.append(1))
        client.subscribe("t", lambda p: seen.append(2))
        client.handle_record(b"PUB:t:x")
        assert seen == [1, 2]

    def test_unknown_topic_counted(self):
        client = MQTTClient()
        handlers, _ = client.handle_record(b"PUB:ghost:x")
        assert handlers == 0
        assert client.stats.unknown_topic == 1

    def test_malformed_record_raises(self):
        client = MQTTClient()
        with pytest.raises(MQTTError):
            client.handle_record(b"SUB:x")
        with pytest.raises(MQTTError):
            client.handle_record(b"PUB:noseparator")

    def test_payload_may_contain_colons(self):
        client = MQTTClient()
        seen = []
        client.subscribe("t", seen.append)
        client.handle_record(b"PUB:t:a:b:c")
        assert seen == [b"a:b:c"]
