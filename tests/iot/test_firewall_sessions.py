"""The firewall compartment, bounded queues, and the scaled pipeline."""

import pytest

from repro.capability import MonotonicityFault, Permission, make_roots
from repro.iot.firewall import Firewall
from repro.iot.loadgen import NetLoadGen, drive
from repro.iot.packets import frame
from repro.iot.sessions import (
    BoundedQueue,
    NetPipeline,
    SessionError,
    session_key,
)
from repro.iot.tls import TLSSession


def _frame_cap(length=64):
    roots = make_roots()
    return roots.memory.set_address(0x2000_0100).set_bounds(max(1, length))


class TestFirewall:
    def test_admits_ordinary_frame(self):
        fw = Firewall()
        view, cycles = fw.admit(_frame_cap(64), 64)
        assert view is not None
        assert cycles > 0
        assert fw.stats.admitted == 1

    def test_rejects_runt(self):
        fw = Firewall()
        view, _ = fw.admit(_frame_cap(5), 5)
        assert view is None
        assert fw.stats.rejected_runt == 1

    def test_rejects_oversize(self):
        fw = Firewall(max_frame=128)
        view, _ = fw.admit(_frame_cap(129), 129)
        assert view is None
        assert fw.stats.rejected_oversize == 1

    def test_view_is_narrowed_to_frame(self):
        """The admitted view covers exactly the frame — allocator slack
        above it is gone from every downstream compartment's reach."""
        cap = _frame_cap(96)
        view, _ = Firewall().admit(cap, 64)
        assert view.base == cap.base
        assert view.length == 64
        with pytest.raises(MonotonicityFault):
            view.set_bounds(96)


class TestBoundedQueue:
    def test_capacity_enforced(self):
        q = BoundedQueue("q", 2)
        assert q.offer(1) and q.offer(2)
        assert not q.offer(3)
        assert len(q) == 2

    def test_fifo_and_stats(self):
        q = BoundedQueue("q", 4)
        for item in (1, 2, 3):
            q.offer(item)
        assert [q.take(), q.take()] == [1, 2]
        snap = q.snapshot()
        assert snap["enqueued"] == 3
        assert snap["dequeued"] == 2
        assert snap["high_watermark"] == 3
        assert snap["depth"] == 1

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            BoundedQueue("q", 0)


def _wire(conn_id, sequence, body):
    tls = TLSSession(session_key(conn_id))
    tls.handshake()
    record, _ = tls.seal_record(body, sequence)
    return frame(sequence, record)


@pytest.fixture(params=[True, False], ids=["zerocopy", "copy"])
def pipeline(request):
    p = NetPipeline(zero_copy=request.param, collect_messages=True)
    p.establish(7)
    return p


class TestNetPipeline:
    def test_end_to_end_delivery(self, pipeline):
        pipeline.submit(7, _wire(7, 1, b"PUB:device/rpc:hello"))
        pipeline.drain()
        assert pipeline.stats.packets_delivered == 1
        assert pipeline.messages == [(7, b"device/rpc:hello")]
        assert pipeline.sessions[7].delivered == 1

    def test_zero_copy_is_one_alloc_per_packet(self):
        p = NetPipeline(zero_copy=True)
        p.establish(1)
        for seq in range(1, 6):
            p.submit(1, _wire(1, seq, b"PUB:device/rpc:x"))
        p.drain()
        assert p.stats.allocs == 5
        assert p.stats.frees == 5
        assert p.stats.narrowings == 3 * 5  # firewall, tcpip, tls

    def test_copy_mode_allocates_per_layer(self):
        p = NetPipeline(zero_copy=False)
        p.establish(1)
        p.submit(1, _wire(1, 1, b"PUB:device/rpc:x"))
        p.drain()
        # driver + firewall + tcpip + tls + app scratch
        assert p.stats.allocs == 5
        assert p.stats.frees == 5
        assert p.stats.narrowings == 0

    def test_unknown_connection_rejected(self, pipeline):
        with pytest.raises(SessionError):
            pipeline.submit(99, b"anything")

    def test_duplicate_establish_rejected(self, pipeline):
        with pytest.raises(SessionError):
            pipeline.establish(7)

    def test_corrupt_frame_dropped_and_freed(self, pipeline):
        wire = bytearray(_wire(7, 1, b"PUB:device/rpc:hello"))
        wire[8] ^= 0xFF
        pipeline.submit(7, bytes(wire))
        pipeline.drain()
        assert pipeline.stats.dropped_corrupt == 1
        assert pipeline.stats.packets_delivered == 0
        assert pipeline.stats.frees == pipeline.stats.allocs

    def test_out_of_order_dropped(self, pipeline):
        pipeline.submit(7, _wire(7, 3, b"PUB:device/rpc:early"))
        pipeline.drain()
        assert pipeline.stats.dropped_out_of_order == 1

    def test_tampered_record_dropped_by_tls(self, pipeline):
        tls = TLSSession(session_key(7))
        tls.handshake()
        record, _ = tls.seal_record(b"PUB:device/rpc:x", 1)
        tampered = record[:-2] + bytes(2)
        pipeline.submit(7, frame(1, tampered))
        pipeline.drain()
        assert pipeline.stats.dropped_tls == 1

    def test_unparseable_mqtt_dropped_by_app(self, pipeline):
        pipeline.submit(7, _wire(7, 1, b"not-mqtt-at-all"))
        pipeline.drain()
        assert pipeline.stats.dropped_app == 1

    def test_backpressure_drops_before_allocating(self):
        p = NetPipeline(zero_copy=True, queue_capacity=2)
        p.establish(1)
        wires = [_wire(1, seq, b"PUB:device/rpc:x") for seq in range(1, 5)]
        accepted = [p.submit(1, wire) for wire in wires]
        assert accepted == [True, True, False, False]
        assert p.stats.dropped_backpressure == 2
        assert p.stats.allocs == 2

    def test_crossings_are_batched(self):
        p = NetPipeline(zero_copy=True)
        p.establish(1)
        for seq in range(1, 9):
            p.submit(1, _wire(1, seq, b"PUB:device/rpc:x"))
        p.pump()
        # All eight packets traversed all four stages in one pump: one
        # crossing per stage, not per packet.
        assert p.stats.packets_delivered == 8
        assert p.stats.crossings == 4
        assert p.stats.crossing_cycles > 0

    def test_net_metric_group_on_registry(self, pipeline):
        pipeline.submit(7, _wire(7, 1, b"PUB:device/rpc:hello"))
        pipeline.drain()
        snapshot = pipeline.system.registry.snapshot()
        assert snapshot["net"]["packets_delivered"] == 1
        assert snapshot["net"]["cycles_tls"] > 0

    def test_latency_sketch_populated(self, pipeline):
        pipeline.submit(7, _wire(7, 1, b"PUB:device/rpc:hello"))
        pipeline.drain()
        summary = pipeline.latency.summary()
        assert summary["count"] == 1
        assert summary["p50"] > 0

    def test_report_is_deterministic(self):
        def run():
            p = NetPipeline(zero_copy=True)
            p.establish_many(range(1, 9))
            gen = NetLoadGen(
                range(1, 9), seed=99, corrupt_rate=0.2, reorder_rate=0.2
            )
            drive(p, gen, rounds=3)
            return p.report()

        assert run() == run()

    def test_crypto_bucket_identical_across_modes(self):
        reports = {}
        for zero_copy in (True, False):
            p = NetPipeline(zero_copy=zero_copy)
            p.establish_many(range(1, 5))
            gen = NetLoadGen(range(1, 5), seed=5)
            drive(p, gen, rounds=2)
            reports[zero_copy] = p.stats
        assert (
            reports[True].cycles_crypto == reports[False].cycles_crypto
        )
        assert reports[True].cycles_crypto > 0
