"""The seeded load generator, plus framing/session property tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.iot.loadgen import STREAM_PAYLOAD_BYTES, NetLoadGen, drive
from repro.iot.packets import (
    FRAME_HEADER_BYTES,
    FramingError,
    frame,
    unframe,
    validate_frame,
)
from repro.iot.sessions import NetPipeline, session_key
from repro.iot.tls import TLSSession


class TestLoadGen:
    def test_deterministic_wire_stream(self):
        def stream():
            gen = NetLoadGen(
                range(1, 9), seed=42, corrupt_rate=0.3, reorder_rate=0.3
            )
            return [gen.frames_for_round(r) for r in range(3)]

        assert stream() == stream()

    def test_shape_assignment_is_seed_function(self):
        a = NetLoadGen(range(10), seed=1).shapes
        b = NetLoadGen(range(10), seed=1).shapes
        c = NetLoadGen(range(10), seed=2).shapes
        assert a == b
        assert set(a.values()) == {"rr", "stream"}
        assert a != c  # astronomically unlikely to collide

    def test_frames_decode_under_session_keys(self):
        gen = NetLoadGen([3], seed=7)
        tls = TLSSession(session_key(3))
        tls.handshake()
        for round_index in range(3):
            for conn_id, wire in gen.frames_for_round(round_index):
                sequence, record = unframe(wire)
                plaintext, _ = tls.open_record(record, sequence)
                assert plaintext.startswith(b"PUB:device/")

    def test_per_connection_order_preserved(self):
        gen = NetLoadGen(range(1, 20), seed=11, stream_fraction=1.0)
        seqs = {}
        for conn_id, wire in gen.frames_for_round(0):
            sequence, _, _ = validate_frame(wire)
            assert sequence > seqs.get(conn_id, 0)
            seqs[conn_id] = sequence

    def test_corrupt_injection_counts_and_fails_checksum(self):
        gen = NetLoadGen([1], seed=3, corrupt_rate=1.0)
        frames = [wire for _, wire in gen.frames_for_round(0)]
        assert gen.injected_corrupt == 1
        with pytest.raises(FramingError):
            validate_frame(frames[0])
        validate_frame(frames[1])  # the clean retransmit follows

    def test_reorder_injection_swaps_and_retransmits(self):
        gen = NetLoadGen(
            [1], seed=3, stream_fraction=1.0, stream_burst=2,
            reorder_rate=1.0,
        )
        frames = [wire for _, wire in gen.frames_for_round(0)]
        assert gen.injected_reorder == 1
        seqs = [validate_frame(wire)[0] for wire in frames]
        assert seqs == [2, 1, 2]

    def test_expected_counters_match_pipeline(self):
        pipeline = NetPipeline(zero_copy=True)
        pipeline.establish_many(range(1, 13))
        gen = NetLoadGen(
            range(1, 13), seed=20260807, corrupt_rate=0.2, reorder_rate=0.2
        )
        drive(pipeline, gen, rounds=3)
        stats = pipeline.stats
        assert stats.packets_delivered == gen.expected_delivered
        assert stats.payload_bytes_delivered == gen.expected_payload_bytes
        assert stats.dropped_corrupt == gen.injected_corrupt
        assert stats.dropped_out_of_order == gen.injected_reorder
        assert stats.frees == stats.allocs  # no buffer leaks

    def test_backpressure_retransmit_keeps_sessions_alive(self):
        """A tiny ring forces refusals; the flow-controlled sender must
        still deliver everything (a lost frame would stall sequencing
        for the rest of the session)."""
        pipeline = NetPipeline(zero_copy=True, queue_capacity=4)
        pipeline.establish_many(range(1, 9))
        gen = NetLoadGen(range(1, 9), seed=5, stream_fraction=1.0)
        drive(pipeline, gen, rounds=2)
        assert pipeline.stats.dropped_backpressure > 0
        assert pipeline.stats.packets_delivered == gen.expected_delivered


bodies = st.binary(max_size=200)
sequences = st.integers(min_value=0, max_value=0xFFFF)


class TestFramingProperties:
    @given(sequence=sequences, body=bodies)
    @settings(max_examples=100)
    def test_frame_unframe_roundtrip(self, sequence, body):
        wire = frame(sequence, body)
        assert len(wire) == FRAME_HEADER_BYTES + len(body)
        assert unframe(wire) == (sequence, body)
        got_seq, offset, length = validate_frame(wire)
        assert (got_seq, wire[offset : offset + length]) == (sequence, body)

    @given(sequence=sequences, body=bodies, cut=st.integers(1, 20))
    @settings(max_examples=60)
    def test_truncated_frames_rejected(self, sequence, body, cut):
        wire = frame(sequence, body)
        truncated = wire[: max(0, len(wire) - cut)]
        with pytest.raises(FramingError):
            validate_frame(truncated)

    @given(
        sequence=sequences,
        body=st.binary(min_size=1, max_size=200),
        data=st.data(),
    )
    @settings(max_examples=60)
    def test_flipped_body_byte_rejected(self, sequence, body, data):
        wire = bytearray(frame(sequence, body))
        index = data.draw(
            st.integers(FRAME_HEADER_BYTES, len(wire) - 1), label="flip"
        )
        wire[index] ^= 0xFF
        with pytest.raises(FramingError):
            validate_frame(bytes(wire))


@st.composite
def interleavings(draw):
    """Per-connection message lists plus a seeded interleave order."""
    n_conns = draw(st.integers(2, 4))
    counts = [draw(st.integers(1, 5)) for _ in range(n_conns)]
    order = []
    for conn, count in enumerate(counts):
        order.extend([conn] * count)
    return counts, draw(st.permutations(order))


class TestInterleavedSessions:
    @given(plan=interleavings())
    @settings(max_examples=20, deadline=None)
    def test_any_interleave_delivers_in_per_session_order(self, plan):
        """Frames from many sessions in any cross-session order: every
        session still sees its own messages exactly once, in order."""
        counts, order = plan
        pipeline = NetPipeline(zero_copy=True, collect_messages=True)
        cloud = {}
        for conn in range(len(counts)):
            pipeline.establish(conn + 1)
            tls = TLSSession(session_key(conn + 1))
            tls.handshake()
            cloud[conn + 1] = tls
        next_seq = {conn + 1: 1 for conn in range(len(counts))}
        expected = {conn + 1: [] for conn in range(len(counts))}
        for conn0 in order:
            conn = conn0 + 1
            seq = next_seq[conn]
            next_seq[conn] = seq + 1
            body = b"PUB:device/rpc:" + f"c{conn}s{seq}".encode()
            expected[conn].append(b"device/rpc:" + f"c{conn}s{seq}".encode())
            record, _ = cloud[conn].seal_record(body, seq)
            assert pipeline.submit(conn, frame(seq, record))
            if not pipeline.q_ingress.has_room:
                pipeline.pump()
        pipeline.drain()
        delivered = {conn: [] for conn in expected}
        for conn, message in pipeline.messages:
            delivered[conn].append(message)
        assert delivered == expected
        assert pipeline.stats.packets_delivered == len(order)
