"""Tests for the boundary-tagged chunk allocator."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.allocator.dlmalloc import (
    ALIGNMENT,
    HEADER_SIZE,
    MIN_CHUNK_SIZE,
    DlMalloc,
    HeapCorruption,
    HeapExhausted,
)

BASE = 0x1000
SIZE = 0x10000


@pytest.fixture
def heap():
    return DlMalloc(BASE, SIZE)


class TestBasics:
    def test_construction_validation(self):
        with pytest.raises(ValueError):
            DlMalloc(BASE + 1, SIZE)
        with pytest.raises(ValueError):
            DlMalloc(BASE, 8)

    def test_allocate_returns_aligned_payload(self, heap):
        for request in (1, 7, 8, 13, 100):
            chunk = heap.allocate(request)
            assert chunk.payload_address % ALIGNMENT == 0
            assert chunk.payload_size >= request
            assert chunk.size == chunk.payload_size + HEADER_SIZE

    def test_zero_size_rejected(self, heap):
        with pytest.raises(ValueError):
            heap.allocate(0)

    def test_headers_are_in_band(self, heap):
        """Boundary tags: consecutive chunks are separated by exactly

        one header — the embedded-friendly in-band layout (5.1)."""
        a = heap.allocate(24)
        b = heap.allocate(24)
        assert b.address == a.end
        assert b.payload_address - a.end == HEADER_SIZE

    def test_exhaustion(self, heap):
        heap.allocate(SIZE - HEADER_SIZE - MIN_CHUNK_SIZE)
        with pytest.raises(HeapExhausted):
            heap.allocate(1024)


class TestRelease:
    def test_release_and_reuse(self, heap):
        chunk = heap.allocate(64)
        address = chunk.payload_address
        heap.release(chunk)
        again = heap.allocate(64)
        assert again.payload_address == address  # LIFO small bin

    def test_double_release_rejected(self, heap):
        chunk = heap.allocate(64)
        heap.release(chunk)
        with pytest.raises(HeapCorruption):
            heap.release(chunk)

    def test_full_coalescing_restores_heap(self, heap):
        chunks = [heap.allocate(100) for _ in range(20)]
        random.Random(7).shuffle(chunks)
        for chunk in chunks:
            heap.release(chunk)
        heap.check_invariants()
        assert heap.free_bytes == SIZE
        big = heap.allocate(SIZE - HEADER_SIZE)
        assert big.payload_size == SIZE - HEADER_SIZE

    def test_partial_coalescing(self, heap):
        a = heap.allocate(64)
        b = heap.allocate(64)
        c = heap.allocate(64)
        heap.release(a)
        heap.release(c)
        heap.release(b)  # merges with both neighbours and the top
        heap.check_invariants()
        assert heap.free_bytes == SIZE

    def test_chunk_lookup_by_payload(self, heap):
        chunk = heap.allocate(48)
        assert heap.chunk_at_payload(chunk.payload_address) is chunk
        with pytest.raises(HeapCorruption):
            heap.chunk_at_payload(chunk.payload_address + 8)


class TestSplitting:
    def test_large_chunk_split_returns_remainder(self, heap):
        chunk = heap.allocate(1024)
        free_before = heap.free_bytes
        assert free_before == SIZE - chunk.size
        heap.check_invariants()

    def test_tiny_remainder_not_split(self, heap):
        """A remainder below MIN_CHUNK_SIZE stays attached to the chunk."""
        a = heap.allocate(SIZE - HEADER_SIZE - MIN_CHUNK_SIZE - 8)
        assert heap.free_bytes <= MIN_CHUNK_SIZE + 8
        heap.check_invariants()


class TestOpsCounting:
    def test_ops_accumulate_and_reset(self, heap):
        heap.allocate(64)
        assert heap.ops.header_writes > 0
        heap.ops.reset()
        assert heap.ops.header_writes == 0


class TestPropertyBased:
    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.tuples(st.booleans(), st.integers(min_value=1, max_value=2048)),
            min_size=1,
            max_size=120,
        )
    )
    def test_random_workload_preserves_invariants(self, script):
        heap = DlMalloc(BASE, SIZE)
        live = []
        for do_free, size in script:
            if do_free and live:
                heap.release(live.pop(len(live) // 2))
            else:
                try:
                    live.append(heap.allocate(size))
                except HeapExhausted:
                    pass
            heap.check_invariants()
        # No two live chunks overlap.
        spans = sorted((c.address, c.end) for c in live)
        for (a1, e1), (a2, _) in zip(spans, spans[1:]):
            assert e1 <= a2
        for chunk in live:
            heap.release(chunk)
        heap.check_invariants()
        assert heap.free_bytes == SIZE
