"""Tests for calloc/realloc and allocator API edges."""

import pytest

from repro.allocator import InvalidFree, TemporalSafetyMode
from .test_heap import build_heap


class TestCalloc:
    def test_zeroed(self):
        heap, bus, _, _ = build_heap()
        cap = heap.calloc(4, 16)
        assert cap.length >= 64
        assert bus.read_bytes(cap.base, 64) == b"\x00" * 64

    def test_zeroed_even_after_dirty_reuse(self):
        """Baseline mode does not zero on free; calloc must anyway."""
        heap, bus, _, _ = build_heap(TemporalSafetyMode.BASELINE)
        first = heap.malloc(64)
        bus.write_bytes(first.base, b"\xAA" * 64)
        heap.free(first)
        cap = heap.calloc(8, 8)
        assert bus.read_bytes(cap.base, 64) == b"\x00" * 64

    def test_bad_dimensions(self):
        heap, *_ = build_heap()
        with pytest.raises(ValueError):
            heap.calloc(0, 8)
        with pytest.raises(ValueError):
            heap.calloc(8, -1)


class TestRealloc:
    def test_grow_preserves_contents(self):
        heap, bus, _, _ = build_heap()
        cap = heap.malloc(32)
        bus.write_bytes(cap.base, bytes(range(32)))
        grown = heap.realloc(cap, 128)
        assert grown.length >= 128
        assert bus.read_bytes(grown.base, 32) == bytes(range(32))

    def test_shrink_truncates(self):
        heap, bus, _, _ = build_heap()
        cap = heap.malloc(64)
        bus.write_bytes(cap.base, b"\x55" * 64)
        shrunk = heap.realloc(cap, 16)
        assert shrunk.length >= 16
        assert bus.read_bytes(shrunk.base, 16) == b"\x55" * 16

    def test_old_capability_is_revoked(self):
        """Monotonicity forces realloc to move: the old pointer must

        die like any other freed pointer."""
        heap, _, rmap, _ = build_heap()
        cap = heap.malloc(32)
        heap.realloc(cap, 64)
        assert rmap.is_revoked(cap.base)

    def test_realloc_always_returns_fresh_bounds(self):
        heap, *_ = build_heap()
        cap = heap.malloc(32)
        fresh = heap.realloc(cap, 64)
        assert fresh.base != cap.base or fresh.length != cap.length

    def test_untagged_rejected(self):
        heap, *_ = build_heap()
        cap = heap.malloc(32)
        with pytest.raises(InvalidFree):
            heap.realloc(cap.untagged(), 64)

    def test_foreign_rejected(self):
        heap, *_ = build_heap()
        cap = heap.malloc(32)
        heap.free(cap)
        with pytest.raises(InvalidFree):
            heap.realloc(cap, 64)
