"""Stateful property tests over the temporally-safe heap.

Random malloc/free interleavings must preserve, at every step:

* live capabilities never overlap each other;
* every live capability stays within the heap region;
* freed-but-quarantined memory is never handed out again while its
  revocation bits are set;
* every capability handed out is tagged, unsealed and exactly bounded.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.allocator import CheriHeap, OutOfMemory, TemporalSafetyMode
from repro.capability import make_roots
from repro.memory import RevocationMap, SystemBus, TaggedMemory, default_memory_map
from repro.revoker import BackgroundRevoker, EpochCounter, SoftwareRevoker

actions = st.lists(
    st.one_of(
        st.tuples(st.just("malloc"), st.integers(min_value=1, max_value=4096)),
        st.tuples(st.just("free"), st.integers(min_value=0, max_value=63)),
        st.tuples(st.just("revoke"), st.none()),
    ),
    max_size=60,
)


def build_heap(mode):
    mm = default_memory_map(heap_size=0x1_0000)
    bus = SystemBus()
    bus.attach_sram(TaggedMemory(mm.code.base, mm.sram_bytes))
    rmap = RevocationMap(mm.heap.base, mm.heap.size)
    roots = make_roots()
    epoch = EpochCounter()
    heap = CheriHeap(
        bus,
        mm.heap,
        rmap,
        roots.memory,
        mode,
        software_revoker=SoftwareRevoker(bus, rmap, epoch),
        hardware_revoker=BackgroundRevoker(bus, rmap, epoch),
        epoch=epoch,
    )
    return heap, rmap, mm


def check_invariants(heap, rmap, mm, live):
    spans = sorted((cap.base, cap.top) for cap in live)
    for (b1, t1), (b2, _) in zip(spans, spans[1:]):
        assert t1 <= b2, "live allocations overlap"
    for cap in live:
        assert cap.tag and not cap.is_sealed
        assert mm.heap.contains(cap.base, cap.length)
        assert not rmap.is_revoked(cap.base), "live allocation is revoked"
    heap.dl.check_invariants()


@pytest.mark.parametrize(
    "mode", [TemporalSafetyMode.SOFTWARE, TemporalSafetyMode.HARDWARE]
)
@settings(max_examples=25, deadline=None)
@given(script=actions)
def test_random_interleavings_preserve_invariants(mode, script):
    heap, rmap, mm = build_heap(mode)
    live = []
    for action, arg in script:
        if action == "malloc":
            try:
                live.append(heap.malloc(arg))
            except OutOfMemory:
                pass
        elif action == "free" and live:
            heap.free(live.pop(arg % len(live)))
        elif action == "revoke":
            heap.revoke_now()
        check_invariants(heap, rmap, mm, live)

    # Teardown: free everything, revoke until all memory comes home.
    for cap in live:
        heap.free(cap)
    heap.revoke_now()
    heap.revoke_now()
    assert heap.live_allocations == 0
    assert heap.quarantined_bytes == 0
    assert heap.dl.free_bytes == mm.heap.size
    assert not rmap.any_revoked()
