"""Tests for the capability-returning allocator compartment (section 5.1)."""

import pytest

from repro.allocator import (
    CheriHeap,
    DoubleFree,
    InvalidFree,
    OutOfMemory,
    TemporalSafetyMode,
)
from repro.capability import Permission as P, make_roots
from repro.memory import RevocationMap, SystemBus, TaggedMemory, default_memory_map
from repro.pipeline import CoreKind, make_core_model
from repro.revoker import BackgroundRevoker, EpochCounter, SoftwareRevoker

MM = default_memory_map()


def build_heap(mode=TemporalSafetyMode.HARDWARE, core=None, heap_size=None):
    mm = default_memory_map(heap_size=heap_size) if heap_size else MM
    bus = SystemBus()
    bus.attach_sram(TaggedMemory(mm.code.base, mm.sram_bytes))
    rmap = RevocationMap(mm.heap.base, mm.heap.size)
    roots = make_roots()
    epoch = EpochCounter()
    model = core or make_core_model(CoreKind.IBEX, load_filter_enabled=True)
    software = SoftwareRevoker(bus, rmap, epoch, model)
    hardware = BackgroundRevoker(bus, rmap, epoch, model)
    heap = CheriHeap(
        bus,
        mm.heap,
        rmap,
        roots.memory,
        mode,
        software_revoker=software,
        hardware_revoker=hardware,
        epoch=epoch,
        core_model=model,
    )
    return heap, bus, rmap, roots


class TestSpatialSafety:
    def test_bounds_exactly_cover_rounded_allocation(self):
        heap, *_ = build_heap()
        cap = heap.malloc(100)
        assert cap.tag
        assert cap.base == cap.address
        assert cap.length >= 100
        # Small allocations are precise (<= 511 bytes).
        assert cap.length == 100 or cap.length == 104  # 8-byte granule only

    def test_capability_excludes_header(self):
        heap, *_ = build_heap()
        a = heap.malloc(32)
        b = heap.malloc(32)
        # The headers sit between the two payloads, outside both caps.
        assert a.top <= b.base - 8 or b.top <= a.base - 8

    def test_returned_perms_exclude_sl_and_ex(self):
        heap, *_ = build_heap()
        cap = heap.malloc(16)
        assert P.SL not in cap.perms
        assert P.EX not in cap.perms
        assert cap.has(P.LD, P.SD, P.MC, P.GL)

    def test_large_allocations_exactly_representable(self):
        """Above 511 bytes the allocator pads/aligns so bounds stay

        exact — the ~0.19 % fragmentation trade (section 3.2.3)."""
        heap, *_ = build_heap()
        for size in (1000, 4096, 100_000):
            cap = heap.malloc(size)
            assert cap.length >= size
            granule = 1 << (cap.bounds.exponent)
            assert cap.base % granule == 0
            assert cap.length % granule == 0
            heap.free(cap)

    def test_rejects_nonpositive(self):
        heap, *_ = build_heap()
        with pytest.raises(ValueError):
            heap.malloc(0)


class TestFreeValidation:
    def test_free_untagged_rejected(self):
        heap, *_ = build_heap()
        cap = heap.malloc(32)
        with pytest.raises(InvalidFree):
            heap.free(cap.untagged())

    def test_double_free_detected_while_quarantined(self):
        heap, *_ = build_heap()
        cap = heap.malloc(32)
        heap.free(cap)
        with pytest.raises(DoubleFree):
            heap.free(cap)

    def test_interior_pointer_free_rejected(self):
        heap, *_ = build_heap()
        cap = heap.malloc(64)
        with pytest.raises(InvalidFree):
            heap.free(cap.inc_address(8).set_bounds(8))

    def test_foreign_pointer_free_rejected(self):
        heap, _, _, roots = build_heap()
        foreign = roots.memory.set_address(MM.heap.base + 0x3000).set_bounds(16)
        with pytest.raises(InvalidFree):
            heap.free(foreign)


class TestTemporalSafety:
    def test_free_paints_revocation_bits(self):
        heap, _, rmap, _ = build_heap()
        cap = heap.malloc(64)
        assert not rmap.is_revoked(cap.base)
        heap.free(cap)
        assert rmap.is_revoked(cap.base)
        assert rmap.is_revoked(cap.base + 56)

    def test_free_zeroes_memory(self):
        heap, bus, _, _ = build_heap()
        cap = heap.malloc(64)
        bus.write_bytes(cap.base, b"\xAA" * 64)
        heap.free(cap)
        assert bus.read_bytes(cap.base, 64) == b"\x00" * 64

    def test_no_reuse_before_revocation(self):
        heap, *_ = build_heap()
        first = heap.malloc(64)
        heap.free(first)
        second = heap.malloc(64)
        # Freed chunk is quarantined: the new allocation must not alias.
        assert second.base != first.base or heap.stats.revocation_passes > 0

    def test_reuse_after_revocation_is_clean(self):
        heap, _, rmap, _ = build_heap()
        cap = heap.malloc(64)
        base = cap.base
        heap.free(cap)
        heap.revoke_now()
        assert not rmap.is_revoked(base)

    def test_stale_capability_invalidated_in_memory(self):
        heap, bus, _, _ = build_heap()
        cap = heap.malloc(64)
        stash = cap.base  # store the cap inside its own allocation
        bus.write_capability(stash, cap)
        heap.free(cap)  # zeroing clears it; use another stash to be sure
        other = heap.malloc(64)
        bus.write_capability(other.base, cap)  # stale cap stashed again
        heap.revoke_now()
        assert not bus.read_capability(other.base).tag

    def test_oom_triggers_revocation_and_recovers(self):
        heap, *_ = build_heap()
        big = MM.heap.size * 3 // 5  # two cannot coexist in the heap
        a = heap.malloc(big)
        heap.free(a)
        b = heap.malloc(big)  # needs the quarantined memory back
        assert heap.stats.revocation_passes >= 1
        heap.free(b)

    def test_true_oom_raises(self):
        heap, *_ = build_heap()
        with pytest.raises(OutOfMemory):
            heap.malloc(MM.heap.size * 2)


class TestModes:
    def test_baseline_skips_temporal_machinery(self):
        heap, bus, rmap, _ = build_heap(TemporalSafetyMode.BASELINE)
        cap = heap.malloc(64)
        bus.write_bytes(cap.base, b"\xAA" * 64)
        heap.free(cap)
        assert not rmap.any_revoked()
        # Baseline does not zero either (no temporal safety at all).
        assert bus.read_bytes(cap.base, 64) == b"\xAA" * 64
        # And memory is reused immediately.
        again = heap.malloc(64)
        assert again.base == cap.base

    def test_metadata_paints_but_reuses_immediately(self):
        heap, _, rmap, _ = build_heap(TemporalSafetyMode.METADATA)
        cap = heap.malloc(64)
        heap.free(cap)
        assert not rmap.any_revoked()  # painted then cleared
        again = heap.malloc(64)
        assert again.base == cap.base
        assert heap.stats.revocation_passes == 0

    def test_software_mode_sweeps(self):
        heap, bus, _, _ = build_heap(TemporalSafetyMode.SOFTWARE)
        cap = heap.malloc(64)
        other = heap.malloc(64)
        bus.write_capability(other.base, cap)
        heap.free(cap)
        heap.revoke_now()
        assert not bus.read_capability(other.base).tag

    def test_mode_requires_matching_revoker(self):
        mm = default_memory_map()
        bus = SystemBus()
        bus.attach_sram(TaggedMemory(mm.code.base, mm.sram_bytes))
        rmap = RevocationMap(mm.heap.base, mm.heap.size)
        roots = make_roots()
        with pytest.raises(ValueError):
            CheriHeap(bus, mm.heap, rmap, roots.memory, TemporalSafetyMode.SOFTWARE)


class TestAccounting:
    def test_cycles_charged_for_operations(self):
        model = make_core_model(CoreKind.IBEX, load_filter_enabled=True)
        heap, *_ = build_heap(core=model)
        before = model.cycles
        cap = heap.malloc(128)
        heap.free(cap)
        assert model.cycles > before

    def test_stats(self):
        heap, *_ = build_heap()
        cap = heap.malloc(40)
        heap.free(cap)
        assert heap.stats.mallocs == 1
        assert heap.stats.frees == 1
        assert heap.stats.bytes_allocated >= 40
