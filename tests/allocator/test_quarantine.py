"""Tests for the epoch-keyed quarantine lists (section 5.1)."""

import pytest

from repro.allocator.dlmalloc import Chunk
from repro.allocator.quarantine import MAX_LISTS, Quarantine


def chunk(address=0x1000, size=64):
    return Chunk(address, size)


class TestListManagement:
    def test_same_epoch_shares_a_list(self):
        q = Quarantine()
        q.add(chunk(0x1000), 4)
        q.add(chunk(0x2000), 4)
        assert q.list_count == 1
        assert len(q) == 2

    def test_new_epoch_opens_new_list(self):
        q = Quarantine()
        q.add(chunk(0x1000), 2)
        q.add(chunk(0x2000), 4)
        assert q.list_count == 2

    def test_at_most_three_lists(self):
        """The allocator need track at most 3 distinct lists (5.1)."""
        q = Quarantine()
        for epoch in (0, 2, 4, 6, 8):
            q.add(chunk(0x1000 * (epoch + 1)), epoch)
        assert q.list_count <= MAX_LISTS
        assert len(q) == 5  # merging loses no chunks

    def test_merge_is_conservative(self):
        """Merged lists take the *younger* epoch, so nothing is reaped

        earlier than it would have been unmerged."""
        q = Quarantine()
        for epoch in (0, 2, 4, 6):
            q.add(chunk(0x1000 * (epoch + 1)), epoch)
        # Lists for 0 and 2 merged under epoch 2: at epoch 3 nothing
        # from the merged list may come out (2+2 > 3).
        assert q.reap(3) == []

    def test_total_bytes(self):
        q = Quarantine()
        q.add(chunk(0x1000, 64), 0)
        q.add(chunk(0x2000, 128), 0)
        assert q.total_bytes == 192


class TestReaping:
    def test_reap_by_epoch_rule(self):
        q = Quarantine()
        even = chunk(0x1000)
        odd = chunk(0x2000)
        q.add(even, 0)
        q.add(odd, 1)
        assert q.reap(1) == []
        ready = q.reap(2)  # even-epoch list is safe after one sweep
        assert ready == [even]
        assert q.reap(3) == []  # odd needs epoch 4
        assert q.reap(4) == [odd]
        assert len(q) == 0

    def test_drain(self):
        q = Quarantine()
        q.add(chunk(0x1000), 0)
        q.add(chunk(0x2000), 2)
        drained = q.drain()
        assert len(drained) == 2
        assert q.total_bytes == 0
