"""Tests for the revocation-granule trade-off (section 3.3.1).

A larger granule shrinks the bitmap SRAM proportionally but forces the
allocator to pad chunks so no two allocations share a revocation bit.
"""

import pytest

from repro.allocator import CheriHeap, TemporalSafetyMode
from repro.capability import make_roots
from repro.memory import RevocationMap, SystemBus, TaggedMemory, default_memory_map
from repro.revoker import BackgroundRevoker, EpochCounter


def build(granule):
    mm = default_memory_map()
    bus = SystemBus()
    bus.attach_sram(TaggedMemory(mm.code.base, mm.sram_bytes))
    rmap = RevocationMap(mm.heap.base, mm.heap.size, granule_bytes=granule)
    roots = make_roots()
    epoch = EpochCounter()
    hw = BackgroundRevoker(bus, rmap, epoch)
    heap = CheriHeap(
        bus, mm.heap, rmap, roots.memory, TemporalSafetyMode.HARDWARE,
        hardware_revoker=hw, epoch=epoch,
    )
    return heap, rmap, bus


class TestRevocationMapGranule:
    def test_bitmap_shrinks_with_granule(self):
        sizes = {}
        for granule in (8, 16, 32, 64):
            _, rmap, _ = build(granule)
            sizes[granule] = rmap.bitmap_bytes
        assert sizes[16] == sizes[8] // 2
        assert sizes[64] == sizes[8] // 8

    def test_bad_granules_rejected(self):
        with pytest.raises(ValueError):
            RevocationMap(0x2000_0000, 0x1000, granule_bytes=4)
        with pytest.raises(ValueError):
            RevocationMap(0x2000_0000, 0x1000, granule_bytes=12)

    def test_lookup_respects_granule(self):
        rmap = RevocationMap(0x2000_0000, 0x1000, granule_bytes=32)
        rmap.paint(0x2000_0020, 32)
        for offset in range(0x20, 0x40):
            assert rmap.is_revoked(0x2000_0000 + offset)
        assert not rmap.is_revoked(0x2000_0000 + 0x1F)


class TestAllocatorPadding:
    def test_no_two_allocations_share_a_granule(self):
        heap, rmap, _ = build(64)
        caps = [heap.malloc(16) for _ in range(8)]
        granules = set()
        for cap in caps:
            first = cap.base // 64
            last = (cap.top - 1) // 64
            for g in range(first, last + 1):
                assert g not in granules, "two allocations share a granule"
                granules.add(g)

    def test_padding_grows_with_granule(self):
        paddings = {}
        for granule in (8, 64):
            heap, _, _ = build(granule)
            for _ in range(16):
                heap.malloc(20)
            paddings[granule] = heap.stats.fragmentation_padding
        assert paddings[64] > paddings[8]

    def test_coarse_granule_temporal_safety_still_sound(self):
        """Freeing paints the whole (padded) chunk; neighbours keep

        their own granules, so the filter never over- or under-kills."""
        heap, rmap, bus = build(32)
        a = heap.malloc(16)
        b = heap.malloc(16)
        heap.free(a)
        assert rmap.is_revoked(a.base)
        assert not rmap.is_revoked(b.base)
