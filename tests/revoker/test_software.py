"""Tests for the software sweeping revoker (section 3.3.2)."""

import pytest

from repro.revoker.software import SoftwareRevoker
from .conftest import HEAP_BASE, HEAP_SIZE, SRAM_BASE, heap_cap


@pytest.fixture
def revoker(bus, rmap, core):
    return SoftwareRevoker(bus, rmap, core_model=core)


class TestSweepEffects:
    def test_stale_capabilities_invalidated(self, bus, rmap, roots, revoker):
        stale = heap_cap(roots, 0, 64)
        bus.write_capability(SRAM_BASE + 0x100, stale)
        bus.write_capability(SRAM_BASE + 0x200, stale.inc_address(8))
        rmap.paint(HEAP_BASE, 64)
        revoker.sweep(SRAM_BASE, SRAM_BASE + 0x1000)
        assert not bus.read_capability(SRAM_BASE + 0x100).tag
        assert not bus.read_capability(SRAM_BASE + 0x200).tag
        assert revoker.stats.tags_invalidated == 2

    def test_live_capabilities_survive(self, bus, rmap, roots, revoker):
        live = heap_cap(roots, 0x100, 64)
        bus.write_capability(SRAM_BASE + 0x300, live)
        rmap.paint(HEAP_BASE, 64)  # a different chunk is freed
        revoker.sweep(SRAM_BASE, SRAM_BASE + 0x1000)
        assert bus.read_capability(SRAM_BASE + 0x300).tag

    def test_plain_data_untouched(self, bus, rmap, revoker):
        bus.write_word(SRAM_BASE + 0x40, 0xCAFEBABE, 4)
        rmap.paint(HEAP_BASE, 64)
        revoker.sweep(SRAM_BASE, SRAM_BASE + 0x1000)
        assert bus.read_word(SRAM_BASE + 0x40, 4) == 0xCAFEBABE

    def test_sweep_outside_region_leaves_caps(self, bus, rmap, roots, revoker):
        stale = heap_cap(roots)
        bus.write_capability(SRAM_BASE + 0x2000, stale)
        rmap.paint(HEAP_BASE, 64)
        revoker.sweep(SRAM_BASE, SRAM_BASE + 0x1000)  # does not cover 0x2000
        assert bus.read_capability(SRAM_BASE + 0x2000).tag


class TestEpochProtocol:
    def test_sweep_advances_epoch_twice(self, revoker):
        before = revoker.epoch.value
        revoker.sweep(SRAM_BASE, SRAM_BASE + 0x100)
        assert revoker.epoch.value == before + 2


class TestCosts:
    def test_cycles_proportional_to_region_not_tags(self, bus, rmap, core, revoker):
        """The sweep loop visits every word: cost is per-region."""
        _, small = revoker.sweep(SRAM_BASE, SRAM_BASE + 0x800)
        _, large = revoker.sweep(SRAM_BASE, SRAM_BASE + 0x1000)
        assert large == pytest.approx(2 * small, rel=0.05)
        assert core.cycles == small + large

    def test_batching_matches_unbatched_total(self, bus, rmap, core):
        fine = SoftwareRevoker(bus, rmap, core_model=core, batch_granules=8)
        coarse = SoftwareRevoker(
            bus, rmap, epoch=fine.epoch, core_model=core, batch_granules=4096
        )
        _, cycles_fine = fine.sweep(SRAM_BASE, SRAM_BASE + 0x1000)
        _, cycles_coarse = coarse.sweep(SRAM_BASE, SRAM_BASE + 0x1000)
        assert cycles_fine == pytest.approx(cycles_coarse, rel=0.02)

    def test_bad_batch_size_rejected(self, bus, rmap):
        with pytest.raises(ValueError):
            SoftwareRevoker(bus, rmap, batch_granules=0)

    def test_misaligned_region_rejected(self, revoker):
        with pytest.raises(ValueError):
            revoker.sweep(SRAM_BASE + 4, SRAM_BASE + 0x100)
        with pytest.raises(ValueError):
            revoker.sweep(SRAM_BASE + 0x100, SRAM_BASE)
