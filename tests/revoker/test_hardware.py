"""Tests for the background hardware revoker (section 3.3.3)."""

import pytest

from repro.revoker.hardware import (
    REG_END,
    REG_EPOCH,
    REG_KICK,
    REG_START,
    BackgroundRevoker,
)
from .conftest import HEAP_BASE, SRAM_BASE, heap_cap


@pytest.fixture
def revoker(bus, rmap, core):
    return BackgroundRevoker(bus, rmap, core_model=core)


def _arm(revoker, start, end):
    revoker.mmio_write(REG_START, start)
    revoker.mmio_write(REG_END, end)
    revoker.mmio_write(REG_KICK, 1)


class TestMMIOInterface:
    def test_registers_readback(self, revoker):
        revoker.mmio_write(REG_START, SRAM_BASE)
        revoker.mmio_write(REG_END, SRAM_BASE + 0x100)
        assert revoker.mmio_read(REG_START) == SRAM_BASE
        assert revoker.mmio_read(REG_END) == SRAM_BASE + 0x100

    def test_addresses_granule_aligned(self, revoker):
        revoker.mmio_write(REG_START, SRAM_BASE + 5)
        assert revoker.mmio_read(REG_START) == SRAM_BASE

    def test_epoch_read_only(self, revoker):
        before = revoker.mmio_read(REG_EPOCH)
        revoker.mmio_write(REG_EPOCH, 99)
        assert revoker.mmio_read(REG_EPOCH) == before

    def test_kick_starts_pass(self, revoker):
        _arm(revoker, SRAM_BASE, SRAM_BASE + 0x100)
        assert revoker.running
        assert revoker.mmio_read(REG_EPOCH) % 2 == 1  # sweep in progress

    def test_kick_while_running_is_noop(self, revoker):
        _arm(revoker, SRAM_BASE, SRAM_BASE + 0x100)
        epoch = revoker.mmio_read(REG_EPOCH)
        revoker.mmio_write(REG_KICK, 1)
        assert revoker.mmio_read(REG_EPOCH) == epoch

    def test_empty_region_kick_ignored(self, revoker):
        revoker.mmio_write(REG_START, SRAM_BASE)
        revoker.mmio_write(REG_END, SRAM_BASE)
        revoker.mmio_write(REG_KICK, 1)
        assert not revoker.running


class TestSweep:
    def test_bulk_pass_invalidates_stale(self, bus, rmap, roots, revoker):
        stale = heap_cap(roots)
        live = heap_cap(roots, 0x100)
        bus.write_capability(SRAM_BASE + 0x10, stale)
        bus.write_capability(SRAM_BASE + 0x18, live)
        rmap.paint(HEAP_BASE, 64)
        _arm(revoker, SRAM_BASE, SRAM_BASE + 0x1000)
        cycles = revoker.run_to_completion()
        assert cycles > 0
        assert not revoker.running
        assert not bus.read_capability(SRAM_BASE + 0x10).tag
        assert bus.read_capability(SRAM_BASE + 0x18).tag
        assert revoker.stats.invalidations == 1
        assert revoker.mmio_read(REG_EPOCH) % 2 == 0

    def test_detailed_stepping_matches_bulk(self, bus, rmap, roots, revoker):
        stale = heap_cap(roots)
        for offset in range(0, 0x100, 8):
            bus.write_capability(SRAM_BASE + offset, stale)
        rmap.paint(HEAP_BASE, 64)
        _arm(revoker, SRAM_BASE, SRAM_BASE + 0x100)
        revoker.run_to_completion(detailed=True)
        for offset in range(0, 0x100, 8):
            assert not bus.read_capability(SRAM_BASE + offset).tag

    def test_two_words_in_flight(self, bus, rmap, roots, revoker):
        """The engine is pipelined two deep (section 3.3.3)."""
        _arm(revoker, SRAM_BASE, SRAM_BASE + 0x40)
        revoker.step()
        revoker.step()
        assert len(revoker._pipeline) == 2


class TestStoreRace:
    def test_store_to_in_flight_word_forces_reload(self, bus, rmap, roots, revoker):
        """The paper's race: revoker holds word at A in flight, the

        application overwrites A, the revoker must reload rather than
        write back its stale (possibly invalidated) copy."""
        stale = heap_cap(roots)
        fresh = heap_cap(roots, 0x200)  # NOT freed
        target = SRAM_BASE + 0x20
        bus.write_capability(target, stale)
        rmap.paint(HEAP_BASE, 64)

        _arm(revoker, target, target + 0x10)
        revoker.step()  # load word at `target` into the pipeline
        assert revoker._pipeline[0].address == target
        # Main pipeline stores a *live* capability over it mid-flight.
        bus.write_capability(target, fresh)
        revoker.run_to_completion(detailed=True)
        # Without the snoop the revoker would have cleared the tag of
        # the freshly stored (live) capability.
        survivor = bus.read_capability(target)
        assert survivor.tag
        assert survivor.base == fresh.base
        assert revoker.stats.reloads >= 1

    def test_unrelated_store_does_not_reload(self, bus, rmap, roots, revoker):
        _arm(revoker, SRAM_BASE, SRAM_BASE + 0x40)
        revoker.step()
        bus.write_word(SRAM_BASE + 0x800, 5, 4)
        assert revoker.stats.reloads == 0

    def test_snoop_inactive_when_idle(self, bus, rmap, revoker):
        bus.write_word(SRAM_BASE, 1, 4)
        assert revoker.stats.reloads == 0


class TestCostModel:
    def test_wall_cycles_scale_with_region(self, bus, rmap, core, revoker):
        _arm(revoker, SRAM_BASE, SRAM_BASE + 0x1000)
        small = revoker.run_to_completion()
        _arm(revoker, SRAM_BASE, SRAM_BASE + 0x2000)
        large = revoker.run_to_completion()
        assert large == pytest.approx(2 * small, rel=0.1)
