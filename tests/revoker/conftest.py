"""Shared machinery for revoker tests."""

import pytest

from repro.capability import Permission as P, make_roots
from repro.memory import RevocationMap, SystemBus, TaggedMemory
from repro.pipeline import CoreKind, make_core_model

SRAM_BASE = 0x2000_0000
SRAM_SIZE = 0x1_0000
HEAP_BASE = 0x2000_8000
HEAP_SIZE = 0x8000


@pytest.fixture
def bus():
    bus = SystemBus()
    bus.attach_sram(TaggedMemory(SRAM_BASE, SRAM_SIZE))
    return bus


@pytest.fixture
def rmap():
    return RevocationMap(HEAP_BASE, HEAP_SIZE)


@pytest.fixture
def roots():
    return make_roots()


@pytest.fixture
def core():
    return make_core_model(CoreKind.IBEX, load_filter_enabled=True)


def heap_cap(roots, offset=0, size=64):
    return roots.memory.set_address(HEAP_BASE + offset).set_bounds(size)
