"""Tests for the revocation epoch protocol (sections 3.3.2, 5.1)."""

import pytest

from repro.revoker.epoch import EpochCounter, fully_swept


class TestCounter:
    def test_two_increments_per_sweep(self):
        epoch = EpochCounter()
        assert epoch.value == 0
        epoch.begin_sweep()
        assert epoch.value == 1 and epoch.sweep_in_progress
        epoch.end_sweep()
        assert epoch.value == 2 and not epoch.sweep_in_progress

    def test_double_begin_rejected(self):
        epoch = EpochCounter()
        epoch.begin_sweep()
        with pytest.raises(RuntimeError):
            epoch.begin_sweep()

    def test_end_without_begin_rejected(self):
        with pytest.raises(RuntimeError):
            EpochCounter().end_sweep()


class TestFullySwept:
    def test_freed_while_quiescent_needs_one_sweep(self):
        """Opened at an even epoch: the next complete sweep suffices."""
        assert not fully_swept(0, 0)
        assert not fully_swept(0, 1)  # sweep started, not done
        assert fully_swept(0, 2)  # one complete sweep after the free

    def test_freed_mid_sweep_needs_the_next_sweep(self):
        """Opened at an odd epoch (sweep in progress): that sweep may

        already have passed the granules, so only the *next* complete
        sweep counts — the paper's age-3 rule."""
        assert not fully_swept(1, 2)  # the in-progress sweep finished
        assert not fully_swept(1, 3)  # next sweep started
        assert fully_swept(1, 4)  # and completed

    def test_age_three_always_sufficient(self):
        """The paper's conservative statement holds for either parity."""
        for open_epoch in range(10):
            assert fully_swept(open_epoch, open_epoch + 3)
