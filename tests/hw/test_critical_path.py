"""Tests for the f_max claim: the CHERIoT additions stay off the

critical path (all variants at the baseline 330 MHz)."""

import pytest

from repro.hw.area_power import FMAX_MHZ
from repro.hw.critical_path import format_timing, timing_reports


class TestCriticalPath:
    def test_every_variant_meets_baseline_fmax(self):
        """The paper: "All Ibex configurations had a f_max of 330 MHz"."""
        for report in timing_reports():
            assert report.meets_baseline_fmax, report
            assert report.fmax_mhz >= FMAX_MHZ - 1

    def test_critical_path_is_always_a_baseline_path(self):
        baseline_blocks = {"fetch-align", "decode", "alu-bypass",
                           "lsu-align", "writeback-mux"}
        for report in timing_reports():
            assert report.critical_block in baseline_blocks

    def test_load_filter_off_the_critical_path(self):
        """Section 3.3.2: "finding the base would not be on the

        critical path"."""
        filter_variant = {r.variant: r for r in timing_reports()}["+ load filter"]
        assert "load-filter" not in filter_variant.critical_block

    def test_five_variants_in_table_order(self):
        names = [r.variant for r in timing_reports()]
        assert names == [
            "RV32E", "RV32E + PMP16", "RV32E + capabilities",
            "+ load filter", "+ background revoker",
        ]

    def test_render(self):
        text = format_timing()
        assert "330 MHz" in text
        assert "alu-bypass" in text
