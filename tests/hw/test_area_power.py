"""Tests for the Table 2 structural area/power model."""

import pytest

from repro.hw.area_power import (
    BASELINE_GATES,
    BASELINE_POWER_MW,
    area_power_table,
    format_table2,
    ibex_variants,
    rv32e,
    rv32e_capabilities,
    rv32e_pmp16,
    with_background_revoker,
    with_load_filter,
)

#: Table 2 of the paper.
PAPER = {
    "RV32E": (26988, 1.437),
    "RV32E + PMP16": (55905, 2.16),
    "RV32E + capabilities": (58110, 2.58),
    "+ load filter": (58431, 2.58),
    "+ background revoker": (61422, 2.73),
}


class TestGateCounts:
    def test_baseline_calibrated_exactly(self):
        assert rv32e().gates == BASELINE_GATES == PAPER["RV32E"][0]

    @pytest.mark.parametrize("name,expected", [(k, v[0]) for k, v in PAPER.items()])
    def test_every_row_matches_paper(self, name, expected):
        variant = {v.name: v for v in ibex_variants()}[name]
        assert variant.gates == expected

    def test_ratios(self):
        """PMP 2.07x, caps 2.15x, +filter 2.17x, +revoker 2.28x."""
        base = rv32e().gates
        assert rv32e_pmp16().gates / base == pytest.approx(2.07, abs=0.01)
        assert rv32e_capabilities().gates / base == pytest.approx(2.15, abs=0.01)
        assert with_load_filter().gates / base == pytest.approx(2.17, abs=0.01)
        assert with_background_revoker().gates / base == pytest.approx(2.28, abs=0.01)

    def test_load_filter_tiny_over_capabilities(self):
        """+4.5% gate overhead relative to PMP; vs caps it is ~321 GE."""
        delta = with_load_filter().gates - rv32e_capabilities().gates
        assert 0 < delta < 1000

    def test_revoker_under_ten_percent_over_pmp(self):
        """Adding filter + revoker stays <10% above the PMP baseline."""
        overhead = with_background_revoker().gates / rv32e_pmp16().gates
        assert overhead < 1.10


class TestPower:
    def test_baseline_power_calibrated(self):
        assert rv32e().power_mw == pytest.approx(BASELINE_POWER_MW)

    @pytest.mark.parametrize("name,expected", [(k, v[1]) for k, v in PAPER.items()])
    def test_rows_close_to_paper(self, name, expected):
        variant = {v.name: v for v in ibex_variants()}[name]
        assert variant.power_mw == pytest.approx(expected, rel=0.03)

    def test_cheriot_and_pmp_same_ballpark(self):
        """The paper's conclusion: similar power, CHERIoT a bit higher."""
        pmp = rv32e_pmp16().power_mw
        cheriot = with_background_revoker().power_mw
        assert pmp < cheriot < 1.5 * pmp


class TestTableRendering:
    def test_rows_in_paper_order(self):
        rows = area_power_table()
        assert [r.name for r in rows] == list(PAPER)

    def test_format_contains_all_rows(self):
        text = format_table2()
        for name in PAPER:
            assert name in text

    def test_block_budgets_sum(self):
        for variant in ibex_variants():
            assert variant.gates == sum(b.gates for b in variant.blocks)
