"""The net benchmark tool and its regression gate."""

import importlib.util
import json
import os
import sys

import pytest

REPO = os.path.dirname(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
)

#: Tiny sweep so the module stays fast (the full sweep is CI's job).
SMALL_CONNS = (2, 4)
SMALL_ROUNDS = {2: 2, 4: 2}


def _load(name):
    spec = importlib.util.spec_from_file_location(
        name, os.path.join(REPO, "tools", f"{name}.py")
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def net_bench():
    return _load("net_bench")


@pytest.fixture(scope="module")
def check_net(net_bench):
    return _load("check_net_regression")


@pytest.fixture(scope="module")
def small_doc(net_bench):
    return net_bench.build_document(
        conns=SMALL_CONNS, rounds=SMALL_ROUNDS, jobs=1
    )


class TestNetBench:
    def test_sweep_covers_both_modes(self, small_doc):
        keys = [
            (p["mode"], p["connections"]) for p in small_doc["sweep"]
        ]
        assert keys == [
            ("copy", 2), ("zerocopy", 2), ("copy", 4), ("zerocopy", 4)
        ]

    def test_serial_and_parallel_bytes_identical(self, net_bench, small_doc):
        parallel = net_bench.build_document(
            conns=SMALL_CONNS, rounds=SMALL_ROUNDS, jobs=2
        )
        assert net_bench.render_document(
            parallel
        ) == net_bench.render_document(small_doc)

    def test_rendered_form_is_canonical(self, net_bench, small_doc):
        rendered = net_bench.render_document(small_doc)
        assert rendered.endswith("\n")
        assert json.dumps(
            json.loads(rendered), indent=2, sort_keys=True
        ) + "\n" == rendered

    def test_comparison_rows_carry_ratios(self, small_doc):
        for row in small_doc["comparison"]:
            assert row["stack_cycles_ratio"] > 1.0
            assert row["allocs_per_packet_copy"] > (
                row["allocs_per_packet_zerocopy"]
            )

    def test_cli_writes_file(self, net_bench, tmp_path):
        out = tmp_path / "net.json"
        rc = net_bench.main(
            ["--conns", "2,4", "--rounds", "2", "-o", str(out)]
        )
        assert rc == 0
        assert json.loads(out.read_text())["version"] == (
            net_bench.NET_BENCH_VERSION
        )


class TestCommittedBaseline:
    def test_committed_baseline_meets_the_claim(self, check_net):
        with open(os.path.join(REPO, "BENCH_net.json")) as fh:
            baseline = json.load(fh)
        assert check_net.check_ratios(baseline) == []

    def test_committed_sweep_reaches_scale(self):
        with open(os.path.join(REPO, "BENCH_net.json")) as fh:
            baseline = json.load(fh)
        assert max(baseline["config"]["connections"]) >= 1024


class TestGate:
    @pytest.fixture()
    def small_baseline(self, net_bench, small_doc, tmp_path):
        path = tmp_path / "BENCH_net.json"
        path.write_text(net_bench.render_document(small_doc))
        return path

    def test_missing_baseline_exits_2(self, check_net, tmp_path):
        rc = check_net.main(
            ["--baseline", str(tmp_path / "absent.json")]
        )
        assert rc == 2

    def test_tampered_counter_detected(
        self, check_net, net_bench, small_doc, tmp_path
    ):
        doc = json.loads(net_bench.render_document(small_doc))
        doc["sweep"][0]["counters"]["packets_delivered"] += 1
        path = tmp_path / "tampered.json"
        path.write_text(net_bench.render_document(doc))
        rc = check_net.main(["--baseline", str(path)])
        assert rc == 1

    def test_ratio_floor_enforced(self, check_net):
        doc = {
            "comparison": [
                {"connections": 2048, "stack_cycles_ratio": 1.4},
            ]
        }
        problems = check_net.check_ratios(doc)
        assert len(problems) == 1
        assert "1.4" in problems[0]

    def test_no_at_scale_point_is_a_problem(self, check_net):
        doc = {"comparison": [{"connections": 64, "stack_cycles_ratio": 9.0}]}
        assert check_net.check_ratios(doc)
