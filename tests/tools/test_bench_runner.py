"""The parallel benchmark runner's reproducibility contract.

``tools/run_benchmarks.py`` fans benchmark modules out to worker
subprocesses; the merged ``bench_output_tables.txt`` must be
byte-identical whether one worker ran or many — sorted module order,
private per-worker table files, no timestamps, no wall-clock-dependent
interleaving.  Uses the two fastest deterministic modules so the test
stays cheap; the full-suite equivalence was verified the same way when
the committed tables file was generated.
"""

import os
import subprocess
import sys

ROOT = os.path.dirname(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
)
RUNNER = os.path.join(ROOT, "tools", "run_benchmarks.py")
MODULES = "bench_encoding_precision,bench_table2_area_power"


def _run(jobs, output):
    proc = subprocess.run(
        [
            sys.executable,
            RUNNER,
            "--jobs",
            str(jobs),
            "--modules",
            MODULES,
            "-o",
            output,
        ],
        cwd=ROOT,
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    with open(output, "rb") as fh:
        return fh.read()


def test_parallel_output_byte_identical_to_serial(tmp_path):
    serial = _run(1, str(tmp_path / "serial.txt"))
    parallel = _run(2, str(tmp_path / "parallel.txt"))
    assert parallel == serial
    # The tables actually made it into the file (not a trivially-empty
    # equality) and the header is the deterministic one.
    assert serial.startswith(b"Section-7 reproduced tables")
    assert serial.count(b"=" * 72) >= 4


def test_unknown_module_rejected(tmp_path):
    proc = subprocess.run(
        [
            sys.executable,
            RUNNER,
            "--modules",
            "bench_does_not_exist",
            "-o",
            str(tmp_path / "out.txt"),
        ],
        cwd=ROOT,
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 2
    assert "no such benchmark module" in proc.stderr
