"""The audit artifact: deterministic, parallel-safe, gate-enforcing."""

import importlib.util
import json
import os
import sys

import pytest

REPO = os.path.dirname(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
)


@pytest.fixture(scope="module")
def capaudit():
    spec = importlib.util.spec_from_file_location(
        "capaudit", os.path.join(REPO, "tools", "capaudit.py")
    )
    module = importlib.util.module_from_spec(spec)
    # Register before exec so multiprocessing can pickle the module's
    # worker function by qualified name.
    sys.modules["capaudit"] = module
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def doc(capaudit):
    return capaudit.build_audit(os.path.join(REPO, "AUDIT_policy.json"))


def test_audit_document_shape(doc):
    assert set(doc) == {"version", "images", "linkage", "policy", "crosscheck"}
    assert set(doc["images"]) == {"baremetal", "coremark", "regwalk", "switcher"}


def test_audit_is_deterministic(capaudit, doc):
    again = capaudit.build_audit(os.path.join(REPO, "AUDIT_policy.json"))
    assert capaudit.render(doc) == capaudit.render(again)


def test_parallel_jobs_produce_identical_bytes(capaudit, doc):
    parallel = capaudit.build_audit(
        os.path.join(REPO, "AUDIT_policy.json"), jobs=3
    )
    assert capaudit.render(doc) == capaudit.render(parallel)


def test_committed_baseline_matches_a_fresh_run(capaudit, doc):
    baseline_path = os.path.join(REPO, "AUDIT_baseline.json")
    with open(baseline_path) as fh:
        committed = fh.read()
    assert committed == capaudit.render(doc), (
        "AUDIT_baseline.json is stale — refresh with: make audit-refresh"
    )


def test_gates_pass_on_the_stock_audit(capaudit, doc):
    assert capaudit._enforce_gates(doc) == []


def test_gates_catch_injected_violations(capaudit, doc):
    bad = json.loads(capaudit.render(doc))
    bad["images"]["baremetal"]["violations"].append(
        {
            "category": "bounds",
            "index": 0,
            "mnemonic": "sw",
            "message": "synthetic",
        }
    )
    bad["policy"]["violations"].append(
        {"rule": "mmio-allowlist", "subject": "x", "message": "synthetic"}
    )
    bad["crosscheck"]["consistent"] = False
    problems = capaudit._enforce_gates(bad)
    assert len(problems) == 3
