"""The SLO gate tool: regenerate, byte-compare, fail closed."""

import importlib.util
import json
import os
import sys

import pytest

REPO = os.path.dirname(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
)

#: Small plan so the module stays fast (the stock plan is CI's job).
SMALL = ["--devices", "4", "--shard-size", "2",
         "--injections", "1", "--alloc-ops", "4"]


@pytest.fixture(scope="module")
def check_slo():
    spec = importlib.util.spec_from_file_location(
        "check_slo", os.path.join(REPO, "tools", "check_slo.py")
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules["check_slo"] = module
    spec.loader.exec_module(module)
    return module


@pytest.fixture()
def small_baseline(check_slo, tmp_path):
    """A freshly generated small-plan baseline + its policy."""
    policy = tmp_path / "policy.json"
    policy.write_text(json.dumps({
        "version": 1,
        "rules": [
            {"rule": "fault-escapes", "max": 0},
            {"rule": "degraded-ceiling", "max_fraction": 0.0},
        ],
    }))
    baseline = tmp_path / "OBS_slo.json"
    rc = check_slo.main(
        SMALL + ["--policy", str(policy), "--baseline", str(baseline)]
    )
    assert rc == 0
    return policy, baseline


class TestGate:
    def test_regenerated_baseline_passes_the_check(
        self, check_slo, small_baseline
    ):
        policy, baseline = small_baseline
        assert check_slo.main(
            SMALL + ["--policy", str(policy), "--baseline", str(baseline),
                     "--check"]
        ) == 0

    def test_tampered_baseline_is_drift(self, check_slo, small_baseline):
        policy, baseline = small_baseline
        doc = json.loads(baseline.read_text())
        doc["aggregate"]["counters"]["calls"] += 1
        baseline.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
        assert check_slo.main(
            SMALL + ["--policy", str(policy), "--baseline", str(baseline),
                     "--check"]
        ) == 1

    def test_violated_objective_fails_even_when_bytes_match(
        self, check_slo, tmp_path
    ):
        """A policy that cannot hold produces a failing report; --check
        must flag it even if the committed baseline records the same
        failure (a red baseline is not a green gate)."""
        policy = tmp_path / "policy.json"
        policy.write_text(json.dumps({
            "version": 1,
            "rules": [{"rule": "throughput-floor",
                       "min_calls_per_kcycle": 10**6}],
        }))
        baseline = tmp_path / "OBS_slo.json"
        assert check_slo.main(
            SMALL + ["--policy", str(policy), "--baseline", str(baseline)]
        ) == 1
        assert check_slo.main(
            SMALL + ["--policy", str(policy), "--baseline", str(baseline),
                     "--check"]
        ) == 1

    def test_unknown_rule_fails_closed_through_the_tool(
        self, check_slo, tmp_path
    ):
        policy = tmp_path / "policy.json"
        policy.write_text(json.dumps({
            "version": 1, "rules": [{"rule": "made-up-objective"}],
        }))
        baseline = tmp_path / "OBS_slo.json"
        assert check_slo.main(
            SMALL + ["--policy", str(policy), "--baseline", str(baseline)]
        ) == 1

    def test_missing_baseline_is_usage_error(self, check_slo, tmp_path):
        policy = tmp_path / "policy.json"
        policy.write_text(json.dumps({
            "version": 1, "rules": [{"rule": "fault-escapes", "max": 0}],
        }))
        assert check_slo.main(
            SMALL + ["--policy", str(policy),
                     "--baseline", str(tmp_path / "nope.json"), "--check"]
        ) == 2

    def test_results_from_checkpoints(self, check_slo, small_baseline, tmp_path):
        """Shard results harvested from a checkpoint dir gate
        identically to a fresh serial rebuild."""
        from repro.fleet import CheckpointStore, FleetPlan, run_shard

        policy, baseline = small_baseline
        plan = FleetPlan(devices=4, shard_size=2,
                         injections_per_device=1, alloc_ops=4)
        store = CheckpointStore(str(tmp_path / "ckpt"))
        store.bind(plan, resume=False)
        for spec in plan.shards():
            store.commit(spec.shard_id, run_shard(spec))
        assert check_slo.main(
            SMALL + ["--policy", str(policy), "--baseline", str(baseline),
                     "--check", "--results-from", str(tmp_path / "ckpt")]
        ) == 0

    def test_incomplete_checkpoints_are_refused(
        self, check_slo, small_baseline, tmp_path
    ):
        from repro.fleet import CheckpointStore, FleetPlan, run_shard

        policy, baseline = small_baseline
        plan = FleetPlan(devices=4, shard_size=2,
                         injections_per_device=1, alloc_ops=4)
        store = CheckpointStore(str(tmp_path / "ckpt"))
        store.bind(plan, resume=False)
        store.commit(0, run_shard(plan.shards()[0]))  # shard 1 missing
        with pytest.raises(SystemExit):
            check_slo.main(
                SMALL + ["--policy", str(policy), "--baseline", str(baseline),
                         "--check", "--results-from", str(tmp_path / "ckpt")]
            )


class TestCommittedArtifacts:
    def test_committed_slo_baseline_is_fresh_and_green(self, check_slo):
        """The repo's own OBS_slo.json must reproduce and pass."""
        cwd = os.getcwd()
        os.chdir(REPO)
        try:
            assert check_slo.main(["--check"]) == 0
        finally:
            os.chdir(cwd)
