"""The determinism lint: every rule fires, every exemption holds."""

import importlib.util
import os
import sys

import pytest

_TOOLS = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__)))),
    "tools",
)


@pytest.fixture(scope="module")
def lint():
    spec = importlib.util.spec_from_file_location(
        "lint_determinism", os.path.join(_TOOLS, "lint_determinism.py")
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _findings(lint, tmp_path, source):
    path = tmp_path / "case.py"
    path.write_text(source)
    return lint.lint_file(str(path))


def _rules(findings):
    return [f.rule for f in findings]


def test_wall_clock_calls_are_flagged(lint, tmp_path):
    found = _findings(
        lint,
        tmp_path,
        "import time\n"
        "from time import perf_counter\n"
        "a = time.time()\n"
        "b = time.monotonic()\n"
        "c = perf_counter()\n",
    )
    assert _rules(found) == ["wall-clock"] * 3


def test_datetime_now_is_flagged(lint, tmp_path):
    found = _findings(
        lint,
        tmp_path,
        "import datetime\n"
        "a = datetime.datetime.now()\n"
        "b = datetime.date.today()\n",
    )
    assert _rules(found) == ["wall-clock"] * 2


def test_global_rng_is_flagged_but_seeded_instances_pass(lint, tmp_path):
    found = _findings(
        lint,
        tmp_path,
        "import random\n"
        "from random import choice\n"
        "a = random.randint(0, 9)\n"
        "b = choice([1])\n"
        "rng = random.Random(42)\n"
        "c = rng.randint(0, 9)\n",
    )
    assert _rules(found) == ["global-rng"] * 2


def test_entropy_sources_are_flagged(lint, tmp_path):
    found = _findings(
        lint, tmp_path, "import os, uuid\na = os.urandom(8)\nb = uuid.uuid4()\n"
    )
    assert _rules(found) == ["global-rng"] * 2


def test_set_iteration_is_flagged(lint, tmp_path):
    found = _findings(
        lint,
        tmp_path,
        "for x in {1, 2}:\n    pass\n"
        "ys = [y for y in set([1, 2])]\n"
        "zs = [z for z in sorted({1, 2})]\n",
    )
    assert _rules(found) == ["set-iteration"] * 2


def test_directory_listing_requires_sorted(lint, tmp_path):
    found = _findings(
        lint,
        tmp_path,
        "import os, glob\n"
        "bad = os.listdir('.')\n"
        "also = glob.glob('*.py')\n"
        "good = sorted(os.listdir('.'))\n",
    )
    assert _rules(found) == ["dir-order"] * 2


def test_suppression_comment_is_honoured(lint, tmp_path):
    found = _findings(
        lint,
        tmp_path,
        "import time\n"
        "a = time.time()  # det: allow — measured, not reported\n",
    )
    assert found == []


def test_syntax_errors_surface_as_findings(lint, tmp_path):
    found = _findings(lint, tmp_path, "def broken(:\n")
    assert _rules(found) == ["parse"]


def test_declared_paths_all_resolve(lint):
    files = lint.declared_files()
    assert files
    assert all(os.path.exists(f) for f in files)


def test_the_declared_deterministic_paths_are_clean(lint):
    findings = []
    for path in lint.declared_files():
        findings.extend(lint.lint_file(path))
    assert findings == [], [str(f) for f in findings]
