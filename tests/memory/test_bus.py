"""Tests for the system bus: routing, stats and the store snoop."""

import pytest

from repro.capability import Capability, Permission as P
from repro.memory.bus import SystemBus
from repro.memory.revocation_map import RevocationMap
from repro.memory.tagged_memory import MemoryError_, TaggedMemory

RW = {P.GL, P.LD, P.SD, P.MC, P.SL, P.LM, P.LG}
SRAM_BASE = 0x2000_0000


@pytest.fixture
def bus():
    bus = SystemBus()
    bus.attach_sram(TaggedMemory(SRAM_BASE, 4096))
    return bus


class _Device:
    def __init__(self):
        self.regs = {}

    def mmio_read(self, offset):
        return self.regs.get(offset, 0)

    def mmio_write(self, offset, value):
        self.regs[offset] = value


class TestRouting:
    def test_sram_roundtrip(self, bus):
        bus.write_word(SRAM_BASE + 8, 0x1234, 4)
        assert bus.read_word(SRAM_BASE + 8, 4) == 0x1234

    def test_device_dispatch(self, bus):
        device = _Device()
        bus.attach_device(0x8000_0000, 0x100, device)
        bus.write_word(0x8000_0010, 99, 4)
        assert device.regs[0x10] == 99
        assert bus.read_word(0x8000_0010, 4) == 99

    def test_unmapped_address_faults(self, bus):
        with pytest.raises(MemoryError_):
            bus.read_word(0x9000_0000, 4)

    def test_overlap_rejected(self, bus):
        with pytest.raises(ValueError):
            bus.attach_sram(TaggedMemory(SRAM_BASE + 8, 4096))
        device = _Device()
        bus.attach_device(0x8000_0000, 0x100, device)
        with pytest.raises(ValueError):
            bus.attach_device(0x8000_0080, 0x100, _Device())

    def test_revocation_map_as_device(self, bus):
        rmap = RevocationMap(SRAM_BASE, 4096)
        bus.attach_device(0x8000_0000, 0x100, rmap)
        bus.write_word(0x8000_0000, 1, 4)
        assert rmap.is_revoked(SRAM_BASE)


class TestStats:
    def test_counters(self, bus):
        cap = Capability.from_bounds(SRAM_BASE, 16, RW)
        bus.write_word(SRAM_BASE, 1, 4)
        bus.read_word(SRAM_BASE, 4)
        bus.write_capability(SRAM_BASE + 8, cap)
        bus.read_capability(SRAM_BASE + 8)
        stats = bus.stats
        assert stats.data_writes == 1 and stats.data_reads == 1
        assert stats.cap_writes == 1 and stats.cap_reads == 1
        stats.reset()
        assert stats.data_writes == 0


class TestStoreSnoop:
    def test_snoop_sees_all_store_kinds(self, bus):
        seen = []
        bus.add_store_snooper(lambda addr, size: seen.append((addr, size)))
        cap = Capability.from_bounds(SRAM_BASE, 16, RW)
        bus.write_word(SRAM_BASE, 1, 4)
        bus.write_capability(SRAM_BASE + 8, cap)
        bus.write_bytes(SRAM_BASE + 16, b"ab")
        bus.fill(SRAM_BASE + 32, 8)
        bus.clear_tag(SRAM_BASE + 8)
        assert (SRAM_BASE, 4) in seen
        assert (SRAM_BASE + 8, 8) in seen
        assert (SRAM_BASE + 16, 2) in seen
        assert (SRAM_BASE + 32, 8) in seen
        assert len(seen) == 5

    def test_loads_not_snooped(self, bus):
        seen = []
        bus.add_store_snooper(lambda addr, size: seen.append(addr))
        bus.read_word(SRAM_BASE, 4)
        assert seen == []
