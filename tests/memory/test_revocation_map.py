"""Tests for the revocation bitmap (paper section 3.3.1)."""

import pytest

from repro.memory.revocation_map import GRANULE_BYTES, SRAM_OVERHEAD, RevocationMap

HEAP_BASE = 0x2006_0000
HEAP_SIZE = 0x1_0000


@pytest.fixture
def rmap():
    return RevocationMap(HEAP_BASE, HEAP_SIZE)


class TestGeometry:
    def test_granule_is_capability_sized(self):
        assert GRANULE_BYTES == 8

    def test_sram_overhead_is_paper_figure(self):
        """1/(8*8) = 1.56% of the revocable heap (section 3.3.1)."""
        assert SRAM_OVERHEAD == pytest.approx(0.015625)

    def test_bitmap_bytes(self, rmap):
        assert rmap.granule_count == HEAP_SIZE // 8
        assert rmap.bitmap_bytes == HEAP_SIZE // 64
        assert rmap.bitmap_bytes / HEAP_SIZE == pytest.approx(SRAM_OVERHEAD)

    def test_alignment_required(self):
        with pytest.raises(ValueError):
            RevocationMap(HEAP_BASE + 1, HEAP_SIZE)


class TestPaintClear:
    def test_paint_marks_whole_chunk(self, rmap):
        rmap.paint(HEAP_BASE + 64, 48)
        for offset in range(64, 112, 8):
            assert rmap.is_revoked(HEAP_BASE + offset)
        assert not rmap.is_revoked(HEAP_BASE + 56)
        assert not rmap.is_revoked(HEAP_BASE + 112)

    def test_paint_partial_granule_rounds_to_granule(self, rmap):
        rmap.paint(HEAP_BASE + 64, 4)
        assert rmap.is_revoked(HEAP_BASE + 64)
        assert rmap.is_revoked(HEAP_BASE + 67)

    def test_clear(self, rmap):
        rmap.paint(HEAP_BASE, 128)
        rmap.clear(HEAP_BASE, 128)
        assert not rmap.any_revoked()

    def test_zero_size_noop(self, rmap):
        rmap.paint(HEAP_BASE, 0)
        assert not rmap.any_revoked()

    def test_outside_region_rejected(self, rmap):
        with pytest.raises(ValueError):
            rmap.paint(HEAP_BASE - 8, 8)
        with pytest.raises(ValueError):
            rmap.paint(HEAP_BASE + HEAP_SIZE - 8, 16)


class TestLookup:
    def test_irrevocable_addresses_never_revoked(self, rmap):
        """Code/globals/stack addresses are outside the revocable

        region: the load filter must treat them as never-freed."""
        assert not rmap.is_revoked(0x1000)
        assert not rmap.is_revoked(HEAP_BASE - 1)
        assert not rmap.is_revoked(HEAP_BASE + HEAP_SIZE)


class TestMMIOView:
    def test_bits_visible_through_mmio(self, rmap):
        rmap.paint(HEAP_BASE, 8)  # granule 0 -> bit 0 of word 0
        rmap.paint(HEAP_BASE + 33 * 8, 8)  # granule 33 -> bit 1 of word 4
        assert rmap.mmio_read_word(0) & 1 == 1
        assert rmap.mmio_read_word(4) & 0b10 == 0b10

    def test_mmio_write_sets_and_clears(self, rmap):
        rmap.mmio_write_word(0, 0xFFFF_FFFF)
        assert rmap.is_revoked(HEAP_BASE)
        assert rmap.is_revoked(HEAP_BASE + 31 * 8)
        assert not rmap.is_revoked(HEAP_BASE + 32 * 8)
        rmap.mmio_write_word(0, 0)
        assert not rmap.any_revoked()

    def test_mmio_roundtrip(self, rmap):
        rmap.mmio_write_word(8, 0xA5A5_5A5A)
        assert rmap.mmio_read_word(8) == 0xA5A5_5A5A
