"""Tests for the UART console device."""

from repro.memory.uart import REG_RXDATA, REG_STATUS, REG_TXDATA, RX_EMPTY, UART


class TestUART:
    def test_tx_capture(self):
        uart = UART()
        for byte in b"hello\nworld\n":
            uart.mmio_write(REG_TXDATA, byte)
        assert uart.text == "hello\nworld\n"
        assert uart.lines == ["hello", "world"]

    def test_rx_queue(self):
        uart = UART()
        assert uart.mmio_read(REG_RXDATA) == RX_EMPTY
        assert uart.mmio_read(REG_STATUS) & 0b10 == 0
        uart.feed(b"ab")
        assert uart.mmio_read(REG_STATUS) & 0b10
        assert uart.mmio_read(REG_RXDATA) == ord("a")
        assert uart.mmio_read(REG_RXDATA) == ord("b")
        assert uart.mmio_read(REG_RXDATA) == RX_EMPTY

    def test_from_simulated_program(self, ):
        """An ISA program prints through the bus-mapped UART."""
        from repro.capability import make_roots
        from repro.isa import CPU, ExecutionMode, assemble
        from repro.memory import SystemBus, TaggedMemory, default_memory_map

        mm = default_memory_map()
        bus = SystemBus()
        bus.attach_sram(TaggedMemory(mm.code.base, mm.sram_bytes))
        uart = UART()
        bus.attach_device(mm.uart_mmio.base, mm.uart_mmio.size, uart)
        roots = make_roots()
        source = "\n".join(
            f"li t1, {byte}\nsw t1, 0(t0)" for byte in b"OK\n"
        )
        cpu = CPU(bus, ExecutionMode.CHERIOT)
        cpu.load_program(
            assemble(f"li zero, 0\n{source}\nhalt"), mm.code.base,
            pcc=make_roots().executable,
        )
        cpu.regs.write(
            5, roots.memory.set_address(mm.uart_mmio.base).set_bounds(16)
        )
        cpu.run()
        assert uart.text == "OK\n"
