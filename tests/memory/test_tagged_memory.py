"""Tests for tagged SRAM: tags live out of band and die on data writes."""

import pytest

from repro.capability import CAP_SIZE_BYTES, Capability, Permission as P
from repro.memory.tagged_memory import MemoryError_, TaggedMemory

RW = {P.GL, P.LD, P.SD, P.MC, P.SL, P.LM, P.LG}
BASE = 0x2000_0000


@pytest.fixture
def mem():
    return TaggedMemory(BASE, 4096)


@pytest.fixture
def cap():
    return Capability.from_bounds(BASE, 64, RW)


class TestConstruction:
    def test_alignment_required(self):
        with pytest.raises(ValueError):
            TaggedMemory(BASE + 4, 4096)
        with pytest.raises(ValueError):
            TaggedMemory(BASE, 4097)


class TestDataAccess:
    def test_bytes_roundtrip(self, mem):
        mem.write_bytes(BASE + 10, b"hello")
        assert mem.read_bytes(BASE + 10, 5) == b"hello"

    def test_word_endianness(self, mem):
        mem.write_word(BASE, 0x0102_0304, 4)
        assert mem.read_bytes(BASE, 4) == bytes([0x04, 0x03, 0x02, 0x01])

    def test_word_alignment(self, mem):
        with pytest.raises(MemoryError_):
            mem.read_word(BASE + 2, 4)
        with pytest.raises(MemoryError_):
            mem.write_word(BASE + 1, 0, 2)

    def test_out_of_range(self, mem):
        with pytest.raises(MemoryError_):
            mem.read_bytes(BASE + 4096, 1)
        with pytest.raises(MemoryError_):
            mem.read_bytes(BASE - 1, 1)

    def test_fill(self, mem):
        mem.write_bytes(BASE, b"\xff" * 64)
        mem.fill(BASE + 8, 16)
        assert mem.read_bytes(BASE + 8, 16) == b"\x00" * 16
        assert mem.read_bytes(BASE, 8) == b"\xff" * 8


class TestCapabilityStorage:
    def test_roundtrip(self, mem, cap):
        mem.write_capability(BASE + 8, cap)
        assert mem.read_capability(BASE + 8) == cap

    def test_untagged_read_of_plain_data(self, mem):
        mem.write_word(BASE, 0xDEAD_BEEF, 4)
        loaded = mem.read_capability(BASE)
        assert not loaded.tag

    def test_misaligned_capability_access(self, mem, cap):
        with pytest.raises(MemoryError_):
            mem.write_capability(BASE + 4, cap)
        with pytest.raises(MemoryError_):
            mem.read_capability(BASE + 4)

    def test_untagged_store_clears_tag(self, mem, cap):
        mem.write_capability(BASE, cap)
        mem.write_capability(BASE, cap.untagged())
        assert not mem.read_capability(BASE).tag

    @pytest.mark.parametrize("offset", range(0, CAP_SIZE_BYTES))
    def test_any_overlapping_data_write_clears_tag(self, mem, cap, offset):
        """No partial overwrite can leave a forgeable half-capability."""
        mem.write_capability(BASE, cap)
        mem.write_bytes(BASE + offset, b"\x00")
        assert not mem.read_capability(BASE).tag

    def test_data_write_straddling_two_granules(self, mem, cap):
        mem.write_capability(BASE, cap)
        second = cap.inc_address(8)
        mem.write_capability(BASE + 8, cap)
        mem.write_bytes(BASE + 6, b"\xaa\xbb\xcc\xdd")
        assert not mem.read_capability(BASE).tag
        assert not mem.read_capability(BASE + 8).tag

    def test_adjacent_tag_untouched(self, mem, cap):
        mem.write_capability(BASE, cap)
        mem.write_word(BASE + 8, 1, 4)
        assert mem.read_capability(BASE).tag

    def test_clear_tag(self, mem, cap):
        mem.write_capability(BASE + 16, cap)
        mem.clear_tag(BASE + 19)  # any byte in the granule
        assert not mem.read_capability(BASE + 16).tag
        # Data is untouched: only the out-of-band tag died.
        assert mem.read_capability(BASE + 16).address == cap.address


class TestTaggedGranules:
    def test_enumeration(self, mem, cap):
        for offset in (0, 24, 4088):
            mem.write_capability(BASE + offset, cap)
        assert list(mem.tagged_granules()) == [BASE, BASE + 24, BASE + 4088]

    def test_window(self, mem, cap):
        for offset in (0, 24, 4088):
            mem.write_capability(BASE + offset, cap)
        assert list(mem.tagged_granules(BASE + 8, BASE + 4088)) == [BASE + 24]

    def test_empty(self, mem):
        assert list(mem.tagged_granules()) == []
