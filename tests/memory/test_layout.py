"""Tests for the default SoC memory map."""

from repro.memory.layout import Region, default_memory_map


class TestRegion:
    def test_contains(self):
        region = Region("r", 0x100, 0x100)
        assert region.contains(0x100)
        assert region.contains(0x1FF)
        assert region.contains(0x180, 0x80)
        assert not region.contains(0x200)
        assert not region.contains(0x1FF, 2)

    def test_top(self):
        assert Region("r", 0x100, 0x100).top == 0x200


class TestDefaultMap:
    def test_sram_regions_are_contiguous(self):
        mm = default_memory_map()
        regions = mm.sram_regions()
        for left, right in zip(regions, regions[1:]):
            assert left.top == right.base

    def test_heap_is_the_only_revocable_region(self):
        """Code, globals and stacks are irrevocable (section 3.3.1);

        only the heap sits in the region the revocation bitmap covers."""
        mm = default_memory_map()
        assert mm.heap.name == "heap"
        assert not mm.heap.contains(mm.code.base)
        assert not mm.heap.contains(mm.stacks.base)

    def test_mmio_disjoint_from_sram(self):
        mm = default_memory_map()
        for mmio in (mm.revocation_mmio, mm.revoker_mmio, mm.uart_mmio):
            for sram in mm.sram_regions():
                assert mmio.top <= sram.base or sram.top <= mmio.base

    def test_sizes_configurable(self):
        mm = default_memory_map(heap_size=0x8000)
        assert mm.heap.size == 0x8000
        assert mm.sram_bytes == mm.code.size + mm.globals_.size + mm.stacks.size + 0x8000

    def test_default_heap_fits_the_128k_benchmark(self):
        """The allocator benchmark needs one live 128 KiB allocation

        plus its quarantined predecessor ("scanning almost 256 KiB")."""
        mm = default_memory_map()
        assert mm.heap.size >= 2 * (128 * 1024)
