"""Small version compatibility shims shared across the package."""

from __future__ import annotations

import sys

#: Extra keyword arguments for :func:`dataclasses.dataclass` enabling
#: ``__slots__`` generation where the runtime supports it (3.10+).  On
#: older interpreters the classes simply keep their ``__dict__``; all
#: call sites must therefore avoid relying on slots for correctness.
DATACLASS_SLOTS = {"slots": True} if sys.version_info >= (3, 10) else {}
