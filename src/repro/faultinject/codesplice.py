"""Code-splice mutation: adversarial edits to guest *code*.

The other fault classes corrupt state (tags, metadata, registers); a
code splice corrupts the *program* — the attacker (or a wild write that
survived into the image) replaced an instruction.  Because the guest
ISA is structural assembly, a splice is a textual line substitution
followed by re-assembly: labels re-resolve, so a splice can also insert
or delete instructions without invalidating control flow elsewhere.

This is the mutation primitive the static/dynamic cross-validation
harness (:mod:`repro.verify.crosscheck`) drives: each
:class:`SpliceVariant` names one adversarial edit, and the harness
checks that the static verifier's verdict and the dynamic outcome agree
on every one of them.
"""

from __future__ import annotations

from dataclasses import dataclass


class SpliceError(Exception):
    """The splice target does not occur (or is ambiguous) in the source."""


@dataclass(frozen=True)
class SpliceVariant:
    """One named adversarial code edit."""

    name: str
    description: str
    #: The exact source line (whitespace-stripped) to replace.
    target: str
    #: Replacement text — may be multiple lines, or ``nop`` to delete.
    replacement: str

    def apply(self, source: str) -> str:
        return splice(source, self.target, self.replacement)


def splice(source: str, target: str, replacement: str) -> str:
    """Replace exactly one instruction line of ``source``.

    ``target`` is matched against whitespace-stripped lines (comments
    excluded); the match must be unique — a splice that silently hit
    the wrong site would invalidate the cross-check's attribution.
    """
    lines = source.splitlines()
    matches = [
        i
        for i, line in enumerate(lines)
        if line.split("#", 1)[0].strip() == target
    ]
    if not matches:
        raise SpliceError(f"splice target not found: {target!r}")
    if len(matches) > 1:
        raise SpliceError(
            f"splice target ambiguous ({len(matches)} sites): {target!r}"
        )
    index = matches[0]
    indent = lines[index][: len(lines[index]) - len(lines[index].lstrip())]
    new_lines = [indent + part for part in replacement.splitlines()]
    return "\n".join(lines[:index] + new_lines + lines[index + 1 :]) + "\n"
