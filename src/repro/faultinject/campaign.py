"""Campaign orchestration: many seeded injections, one verdict.

A campaign interleaves the fault classes round-robin so a truncated run
still covers every class, and draws every random choice from one seeded
stream — the same ``(seed, total)`` pair reproduces the same records
bit-for-bit.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from .engine import FaultInjector
from .outcomes import CampaignResult, FaultClass

#: Default seed for committed results — arbitrary but fixed forever.
DEFAULT_SEED = 20260806


def run_campaign(
    total: int,
    seed: int = DEFAULT_SEED,
    classes: Sequence[FaultClass] = tuple(FaultClass),
    progress: Optional[Callable[[int, int], None]] = None,
    registry=None,
) -> CampaignResult:
    """Run ``total`` injections spread round-robin over ``classes``.

    ``progress`` (if given) is called with ``(done, total)`` every 500
    injections — campaign runs are long enough to want a heartbeat.

    ``registry`` (if given) is a
    :class:`~repro.obs.registry.MetricsRegistry`; the campaign counts
    injections by fault class and outcomes by verdict into labelled
    counters, so campaign progress shows up in the same snapshot/diff
    stream as the rest of the system.
    """
    if total <= 0:
        raise ValueError("campaign needs a positive injection count")
    if not classes:
        raise ValueError("campaign needs at least one fault class")
    injections = outcomes = None
    if registry is not None:
        injections = registry.counter(
            "faultinject.injections",
            "injections by fault class",
            labels=("fault_class",),
            replace=True,
        )
        outcomes = registry.counter(
            "faultinject.outcomes",
            "injection outcomes by verdict",
            labels=("outcome",),
            replace=True,
        )
    injector = FaultInjector(seed)
    result = CampaignResult(seed=seed)
    for index in range(total):
        fault_class = classes[index % len(classes)]
        record = injector.inject(index, fault_class)
        result.records.append(record)
        if injections is not None:
            injections.labels(fault_class=fault_class.value).inc()
            outcomes.labels(outcome=record.outcome.value).inc()
        if progress is not None and (index + 1) % 500 == 0:
            progress(index + 1, total)
    return result
