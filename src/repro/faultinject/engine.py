"""The seeded fault-injection engine.

Every injection builds a *fresh* deterministic system, applies exactly
one fault drawn from the seeded RNG, runs a fixed workload over the
damaged state and classifies what happened.  Determinism is total: the
same seed produces the same systems, the same faults, and the same
outcome sequence, so a campaign result is bit-reproducible.

The five fault classes:

* ``TAG_FLIP`` — a tag-SRAM upset clears a stored capability's tag
  (the 1→0 direction; 0→1 upsets would *mint* authority and are out of
  the architectural scope — see the package docstring).
* ``METADATA_CORRUPT`` — capability metadata attacked through the
  architectural paths: bit flips through the store path (which clears
  the tag), bounds-widening attempts, address warps, seal forgery.
* ``MEM_BIT_FLIP`` — a single data bit flips in heap memory via the
  store path; if the granule held a capability its tag dies with it.
* ``REG_CORRUPT`` — a register is clobbered mid-program on a real
  :class:`~repro.isa.executor.CPU` via the pre-step hook: untagging,
  guarded address warps, integer garbage, loop-counter corruption.
* ``SPLICE`` — adversarial RTOS scenarios: forged/relabelled import
  tokens, stack clobbers inside a compartment, revoked-pointer replay
  through quarantine, and error-handler recovery cycles.
"""

from __future__ import annotations

import random
from typing import Callable, Optional, Sequence, Tuple

from repro.allocator import TemporalSafetyMode
from repro.allocator.heap import HeapError
from repro.capability import Capability, Permission, make_roots
from repro.capability.errors import CapabilityError
from repro.capability.otypes import RTOS_DATA_OTYPES
from repro.isa import CPU, ExecutionMode, Trap, assemble
from repro.machine import System
from repro.memory import SystemBus, TaggedMemory
from repro.pipeline import CoreKind
from repro.rtos import CompartmentFault, RecoveryAction
from repro.rtos.compartment import ImportToken

from .monitor import InvariantMonitor, authority_subset
from .outcomes import FaultClass, InjectionRecord, Outcome

_CODE_BASE = 0x2000_0000
_BUF_OFFSET = 0x8000
_BUF_SIZE = 64

#: The register-corruption workload: 16 word stores through the
#: capability in ``ca0``, walking a 64-byte buffer.
_REG_PROGRAM = """\
li t1, 0xAB
li t2, 16
loop:
sw t1, 0(a0)
cincaddrimm a0, a0, 4
addi t2, t2, -1
bnez t2, loop
halt
"""


class FaultInjector:
    """Deterministic generator of single-fault experiments."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self.rng = random.Random(seed)
        self._program = assemble(_REG_PROGRAM)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def inject(self, index: int, fault_class: FaultClass) -> InjectionRecord:
        """Run one injection of ``fault_class``; returns its record."""
        scenario, outcome, detail, wrong = {
            FaultClass.TAG_FLIP: self._inject_tag_flip,
            FaultClass.METADATA_CORRUPT: self._inject_metadata,
            FaultClass.MEM_BIT_FLIP: self._inject_mem_bit_flip,
            FaultClass.REG_CORRUPT: self._inject_reg_corrupt,
            FaultClass.SPLICE: self._inject_splice,
        }[fault_class]()
        return InjectionRecord(index, fault_class, scenario, outcome, detail, wrong)

    # ------------------------------------------------------------------
    # Shared machinery
    # ------------------------------------------------------------------

    @staticmethod
    def _system() -> System:
        return System.build(core=CoreKind.IBEX, mode=TemporalSafetyMode.HARDWARE)

    @staticmethod
    def _pattern(length: int) -> bytes:
        return bytes((i * 7 + 3) & 0xFF for i in range(length))

    def _classify(
        self,
        system: System,
        scenario: str,
        workload: Callable[[], bool],
        probes: Sequence[Tuple[Capability, Capability]] = (),
    ) -> Tuple[str, Outcome, str, bool]:
        """Run the workload over injected state; probe for escapes.

        ``workload`` returns True when it completed with correct data.
        ``probes`` are ``(derived, original)`` capability pairs that must
        satisfy :func:`authority_subset` afterwards.  Probe violations
        override any other outcome — a contained fault that also broke
        an invariant is still an escape.
        """
        wrong = False
        outcome, detail = Outcome.MASKED, ""
        try:
            wrong = workload() is False
        except CompartmentFault as fault:
            outcome, detail = Outcome.CONTAINED, fault.cause_type
        except (CapabilityError, Trap) as fault:
            outcome, detail = Outcome.DETECTED, type(fault).__name__
        except HeapError as fault:
            # The allocator compartment's own argument validation.
            outcome, detail = Outcome.DETECTED, type(fault).__name__
        violation = self._probe(system, probes)
        if violation is not None:
            return scenario, Outcome.ESCAPED, violation, wrong
        return scenario, outcome, detail, wrong

    @staticmethod
    def _probe(
        system: System, probes: Sequence[Tuple[Capability, Capability]]
    ) -> Optional[str]:
        problems = InvariantMonitor(system).check()
        if problems:
            return problems[0]
        for derived, original in probes:
            if not authority_subset(derived, original):
                return (
                    f"authority widened: [{derived.base:#x}, {derived.top:#x}) "
                    f"exceeds [{original.base:#x}, {original.top:#x})"
                )
        return None

    def _mint_token(self, system: System, compartment: str, export: str) -> ImportToken:
        """Mint an import token the way the loader would (post-build)."""
        comp = system.switcher.compartment(compartment)
        entry = system.switcher.register_export_entry(
            compartment, export, comp.globals_cap
        )
        sealed = comp.globals_cap.set_address(entry).seal(
            system.switcher.unseal_authority.set_address(
                RTOS_DATA_OTYPES["compartment-export"]
            )
        )
        return ImportToken(compartment, export, sealed)

    # ------------------------------------------------------------------
    # TAG_FLIP
    # ------------------------------------------------------------------

    def _inject_tag_flip(self):
        system = self._system()
        pattern = self._pattern(64)
        objs = [system.malloc(64) for _ in range(3)]
        holder = system.malloc(64)
        system.bus.write_bytes(objs[0].base, pattern)
        for i, obj in enumerate(objs):
            system.bus.write_capability(holder.base + 8 * i, obj)
        # The upset hits one stored capability's granule: slot 0 is
        # dereferenced, slot 1 is passed to free(), slot 2 is never used.
        slot = self.rng.randrange(3)
        system.sram.clear_tag(holder.base + 8 * slot)
        scenario = f"tag-flip:slot{slot}"

        def workload() -> bool:
            loaded = system.load_filter.filter(
                system.bus.read_capability(holder.base)
            )
            loaded.check_access(loaded.base, 8, (Permission.LD,))
            data = system.bus.read_bytes(loaded.base, 64)
            freed = system.load_filter.filter(
                system.bus.read_capability(holder.base + 8)
            )
            system.free(freed)
            return data == pattern

        probes = [
            (system.bus.read_capability(holder.base + 8 * i), objs[i])
            for i in range(3)
        ]
        return self._classify(system, scenario, workload, probes)

    # ------------------------------------------------------------------
    # METADATA_CORRUPT
    # ------------------------------------------------------------------

    def _inject_metadata(self):
        system = self._system()
        victim = system.malloc(64)
        holder = system.malloc(64)
        system.bus.write_capability(holder.base, victim)
        variant = self.rng.choice(
            ["store-bitflip", "widen", "addr-warp", "forge-seal"]
        )
        scenario = f"metadata:{variant}"

        if variant == "store-bitflip":
            # A bit of the stored capability's encoding flips through the
            # architectural store path: the hardware invariant clears the
            # granule's tag with it.
            offset = self.rng.randrange(8)
            bit = self.rng.randrange(8)
            address = holder.base + offset
            byte = system.bus.read_bytes(address, 1)[0]
            system.bus.write_bytes(address, bytes([byte ^ (1 << bit)]))

            def workload() -> bool:
                loaded = system.load_filter.filter(
                    system.bus.read_capability(holder.base)
                )
                loaded.check_access(loaded.address, 4, (Permission.LD,))
                return True

            probes = [(system.bus.read_capability(holder.base), victim)]
            return self._classify(system, scenario, workload, probes)

        if variant == "widen":
            narrow = victim.set_bounds(8)

            def workload() -> bool:
                widened = narrow.set_bounds(self.rng.randrange(65, 4096))
                widened.check_access(widened.base, 8, (Permission.LD,))
                return True

            return self._classify(system, scenario, workload, [(narrow, victim)])

        if variant == "addr-warp":
            warped = victim.set_address(self.rng.randrange(1 << 32))

            def workload() -> bool:
                warped.check_access(warped.address, 4, (Permission.LD,))
                return True

            return self._classify(system, scenario, workload, [(warped, victim)])

        def workload() -> bool:
            # A data capability posing as a sealing authority.
            forged = victim.seal(holder)
            forged.check_access(forged.address, 4, (Permission.LD,))
            return True

        return self._classify(system, scenario, workload, [(victim, victim)])

    # ------------------------------------------------------------------
    # MEM_BIT_FLIP
    # ------------------------------------------------------------------

    def _inject_mem_bit_flip(self):
        system = self._system()
        pattern = self._pattern(128)
        victim = system.malloc(128)
        holder = system.malloc(64)
        system.bus.write_bytes(victim.base, pattern)
        system.bus.write_capability(holder.base, victim)
        # The particle strikes either plain data or the granule holding
        # the stored capability.
        if self.rng.random() < 0.75:
            address = victim.base + self.rng.randrange(128)
            scenario = "mem-bit-flip:data"
        else:
            address = holder.base + self.rng.randrange(8)
            scenario = "mem-bit-flip:stored-cap"
        bit = self.rng.randrange(8)
        byte = system.bus.read_bytes(address, 1)[0]
        system.bus.write_bytes(address, bytes([byte ^ (1 << bit)]))

        def workload() -> bool:
            loaded = system.load_filter.filter(
                system.bus.read_capability(holder.base)
            )
            loaded.check_access(loaded.base, 8, (Permission.LD,))
            return system.bus.read_bytes(loaded.base, 128) == pattern

        probes = [(system.bus.read_capability(holder.base), victim)]
        return self._classify(system, scenario, workload, probes)

    # ------------------------------------------------------------------
    # REG_CORRUPT
    # ------------------------------------------------------------------

    def _inject_reg_corrupt(self):
        bus = SystemBus()
        sram = bus.attach_sram(TaggedMemory(_CODE_BASE, 0x1_0000))
        cpu = CPU(bus, ExecutionMode.CHERIOT)
        roots = make_roots()
        cpu.load_program(self._program, _CODE_BASE, pcc=roots.executable)
        buf_base = _CODE_BASE + _BUF_OFFSET
        cpu.regs.write(
            10, roots.memory.set_address(buf_base).set_bounds(_BUF_SIZE)
        )
        variant = self.rng.choice(["untag", "addr", "garbage", "counter"])
        scenario = f"reg-corrupt:{variant}"
        trigger = self.rng.randrange(1, 68)
        snapshot = sram.read_bytes(_CODE_BASE, sram.size)
        state = {"step": 0}

        def hook(cpu: CPU) -> None:
            state["step"] += 1
            if state["step"] != trigger:
                return
            if variant == "untag":
                cpu.regs.write(10, cpu.regs.read(10).untagged())
            elif variant == "addr":
                cpu.regs.write(
                    10, cpu.regs.read(10).set_address(self.rng.randrange(1 << 32))
                )
            elif variant == "garbage":
                cpu.regs.write_int(10, self.rng.randrange(1 << 32))
            else:  # counter: the loop register takes a wrong value
                cpu.regs.write_int(7, self.rng.randrange(64))

        cpu.pre_step_hook = hook
        try:
            cpu.run(max_steps=10_000)
        except Trap as trap:
            return scenario, Outcome.DETECTED, trap.cause.name, False
        except CapabilityError as fault:
            return scenario, Outcome.DETECTED, type(fault).__name__, False

        after = sram.read_bytes(_CODE_BASE, sram.size)
        lo, hi = _BUF_OFFSET, _BUF_OFFSET + _BUF_SIZE
        if after[:lo] != snapshot[:lo] or after[hi:] != snapshot[hi:]:
            return (
                scenario,
                Outcome.ESCAPED,
                "store landed outside the authorized buffer",
                False,
            )
        expected = bytes(
            0xAB if i % 4 == 0 else 0 for i in range(_BUF_SIZE)
        )
        wrong = after[lo:hi] != expected
        return scenario, Outcome.MASKED, "", wrong

    # ------------------------------------------------------------------
    # SPLICE
    # ------------------------------------------------------------------

    def _inject_splice(self):
        variant = self.rng.choice(
            [
                "token-relabel",
                "token-unsealed",
                "token-null",
                "stack-clobber",
                "revoked-replay",
                "restart-recovery",
            ]
        )
        return getattr(self, "_splice_" + variant.replace("-", "_"))()

    def _splice_token_relabel(self):
        # Replay malloc's sealed capability under free's name: the
        # export table must refuse the relabelling.
        system = self._system()
        real = system.app.get_import("alloc", "malloc")
        forged = ImportToken("alloc", "free", real.sealed_cap)

        def workload() -> bool:
            system.switcher.call(system.main_thread, forged, system.malloc(32))
            return True

        scenario, outcome, detail, wrong = self._classify(
            system, "splice:token-relabel", workload
        )
        if outcome is Outcome.MASKED:
            return scenario, Outcome.ESCAPED, "relabelled token accepted", wrong
        return scenario, outcome, detail, wrong

    def _splice_token_unsealed(self):
        system = self._system()
        forged = ImportToken("alloc", "malloc", system.malloc(32))

        def workload() -> bool:
            system.switcher.call(system.main_thread, forged, 32)
            return True

        scenario, outcome, detail, wrong = self._classify(
            system, "splice:token-unsealed", workload
        )
        if outcome is Outcome.MASKED:
            return scenario, Outcome.ESCAPED, "unsealed token accepted", wrong
        return scenario, outcome, detail, wrong

    def _splice_token_null(self):
        system = self._system()
        forged = ImportToken(
            "alloc", "malloc", Capability.null(self.rng.randrange(1 << 32))
        )

        def workload() -> bool:
            system.switcher.call(system.main_thread, forged, 32)
            return True

        scenario, outcome, detail, wrong = self._classify(
            system, "splice:token-null", workload
        )
        if outcome is Outcome.MASKED:
            return scenario, Outcome.ESCAPED, "null token accepted", wrong
        return scenario, outcome, detail, wrong

    def _splice_stack_clobber(self):
        system = self._system()
        attack = self.rng.choice(["overflow", "oob-slot", "oob-walk"])
        victim = system.malloc(64)

        def evil(ctx):
            if attack == "overflow":
                ctx.use_stack(1 << 20)
            elif attack == "oob-slot":
                # A stack store far below the chopped stack capability.
                ctx.store_stack_cap(1 << 16, victim)
            else:
                walked = victim.set_address(victim.top + 64)
                walked.check_access(walked.address, 4, (Permission.SD,))
            return True

        system.app.export("evil", evil)
        token = self._mint_token(system, "app", "evil")

        def workload() -> bool:
            system.switcher.call(system.main_thread, token)
            return True

        return self._classify(
            system, f"splice:stack-clobber:{attack}", workload, [(victim, victim)]
        )

    def _splice_revoked_replay(self):
        system = self._system()
        victim = system.malloc(64)
        holder = system.malloc(64)
        system.bus.write_capability(holder.base, victim)
        system.free(victim)
        if self.rng.random() < 0.5:
            system.allocator.revoke_now()

        def workload() -> bool:
            stale = system.load_filter.filter(
                system.bus.read_capability(holder.base)
            )
            stale.check_access(stale.base, 8, (Permission.LD,))
            return True

        scenario, outcome, detail, wrong = self._classify(
            system, "splice:revoked-replay", workload
        )
        if outcome is Outcome.MASKED:
            return scenario, Outcome.ESCAPED, "revoked pointer dereferenced", wrong
        return scenario, outcome, detail, wrong

    def _splice_restart_recovery(self):
        # A compartment faults, its error handler asks for a restart,
        # and the caller's next call must land in a clean compartment.
        system = System.build(
            core=CoreKind.IBEX, mode=TemporalSafetyMode.HARDWARE, finalize=False
        )
        comp = system.loader.add_compartment("worker")
        state = {"calls": 0}

        def entry(ctx):
            state["calls"] += 1
            if state["calls"] == 1:
                bad = Capability.null(0x1000)
                bad.check_access(0x1000, 4, (Permission.LD,))
            return state["calls"]

        comp.export("entry", entry)
        comp.set_error_handler(lambda info: RecoveryAction.RESTART)
        system.loader.finalize()
        token = self._mint_token(system, "worker", "entry")

        def workload() -> bool:
            try:
                system.switcher.call(system.main_thread, token)
            except CompartmentFault:
                pass
            else:
                return False
            if comp.restarts != 1:
                return False
            return system.switcher.call(system.main_thread, token) == 2

        scenario, outcome, detail, wrong = self._classify(
            system, "splice:restart-recovery", workload
        )
        if outcome is Outcome.MASKED:
            outcome = Outcome.CONTAINED
            detail = "recovery failed" if wrong else "restarted and recovered"
        return scenario, outcome, detail, wrong
