"""The outcome taxonomy of a fault-injection campaign.

Each injection lands in exactly one bucket:

* **MASKED** — the fault changed state that was never (or no longer)
  load-bearing; the workload completed and every probe came back clean.
  A masked fault may still corrupt *data* (``wrong_result``): data
  integrity is an ECC problem, not a CHERIoT claim.
* **DETECTED** — an architectural check (tag, seal, permission, bounds,
  monotonicity) or the allocator's own argument validation stopped the
  faulty action with a deterministic error.
* **CONTAINED** — the fault fired inside a cross-compartment call; the
  switcher unwound the frame and surfaced a
  :class:`~repro.rtos.switcher.CompartmentFault` to the caller.
* **ESCAPED** — the fault produced authority or reachability the
  original program never had: a forbidden access succeeded, a revoked
  object stayed reachable, or a heap invariant silently broke.  The
  campaign's acceptance criterion is **zero** of these.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List


class FaultClass(enum.Enum):
    """What kind of fault an injection models."""

    TAG_FLIP = "tag_flip"
    METADATA_CORRUPT = "metadata_corrupt"
    MEM_BIT_FLIP = "mem_bit_flip"
    REG_CORRUPT = "reg_corrupt"
    SPLICE = "splice"


class Outcome(enum.Enum):
    MASKED = "masked"
    DETECTED = "detected"
    CONTAINED = "contained"
    ESCAPED = "escaped"


@dataclass(frozen=True)
class InjectionRecord:
    """One injection: what was done, and what the system did about it."""

    index: int
    fault_class: FaultClass
    scenario: str
    outcome: Outcome
    detail: str = ""
    #: The workload completed with corrupted data (possible only for
    #: MASKED outcomes — detected/contained runs never produce results).
    wrong_result: bool = False


@dataclass
class CampaignResult:
    """Aggregated results of one seeded campaign."""

    seed: int
    records: List[InjectionRecord] = field(default_factory=list)

    @property
    def total(self) -> int:
        return len(self.records)

    def tally(self) -> Dict[str, int]:
        counts = {outcome.value: 0 for outcome in Outcome}
        for record in self.records:
            counts[record.outcome.value] += 1
        return counts

    def tally_by_class(self) -> Dict[str, Dict[str, int]]:
        by_class: Dict[str, Dict[str, int]] = {}
        for record in self.records:
            bucket = by_class.setdefault(
                record.fault_class.value,
                {outcome.value: 0 for outcome in Outcome},
            )
            bucket[record.outcome.value] += 1
        return by_class

    @property
    def escaped(self) -> List[InjectionRecord]:
        return [r for r in self.records if r.outcome is Outcome.ESCAPED]

    @property
    def wrong_results(self) -> int:
        return sum(1 for r in self.records if r.wrong_result)

    @property
    def detection_rate(self) -> float:
        """Fraction of *activated* faults stopped by the architecture.

        Masked faults never became visible, so they are excluded from
        the denominator; with zero escapes this is exactly 1.0.
        """
        activated = [r for r in self.records if r.outcome is not Outcome.MASKED]
        if not activated:
            return 1.0
        stopped = sum(
            1
            for r in activated
            if r.outcome in (Outcome.DETECTED, Outcome.CONTAINED)
        )
        return stopped / len(activated)

    def to_dict(self) -> dict:
        """Deterministic summary for the committed benchmark JSON."""
        escaped = [
            {
                "index": r.index,
                "fault_class": r.fault_class.value,
                "scenario": r.scenario,
                "detail": r.detail,
            }
            for r in self.escaped
        ]
        return {
            "seed": self.seed,
            "total_injections": self.total,
            "outcomes": self.tally(),
            "by_class": self.tally_by_class(),
            "wrong_results": self.wrong_results,
            "detection_rate": round(self.detection_rate, 6),
            "escaped_details": escaped,
        }
