"""Invariant monitor: the campaign's escape oracle.

After every injection the engine asks the monitor whether the system
still upholds the paper's claims.  The checks are *ground truth*, not
architectural: they inspect simulator state directly (allocator
metadata, the revocation bitmap, raw tag bits) the way a hardware
testbench would probe internal signals, so an escape cannot hide behind
the same machinery it broke.
"""

from __future__ import annotations

from typing import List

from repro.capability import Capability


def authority_subset(cap: Capability, original: Capability) -> bool:
    """True when ``cap`` conveys no authority beyond ``original``.

    An untagged capability conveys no authority at all, so it is always
    a subset.  Sealed capabilities convey only the right to be unsealed;
    their bounds/permissions still must not exceed the original's.
    """
    if not cap.tag:
        return True
    if not original.tag:
        return False
    return (
        cap.base >= original.base
        and cap.top <= original.top
        and cap.perms <= original.perms
    )


class InvariantMonitor:
    """Probes one :class:`~repro.machine.System` for silent escapes."""

    def __init__(self, system) -> None:
        self.system = system

    def check(self) -> List[str]:
        """Run every system-level invariant; returns violations."""
        problems = list(self.system.allocator.check_invariants())
        problems.extend(self._check_revoked_unreachable())
        return problems

    def _check_revoked_unreachable(self) -> List[str]:
        """No tagged in-memory capability may reach quarantined memory.

        A stale pointer sitting in memory is expected — temporal safety
        promises it *dies on load*.  The violation is a stale pointer
        the load filter would pass: that is reachable revoked memory.
        """
        problems: List[str] = []
        spans = [
            (chunk.address, chunk.end)
            for chunk in self.system.allocator.iter_quarantined()
        ]
        if not spans:
            return problems
        heap = self.system.memory_map.heap
        load_filter = self.system.load_filter
        for address in self.system.sram.tagged_granules(heap.base, heap.top):
            cap = self.system.sram.read_capability(address)
            if not cap.tag or cap.is_sealed:
                continue
            if not any(cap.base < end and base < cap.top for base, end in spans):
                continue
            if load_filter.filter(cap).tag:
                problems.append(
                    f"tagged capability at {address:#x} reaches quarantined "
                    f"memory [{cap.base:#x}, {cap.top:#x}) past the load filter"
                )
        return problems
