"""Seeded fault-injection campaigns over the simulated CHERIoT SoC.

The paper's safety claims are universally quantified — *no* pointer
corruption, *no* use-after-free, *no* compartment escape.  Unit tests
check hand-picked attacks; this package checks the claims statistically:
a deterministic engine (:mod:`engine`) injects thousands of seeded
faults — tag flips, capability-metadata corruption, memory bit flips,
register corruption and adversarial splices — into running systems, and
an invariant monitor (:mod:`monitor`) classifies each injection's
outcome.  Any *escaped* outcome (silent out-of-bounds access, untagged
dereference succeeding, reachable revoked memory) is a falsified claim.

Fault model (see ``docs/architecture.md``): injections are software-
level adversarial actions — the paper's section 2.2 threat model of a
compromised or buggy compartment — plus physical upsets routed through
the *architectural* store path, where the tagged-memory invariant
clears the affected granule's tag.  Upsets that set a tag-SRAM bit or
flip capability metadata in place without traversing an architectural
operation are out of scope: real silicon guards those arrays with
ECC/parity, not with the capability model.
"""

from .outcomes import CampaignResult, FaultClass, InjectionRecord, Outcome
from .engine import FaultInjector
from .monitor import InvariantMonitor, authority_subset
from .campaign import run_campaign
from .codesplice import SpliceError, SpliceVariant, splice

__all__ = [
    "CampaignResult",
    "FaultClass",
    "FaultInjector",
    "InjectionRecord",
    "InvariantMonitor",
    "Outcome",
    "SpliceError",
    "SpliceVariant",
    "authority_subset",
    "run_campaign",
    "splice",
]
