"""The end-to-end compartmentalized IoT application (paper section 7.2.3)."""

from .app import CLOCK_MHZ, TICK_MS, IoTApplication, IoTReport
from .firewall import Firewall, FirewallStats
from .jsvm import JavaScriptVM, VMError, VMStats, led_animation_bytecode
from .loadgen import NetLoadGen, drive
from .mqtt import MQTTClient, MQTTError, MQTTStats
from .netstack import NetStats, NetworkStack
from .packets import (
    FRAME_HEADER_BYTES,
    CloudSource,
    FramingError,
    Message,
    Packet,
    checksum16,
    frame,
    unframe,
    validate_frame,
)
from .sessions import (
    BoundedQueue,
    NetPipeline,
    NetPipelineStats,
    SessionError,
    SessionState,
    session_key,
)
from .tls import TLSError, TLSSession, TLSStats

__all__ = [
    "BoundedQueue",
    "CLOCK_MHZ",
    "CloudSource",
    "FRAME_HEADER_BYTES",
    "Firewall",
    "FirewallStats",
    "FramingError",
    "IoTApplication",
    "IoTReport",
    "JavaScriptVM",
    "MQTTClient",
    "MQTTError",
    "MQTTStats",
    "Message",
    "NetLoadGen",
    "NetPipeline",
    "NetPipelineStats",
    "NetStats",
    "NetworkStack",
    "Packet",
    "SessionError",
    "SessionState",
    "TICK_MS",
    "TLSError",
    "TLSSession",
    "TLSStats",
    "VMError",
    "VMStats",
    "checksum16",
    "drive",
    "frame",
    "led_animation_bytecode",
    "session_key",
    "unframe",
    "validate_frame",
]
