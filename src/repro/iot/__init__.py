"""The end-to-end compartmentalized IoT application (paper section 7.2.3)."""

from .app import CLOCK_MHZ, TICK_MS, IoTApplication, IoTReport
from .jsvm import JavaScriptVM, VMError, VMStats, led_animation_bytecode
from .mqtt import MQTTClient, MQTTError, MQTTStats
from .netstack import NetStats, NetworkStack
from .packets import (
    CloudSource,
    FramingError,
    Message,
    Packet,
    checksum16,
    frame,
    unframe,
)
from .tls import TLSError, TLSSession, TLSStats

__all__ = [
    "CLOCK_MHZ",
    "CloudSource",
    "FramingError",
    "IoTApplication",
    "IoTReport",
    "JavaScriptVM",
    "MQTTClient",
    "MQTTError",
    "MQTTStats",
    "Message",
    "NetStats",
    "NetworkStack",
    "Packet",
    "TICK_MS",
    "TLSError",
    "TLSSession",
    "TLSStats",
    "VMError",
    "VMStats",
    "checksum16",
    "frame",
    "led_animation_bytecode",
    "unframe",
]
