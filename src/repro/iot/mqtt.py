"""The MQTT compartment: topic parsing and subscriber dispatch.

The stand-in for the FreeRTOS MQTT library: parses ``PUB:topic:payload``
records out of decrypted TLS plaintext and dispatches them to
subscribers registered by other compartments (the JS VM subscribes to
``device/code`` to receive its bytecode).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

#: Parse + dispatch cost per message.
CYCLES_PER_MESSAGE = 700


class MQTTError(Exception):
    """Malformed MQTT record."""


@dataclass
class MQTTStats:
    messages: int = 0
    dispatched: int = 0
    unknown_topic: int = 0


class MQTTClient:
    """Minimal topic router."""

    def __init__(self) -> None:
        self.stats = MQTTStats()
        self._subscribers: Dict[str, List[Callable[[bytes], None]]] = {}

    def subscribe(self, topic: str, handler: Callable[[bytes], None]) -> None:
        self._subscribers.setdefault(topic, []).append(handler)

    def handle_record(self, plaintext: bytes) -> "Tuple[int, int]":
        """Parse one record, dispatch to subscribers.

        Returns ``(handlers_invoked, cycles)``.  Raises
        :class:`MQTTError` on malformed records.
        """
        cycles = CYCLES_PER_MESSAGE
        if not plaintext.startswith(b"PUB:"):
            raise MQTTError(f"unknown record type: {plaintext[:8]!r}")
        try:
            _, topic_bytes, payload = plaintext.split(b":", 2)
        except ValueError:
            raise MQTTError("malformed PUB record") from None
        topic = topic_bytes.decode("ascii", errors="replace")
        self.stats.messages += 1
        handlers = self._subscribers.get(topic, [])
        if not handlers:
            self.stats.unknown_topic += 1
        for handler in handlers:
            handler(payload)
            self.stats.dispatched += 1
        return len(handlers), cycles
