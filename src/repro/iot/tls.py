"""The TLS compartment: a toy record layer with a protected session key.

The paper's motivating example (section 2.3): the network stack's TLS
client keys must be protected from bugs in the rest of the system, which
compartmentalization delivers — the key lives in the TLS compartment's
private state and never crosses a compartment boundary.

The "cipher" is a keyed rolling XOR plus a 16-bit MAC: cryptographically
worthless, but it exercises the same code path (per-record key schedule,
byte-wise transform, MAC check, error on tamper) and is charged
per-byte cycles comparable to software AES on a small core.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Cycles per payload byte for decrypt+MAC in software on an MCU-class
#: core (software AES-128-GCM lands at tens of cycles per byte).
CYCLES_PER_BYTE = 45
#: Fixed per-record overhead (key schedule, IV handling, MAC finalize).
CYCLES_PER_RECORD = 900
#: Cycles for the connection handshake (asymmetric crypto dominates; an
#: ECDHE handshake on a 20 MHz MCU takes on the order of a second).
HANDSHAKE_CYCLES = 80_000_000


class TLSError(Exception):
    """Record authentication failure."""


def _keystream(key: bytes, length: int, nonce: int) -> bytes:
    """A keyed rolling byte stream (stand-in key schedule)."""
    out = bytearray(length)
    state = (nonce * 2654435761) & 0xFFFFFFFF
    for index in range(length):
        state = (state * 1103515245 + 12345 + key[index % len(key)]) & 0xFFFFFFFF
        out[index] = (state >> 16) & 0xFF
    return bytes(out)


def _mac16(key: bytes, data: bytes) -> int:
    total = 0x5A5A
    for index, byte in enumerate(data):
        total = ((total * 31) ^ byte ^ key[index % len(key)]) & 0xFFFF
    return total


@dataclass
class TLSStats:
    records_decrypted: int = 0
    records_encrypted: int = 0
    bytes_processed: int = 0
    handshakes: int = 0
    mac_failures: int = 0


class TLSSession:
    """One session's state: the compartment-private key and counters."""

    def __init__(self, session_key: bytes) -> None:
        if len(session_key) < 8:
            raise ValueError("session key too short")
        self._key = bytes(session_key)  # never leaves the compartment
        self.stats = TLSStats()
        self._established = False

    @property
    def established(self) -> bool:
        return self._established

    def handshake(self) -> int:
        """Establish the session; returns the cycles consumed."""
        self._established = True
        self.stats.handshakes += 1
        return HANDSHAKE_CYCLES

    def seal_record(self, plaintext: bytes, nonce: int) -> "tuple[bytes, int]":
        """Encrypt+MAC one record; returns (record, cycles)."""
        self._require_established()
        stream = _keystream(self._key, len(plaintext), nonce)
        body = bytes(p ^ s for p, s in zip(plaintext, stream))
        record = body + _mac16(self._key, body).to_bytes(2, "little")
        self.stats.records_encrypted += 1
        self.stats.bytes_processed += len(plaintext)
        return record, CYCLES_PER_RECORD + CYCLES_PER_BYTE * len(plaintext)

    def open_record(self, record: bytes, nonce: int) -> "tuple[bytes, int]":
        """MAC-check and decrypt one record; returns (plaintext, cycles).

        Raises :class:`TLSError` on a MAC mismatch (tampered record).
        """
        self._require_established()
        if len(record) < 2:
            raise TLSError("short record")
        body, mac = record[:-2], int.from_bytes(record[-2:], "little")
        if _mac16(self._key, body) != mac:
            self.stats.mac_failures += 1
            raise TLSError("record MAC mismatch")
        stream = _keystream(self._key, len(body), nonce)
        plaintext = bytes(c ^ s for c, s in zip(body, stream))
        self.stats.records_decrypted += 1
        self.stats.bytes_processed += len(body)
        return plaintext, CYCLES_PER_RECORD + CYCLES_PER_BYTE * len(body)

    def _require_established(self) -> None:
        if not self._established:
            raise TLSError("session not established")
