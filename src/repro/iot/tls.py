"""The TLS compartment: a toy record layer with a protected session key.

The paper's motivating example (section 2.3): the network stack's TLS
client keys must be protected from bugs in the rest of the system, which
compartmentalization delivers — the key lives in the TLS compartment's
private state and never crosses a compartment boundary.

The "cipher" is a keyed rolling XOR plus a 16-bit MAC: cryptographically
worthless, but it exercises the same code path (per-record key schedule,
byte-wise transform, MAC check, error on tamper) and is charged
per-byte cycles comparable to software AES on a small core.

The *simulated* cycle charges are fixed by the constants below; the
*host-speed* implementation underneath is free to be fast, and needs to
be — a 2048-session benchmark sweep pushes hundreds of thousands of
record bytes through this module.  ``_keystream`` runs a reduced-Python
inner loop over a cached per-key add schedule (no modulo, no repeated
attribute lookups), ``_mac16`` is table-driven (a 64K-entry ``*31``
multiply table plus one big-int XOR for the key mix), and record
seal/open XOR whole buffers as big integers instead of byte-by-byte
generator expressions.  ``tests/iot/test_tls_fast.py`` pins all three
against straightforward reference implementations byte for byte.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

#: Cycles per payload byte for decrypt+MAC in software on an MCU-class
#: core (software AES-128-GCM lands at tens of cycles per byte).
CYCLES_PER_BYTE = 45
#: Fixed per-record overhead (key schedule, IV handling, MAC finalize).
CYCLES_PER_RECORD = 900
#: Cycles for the connection handshake (asymmetric crypto dominates; an
#: ECDHE handshake on a 20 MHz MCU takes on the order of a second).
HANDSHAKE_CYCLES = 80_000_000

_M32 = 0xFFFFFFFF
_MUL = 1103515245

#: Per-key caches for the host-speed fast paths.  Both are pure
#: functions of the key bytes, so caching cannot perturb determinism.
_KEY_ADDS: Dict[bytes, Tuple[int, ...]] = {}
_KEY_REPEAT: Dict[bytes, bytes] = {}

#: Lazily built ``(t * 31) & 0xFFFF`` table for the MAC inner loop.
_T31: List[int] = []


class TLSError(Exception):
    """Record authentication failure."""


def _key_adds(key: bytes, length: int) -> Tuple[int, ...]:
    """The keystream add schedule ``12345 + key[i % len]``, pre-tiled
    to at least ``length`` entries so the inner loop indexes directly."""
    adds = _KEY_ADDS.get(key)
    if adds is None or len(adds) < length:
        base = tuple(12345 + byte for byte in key)
        repeats = -(-max(length, len(base)) // len(base))
        adds = base * repeats
        _KEY_ADDS[key] = adds
    return adds


def _key_repeat(key: bytes, length: int) -> bytes:
    """``key`` tiled to at least ``length`` bytes (for the MAC mix)."""
    tiled = _KEY_REPEAT.get(key, b"")
    if len(tiled) < length:
        tiled = key * (-(-max(length, len(key)) // len(key)))
        _KEY_REPEAT[key] = tiled
    return tiled


def _keystream(key: bytes, length: int, nonce: int) -> bytes:
    """A keyed rolling byte stream (stand-in key schedule)."""
    out = bytearray(length)
    state = (nonce * 2654435761) & _M32
    adds = _key_adds(key, length)
    if len(adds) > length:
        adds = adds[:length]
    index = 0
    for add in adds:
        state = (state * _MUL + add) & _M32
        out[index] = (state >> 16) & 0xFF
        index += 1
    return bytes(out)


def _mac16(key: bytes, data: bytes) -> int:
    if not _T31:
        _T31.extend((value * 31) & 0xFFFF for value in range(0x10000))
    length = len(data)
    if length:
        # byte ^ key[i % len] for the whole buffer in one big-int XOR.
        mixed = (
            int.from_bytes(data, "little")
            ^ int.from_bytes(_key_repeat(key, length)[:length], "little")
        ).to_bytes(length, "little")
    else:
        mixed = b""
    table = _T31
    total = 0x5A5A
    for byte in mixed:
        total = table[total] ^ byte
    return total


def _xor_bytes(data: bytes, stream: bytes) -> bytes:
    """``bytes(a ^ b ...)`` at big-int speed (inputs are equal length)."""
    if not data:
        return b""
    return (
        int.from_bytes(data, "little") ^ int.from_bytes(stream, "little")
    ).to_bytes(len(data), "little")


@dataclass
class TLSStats:
    records_decrypted: int = 0
    records_encrypted: int = 0
    bytes_processed: int = 0
    handshakes: int = 0
    mac_failures: int = 0


class TLSSession:
    """One session's state: the compartment-private key and counters."""

    def __init__(self, session_key: bytes) -> None:
        if len(session_key) < 8:
            raise ValueError("session key too short")
        self._key = bytes(session_key)  # never leaves the compartment
        self.stats = TLSStats()
        self._established = False

    @property
    def established(self) -> bool:
        return self._established

    def handshake(self) -> int:
        """Establish the session; returns the cycles consumed."""
        self._established = True
        self.stats.handshakes += 1
        return HANDSHAKE_CYCLES

    def seal_record(self, plaintext: bytes, nonce: int) -> "tuple[bytes, int]":
        """Encrypt+MAC one record; returns (record, cycles)."""
        self._require_established()
        stream = _keystream(self._key, len(plaintext), nonce)
        body = _xor_bytes(plaintext, stream)
        record = body + _mac16(self._key, body).to_bytes(2, "little")
        self.stats.records_encrypted += 1
        self.stats.bytes_processed += len(plaintext)
        return record, CYCLES_PER_RECORD + CYCLES_PER_BYTE * len(plaintext)

    def open_record(self, record: bytes, nonce: int) -> "tuple[bytes, int]":
        """MAC-check and decrypt one record; returns (plaintext, cycles).

        Raises :class:`TLSError` on a MAC mismatch (tampered record).
        The cycle charge covers the full in-place transform — load,
        XOR, store back through the same capability — so a zero-copy
        caller that decrypts into the record buffer adds nothing.
        """
        self._require_established()
        if len(record) < 2:
            raise TLSError("short record")
        body, mac = record[:-2], int.from_bytes(record[-2:], "little")
        if _mac16(self._key, body) != mac:
            self.stats.mac_failures += 1
            raise TLSError("record MAC mismatch")
        stream = _keystream(self._key, len(body), nonce)
        plaintext = _xor_bytes(body, stream)
        self.stats.records_decrypted += 1
        self.stats.bytes_processed += len(body)
        return plaintext, CYCLES_PER_RECORD + CYCLES_PER_BYTE * len(body)

    def _require_established(self) -> None:
        if not self._established:
            raise TLSError("session not established")
