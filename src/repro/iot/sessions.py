"""Scaled multi-session receive pipeline: zero-copy vs per-layer copy.

The seed stack (:mod:`repro.iot.app`) serves one connection and
re-materialises every packet body at each layer.  This module scales
session handling to thousands of connections and realises the paper's
performant receive discipline — and its copying strawman — over the
*same* compartment topology, so the two are directly comparable:

``driver (app) -> firewall -> tcpip -> tls -> mqtt/app``

**Zero-copy** (``zero_copy=True``): the driver allocates the packet's
heap buffer up front and programs the DMA engine to land the frame in
it directly, so the CPU pays only IRQ + descriptor handling at the
edge; every later compartment receives a ``csetbounds``-narrowed view
of that same buffer (the firewall trims allocator slack, TCP/IP
narrows to the TLS record, TLS decrypts *in place* and narrows to the
read-only plaintext body for MQTT).  Capability narrowing is what
makes handing the buffer onward *safe* — without it, sharing driver
memory would expose every neighbouring packet.  One allocation, one
free, zero CPU copies.

**Copying baseline** (``zero_copy=False``): the honest cost of a
compartmentalised stack without capability narrowing.  The DMA engine
lands frames in the driver's fixed RX ring, and since handing ring
memory to another compartment would leak the whole ring, the driver
must copy each frame out (6 cycles/byte, the seed's constant); the
same argument repeats at every boundary, so each layer that keeps the
data copies it into a heap buffer of its own and frees its upstream
buffer.  Five allocations per packet instead of one, which also
multiplies quarantine pressure on the temporal-safety machinery.

Stages are decoupled by **bounded queues** drained by the driver loop
(:meth:`NetPipeline.pump`), and each stage is entered once per
*batch*, not once per packet — amortising the compartment-crossing
cost (switcher instructions + stack zeroing) across everything queued
for that stage.  This is why per-packet cost *falls* as concurrent
sessions rise: more sessions keep the queues full, so every crossing
carries more packets.  When a downstream queue is full the upstream
stage stalls (items wait in place, nothing is lost mid-pipeline), and
when the ingress ring is full the driver drops the packet before
allocating (``dropped_backpressure``), like a NIC with a full RX
ring.  Queue high-watermarks, per-compartment cycle buckets, and
*measured* crossing overhead are reported per run; per-packet latency
(driver submit to application dispatch, in simulated cycles) feeds a
mergeable :class:`~repro.obs.sketch.QuantileSketch`.

Cipher work (the 45 cycles/byte cost of decrypt+MAC) is charged to its
own bucket, ``cycles_crypto``: it is byte-for-byte identical in both
disciplines by construction, so the benchmark's stack-cost metric can
exclude it and measure exactly the data-movement path that zero-copy
optimises (totals are reported too).

Everything is a pure function of the submitted wire bytes — no clock,
no RNG — so any run is byte-reproducible (``tools/lint_determinism.py``
covers this module).
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Dict, List, Tuple

from repro.allocator import TemporalSafetyMode
from repro.capability import Capability, Permission
from repro.machine import System
from repro.obs.sketch import QuantileSketch
from repro.pipeline import CoreKind

from . import netstack as _netstack
from . import tls as _tls
from .firewall import Firewall
from .mqtt import CYCLES_PER_MESSAGE, MQTTClient, MQTTError
from .packets import FramingError, validate_frame
from .tls import TLSError, TLSSession

#: Driver-edge fixed cost per packet (IRQ dispatch, RX descriptor).
DRIVER_CYCLES_PER_PACKET = 400
#: Copy-mode driver cost: software copies each frame out of the fixed
#: DMA RX ring into a heap buffer.  The zero-copy driver never pays
#: this — the DMA engine lands the frame in the heap buffer itself.
DRIVER_CYCLES_PER_BYTE = _netstack.CYCLES_PER_BYTE
#: A ``csetaddr`` + ``csetbounds`` pair when a stage narrows its view.
NARROW_CYCLES = 2
#: TLS compartment charge for rejecting a tampered record (its own MAC
#: check only — the seed app charges the same on a hostile record).
TLS_REJECT_CYCLES = 600


def session_key(conn_id: int) -> bytes:
    """The per-connection TLS key both endpoints derive."""
    return f"session-key-{conn_id:08d}".encode("ascii")


class SessionError(Exception):
    """Unknown or duplicate connection ids."""


@dataclass
class QueueStats:
    enqueued: int = 0
    dequeued: int = 0
    high_watermark: int = 0


class BoundedQueue:
    """A FIFO with a hard capacity and a high-watermark gauge."""

    __slots__ = ("name", "capacity", "stats", "_items")

    def __init__(self, name: str, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("queue capacity must be positive")
        self.name = name
        self.capacity = capacity
        self.stats = QueueStats()
        self._items: List = []

    def __len__(self) -> int:
        return len(self._items)

    @property
    def has_room(self) -> bool:
        return len(self._items) < self.capacity

    def offer(self, item) -> bool:
        """Enqueue; False (and no side effect) when full."""
        if not self.has_room:
            return False
        self._items.append(item)
        self.stats.enqueued += 1
        depth = len(self._items)
        if depth > self.stats.high_watermark:
            self.stats.high_watermark = depth
        return True

    def take(self):
        self.stats.dequeued += 1
        return self._items.pop(0)

    def snapshot(self) -> dict:
        return {
            "capacity": self.capacity,
            "depth": len(self._items),
            "enqueued": self.stats.enqueued,
            "dequeued": self.stats.dequeued,
            "high_watermark": self.stats.high_watermark,
        }


class SessionState:
    """One connection's receive-side state, keyed by ``conn_id``."""

    __slots__ = ("conn_id", "expected_seq", "tls", "mqtt", "delivered",
                 "delivered_bytes")

    def __init__(self, conn_id: int) -> None:
        self.conn_id = conn_id
        self.expected_seq = 1
        self.tls = TLSSession(session_key(conn_id))
        self.mqtt = MQTTClient()
        self.delivered = 0
        self.delivered_bytes = 0


@dataclass
class NetPipelineStats:
    """The ``net`` metric group: flat integers, registry-harvestable."""

    packets_in: int = 0
    bytes_in: int = 0
    packets_delivered: int = 0
    payload_bytes_delivered: int = 0
    dropped_backpressure: int = 0
    dropped_corrupt: int = 0
    dropped_out_of_order: int = 0
    dropped_tls: int = 0
    dropped_app: int = 0
    sessions_established: int = 0
    handshake_cycles: int = 0
    crossings: int = 0
    crossing_cycles: int = 0
    narrowings: int = 0
    allocs: int = 0
    frees: int = 0
    cycles_driver: int = 0
    cycles_firewall: int = 0
    cycles_tcpip: int = 0
    cycles_tls: int = 0
    cycles_crypto: int = 0
    cycles_app: int = 0
    cycles_alloc: int = 0


class _PacketRef:
    """One in-flight packet: the root allocation plus the current view."""

    __slots__ = ("conn_id", "root", "cap", "length", "t0", "nonce")

    def __init__(self, conn_id: int, root: Capability, cap: Capability,
                 length: int, t0: int) -> None:
        self.conn_id = conn_id
        self.root = root      # what eventually gets freed
        self.cap = cap        # the current stage's (narrowed) view
        self.length = length  # valid bytes under ``cap``
        self.t0 = t0          # simulated cycle stamp at the driver edge
        self.nonce = 0        # wire sequence, filled in by tcpip


class NetPipeline:
    """The scaled receive path on one :class:`~repro.machine.System`.

    The driver loop (the app compartment's main thread) owns the
    queues; each stage runs in its own compartment, entered through the
    real switcher once per packet per stage, so crossing costs are
    measured, not assumed.  Per-compartment protocol work is charged
    explicitly inside each stage; whatever remains of a stage call's
    measured cycle total is the crossing overhead (switcher
    instructions plus stack zeroing), accumulated in
    ``stats.crossing_cycles``.  Allocator traffic — including any
    revocation sweep a ``free`` triggers — is measured separately into
    ``stats.cycles_alloc``.
    """

    def __init__(
        self,
        zero_copy: bool = True,
        queue_capacity: int = 64,
        max_frame: int = 1500,
        core: CoreKind = CoreKind.IBEX,
        mode: TemporalSafetyMode = TemporalSafetyMode.HARDWARE,
        quarantine_threshold: "int | None" = None,
        collect_messages: bool = False,
    ) -> None:
        self.zero_copy = zero_copy
        self.collect_messages = collect_messages
        self.stats = NetPipelineStats()
        self.latency = QuantileSketch()
        self.sessions: Dict[int, SessionState] = {}
        self.messages: List[Tuple[int, bytes]] = []

        self.system = System.build(
            core=core,
            mode=mode,
            finalize=False,
            app_stack_size=4096,
            quarantine_threshold=quarantine_threshold,
        )
        # The scaled path's metric group rides the system registry, so
        # observability snapshots carry per-compartment attribution
        # alongside the classic groups.
        self.system.registry.register_source("net", self.stats)
        self._core = self.system.core_model
        self._bus = self.system.bus
        self.firewall = Firewall(max_frame=max_frame)

        loader = self.system.loader
        firewall_comp = loader.add_compartment("firewall")
        tcpip_comp = loader.add_compartment("tcpip")
        tls_comp = loader.add_compartment("tls")
        mqtt_comp = loader.add_compartment("mqtt")
        firewall_comp.export("admit", self._stage_firewall)
        tcpip_comp.export("ingest", self._stage_tcpip)
        tls_comp.export("process", self._stage_tls)
        mqtt_comp.export("dispatch", self._stage_app)
        loader.link("app", "firewall", "admit")
        loader.link("app", "tcpip", "ingest")
        loader.link("app", "tls", "process")
        loader.link("app", "mqtt", "dispatch")
        loader.finalize()

        app = self.system.app
        self._tokens = {
            "firewall": app.get_import("firewall", "admit"),
            "tcpip": app.get_import("tcpip", "ingest"),
            "tls": app.get_import("tls", "process"),
            "mqtt": app.get_import("mqtt", "dispatch"),
        }

        self.q_ingress = BoundedQueue("ingress", queue_capacity)
        self.q_tcpip = BoundedQueue("tcpip", queue_capacity)
        self.q_tls = BoundedQueue("tls", queue_capacity)
        self.q_app = BoundedQueue("app", queue_capacity)
        self._queues = (self.q_ingress, self.q_tcpip, self.q_tls, self.q_app)

        # Work cycles charged inside the current stage call — what the
        # crossing-overhead measurement subtracts from the call total.
        self._inner = 0

    # ------------------------------------------------------------------
    # Cost accounting helpers
    # ------------------------------------------------------------------

    def _charge(self, bucket: str, cycles: int) -> None:
        """Charge explicit stage work and attribute it to a bucket."""
        self._core.charge(cycles)
        setattr(self.stats, bucket, getattr(self.stats, bucket) + cycles)
        self._inner += cycles

    def _alloc(self, size: int) -> Capability:
        """Heap allocation through the switcher, measured into the
        allocator bucket (includes its own crossings and any sweep)."""
        before = self._core.cycles
        cap = self.system.malloc(size)
        delta = self._core.cycles - before
        self.stats.cycles_alloc += delta
        self.stats.allocs += 1
        self._inner += delta
        return cap

    def _free(self, cap: Capability) -> None:
        before = self._core.cycles
        self.system.free(cap)
        delta = self._core.cycles - before
        self.stats.cycles_alloc += delta
        self.stats.frees += 1
        self._inner += delta

    def _call(self, stage: str, batch: "List[_PacketRef]"):
        """One cross-compartment stage call carrying a whole batch.

        The crossing cost (everything the switcher charges beyond the
        work the handler itself accounts for) is measured, not
        assumed — and amortised over ``len(batch)`` packets.
        """
        before = self._core.cycles
        self._inner = 0
        result = self.system.switcher.call(
            self.system.main_thread, self._tokens[stage], batch
        )
        elapsed = self._core.cycles - before
        self.stats.crossings += 1
        self.stats.crossing_cycles += elapsed - self._inner
        return result

    def _write(self, cap: Capability, data: bytes) -> None:
        cap.check_access(cap.base, max(1, len(data)), (Permission.SD,))
        self._bus.write_bytes(cap.base, data)

    def _read(self, cap: Capability, length: int) -> bytes:
        cap.check_access(cap.base, max(1, length), (Permission.LD,))
        return self._bus.read_bytes(cap.base, length)

    # ------------------------------------------------------------------
    # Sessions
    # ------------------------------------------------------------------

    def establish(self, conn_id: int) -> SessionState:
        """Handshake one connection (charged, bucketed separately)."""
        if conn_id in self.sessions:
            raise SessionError(f"connection {conn_id} already established")
        session = SessionState(conn_id)
        cycles = session.tls.handshake()
        self._core.charge(cycles)
        self.stats.handshake_cycles += cycles
        self.stats.sessions_established += 1
        session.mqtt.subscribe(
            "device/rpc", self._make_app_handler(session, "device/rpc")
        )
        session.mqtt.subscribe(
            "device/stream", self._make_app_handler(session, "device/stream")
        )
        self.sessions[conn_id] = session
        return session

    def establish_many(self, conn_ids) -> None:
        for conn_id in conn_ids:
            self.establish(conn_id)

    def _make_app_handler(self, session: SessionState, topic: str):
        def handler(payload: bytes) -> None:
            session.delivered += 1
            session.delivered_bytes += len(payload)
            self.stats.payload_bytes_delivered += len(payload)
            if self.collect_messages:
                self.messages.append(
                    (session.conn_id, topic.encode() + b":" + payload)
                )
        return handler

    # ------------------------------------------------------------------
    # Driver edge
    # ------------------------------------------------------------------

    def submit(self, conn_id: int, wire: bytes) -> bool:
        """One frame off the wire for ``conn_id``; False = ring full."""
        if conn_id not in self.sessions:
            raise SessionError(f"no session for connection {conn_id}")
        self.stats.packets_in += 1
        self.stats.bytes_in += len(wire)
        if not self.q_ingress.has_room:
            # A full RX ring drops before the allocation, like a NIC.
            self.stats.dropped_backpressure += 1
            self._charge("cycles_driver", DRIVER_CYCLES_PER_PACKET)
            return False
        if self.zero_copy:
            # DMA lands the frame in the heap buffer; the CPU pays only
            # the IRQ + descriptor fixed cost.
            self._charge("cycles_driver", DRIVER_CYCLES_PER_PACKET)
        else:
            # The frame sits in the driver-owned RX ring; software must
            # copy it out before the ring slot is recycled.
            self._charge(
                "cycles_driver",
                DRIVER_CYCLES_PER_PACKET
                + DRIVER_CYCLES_PER_BYTE * len(wire),
            )
        root = self._alloc(max(8, len(wire)))
        self._write(root, wire)
        item = _PacketRef(conn_id, root, root, len(wire), self._core.cycles)
        self.q_ingress.offer(item)
        return True

    # ------------------------------------------------------------------
    # The driver loop: drain stages upstream-to-downstream
    # ------------------------------------------------------------------

    def pump(self) -> None:
        """One scheduling round; a packet can traverse all stages.

        Each non-empty stage is entered exactly once, with everything
        its input queue holds (bounded by downstream room), so the
        crossing cost amortises over the batch.
        """
        self._pump_stage("firewall", self.q_ingress, self.q_tcpip)
        self._pump_stage("tcpip", self.q_tcpip, self.q_tls)
        self._pump_stage("tls", self.q_tls, self.q_app)
        count = len(self.q_app)
        if count:
            batch = [self.q_app.take() for _ in range(count)]
            results = self._call("mqtt", batch)
            for item, delivered in zip(batch, results):
                if delivered:
                    self.stats.packets_delivered += 1
                    self.latency.observe(self._core.cycles - item.t0)
                self._retire(item)

    def _pump_stage(
        self, stage: str, source: BoundedQueue, sink: BoundedQueue
    ) -> None:
        count = min(len(source), sink.capacity - len(sink))
        if not count:
            return
        batch = [source.take() for _ in range(count)]
        results = self._call(stage, batch)
        for item, forwarded in zip(batch, results):
            if forwarded:
                sink.offer(item)
            else:
                self._retire(item)

    def drain(self, max_rounds: int = 16) -> None:
        """Pump until every queue is empty (bounded rounds)."""
        for _ in range(max_rounds):
            if not any(len(queue) for queue in self._queues):
                return
            self.pump()

    def _retire(self, item: _PacketRef) -> None:
        self._free(item.root)

    # ------------------------------------------------------------------
    # Stage handlers (run inside their compartments)
    # ------------------------------------------------------------------

    def _stage_firewall(self, ctx, batch: "List[_PacketRef]") -> List[bool]:
        ctx.use_stack(96)
        results: List[bool] = []
        for item in batch:
            results.append(self._firewall_one(item))
        return results

    def _firewall_one(self, item: _PacketRef) -> bool:
        view, cycles = self.firewall.admit(item.cap, item.length)
        self._charge("cycles_firewall", cycles)
        if view is None:
            self.stats.dropped_corrupt += 1
            return False
        if self.zero_copy:
            self._charge("cycles_firewall", NARROW_CYCLES)
            self.stats.narrowings += 1
            item.cap = view
        else:
            # Copying discipline: the firewall re-materialises the
            # frame into a buffer it owns and releases the driver's.
            data = self._read(item.cap, item.length)
            self._charge(
                "cycles_firewall", _netstack.CYCLES_PER_BYTE * item.length
            )
            fresh = self._alloc(max(8, item.length))
            self._write(fresh, data)
            self._free(item.root)
            item.root = item.cap = fresh
        return True

    def _stage_tcpip(self, ctx, batch: "List[_PacketRef]") -> List[bool]:
        ctx.use_stack(160)
        results: List[bool] = []
        for item in batch:
            results.append(self._tcpip_one(item))
        return results

    def _tcpip_one(self, item: _PacketRef) -> bool:
        session = self.sessions[item.conn_id]
        data = self._read(item.cap, item.length)
        if self.zero_copy:
            self._charge(
                "cycles_tcpip",
                _netstack.CYCLES_PER_PACKET
                + _netstack.CYCLES_PER_BYTE_VALIDATE * item.length,
            )
        else:
            # Copy+validate fused at the seed's 6 cycles/byte constant.
            self._charge(
                "cycles_tcpip",
                _netstack.CYCLES_PER_PACKET
                + _netstack.CYCLES_PER_BYTE * item.length,
            )
        try:
            sequence, offset, length = validate_frame(data)
        except FramingError:
            self.stats.dropped_corrupt += 1
            return False
        if sequence != session.expected_seq:
            self.stats.dropped_out_of_order += 1
            return False
        session.expected_seq = sequence + 1
        item.nonce = sequence
        if self.zero_copy:
            self._charge("cycles_tcpip", NARROW_CYCLES)
            self.stats.narrowings += 1
            item.cap = item.cap.set_address(
                item.cap.base + offset
            ).set_bounds(length)
            item.length = length
        else:
            fresh = self._alloc(max(8, length))
            self._write(fresh, data[offset : offset + length])
            self._free(item.root)
            item.root = item.cap = fresh
            item.length = length
        return True

    def _stage_tls(self, ctx, batch: "List[_PacketRef]") -> List[bool]:
        ctx.use_stack(192)
        results: List[bool] = []
        for item in batch:
            results.append(self._tls_one(item))
        return results

    def _tls_one(self, item: _PacketRef) -> bool:
        session = self.sessions[item.conn_id]
        record = self._read(item.cap, item.length)
        try:
            plaintext, cycles = session.tls.open_record(record, item.nonce)
        except TLSError:
            self._charge("cycles_tls", TLS_REJECT_CYCLES)
            self.stats.dropped_tls += 1
            return False
        # The cipher work (identical in both disciplines) goes to its
        # own bucket; the record-layer overhead stays with the stack.
        crypto = _tls.CYCLES_PER_BYTE * len(plaintext)
        self._charge("cycles_crypto", crypto)
        self._charge("cycles_tls", cycles - crypto)
        if self.zero_copy:
            # In-place decrypt (the per-byte charge covers the store
            # back), then a narrowed *read-only* view of the plaintext
            # for the app — the MAC trailer and the store permission
            # both disappear from the application's reach.
            self._write(item.cap, plaintext)
            self._charge("cycles_tls", NARROW_CYCLES)
            self.stats.narrowings += 1
            item.cap = (
                item.cap.set_address(item.cap.base)
                .set_bounds(len(plaintext))
                .readonly()
            )
            item.length = len(plaintext)
        else:
            fresh = self._alloc(max(8, len(plaintext)))
            self._write(fresh, plaintext)
            self._free(item.root)
            item.root = item.cap = fresh
            item.length = len(plaintext)
        return True

    def _stage_app(self, ctx, batch: "List[_PacketRef]") -> List[bool]:
        ctx.use_stack(128)
        results: List[bool] = []
        for item in batch:
            results.append(self._app_one(item))
        return results

    def _app_one(self, item: _PacketRef) -> bool:
        session = self.sessions[item.conn_id]
        plaintext = self._read(item.cap, item.length)
        before_bytes = session.delivered_bytes
        try:
            handlers, cycles = session.mqtt.handle_record(plaintext)
        except MQTTError:
            self._charge("cycles_app", CYCLES_PER_MESSAGE // 2)
            self.stats.dropped_app += 1
            return False
        self._charge("cycles_app", cycles)
        if not self.zero_copy:
            # The application re-materialises the payload it keeps.
            payload_len = session.delivered_bytes - before_bytes
            scratch = self._alloc(max(8, payload_len))
            self._charge(
                "cycles_app", _netstack.CYCLES_PER_BYTE * payload_len
            )
            self._free(scratch)
        return True

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    @property
    def cycles(self) -> int:
        return self._core.cycles

    def counters(self) -> Dict[str, int]:
        return {
            field.name: getattr(self.stats, field.name)
            for field in fields(self.stats)
        }

    def report(self) -> dict:
        """The deterministic run summary (canonical key order).

        ``per_packet_cycles`` is the total steady-state cost per
        delivered packet (handshakes excluded); ``per_packet_stack_
        cycles`` additionally excludes ``cycles_crypto``, the cipher
        work that is byte-identical in both disciplines — the number
        that isolates what zero-copy actually changes.
        """
        delivered = self.stats.packets_delivered
        steady = self.cycles - self.stats.handshake_cycles
        stack = steady - self.stats.cycles_crypto
        return {
            "mode": "zerocopy" if self.zero_copy else "copy",
            "sessions": self.stats.sessions_established,
            "counters": dict(sorted(self.counters().items())),
            "queues": {
                queue.name: queue.snapshot() for queue in self._queues
            },
            "latency": self.latency.summary(),
            "latency_sketch": self.latency.to_dict(),
            "steady_cycles": steady,
            "stack_cycles": stack,
            "per_packet_cycles": (
                round(steady / delivered, 2) if delivered else 0.0
            ),
            "per_packet_stack_cycles": (
                round(stack / delivered, 2) if delivered else 0.0
            ),
            "crossing_cycles_per_packet": (
                round(self.stats.crossing_cycles / delivered, 2)
                if delivered
                else 0.0
            ),
        }
