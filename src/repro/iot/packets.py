"""Packet framing and the simulated cloud endpoint.

The paper's end-to-end application connects to the Azure IoT Hub and
fetches JavaScript bytecode over TLS+MQTT (section 7.2.3).  We have no
network, so :class:`CloudSource` plays the hub: it emits framed,
"encrypted" records carrying MQTT payloads — including the JS bytecode
program the device runs — on a configurable schedule.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Tuple


@dataclass(frozen=True)
class Message:
    """A plaintext application message, pre-TLS (cloud side)."""

    sequence: int
    body: bytes


@dataclass(frozen=True)
class Packet:
    """One network packet as it arrives at the device."""

    sequence: int
    payload: bytes

    @property
    def size(self) -> int:
        return len(self.payload)


def checksum16(data: bytes) -> int:
    """The framing checksum (a 16-bit ones'-complement-ish fold)."""
    total = 0
    for index, byte in enumerate(data):
        total = (total + (byte << (8 * (index & 1)))) & 0xFFFF_FFFF
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF


def frame(sequence: int, body: bytes) -> bytes:
    """Wrap a body in the on-wire header: seq(2) len(2) csum(2) body."""
    header = sequence.to_bytes(2, "little") + len(body).to_bytes(2, "little")
    return header + checksum16(header + body).to_bytes(2, "little") + body


#: Bytes of on-wire header before the body: seq(2) len(2) csum(2).
FRAME_HEADER_BYTES = 6


class FramingError(Exception):
    """Corrupt packet (bad length or checksum)."""


def validate_frame(data: bytes) -> Tuple[int, int, int]:
    """Verify a frame without materialising its body.

    Returns ``(sequence, body_offset, body_length)`` — enough for a
    receiver to *narrow* a capability over the original buffer to the
    body, instead of copying the body out.  Raises
    :class:`FramingError` exactly where :func:`unframe` would.
    """
    if len(data) < FRAME_HEADER_BYTES:
        raise FramingError("short frame")
    sequence = int.from_bytes(data[0:2], "little")
    length = int.from_bytes(data[2:4], "little")
    received = int.from_bytes(data[4:6], "little")
    body_length = len(data) - FRAME_HEADER_BYTES
    if body_length != length:
        raise FramingError(
            f"length mismatch: header {length}, got {body_length}"
        )
    if checksum16(data[0:4] + data[FRAME_HEADER_BYTES:]) != received:
        raise FramingError("checksum mismatch")
    return sequence, FRAME_HEADER_BYTES, length


def unframe(data: bytes) -> Tuple[int, bytes]:
    """Parse and verify a frame; returns (sequence, body)."""
    sequence, offset, length = validate_frame(data)
    return sequence, data[offset : offset + length]


class CloudSource:
    """The simulated IoT hub: emits telemetry polls and JS bytecode."""

    def __init__(self, bytecode: bytes, telemetry_interval_ms: int = 1000) -> None:
        self.bytecode = bytecode
        self.telemetry_interval_ms = telemetry_interval_ms
        self._sequence = 0

    def _next_seq(self) -> int:
        self._sequence += 1
        return self._sequence

    def initial_messages(self) -> List[Message]:
        """The connection bootstrap: bytecode delivery in MQTT chunks."""
        messages = []
        chunk = 64
        for offset in range(0, len(self.bytecode), chunk):
            body = b"PUB:device/code:" + self.bytecode[offset : offset + chunk]
            messages.append(Message(self._next_seq(), body))
        messages.append(Message(self._next_seq(), b"PUB:device/code-done:"))
        return messages

    def messages_for_tick(self, now_ms: int, tick_ms: int) -> List[Message]:
        """Messages arriving within [now_ms, now_ms + tick_ms)."""
        messages = []
        interval = self.telemetry_interval_ms
        boundary = (now_ms + interval - 1) // interval * interval
        while boundary < now_ms + tick_ms:
            body = b"PUB:device/poll:" + boundary.to_bytes(4, "little")
            messages.append(Message(self._next_seq(), body))
            boundary += interval
        return messages
