"""The TCP/IP compartment: per-packet heap buffers and framing checks.

"Every network packet that is sent and received is a separate heap
allocation, protected by temporal safety" (paper section 7.2.3).  The
stand-in stack receives framed packets, copies each into a freshly
``malloc``'d buffer through its capability, validates the frame, and
hands the *capability* (not a raw address) up to TLS.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Tuple

from repro.capability import Capability
from .packets import FramingError, Packet, unframe

#: Per-packet protocol processing beyond the copy (header parse, TCP
#: state machine update, ACK generation) in cycles.
CYCLES_PER_PACKET = 1400
#: Copy cost per byte into the heap buffer (load+store through caps).
CYCLES_PER_BYTE = 6


@dataclass
class NetStats:
    packets_received: int = 0
    packets_dropped: int = 0
    bytes_received: int = 0
    out_of_order: int = 0


class NetworkStack:
    """The TCP/IP compartment's receive path."""

    def __init__(
        self,
        malloc: Callable[[int], Capability],
        free: Callable[[Capability], None],
        write_buffer: Callable[[Capability, bytes], None],
        read_buffer: Callable[[Capability, int], bytes],
    ) -> None:
        self._malloc = malloc
        self._free = free
        self._write_buffer = write_buffer
        self._read_buffer = read_buffer
        self.stats = NetStats()
        self._expected_seq = 1

    def receive(self, packet: Packet) -> "Tuple[Optional[Capability], int, int]":
        """Ingest one packet.

        Returns ``(buffer_capability, body_length, cycles)``; the buffer
        capability covers exactly the packet body, heap-allocated — the
        capability is the object, there is no way for a later layer to
        reach adjacent packets.  Returns ``(None, 0, cycles)`` for a
        dropped (corrupt or out-of-order) packet.
        """
        cycles = CYCLES_PER_PACKET + CYCLES_PER_BYTE * packet.size
        try:
            sequence, body = unframe(packet.payload)
        except FramingError:
            self.stats.packets_dropped += 1
            return None, 0, cycles
        if sequence != self._expected_seq:
            self.stats.out_of_order += 1
            self.stats.packets_dropped += 1
            return None, 0, cycles
        self._expected_seq = sequence + 1
        self.stats.packets_received += 1
        self.stats.bytes_received += len(body)
        buffer_cap = self._malloc(max(8, len(body)))
        self._write_buffer(buffer_cap, body)
        return buffer_cap, len(body), cycles

    def release(self, buffer_cap: Capability) -> None:
        """Return a packet buffer to the heap (quarantined, revoked)."""
        self._free(buffer_cap)
