"""The TCP/IP compartment: per-packet heap buffers and framing checks.

"Every network packet that is sent and received is a separate heap
allocation, protected by temporal safety" (paper section 7.2.3).  The
stand-in stack supports both receive disciplines:

* :meth:`NetworkStack.receive` — the original copying path: the frame
  body is copied into a freshly ``malloc``'d buffer through its
  capability (6 cycles/byte, the load+store pair, checksum folded into
  the copy loop) and the *capability* is handed up to TLS.
* :meth:`NetworkStack.receive_view` — the zero-copy path: the packet
  already lives in one driver-edge heap allocation; the stack validates
  the frame *in place* (2 cycles/byte, load+accumulate only) and hands
  up a ``csetbounds``-narrowed view of the same buffer covering exactly
  the body.  No layer after the driver ever copies or allocates.

Drop accounting is disjoint by cause: ``dropped_corrupt`` (framing or
checksum failures) and ``dropped_out_of_order`` (sequence mismatches)
never overlap, so fleet telemetry can attribute losses; the historical
``packets_dropped`` / ``out_of_order`` names survive as derived
read-only properties.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Tuple

from repro.capability import Capability
from .packets import FramingError, Packet, validate_frame

#: Per-packet protocol processing beyond the copy (header parse, TCP
#: state machine update, ACK generation) in cycles.
CYCLES_PER_PACKET = 1400
#: Copy cost per byte into the heap buffer (load+store through caps);
#: the framing checksum is folded into the copy loop.
CYCLES_PER_BYTE = 6
#: In-place validation cost per byte (load+accumulate, no store) on the
#: zero-copy path, which never re-materialises the body.
CYCLES_PER_BYTE_VALIDATE = 2


@dataclass
class NetStats:
    packets_received: int = 0
    bytes_received: int = 0
    dropped_corrupt: int = 0
    dropped_out_of_order: int = 0

    @property
    def packets_dropped(self) -> int:
        """Derived total of all drops (historical table column)."""
        return self.dropped_corrupt + self.dropped_out_of_order

    @property
    def out_of_order(self) -> int:
        """Historical alias for the sequence-mismatch drop count."""
        return self.dropped_out_of_order


class NetworkStack:
    """The TCP/IP compartment's receive path.

    ``stats`` may be shared between per-session stacks so a scaled
    pipeline aggregates one drop/byte tally across all its connections.
    """

    def __init__(
        self,
        malloc: Callable[[int], Capability],
        free: Callable[[Capability], None],
        write_buffer: Callable[[Capability, bytes], None],
        read_buffer: Callable[[Capability, int], bytes],
        stats: Optional[NetStats] = None,
    ) -> None:
        self._malloc = malloc
        self._free = free
        self._write_buffer = write_buffer
        self._read_buffer = read_buffer
        self.stats = stats if stats is not None else NetStats()
        self._expected_seq = 1

    def receive(self, packet: Packet) -> "Tuple[Optional[Capability], int, int]":
        """Ingest one packet (copying path).

        Returns ``(buffer_capability, body_length, cycles)``; the buffer
        capability covers exactly the packet body, heap-allocated — the
        capability is the object, there is no way for a later layer to
        reach adjacent packets.  Returns ``(None, 0, cycles)`` for a
        dropped (corrupt or out-of-order) packet.
        """
        cycles = CYCLES_PER_PACKET + CYCLES_PER_BYTE * packet.size
        try:
            sequence, offset, length = validate_frame(packet.payload)
        except FramingError:
            self.stats.dropped_corrupt += 1
            return None, 0, cycles
        if sequence != self._expected_seq:
            self.stats.dropped_out_of_order += 1
            return None, 0, cycles
        body = packet.payload[offset : offset + length]
        self._expected_seq = sequence + 1
        self.stats.packets_received += 1
        self.stats.bytes_received += length
        buffer_cap = self._malloc(max(8, length))
        self._write_buffer(buffer_cap, body)
        return buffer_cap, length, cycles

    def receive_view(
        self, frame_cap: Capability, frame_len: int
    ) -> "Tuple[Optional[Capability], int, int, int]":
        """Ingest one packet already resident in a heap buffer (zero-copy).

        Validates the frame in place and returns
        ``(record_view, record_length, sequence, cycles)`` where
        ``record_view`` is the *same* buffer narrowed to exactly the
        frame body — no allocation, no copy — and ``sequence`` is the
        accepted wire sequence number (the TLS record nonce).  Returns
        ``(None, 0, 0, cycles)`` for a dropped packet; the caller keeps
        ownership of ``frame_cap`` either way.
        """
        cycles = CYCLES_PER_PACKET + CYCLES_PER_BYTE_VALIDATE * frame_len
        data = self._read_buffer(frame_cap, frame_len)
        try:
            sequence, offset, length = validate_frame(data)
        except FramingError:
            self.stats.dropped_corrupt += 1
            return None, 0, 0, cycles
        if sequence != self._expected_seq:
            self.stats.dropped_out_of_order += 1
            return None, 0, 0, cycles
        self._expected_seq = sequence + 1
        self.stats.packets_received += 1
        self.stats.bytes_received += length
        view = frame_cap.set_address(frame_cap.base + offset).set_bounds(length)
        return view, length, sequence, cycles

    def release(self, buffer_cap: Capability) -> None:
        """Return a packet buffer to the heap (quarantined, revoked)."""
        self._free(buffer_cap)
