"""A Microvium-like JavaScript bytecode VM, in its own compartment.

The paper's application fetches JavaScript bytecode from the cloud and
runs it under the Microvium interpreter every 10 ms to animate LEDs
(section 7.2.3).  This module is the stand-in: a small stack-based
bytecode VM whose heap objects are *real heap allocations* protected by
the system's temporal safety, and which — like Microvium — does not
reuse memory between garbage-collection passes, so the revocation
machinery covers JavaScript objects accessed from C too.

Bytecode (1-byte opcodes, optional 1-byte operand)::

    00 HALT        01 PUSH imm      02 ADD     03 SUB    04 MUL
    05 DUP         06 DROP          07 MOD
    10 LOADG s     11 STOREG s      (16 global slots)
    20 JNZ off     21 JMP off       (signed relative, from next pc)
    30 LED n       (set LED n to top-of-stack, popped)
    40 NEWOBJ len  (allocate a JS object of len bytes on the heap)
    41 SETF f      (store top-of-stack into field f of newest object)
    42 GETF f      (push field f of the newest object)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.capability import Capability

OP_HALT = 0x00
OP_PUSH = 0x01
OP_ADD = 0x02
OP_SUB = 0x03
OP_MUL = 0x04
OP_DUP = 0x05
OP_DROP = 0x06
OP_MOD = 0x07
OP_LOADG = 0x10
OP_STOREG = 0x11
OP_JNZ = 0x20
OP_JMP = 0x21
OP_LED = 0x30
OP_NEWOBJ = 0x40
OP_SETF = 0x41
OP_GETF = 0x42

_HAS_OPERAND = {
    OP_PUSH, OP_LOADG, OP_STOREG, OP_JNZ, OP_JMP, OP_LED, OP_NEWOBJ,
    OP_SETF, OP_GETF,
}

#: Interpreter cycles per bytecode operation (dispatch + execute on an
#: embedded core; Microvium-scale interpreters run tens of cycles/op).
CYCLES_PER_OP = 22
#: Extra cycles for an allocating op (VM-side bookkeeping only; the
#: allocator's own cost is charged by the allocator compartment).
CYCLES_PER_ALLOC_OP = 60

NUM_GLOBALS = 16
NUM_LEDS = 8


class VMError(Exception):
    """Bytecode fault (stack underflow, bad opcode, truncated operand)."""


@dataclass
class VMStats:
    ticks: int = 0
    ops_executed: int = 0
    objects_allocated: int = 0
    gc_passes: int = 0


class JavaScriptVM:
    """The interpreter compartment's state and engine."""

    def __init__(
        self,
        malloc: Callable[[int], Capability],
        free: Callable[[Capability], None],
        write_field: Callable[[Capability, int, int], None],
        read_field: Callable[[Capability, int], int],
        gc_interval_ticks: int = 50,
        max_steps_per_tick: int = 4096,
    ) -> None:
        """``malloc``/``free`` are the (cross-compartment) allocator

        entry points; ``write_field``/``read_field`` perform the actual
        capability-authorized memory accesses for object fields."""
        self._malloc = malloc
        self._free = free
        self._write_field = write_field
        self._read_field = read_field
        self.gc_interval_ticks = gc_interval_ticks
        self.max_steps_per_tick = max_steps_per_tick
        self.bytecode: bytes = b""
        self.globals: List[int] = [0] * NUM_GLOBALS
        self.leds: List[int] = [0] * NUM_LEDS
        self.stats = VMStats()
        self._objects: List[Capability] = []
        self._cycles_this_tick = 0

    # ------------------------------------------------------------------
    # Program management
    # ------------------------------------------------------------------

    def load_bytecode(self, bytecode: bytes) -> None:
        self.bytecode = bytes(bytecode)

    @property
    def has_program(self) -> bool:
        return bool(self.bytecode)

    @property
    def live_objects(self) -> int:
        return len(self._objects)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def run_tick(self) -> int:
        """Run one 10 ms animation tick; returns cycles consumed.

        A tick executes the program from the top until HALT.  Every
        ``gc_interval_ticks`` ticks a GC pass frees every object —
        Microvium-style no-reuse-before-collection.
        """
        if not self.bytecode:
            return 0
        self._cycles_this_tick = 0
        self.stats.ticks += 1
        pc = 0
        stack: List[int] = []
        code = self.bytecode
        for _ in range(self.max_steps_per_tick):
            if pc >= len(code):
                raise VMError(f"pc {pc} past end of bytecode")
            op = code[pc]
            operand = 0
            next_pc = pc + 1
            if op in _HAS_OPERAND:
                if pc + 1 >= len(code):
                    raise VMError(f"truncated operand at pc {pc}")
                operand = code[pc + 1]
                next_pc = pc + 2
            self.stats.ops_executed += 1
            self._cycles_this_tick += CYCLES_PER_OP

            if op == OP_HALT:
                break
            elif op == OP_PUSH:
                stack.append(operand)
            elif op in (OP_ADD, OP_SUB, OP_MUL, OP_MOD):
                b, a = self._pop(stack), self._pop(stack)
                if op == OP_ADD:
                    stack.append((a + b) & 0xFFFFFFFF)
                elif op == OP_SUB:
                    stack.append((a - b) & 0xFFFFFFFF)
                elif op == OP_MUL:
                    stack.append((a * b) & 0xFFFFFFFF)
                else:
                    stack.append(a % b if b else 0)
            elif op == OP_DUP:
                stack.append(self._peek(stack))
            elif op == OP_DROP:
                self._pop(stack)
            elif op == OP_LOADG:
                stack.append(self.globals[operand % NUM_GLOBALS])
            elif op == OP_STOREG:
                self.globals[operand % NUM_GLOBALS] = self._pop(stack)
            elif op == OP_JNZ:
                if self._pop(stack):
                    next_pc = next_pc + _signed8(operand)
            elif op == OP_JMP:
                next_pc = next_pc + _signed8(operand)
            elif op == OP_LED:
                self.leds[operand % NUM_LEDS] = self._pop(stack) & 1
            elif op == OP_NEWOBJ:
                size = max(8, operand)
                cap = self._malloc(size)
                self._objects.append(cap)
                self.stats.objects_allocated += 1
                self._cycles_this_tick += CYCLES_PER_ALLOC_OP
            elif op == OP_SETF:
                if not self._objects:
                    raise VMError("SETF with no live object")
                self._write_field(self._objects[-1], operand, self._pop(stack))
            elif op == OP_GETF:
                if not self._objects:
                    raise VMError("GETF with no live object")
                stack.append(self._read_field(self._objects[-1], operand))
            else:
                raise VMError(f"bad opcode {op:#04x} at pc {pc}")
            pc = next_pc
        else:
            raise VMError("tick exceeded max_steps_per_tick (runaway bytecode)")

        if self.stats.ticks % self.gc_interval_ticks == 0:
            self._collect()
        return self._cycles_this_tick

    def _collect(self) -> None:
        """GC: free everything; memory is not reused until revoked."""
        self.stats.gc_passes += 1
        for cap in self._objects:
            self._free(cap)
        self._objects = []

    @staticmethod
    def _pop(stack: List[int]) -> int:
        if not stack:
            raise VMError("stack underflow")
        return stack.pop()

    @staticmethod
    def _peek(stack: List[int]) -> int:
        if not stack:
            raise VMError("stack underflow")
        return stack[-1]


def _signed8(value: int) -> int:
    return value - 256 if value & 0x80 else value


def led_animation_bytecode(work_iterations: int = 32, objects_per_tick: int = 3) -> bytes:
    """The demo program: a counter-driven LED chase with JS garbage.

    Equivalent JavaScript::

        counter = (counter + 1) % 8
        for (led = 0; led < 8; led++) setLed(led, led == counter)
        for (i = 0; i < 32; i++) acc = (acc * 3 + i) % 251   // brightness
        for (k = 0; k < 3; k++) state = { counter: counter } // garbage

    The per-tick compute loop and fresh objects give the interpreter a
    realistic duty cycle; every object is a real heap allocation freed
    (not reused) at the next GC pass.
    """
    program = bytearray()
    # counter = (g0 + 1) % 8
    program += bytes([OP_LOADG, 0, OP_PUSH, 1, OP_ADD, OP_PUSH, 8, OP_MOD])
    program += bytes([OP_DUP, OP_STOREG, 0])
    program += bytes([OP_DROP])
    # led[i] = (i == counter): unrolled compare chain
    for led in range(NUM_LEDS):
        #   push counter; push led; sub -> zero if equal
        program += bytes([OP_LOADG, 0, OP_PUSH, led, OP_SUB])
        #   jnz -> not equal: push 0, jmp set; else push 1
        program += bytes([OP_JNZ, 4])  # skip "push 1, jmp +2"
        program += bytes([OP_PUSH, 1, OP_JMP, 2])
        program += bytes([OP_PUSH, 0])
        program += bytes([OP_LED, led])
    # The compute loop: g1 = i, g2 = acc.
    program += bytes([OP_PUSH, 0, OP_STOREG, 1])
    loop_top = len(program)
    program += bytes([OP_LOADG, 2, OP_PUSH, 3, OP_MUL])
    program += bytes([OP_LOADG, 1, OP_ADD, OP_PUSH, 251, OP_MOD, OP_STOREG, 2])
    program += bytes([OP_LOADG, 1, OP_PUSH, 1, OP_ADD, OP_DUP, OP_STOREG, 1])
    program += bytes([OP_PUSH, work_iterations & 0xFF, OP_SUB])
    # JNZ back to loop_top: offset is relative to the pc after the operand.
    back = loop_top - (len(program) + 2)
    program += bytes([OP_JNZ, back & 0xFF])
    # Fresh per-tick heap objects (JS garbage, collected later).
    for _ in range(objects_per_tick):
        program += bytes([OP_NEWOBJ, 16])
        program += bytes([OP_LOADG, 0, OP_SETF, 0])
    program += bytes([OP_HALT])
    return bytes(program)
