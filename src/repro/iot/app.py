"""The end-to-end IoT application (paper section 7.2.3).

A compartmentalized device: the TCP/IP stack, TLS, MQTT and the
JavaScript interpreter each live in their own compartment; every network
packet and every JS object is a separate heap allocation protected by
temporal safety.  The cloud delivers LED-animation bytecode over
TLS+MQTT; the JS program runs every 10 ms on a 20 MHz CHERIoT-Ibex.

The headline number is **CPU load** averaged over the run (including
the TLS connection establishment): the paper reports 17.5 %, i.e. the
idle thread gets 82.5 % of a 20 MHz core.  Our cycle accounting is
mechanistic — compartment switches, allocations and revocation through
the real machinery, protocol/crypto/interpreter work charged per byte
and per opcode — so the reproduced load lands in the same regime.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.allocator import TemporalSafetyMode
from repro.capability import Capability, Permission
from repro.machine import System
from repro.pipeline import CoreKind
from .firewall import Firewall
from .jsvm import JavaScriptVM, led_animation_bytecode
from .mqtt import MQTTClient, MQTTError
from .netstack import NetworkStack
from .packets import CloudSource, Message, Packet, frame
from .sessions import NARROW_CYCLES
from .tls import TLSError, TLSSession

#: The paper's FPGA dev board clock.
CLOCK_MHZ = 20.0
#: JS animation period (paper: "invoked every 10ms to animate the LEDs").
TICK_MS = 10


@dataclass
class IoTReport:
    """Outcome of one simulated run."""

    duration_ms: int
    busy_cycles: int
    available_cycles: int
    packets_received: int
    js_ticks: int
    js_objects_allocated: int
    gc_passes: int
    revocation_passes: int
    led_final: List[int] = field(default_factory=list)

    @property
    def cpu_load(self) -> float:
        """Fraction of CPU cycles not given to the idle thread."""
        return self.busy_cycles / max(1, self.available_cycles)

    @property
    def idle_fraction(self) -> float:
        return 1.0 - self.cpu_load


class IoTApplication:
    """Builds the compartmentalized stack on a System and runs it."""

    def __init__(
        self,
        core: CoreKind = CoreKind.IBEX,
        mode: TemporalSafetyMode = TemporalSafetyMode.HARDWARE,
        clock_mhz: float = CLOCK_MHZ,
        quarantine_threshold: "int | None" = None,
        zero_copy: bool = True,
    ) -> None:
        self.clock_mhz = clock_mhz
        #: Receive discipline: zero-copy capability narrowing (default)
        #: or the historical per-layer copying path.  Both produce
        #: byte-identical application behaviour and drop accounting —
        #: only the cycle costs differ (tests/iot pin the equivalence).
        self.zero_copy = zero_copy
        # The application thread nests app -> tcpip -> tls -> mqtt plus
        # allocator calls, so it gets a deeper stack than the allocation
        # microbenchmark's ("a couple of KiBs" — section 5.2).
        self.system = System.build(
            core=core,
            mode=mode,
            finalize=False,
            app_stack_size=4096,
            quarantine_threshold=quarantine_threshold,
        )
        loader = self.system.loader
        switcher = self.system.switcher
        bus = self.system.bus

        # --- extra compartments (each from a different "vendor") -------
        self.firewall_comp = loader.add_compartment("firewall")
        self.tcpip_comp = loader.add_compartment("tcpip")
        self.tls_comp = loader.add_compartment("tls")
        self.mqtt_comp = loader.add_compartment("mqtt")
        self.jsvm_comp = loader.add_compartment("jsvm")

        # Allocator entry points, called cross-compartment via the app's
        # main thread (matching the paper's per-packet allocations).
        def malloc(size: int) -> Capability:
            return self.system.malloc(size)

        def free(cap: Capability) -> None:
            self.system.free(cap)

        def write_buffer(cap: Capability, data: bytes) -> None:
            cap.check_access(cap.base, max(1, len(data)), (Permission.SD,))
            bus.write_bytes(cap.base, data)

        def read_buffer(cap: Capability, length: int) -> bytes:
            cap.check_access(cap.base, max(1, length), (Permission.LD,))
            return bus.read_bytes(cap.base, length)

        def write_field(cap: Capability, fld: int, value: int) -> None:
            address = cap.base + 4 * fld
            cap.check_access(address, 4, (Permission.SD,))
            bus.write_word(address, value, 4)

        def read_field(cap: Capability, fld: int) -> int:
            address = cap.base + 4 * fld
            cap.check_access(address, 4, (Permission.LD,))
            return bus.read_word(address, 4)

        self.netstack = NetworkStack(malloc, free, write_buffer, read_buffer)
        self.firewall = Firewall()
        #: Hostile/corrupt records rejected by TLS or MQTT parsing.
        self.dropped_records = 0
        self.tls = TLSSession(b"device-session-key-0001")
        self.mqtt = MQTTClient()
        self.vm = JavaScriptVM(malloc, free, write_field, read_field)
        self._read_buffer = read_buffer
        self._write_buffer = write_buffer
        self._malloc = malloc
        self._free = free

        # --- compartment exports ---------------------------------------
        # The copying chain (app -> tcpip -> tls -> mqtt) is the seed's;
        # the zero-copy chain enters through the firewall and hands a
        # narrowed view of the driver's buffer down the same topology.
        self.firewall_comp.export("admit", self._firewall_admit)
        self.tcpip_comp.export("ingest", self._tcpip_ingest)
        self.tcpip_comp.export("ingest_view", self._tcpip_ingest_view)
        self.tls_comp.export("process", self._tls_process)
        self.tls_comp.export("process_view", self._tls_process_view)
        self.mqtt_comp.export("dispatch", self._mqtt_dispatch)
        self.mqtt_comp.export("dispatch_view", self._mqtt_dispatch_view)
        self.jsvm_comp.export("tick", self._jsvm_tick)

        loader.link("app", "firewall", "admit")
        loader.link("app", "tcpip", "ingest")
        loader.link("firewall", "tcpip", "ingest_view")
        loader.link("tcpip", "tls", "process")
        loader.link("tcpip", "tls", "process_view")
        loader.link("tls", "mqtt", "dispatch")
        loader.link("tls", "mqtt", "dispatch_view")
        loader.link("app", "jsvm", "tick")
        loader.finalize()

        # Bytecode arrives over MQTT on device/code.
        self._code_buffer = bytearray()
        self.mqtt.subscribe("device/code", self._on_code_chunk)
        self.mqtt.subscribe("device/code-done", self._on_code_done)
        self.mqtt.subscribe("device/poll", lambda payload: None)

        self.cloud = CloudSource(led_animation_bytecode())

    # ------------------------------------------------------------------
    # Compartment entry points (run under the switcher)
    # ------------------------------------------------------------------

    def _firewall_admit(self, ctx, frame_cap: Capability, frame_len: int):
        ctx.use_stack(96)
        view, cycles = self.firewall.admit(frame_cap, frame_len)
        self.system.core_model.charge(cycles)
        if view is None:
            self.netstack.stats.dropped_corrupt += 1
            return 0
        self.system.core_model.charge(NARROW_CYCLES)
        return ctx.call("tcpip", "ingest_view", view, frame_len)

    def _tcpip_ingest(self, ctx, packet: Packet):
        ctx.use_stack(160)
        buffer_cap, length, cycles = self.netstack.receive(packet)
        self.system.core_model.charge(cycles)
        if buffer_cap is None:
            return 0
        try:
            return ctx.call("tls", "process", buffer_cap, length, packet.sequence)
        finally:
            self.netstack.release(buffer_cap)

    def _tcpip_ingest_view(self, ctx, frame_cap: Capability, frame_len: int):
        ctx.use_stack(160)
        view, length, sequence, cycles = self.netstack.receive_view(
            frame_cap, frame_len
        )
        self.system.core_model.charge(cycles)
        if view is None:
            return 0
        self.system.core_model.charge(NARROW_CYCLES)
        return ctx.call("tls", "process_view", view, length, sequence)

    def _tls_process(self, ctx, buffer_cap: Capability, length: int, nonce: int):
        ctx.use_stack(192)
        record = self._read_buffer(buffer_cap, length)
        try:
            plaintext, cycles = self.tls.open_record(record, nonce)
        except TLSError:
            # Tampered or replayed record: drop it.  The compartment
            # boundary means a hostile record can at worst cost the
            # cycles of its own MAC check.
            self.system.core_model.charge(600)
            self.dropped_records += 1
            return 0
        self.system.core_model.charge(cycles)
        try:
            return ctx.call("mqtt", "dispatch", plaintext)
        except MQTTError:
            self.dropped_records += 1
            return 0

    def _tls_process_view(self, ctx, record_view: Capability, length: int,
                          nonce: int):
        ctx.use_stack(192)
        record = self._read_buffer(record_view, length)
        try:
            plaintext, cycles = self.tls.open_record(record, nonce)
        except TLSError:
            self.system.core_model.charge(600)
            self.dropped_records += 1
            return 0
        # The per-byte charge covers the in-place transform (load, XOR,
        # store back through the same capability); the plaintext view
        # handed to MQTT is narrowed and read-only.
        self.system.core_model.charge(cycles)
        self._write_buffer(record_view, plaintext)
        self.system.core_model.charge(NARROW_CYCLES)
        plain_view = (
            record_view.set_address(record_view.base)
            .set_bounds(len(plaintext))
            .readonly()
        )
        try:
            return ctx.call("mqtt", "dispatch_view", plain_view, len(plaintext))
        except MQTTError:
            self.dropped_records += 1
            return 0

    def _mqtt_dispatch(self, ctx, plaintext: bytes):
        ctx.use_stack(128)
        handlers, cycles = self.mqtt.handle_record(plaintext)
        self.system.core_model.charge(cycles)
        return handlers

    def _mqtt_dispatch_view(self, ctx, plain_view: Capability, length: int):
        ctx.use_stack(128)
        plaintext = self._read_buffer(plain_view, length)
        handlers, cycles = self.mqtt.handle_record(plaintext)
        self.system.core_model.charge(cycles)
        return handlers

    def _jsvm_tick(self, ctx):
        ctx.use_stack(224)
        cycles = self.vm.run_tick()
        self.system.core_model.charge(cycles)
        return self.vm.leds[:]

    # ------------------------------------------------------------------
    # Bytecode delivery
    # ------------------------------------------------------------------

    def _on_code_chunk(self, payload: bytes) -> None:
        self._code_buffer += payload

    def _on_code_done(self, payload: bytes) -> None:
        self.vm.load_bytecode(bytes(self._code_buffer))

    # ------------------------------------------------------------------
    # The run loop
    # ------------------------------------------------------------------

    def _send(self, packet: Packet) -> None:
        if not self.zero_copy:
            token = self.system.app.get_import("tcpip", "ingest")
            self.system.switcher.call(self.system.main_thread, token, packet)
            return
        # Zero-copy driver edge: one heap buffer per packet, DMA'd into
        # directly (no CPU copy charge), then narrowed capability views
        # all the way up — the buffer is freed only when the chain
        # returns.
        wire = packet.payload
        frame_cap = self._malloc(max(8, len(wire)))
        try:
            self._write_buffer(frame_cap, wire)
            token = self.system.app.get_import("firewall", "admit")
            self.system.switcher.call(
                self.system.main_thread, token, frame_cap, len(wire)
            )
        finally:
            self._free(frame_cap)

    def _deliver(self, message: Message) -> None:
        """Cloud side: seal the message and put it on the wire.

        The cloud's encryption costs nothing on the device, so the seal
        cycles are not charged; the device-side decrypt is charged in
        the TLS compartment.
        """
        record, _ = self.tls.seal_record(message.body, message.sequence)
        self._send(Packet(message.sequence, frame(message.sequence, record)))

    def connect(self) -> None:
        """TLS connection establishment (charged like the paper's run)."""
        self.system.core_model.charge(self.tls.handshake())
        for message in self.cloud.initial_messages():
            self._deliver(message)

    def run(self, duration_ms: int = 60_000) -> IoTReport:
        """Simulate ``duration_ms`` of device time; returns the report."""
        model = self.system.core_model
        start_cycles = model.cycles
        self.connect()
        now = 0
        token_tick = self.system.app.get_import("jsvm", "tick")
        while now < duration_ms:
            for message in self.cloud.messages_for_tick(now, TICK_MS):
                self._deliver(message)
            if self.vm.has_program:
                self.system.switcher.call(self.system.main_thread, token_tick)
            now += TICK_MS
        busy = model.cycles - start_cycles
        available = int(duration_ms * 1000 * self.clock_mhz)
        return IoTReport(
            duration_ms=duration_ms,
            busy_cycles=busy,
            available_cycles=available,
            packets_received=self.netstack.stats.packets_received,
            js_ticks=self.vm.stats.ticks,
            js_objects_allocated=self.vm.stats.objects_allocated,
            gc_passes=self.vm.stats.gc_passes,
            revocation_passes=self.system.allocator.stats.revocation_passes,
            led_final=self.vm.leds[:],
        )
