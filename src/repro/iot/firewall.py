"""The firewall compartment: first hop off the driver edge.

Modeled on the compartmentalised network-stack design in "Enabling
Security on the Edge" (PAPERS.md): an untrusted-facing firewall sits
between the device driver and the TCP/IP compartment.  It inspects
only the frame *header* — length sanity against the configured MTU —
and either forwards a ``csetbounds``-narrowed capability view of the
packet buffer (trimmed to exactly the wire frame, shedding any
allocator rounding slack) or rejects the packet before it can touch
protocol state.

Content-level verdicts are deliberately not made here: checksum and
sequence failures stay attributed to the TCP/IP compartment's
:class:`~repro.iot.netstack.NetStats`, exactly as in the seed stack,
so telemetry keeps one unambiguous owner per drop cause.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.capability import Capability
from .packets import FRAME_HEADER_BYTES

#: Header rule match (port/length table lookup) per packet, in cycles.
CYCLES_PER_PACKET = 250

#: Largest frame the stock firewall admits (a small-device MTU).
DEFAULT_MAX_FRAME = 1500


@dataclass
class FirewallStats:
    admitted: int = 0
    rejected_runt: int = 0
    rejected_oversize: int = 0


class Firewall:
    """Header-only admission control over driver-edge packet buffers."""

    def __init__(
        self,
        max_frame: int = DEFAULT_MAX_FRAME,
        stats: Optional[FirewallStats] = None,
    ) -> None:
        self.max_frame = max_frame
        self.stats = stats if stats is not None else FirewallStats()

    def admit(
        self, frame_cap: Capability, frame_len: int
    ) -> "Tuple[Optional[Capability], int]":
        """Judge one frame; returns ``(narrowed_view, cycles)``.

        ``narrowed_view`` is ``frame_cap`` rebased to its own base and
        bounded to exactly ``frame_len`` — downstream compartments can
        never reach allocator padding past the wire bytes.  ``None``
        means rejected (runt or oversize); the caller keeps ownership
        of the buffer either way.
        """
        if frame_len < FRAME_HEADER_BYTES:
            self.stats.rejected_runt += 1
            return None, CYCLES_PER_PACKET
        if frame_len > self.max_frame:
            self.stats.rejected_oversize += 1
            return None, CYCLES_PER_PACKET
        self.stats.admitted += 1
        view = frame_cap.set_address(frame_cap.base).set_bounds(frame_len)
        return view, CYCLES_PER_PACKET
