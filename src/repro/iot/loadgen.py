"""Seeded multi-connection load generator for the scaled pipeline.

Plays the cloud side of thousands of concurrent sessions against a
:class:`~repro.iot.sessions.NetPipeline`, netperf-style: each
connection is assigned a traffic shape at construction —

* **request/response** (``rr``): one small message per round (16–48
  byte payload), the telemetry-poll/RPC pattern;
* **streaming**: a burst of fixed 64-byte payloads per round, the
  bulk-transfer pattern (the seed app's bytecode download uses the
  same chunk size).

Every frame is sealed by a per-connection cloud-side
:class:`~repro.iot.tls.TLSSession` holding the same derived key as the
device side (``session_key(conn_id)``), with the frame sequence number
as the record nonce — exactly the seed application's wire discipline.

Fault injection mirrors what real links do *without* killing the
stream, because the seed's sequencing only advances on an exact match:

* **corrupt**: a copy of the next frame with one body byte flipped is
  sent first (guaranteed checksum failure → one ``dropped_corrupt``),
  followed by the clean frame;
* **reorder**: two consecutive frames swap on the wire and the
  overtaken one is retransmitted — ``[f2, f1, f2]`` — costing one
  ``dropped_out_of_order`` while still delivering both.

All randomness (shape assignment, payload sizes, injection points,
cross-connection interleaving) comes from one ``random.Random(seed)``,
so a given configuration reproduces its wire byte stream exactly.
"""

from __future__ import annotations

import random
from typing import Dict, List, Tuple

from .packets import FRAME_HEADER_BYTES, frame
from .sessions import NetPipeline, session_key
from .tls import TLSSession

#: Streaming-shape payload size (the seed's bytecode chunk size).
STREAM_PAYLOAD_BYTES = 64


class NetLoadGen:
    """Deterministic traffic for a set of connection ids."""

    def __init__(
        self,
        conn_ids,
        seed: int = 20260807,
        stream_fraction: float = 0.5,
        stream_burst: int = 4,
        corrupt_rate: float = 0.0,
        reorder_rate: float = 0.0,
    ) -> None:
        self.conn_ids = sorted(conn_ids)
        self._rng = random.Random(seed)
        self.stream_burst = stream_burst
        self.corrupt_rate = corrupt_rate
        self.reorder_rate = reorder_rate

        self._tls: Dict[int, TLSSession] = {}
        self._seq: Dict[int, int] = {}
        self.shapes: Dict[int, str] = {}
        # Shapes draw from the rng in sorted connection order, so the
        # assignment is a pure function of (conn_ids, seed).
        for conn_id in self.conn_ids:
            tls = TLSSession(session_key(conn_id))
            tls.handshake()  # cloud side: costs the device nothing
            self._tls[conn_id] = tls
            self._seq[conn_id] = 1
            self.shapes[conn_id] = (
                "stream"
                if self._rng.random() < stream_fraction
                else "rr"
            )

        self.frames_emitted = 0
        self.expected_delivered = 0
        self.expected_payload_bytes = 0
        self.injected_corrupt = 0
        self.injected_reorder = 0

    # ------------------------------------------------------------------
    # Wire building
    # ------------------------------------------------------------------

    def _payload(self, conn_id: int, round_index: int, msg: int,
                 size: int) -> bytes:
        stamp = f"c{conn_id:05d}r{round_index:04d}m{msg:02d}".encode("ascii")
        if len(stamp) >= size:
            return stamp[:size]
        return stamp + b"." * (size - len(stamp))

    def _wire(self, conn_id: int, body: bytes) -> bytes:
        sequence = self._seq[conn_id]
        self._seq[conn_id] += 1
        record, _ = self._tls[conn_id].seal_record(body, sequence)
        return frame(sequence, record)

    def _conn_round(self, conn_id: int, round_index: int) -> List[bytes]:
        """The clean frames one connection emits this round."""
        wires: List[bytes] = []
        if self.shapes[conn_id] == "rr":
            size = self._rng.randrange(16, 49)
            body = b"PUB:device/rpc:" + self._payload(
                conn_id, round_index, 0, size
            )
            self.expected_payload_bytes += size
            wires.append(self._wire(conn_id, body))
        else:
            for msg in range(self.stream_burst):
                body = b"PUB:device/stream:" + self._payload(
                    conn_id, round_index, msg, STREAM_PAYLOAD_BYTES
                )
                self.expected_payload_bytes += STREAM_PAYLOAD_BYTES
                wires.append(self._wire(conn_id, body))
        self.expected_delivered += len(wires)
        return wires

    def _inject(self, wires: List[bytes]) -> List[bytes]:
        """Apply corrupt/reorder faults to one connection's round."""
        out = list(wires)
        if out and self.corrupt_rate and self._rng.random() < self.corrupt_rate:
            victim = out[0]
            flip = self._rng.randrange(FRAME_HEADER_BYTES, len(victim))
            corrupted = (
                victim[:flip]
                + bytes([victim[flip] ^ 0xFF])
                + victim[flip + 1 :]
            )
            out.insert(0, corrupted)
            self.injected_corrupt += 1
        if (
            len(out) >= 2
            and self.reorder_rate
            and self._rng.random() < self.reorder_rate
        ):
            # Swap the last two frames and retransmit the overtaken
            # one: [f1, f2] becomes [f2, f1, f2].
            first, second = out[-2], out[-1]
            out[-2:] = [second, first, second]
            self.injected_reorder += 1
        return out

    # ------------------------------------------------------------------
    # Rounds
    # ------------------------------------------------------------------

    def frames_for_round(self, round_index: int) -> List[Tuple[int, bytes]]:
        """All (conn_id, wire) pairs for one round, interleaved.

        Per-connection frame order is preserved (it must be — the
        receiver sequences per session); the *cross*-connection
        interleave is a seeded shuffle, so the pipeline sees sessions
        genuinely mixed rather than drained one at a time.
        """
        per_conn: List[List[Tuple[int, bytes]]] = []
        for conn_id in self.conn_ids:
            wires = self._inject(self._conn_round(conn_id, round_index))
            per_conn.append([(conn_id, wire) for wire in wires])
        merged: List[Tuple[int, bytes]] = []
        while per_conn:
            queue = per_conn[self._rng.randrange(len(per_conn))]
            merged.append(queue.pop(0))
            if not queue:
                per_conn.remove(queue)
        self.frames_emitted += len(merged)
        return merged


def drive(
    pipeline: NetPipeline,
    gen: NetLoadGen,
    rounds: int,
    max_retries: int = 64,
) -> None:
    """Push ``rounds`` of generated traffic through the pipeline.

    When the ingress ring is full the submit is refused and counted
    (``dropped_backpressure``); the driver then pumps the pipeline to
    free ring slots and retransmits, modelling a flow-controlled
    sender.  Losing the frame instead is not an option the protocol
    survives: the receiver's per-session sequencing would stall and
    drop everything after the gap.
    """
    for round_index in range(rounds):
        for conn_id, wire in gen.frames_for_round(round_index):
            for _ in range(max_retries):
                if pipeline.submit(conn_id, wire):
                    break
                pipeline.pump()
            else:
                raise RuntimeError("ingress ring wedged despite pumping")
        pipeline.pump()
    pipeline.drain()
