"""The full CHERIoT SoC: one object wiring every subsystem together.

:class:`System` assembles the co-designed stack the paper evaluates —
tagged SRAM, revocation bitmap, a core timing model (Flute or Ibex),
load filter, software and background revokers, the allocator
compartment, the trusted switcher and the scheduler — behind a small
facade:

    >>> from repro.machine import System, CoreKind
    >>> system = System.build(core=CoreKind.IBEX)
    >>> cap = system.malloc(64)          # cross-compartment call
    >>> system.free(cap)                 # paint + zero + quarantine
    >>> system.core_model.cycles         # mechanistic cycle count

The ``malloc``/``free`` convenience methods route through the
compartment switcher from an application thread, exactly as the paper's
allocation microbenchmark does, so their cycle costs include the
cross-compartment call and stack-zeroing machinery.
"""

from __future__ import annotations

from typing import Optional

from repro.allocator import CheriHeap, TemporalSafetyMode
from repro.capability import Capability, Permission, make_roots
from repro.isa import (
    CPU,
    BlockCacheStats,
    CSRFile,
    ExecutionMode,
    LoadFilter,
    PMPUnit,
    TraceJITStats,
)
from repro.memory import (
    MemoryMap,
    RevocationMap,
    SystemBus,
    TaggedMemory,
    default_memory_map,
)
from repro.obs import MetricsRegistry, MetricsSnapshot, Telemetry
from repro.pipeline import CoreKind, CoreModel, make_core_model
from repro.revoker import BackgroundRevoker, EpochCounter, SoftwareRevoker
from repro.rtos import (
    Compartment,
    CompartmentSwitcher,
    Loader,
    Scheduler,
    SealingService,
    Thread,
    make_hardware_wait_policy,
)
from repro.rtos.compartment import InterruptPosture

#: Stack bytes the benchmark application keeps resident below its frame
#: pointer before making cross-compartment calls ("stack usage of
#: embedded applications is usually limited to a couple of KiBs" —
#: section 5.2; the unused remainder is what no-HWM switching must zero).
APP_RESIDENT_STACK = 752
#: Stack frame the allocator's entry points push while servicing a call.
ALLOC_HANDLER_FRAME = 160


class System:
    """A complete simulated CHERIoT SoC plus its RTOS image."""

    def __init__(
        self,
        memory_map: MemoryMap,
        bus: SystemBus,
        sram: TaggedMemory,
        revocation_map: RevocationMap,
        core_model: CoreModel,
        core_kind: CoreKind,
        csr: CSRFile,
        epoch: EpochCounter,
        software_revoker: SoftwareRevoker,
        hardware_revoker: BackgroundRevoker,
        load_filter: LoadFilter,
        switcher: CompartmentSwitcher,
        scheduler: Scheduler,
        loader: Loader,
        allocator: CheriHeap,
        sealing: SealingService,
        app: Compartment,
        main_thread: Thread,
        idle_thread: Thread,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        self.memory_map = memory_map
        self.bus = bus
        self.sram = sram
        self.revocation_map = revocation_map
        self.core_model = core_model
        self.core_kind = core_kind
        self.csr = csr
        self.epoch = epoch
        self.software_revoker = software_revoker
        self.hardware_revoker = hardware_revoker
        self.load_filter = load_filter
        self.switcher = switcher
        self.scheduler = scheduler
        self.loader = loader
        self.allocator = allocator
        self.sealing = sealing
        self.app = app
        self.main_thread = main_thread
        self.idle_thread = idle_thread
        self.obs = telemetry
        # The metrics registry replaces the ad-hoc dict plumbing that
        # stats_summary used to hand-build: every classic stat holder
        # registers once, in the summary's historical key order, and
        # summaries/diffs are registry snapshots from here on.  With
        # telemetry enabled the same registry also carries the obs
        # metrics (span counts, allocation-size histogram).
        self.registry = telemetry.registry if telemetry else MetricsRegistry()
        self.registry.register_scalar("cycles", lambda: self.core_model.cycles)
        self.registry.register_source("bus", self.bus.stats)
        self.registry.register_source("heap", self.allocator.stats)
        self.registry.register_source("switcher", self.switcher.stats)
        self.registry.register_source("scheduler", self.scheduler.stats)
        self.registry.register_source(
            "software_revoker", self.software_revoker.stats
        )
        self.registry.register_source(
            "hardware_revoker", self.hardware_revoker.stats
        )
        self.registry.register_source("load_filter", self.load_filter.stats)
        # Execution-tier counters: every CPU this system creates
        # (``make_cpu``) shares these holders, so the summary aggregates
        # translation/compilation activity across all harts.
        self.block_cache_stats = BlockCacheStats()
        self.trace_jit_stats = TraceJITStats()
        self.registry.register_source("block_cache", self.block_cache_stats)
        self.registry.register_source("trace_jit", self.trace_jit_stats)
        self.registry.register_scalar("epoch", lambda: self.epoch.value)
        self.registry.register_scalar(
            "quarantined_bytes", lambda: self.allocator.quarantined_bytes
        )
        self.registry.register_scalar(
            "live_allocations", lambda: self.allocator.live_allocations
        )

    #: The registry groups stats_summary() has always reported, in its
    #: historical key order (tests and reports rely on the shape).
    _CLASSIC_GROUPS = (
        "cycles",
        "bus",
        "heap",
        "switcher",
        "scheduler",
        "software_revoker",
        "hardware_revoker",
        "load_filter",
        "block_cache",
        "trace_jit",
        "epoch",
        "quarantined_bytes",
        "live_allocations",
    )

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @staticmethod
    def build(
        core: CoreKind = CoreKind.IBEX,
        mode: TemporalSafetyMode = TemporalSafetyMode.HARDWARE,
        memory_map: Optional[MemoryMap] = None,
        load_filter_enabled: bool = True,
        hwm_enabled: bool = True,
        timeslice_cycles: int = 1000,
        quarantine_threshold: Optional[int] = None,
        app_stack_size: int = 1024,
        finalize: bool = True,
        telemetry: bool = False,
        trace_capacity: Optional[int] = None,
    ) -> "System":
        """Boot a system: memory, devices, RTOS image, allocator.

        ``core`` picks the timing model; ``mode`` the allocator's
        temporal-safety configuration; ``hwm_enabled`` fits (or omits)
        the stack high-water-mark hardware — the paper's ``(S)``
        variants.  With ``finalize=False`` the loader keeps the boot
        roots so the caller can add more compartments (the IoT app does)
        before calling ``system.loader.finalize()`` itself.

        ``telemetry`` wires a :class:`repro.obs.Telemetry` (span tracer,
        cycle attributor, obs metrics) into the switcher, scheduler,
        allocator and revokers; disabled, those subsystems follow the
        seed's exact code paths.  ``trace_capacity`` bounds the span
        ring buffer.
        """
        mm = memory_map if memory_map is not None else default_memory_map()
        bus = SystemBus()
        sram = bus.attach_sram(TaggedMemory(mm.code.base, mm.sram_bytes))
        rmap = RevocationMap(mm.heap.base, mm.heap.size)
        bus.attach_device(mm.revocation_mmio.base, mm.revocation_mmio.size, rmap)

        core_model = make_core_model(core, load_filter_enabled=load_filter_enabled)
        csr = CSRFile(hwm_enabled=hwm_enabled)
        epoch = EpochCounter()
        software_revoker = SoftwareRevoker(bus, rmap, epoch, core_model, csr=csr)
        hardware_revoker = BackgroundRevoker(bus, rmap, epoch, core_model)
        bus.attach_device(mm.revoker_mmio.base, mm.revoker_mmio.size, hardware_revoker)
        load_filter = LoadFilter(rmap)

        roots = make_roots()
        sealing_table = (
            roots.memory.set_address(mm.globals_.base).set_bounds(4096)
        )
        sealing = SealingService(roots.sealing, sealing_table)
        unseal_authority = roots.sealing
        switcher = CompartmentSwitcher(bus, csr, unseal_authority, core_model)
        scheduler = Scheduler(csr, core_model, timeslice_cycles=timeslice_cycles)
        loader = Loader(mm, roots, switcher)

        # --- compartments -------------------------------------------------
        alloc_comp = loader.add_compartment("alloc")
        app_comp = loader.add_compartment("app")
        loader.grant_mmio("alloc", mm.revocation_mmio, "revocation-bitmap")
        loader.grant_mmio("alloc", mm.revoker_mmio, "revoker-device")

        # The production Ibex revoker raises a completion interrupt; the
        # Flute prototype must be polled (paper section 7.2.2).
        wait_policy = make_hardware_wait_policy(
            scheduler, completion_interrupt=(core is CoreKind.IBEX)
        )
        allocator = CheriHeap(
            bus,
            mm.heap,
            rmap,
            roots.memory,
            mode,
            software_revoker=software_revoker,
            hardware_revoker=hardware_revoker,
            epoch=epoch,
            core_model=core_model,
            quarantine_threshold=quarantine_threshold,
            wait_policy=wait_policy,
            hardware_revoker_mmio_base=None,
        )

        def malloc_handler(ctx, size):
            ctx.use_stack(ALLOC_HANDLER_FRAME)
            return allocator.malloc(size)

        def free_handler(ctx, cap):
            ctx.use_stack(ALLOC_HANDLER_FRAME)
            allocator.free(cap)

        alloc_comp.export("malloc", malloc_handler)
        alloc_comp.export("free", free_handler)
        loader.link("app", "alloc", "malloc")
        loader.link("app", "alloc", "free")

        # --- threads ------------------------------------------------------
        main_thread = loader.add_thread(
            "main", stack_size=app_stack_size, priority=1, entry_compartment="app"
        )
        idle_thread = loader.add_thread(
            "idle", stack_size=256, priority=0, entry_compartment="app"
        )
        scheduler.add_thread(main_thread)
        scheduler.add_thread(idle_thread)
        scheduler.switch_to(main_thread)
        # The application sits APP_RESIDENT_STACK deep when it calls out.
        main_thread.sp = main_thread.stack_region.top - min(
            APP_RESIDENT_STACK, app_stack_size - 64
        )

        obs: Optional[Telemetry] = None
        if telemetry:
            if trace_capacity is not None:
                obs = Telemetry(core_model, capacity=trace_capacity)
            else:
                obs = Telemetry(core_model)
            switcher.obs = obs
            scheduler.obs = obs
            allocator.obs = obs
            software_revoker.obs = obs
            hardware_revoker.obs = obs

        if finalize:
            loader.finalize()
        return System(
            memory_map=mm,
            bus=bus,
            sram=sram,
            revocation_map=rmap,
            core_model=core_model,
            core_kind=core,
            csr=csr,
            epoch=epoch,
            software_revoker=software_revoker,
            hardware_revoker=hardware_revoker,
            load_filter=load_filter,
            switcher=switcher,
            scheduler=scheduler,
            loader=loader,
            allocator=allocator,
            sealing=sealing,
            app=app_comp,
            main_thread=main_thread,
            idle_thread=idle_thread,
            telemetry=obs,
        )

    # ------------------------------------------------------------------
    # Application-level conveniences
    # ------------------------------------------------------------------

    def malloc(self, size: int) -> Capability:
        """Allocate via a cross-compartment call from the main thread."""
        token = self.app.get_import("alloc", "malloc")
        return self.switcher.call(self.main_thread, token, size)

    def free(self, cap: Capability) -> None:
        """Free via a cross-compartment call from the main thread."""
        token = self.app.get_import("alloc", "free")
        self.switcher.call(self.main_thread, token, cap)

    def make_cpu(self, mode: ExecutionMode = ExecutionMode.CHERIOT,
                 pmp: Optional[PMPUnit] = None,
                 block_cache: bool = True,
                 trace_jit: bool = True,
                 jit_threshold: int = 50) -> CPU:
        """An ISA-level CPU sharing this system's bus and devices.

        ``block_cache``/``trace_jit``/``jit_threshold`` select the
        execution tier, exactly as on :class:`~repro.isa.CPU` — the
        fleet device runner and the tier-differential recovery tests
        pin or vary the tier through this seam.
        """
        cpu = CPU(
            self.bus,
            mode=mode,
            load_filter=self.load_filter if self.core_model.load_filter_enabled else None,
            pmp=pmp,
            timing=self.core_model,
            hwm_enabled=self.csr.hwm_enabled,
            block_cache=block_cache,
            trace_jit=trace_jit,
            jit_threshold=jit_threshold,
        )
        # Aggregate this hart's tier counters into the system registry.
        cpu.block_stats = self.block_cache_stats
        cpu.jit_stats = self.trace_jit_stats
        return cpu

    def reset_cycles(self) -> None:
        """Zero the cycle counters (between benchmark phases)."""
        self.core_model.reset()
        if self.obs is not None:
            self.obs.attributor.rebase()

    def stats_summary(self) -> dict:
        """One dict of every subsystem's counters (for reports/tests).

        Delegates to the metrics registry, restricted to the classic
        groups so the shape is identical whether or not telemetry is
        enabled (obs-only metrics live in :meth:`stats_snapshot`).
        """
        return self.registry.snapshot(self._CLASSIC_GROUPS).as_dict()

    def stats_snapshot(self) -> MetricsSnapshot:
        """A full registry snapshot (classic groups plus obs metrics)."""
        return self.registry.snapshot()

    def stats_diff(self, before: MetricsSnapshot) -> dict:
        """Numeric deltas of every registered metric since ``before``.

        The before/after idiom for workloads::

            before = system.stats_snapshot()
            run_workload(system)
            delta = system.stats_diff(before)
        """
        return self.registry.snapshot().diff(before).as_dict()

    def audit(self):
        """The section 3.1.2 image audit for this system."""
        from repro.rtos.audit import audit_image

        return audit_image(self.switcher)
