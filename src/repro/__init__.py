"""CHERIoT: Complete Memory Safety for Embedded Devices — reproduction.

An ISA-level Python reproduction of the MICRO 2023 CHERIoT platform:
the capability architecture (permission compression, E/B/T bounds,
sentries), the temporal-safety hardware assists (load filter, background
revoker), two core timing models (Flute, Ibex), the co-designed RTOS
(compartments, switcher, scheduler, stack high-water mark) and the heap
allocator with epoch quarantine — plus the benchmark harness that
regenerates every table and figure of the paper's evaluation.

Quickstart::

    from repro import System, CoreKind
    system = System.build(core=CoreKind.IBEX)
    cap = system.allocator.malloc(64)
    system.allocator.free(cap)

See ``examples/quickstart.py`` and DESIGN.md for the full tour.
"""

__version__ = "1.0.0"

from .capability import Capability, Permission, make_roots

__all__ = [
    "Capability",
    "Permission",
    "__version__",
    "make_roots",
]


def __getattr__(name):
    # Lazy imports: the machine module pulls in the whole stack, which is
    # circular to import eagerly from substrate modules.
    if name in ("System", "CoreKind"):
        from . import machine

        return getattr(machine, name)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
