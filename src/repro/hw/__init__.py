"""Structural hardware cost models (area, power) for Table 2."""

from .critical_path import TimingReport, format_timing, timing_reports
from .area_power import (
    BASELINE_GATES,
    BASELINE_POWER_MW,
    FMAX_MHZ,
    Block,
    CoreVariant,
    Table2Row,
    area_power_table,
    format_table2,
    ibex_variants,
    rv32e,
    rv32e_capabilities,
    rv32e_pmp16,
    with_background_revoker,
    with_load_filter,
)

__all__ = [
    "BASELINE_GATES",
    "BASELINE_POWER_MW",
    "Block",
    "CoreVariant",
    "FMAX_MHZ",
    "Table2Row",
    "TimingReport",
    "area_power_table",
    "format_table2",
    "format_timing",
    "timing_reports",
    "ibex_variants",
    "rv32e",
    "rv32e_capabilities",
    "rv32e_pmp16",
    "with_background_revoker",
    "with_load_filter",
]
