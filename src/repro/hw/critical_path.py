"""Critical-path (f_max) estimates for the Ibex variants.

The paper reports that **all** Ibex configurations close timing at the
same 330 MHz f_max — i.e. none of the CHERIoT additions lands on the
critical path:

* the bounds check shares the MEM-stage window the address adder
  already occupies;
* the load filter's base extraction "would not be on the critical
  path" (section 3.3.2) and its revocation-bit lookup has a dedicated
  pipeline slot (Figure 4);
* the background revoker is a decoupled state machine.

We model each block with a logic *depth* (gate levels on its worst
input-to-register path) and a stage assignment; a variant's f_max is
set by its deepest stage.  Depths are estimates calibrated so the
RV32E baseline sits at the paper's 330 MHz; the claim reproduced is
that every variant's deepest path is still a *baseline* path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from .area_power import FMAX_MHZ

#: Gate levels the 28nm process closes at the baseline f_max; the
#: baseline's deepest stage defines it.
_BASELINE_DEPTH = 36


@dataclass(frozen=True)
class PathContribution:
    """One block's worst path within a pipeline stage."""

    block: str
    stage: str
    depth: int  # gate levels


#: Per-stage logic depth of the baseline core (the ALU + bypass network
#: in EX is the critical stage of a small in-order core).
_BASELINE_PATHS = (
    PathContribution("fetch-align", "IF", 22),
    PathContribution("decode", "ID", 28),
    PathContribution("alu-bypass", "EX", _BASELINE_DEPTH),
    PathContribution("lsu-align", "MEM", 30),
    PathContribution("writeback-mux", "WB", 14),
)

_PMP_PATHS = (
    # The PMP's comparators and priority mux sit in parallel with the
    # LSU's address path but the 16-way priority tree is deep.
    PathContribution("pmp-match-priority", "MEM", 34),
)

_CAPABILITY_PATHS = (
    # Bounds decode overlaps the address add; the final compare adds a
    # few levels but stays under the EX ALU path.
    PathContribution("cap-bounds-compare", "MEM", 35),
    PathContribution("cap-perm-check", "MEM", 18),
    PathContribution("cap-setbounds", "EX", 33),
)

_LOAD_FILTER_PATHS = (
    # Base extraction happens in MEM (already computed for the bounds
    # check); the revocation bit lands in WB and only gates the tag.
    PathContribution("load-filter-base-extract", "MEM", 24),
    PathContribution("load-filter-tag-strip", "WB", 8),
)

_REVOKER_PATHS = (
    # Decoupled engine: its own tiny 2-stage pipeline.
    PathContribution("revoker-fsm", "ENGINE", 20),
    PathContribution("revoker-snoop-compare", "ENGINE", 16),
)


@dataclass(frozen=True)
class TimingReport:
    variant: str
    critical_block: str
    critical_stage: str
    depth: int

    @property
    def fmax_mhz(self) -> float:
        """Depth scales delay linearly; calibrated at the baseline."""
        return FMAX_MHZ * _BASELINE_DEPTH / self.depth

    @property
    def meets_baseline_fmax(self) -> bool:
        return self.depth <= _BASELINE_DEPTH


def _variants() -> "List[Tuple[str, tuple]]":
    return [
        ("RV32E", _BASELINE_PATHS),
        ("RV32E + PMP16", _BASELINE_PATHS + _PMP_PATHS),
        ("RV32E + capabilities", _BASELINE_PATHS + _CAPABILITY_PATHS),
        (
            "+ load filter",
            _BASELINE_PATHS + _CAPABILITY_PATHS + _LOAD_FILTER_PATHS,
        ),
        (
            "+ background revoker",
            _BASELINE_PATHS
            + _CAPABILITY_PATHS
            + _LOAD_FILTER_PATHS
            + _REVOKER_PATHS,
        ),
    ]


def timing_reports() -> List[TimingReport]:
    """Critical path of every Table 2 variant."""
    reports = []
    for name, paths in _variants():
        worst = max(paths, key=lambda p: p.depth)
        reports.append(TimingReport(name, worst.block, worst.stage, worst.depth))
    return reports


def format_timing() -> str:
    from repro.analysis.reporting import format_table

    rows = [
        (
            r.variant,
            f"{r.critical_block} ({r.critical_stage})",
            r.depth,
            f"{r.fmax_mhz:.0f} MHz",
        )
        for r in timing_reports()
    ]
    return format_table(["variant", "critical path", "depth", "f_max"], rows)
