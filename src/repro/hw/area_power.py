"""Structural area and power model for the Ibex variants (paper Table 2).

The paper synthesizes CHERIoT-Ibex variants on TSMC 28nm HPC+ and
reports gate-equivalents (GE) and estimated CoreMark power at 300 MHz.
We cannot synthesize RTL here, so this module rebuilds Table 2 from a
*structural composition*: each variant is a list of blocks with GE
budgets derived from their storage and datapath content (flops, 32-bit
comparators, adders), calibrated so the RV32E baseline matches the
paper's 26,988 GE.  The variants then differ by exactly the blocks the
paper describes:

* **PMP16** — 16 entries of address registers plus parallel comparators,
  engaged on *every* access;
* **capabilities** — register file widened to capability width, bounds
  decode/check, permission decode, ``csetbounds`` encode;
* **load filter** — a base extractor and the revocation-SRAM request
  port (tiny: the MEM stage already has bounds logic);
* **background revoker** — the two-deep word pipeline, address
  counters, snoop comparators and a bus arbiter.

Power follows the paper's own caveat: the pre-silicon model over-relies
on gate count, with an activity factor distinguishing structures that
toggle on every access (the PMP's comparators) from ones that do not.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

#: Gate-equivalents per flip-flop (typical 28nm standard-cell budget).
GE_PER_FLOP = 6.0
#: Gate-equivalents per bit of a parallel magnitude comparator.
GE_PER_COMPARATOR_BIT = 5.5
#: f_max reported for all Ibex configurations (MHz).
FMAX_MHZ = 330.0
#: Frequency the power figures are quoted at (MHz).
POWER_FREQ_MHZ = 300.0

#: The paper's RV32E baseline, used to calibrate the composition.
BASELINE_GATES = 26988
BASELINE_POWER_MW = 1.437


@dataclass(frozen=True)
class Block:
    """One structural block and its GE budget."""

    name: str
    gates: int
    #: Relative switching activity under CoreMark (1.0 = core average).
    activity: float = 1.0


@dataclass(frozen=True)
class CoreVariant:
    """A named configuration: the baseline plus added blocks."""

    name: str
    blocks: Tuple[Block, ...]

    @property
    def gates(self) -> int:
        return sum(b.gates for b in self.blocks)

    @property
    def power_mw(self) -> float:
        """Activity-weighted dynamic power, calibrated to the baseline.

        The paper cautions that its own pre-silicon power model
        over-relies on gate count; ours normalizes the activity-weighted
        gate sum so the RV32E baseline reproduces its 1.437 mW exactly,
        and the variants differ by their blocks' CoreMark activity.
        """
        weighted = sum(b.gates * b.activity for b in self.blocks)
        base = sum(b.gates * b.activity for b in _baseline_blocks())
        return BASELINE_POWER_MW * (weighted / base)


def _baseline_blocks() -> Tuple[Block, ...]:
    """The RV32E core, decomposed (budgets sum to the calibrated total)."""
    regfile = int(16 * 32 * GE_PER_FLOP)  # 3072: 16 x 32-bit registers
    alu = 4200
    multiplier = 3400
    decoder_ctrl = 5100
    lsu = 3000
    csrs = 4100
    fetch = BASELINE_GATES - (regfile + alu + multiplier + decoder_ctrl + lsu + csrs)
    return (
        Block("register-file", regfile),
        Block("alu", alu),
        Block("multiplier-divider", multiplier, activity=0.6),
        Block("decode-control", decoder_ctrl),
        Block("load-store-unit", lsu),
        Block("csr-file", csrs, activity=0.4),
        Block("fetch-prefetch", fetch),
    )


def _pmp_blocks() -> Tuple[Block, ...]:
    """A 16-entry PMP: per entry, two 32-bit address CSRs, an 8-bit cfg,

    and two 32-bit comparators engaged on **every** instruction fetch
    and data access (hence the high activity factor)."""
    per_entry_storage = int((2 * 32 + 8) * GE_PER_FLOP)  # 432
    per_entry_compare = int(2 * 32 * GE_PER_COMPARATOR_BIT)  # 352
    per_entry_priority = 1023  # match/priority mux trees and cfg decode
    per_entry = per_entry_storage + per_entry_compare + per_entry_priority
    return (
        Block("pmp-entry-storage", 16 * per_entry_storage, activity=0.2),
        Block("pmp-comparators", 16 * per_entry_compare, activity=1.0),
        Block("pmp-priority-mux", 16 * per_entry_priority, activity=0.28),
        Block("pmp-csr-address-decode", 5, activity=0.2),
    )


def _capability_blocks() -> Tuple[Block, ...]:
    """The CHERIoT extension on Ibex (section 4): widened register file,

    bounds decode on the address path, permission logic, and the
    ``csetbounds`` encoder.  No large associative structures, and the
    bounds units only engage on memory operations."""
    regfile_widening = int(16 * 33 * GE_PER_FLOP)  # 3168: +32 meta bits + tag
    bounds_decode = 9800  # E/B/T decode + two 33-bit adders (Figure 3)
    bounds_check = 6200  # base/top compare on the memory path
    perm_decode = 2400  # 6-bit format expansion + checks (Figure 2)
    setbounds_encode = 6100  # exponent search + rounding (csetbounds)
    pcc_scrs = 3454  # PCC + 4 SCRs at capability width
    return (
        Block("cap-regfile-widening", regfile_widening),
        Block("cap-bounds-decode", bounds_decode, activity=0.7),
        Block("cap-bounds-check", bounds_check, activity=0.7),
        Block("cap-perm-decode", perm_decode, activity=0.5),
        Block("cap-setbounds-encode", setbounds_encode, activity=0.3),
        Block("cap-pcc-scrs", pcc_scrs, activity=0.4),
    )


def _load_filter_blocks() -> Tuple[Block, ...]:
    """Base extraction reuses the bounds decoder; what is new is the

    revocation-SRAM request port and the writeback tag strip."""
    return (Block("load-filter", 321, activity=0.5),)


def _revoker_blocks() -> Tuple[Block, ...]:
    """The two-stage background engine (section 3.3.3): two in-flight

    65-bit word registers, region/cursor counters, two snoop
    comparators and the bus arbiter.  Idle (low activity) except in
    allocation-heavy phases."""
    word_regs = int(2 * 65 * GE_PER_FLOP)  # 780
    counters = int(3 * 32 * GE_PER_FLOP)  # 576: start/end/cursor
    snoop = int(2 * 32 * GE_PER_COMPARATOR_BIT)  # 352
    control_arbiter = 2991 - (word_regs + counters + snoop)
    return (
        Block("revoker-word-pipeline", word_regs, activity=0.8),
        Block("revoker-counters", counters, activity=0.8),
        Block("revoker-snoop-comparators", snoop, activity=1.5),
        Block("revoker-control-arbiter", control_arbiter, activity=0.6),
    )


def rv32e() -> CoreVariant:
    return CoreVariant("RV32E", _baseline_blocks())


def rv32e_pmp16() -> CoreVariant:
    return CoreVariant("RV32E + PMP16", _baseline_blocks() + _pmp_blocks())


def rv32e_capabilities() -> CoreVariant:
    return CoreVariant(
        "RV32E + capabilities", _baseline_blocks() + _capability_blocks()
    )


def with_load_filter() -> CoreVariant:
    return CoreVariant(
        "+ load filter",
        _baseline_blocks() + _capability_blocks() + _load_filter_blocks(),
    )


def with_background_revoker() -> CoreVariant:
    return CoreVariant(
        "+ background revoker",
        _baseline_blocks()
        + _capability_blocks()
        + _load_filter_blocks()
        + _revoker_blocks(),
    )


def ibex_variants() -> List[CoreVariant]:
    """The five rows of Table 2, in order."""
    return [
        rv32e(),
        rv32e_pmp16(),
        rv32e_capabilities(),
        with_load_filter(),
        with_background_revoker(),
    ]


@dataclass(frozen=True)
class Table2Row:
    name: str
    gates: int
    gate_ratio: float
    power_mw: float
    power_ratio: float


def area_power_table() -> List[Table2Row]:
    """Regenerate Table 2: gates and power for each Ibex variant."""
    base = rv32e()
    rows = []
    for variant in ibex_variants():
        rows.append(
            Table2Row(
                name=variant.name,
                gates=variant.gates,
                gate_ratio=variant.gates / base.gates,
                power_mw=round(variant.power_mw, 3),
                power_ratio=variant.power_mw / base.power_mw,
            )
        )
    return rows


def format_table2(rows: "List[Table2Row] | None" = None) -> str:
    """Render the Table 2 reproduction as text."""
    rows = rows if rows is not None else area_power_table()
    lines = [
        f"{'Ibex 300MHz':28s} {'Gates':>10s} {'':>8s} {'Power(mW)':>10s} {'':>8s}",
    ]
    for row in rows:
        ratio = f"({row.gate_ratio:.2f}x)" if row.gate_ratio != 1.0 else ""
        pratio = f"({row.power_ratio:.2f}x)" if row.power_ratio != 1.0 else ""
        lines.append(
            f"{row.name:28s} {row.gates:>10d} {ratio:>8s} "
            f"{row.power_mw:>10.3f} {pratio:>8s}"
        )
    return "\n".join(lines)
