"""A tiny typed IR for benchmark kernels.

The paper compiles its benchmarks with the CHERIoT Clang; we cannot,
so this IR plus :mod:`repro.cc.lower` reproduces the *codegen effects*
that drive the reported overheads when targeting the two ISAs:

* pointers are 32-bit integers on rv32e but 64-bit capabilities on
  CHERIoT (pointer loads/stores become ``clc``/``csc``);
* the compiler must set bounds on address-taken stack allocations;
* the two known compiler bugs (section 7.2): address-computation
  folding does not fire when the base is a capability, and accesses to
  globals re-apply bounds even when provably in bounds.

Types are just ``int`` (32-bit) and ``ptr`` (pointer/capability).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

INT = "int"
PTR = "ptr"


class IRError(Exception):
    """Malformed IR (unknown variable, type mismatch, depth overflow)."""


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Const:
    """An integer literal."""

    value: int


@dataclass(frozen=True)
class Var:
    """A reference to a local variable or parameter."""

    name: str


@dataclass(frozen=True)
class BinOp:
    """Binary operation; comparisons yield 0/1.

    Supported ops: ``+ - * / % & | ^ << >> < <= > >= == != <u``.
    """

    op: str
    left: "Expr"
    right: "Expr"


@dataclass(frozen=True)
class Load:
    """Load ``size`` bytes at ``ptr + offset``.

    ``as_ptr=True`` loads a pointer-typed value (a capability on
    CHERIoT, requiring ``clc`` and subject to the load filter).
    """

    ptr: "Expr"
    offset: int = 0
    size: int = 4
    signed: bool = False
    as_ptr: bool = False


@dataclass(frozen=True)
class PtrAdd:
    """Pointer displacement by a byte expression."""

    ptr: "Expr"
    delta: "Expr"


@dataclass(frozen=True)
class GlobalRef:
    """The address of (a pointer to) a module global."""

    name: str


@dataclass(frozen=True)
class LocalArrayRef:
    """A pointer to a function-local array (address-taken stack slot)."""

    name: str


@dataclass(frozen=True)
class CallExpr:
    """Direct call to another function in the module."""

    function: str
    args: Tuple["Expr", ...] = ()


Expr = Union[Const, Var, BinOp, Load, PtrAdd, GlobalRef, LocalArrayRef, CallExpr]


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Assign:
    var: str
    value: Expr


@dataclass(frozen=True)
class Store:
    """Store ``value`` (int-typed) at ``ptr + offset``."""

    ptr: Expr
    value: Expr
    offset: int = 0
    size: int = 4


@dataclass(frozen=True)
class StorePtr:
    """Store a pointer-typed value (``csc`` on CHERIoT)."""

    ptr: Expr
    value: Expr
    offset: int = 0


@dataclass(frozen=True)
class If:
    cond: Expr
    then: Tuple["Stmt", ...]
    orelse: Tuple["Stmt", ...] = ()


@dataclass(frozen=True)
class While:
    cond: Expr
    body: Tuple["Stmt", ...]


@dataclass(frozen=True)
class Return:
    value: Optional[Expr] = None


@dataclass(frozen=True)
class ExprStmt:
    expr: Expr


Stmt = Union[Assign, Store, StorePtr, If, While, Return, ExprStmt]


# ---------------------------------------------------------------------------
# Functions and modules
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Param:
    name: str
    type: str = INT  # INT or PTR


@dataclass
class Function:
    """One function: params, typed locals, local arrays, body."""

    name: str
    params: List[Param] = field(default_factory=list)
    locals: Dict[str, str] = field(default_factory=dict)  # name -> type
    arrays: Dict[str, int] = field(default_factory=dict)  # name -> bytes
    body: List[Stmt] = field(default_factory=list)

    def type_of(self, name: str) -> str:
        for param in self.params:
            if param.name == name:
                return param.type
        if name in self.locals:
            return self.locals[name]
        raise IRError(f"{self.name}: unknown variable {name!r}")


@dataclass
class GlobalVar:
    """A module global: a byte region, optionally initialised."""

    name: str
    size: int
    init: bytes = b""


@dataclass
class Module:
    """A linkage unit: functions plus global data."""

    functions: Dict[str, Function] = field(default_factory=dict)
    globals: Dict[str, GlobalVar] = field(default_factory=dict)

    def add_function(self, function: Function) -> Function:
        if function.name in self.functions:
            raise IRError(f"duplicate function {function.name!r}")
        self.functions[function.name] = function
        return function

    def add_global(self, name: str, size: int, init: bytes = b"") -> GlobalVar:
        if name in self.globals:
            raise IRError(f"duplicate global {name!r}")
        size = (size + 7) & ~7
        var = GlobalVar(name, size, init)
        self.globals[name] = var
        return var
