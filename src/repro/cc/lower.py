"""Lowering the kernel IR to rv32e or CHERIoT assembly.

The code generator is deliberately simple — all locals live in stack
slots, expressions evaluate on a small scratch-register stack — which
matches the paper's ``-Oz`` setting (optimize for size, performance
second).  What it models *carefully* is everything the paper says
distinguishes CHERIoT codegen from plain RV32E (section 7.2):

* pointer-typed values occupy capability registers; loading/storing
  them uses ``clc``/``csc`` (8 bytes, two bus beats on Ibex, and the
  loaded value passes the load filter);
* address-taken stack allocations get ``csetboundsimm`` applied — the
  unavoidable bounds-setting cost;
* **compiler bug 1**: constant-offset folding into load/store address
  computation does not fire when the base is a capability, so CHERIoT
  code pays an extra ``cincaddrimm`` per non-zero-offset access;
* **compiler bug 2**: every access to a global re-applies bounds
  (``csetboundsimm``) even when provably in bounds.

Both "bugs" can be disabled (``fixed_compiler=True``) to model the
fixes the authors expect before silicon — used by the ablation bench.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from . import ir


class Target(enum.Enum):
    RV32E = "rv32e"
    CHERIOT = "cheriot"


#: Scratch registers for expression evaluation (never holds locals).
_SCRATCH = ("t0", "t1", "t2", "a4", "a5")
#: Argument registers (a0..a3).
_ARG_REGS = ("a0", "a1", "a2", "a3")

_CMP_OPS = {"<", "<u", "<=", ">", ">=", "==", "!="}
_SIMPLE_OPS = {
    "+": "add",
    "-": "sub",
    "*": "mul",
    "/": "div",
    "%": "rem",
    "&": "and",
    "|": "or",
    "^": "xor",
    "<<": "sll",
    ">>": "srl",
}


@dataclass
class GlobalLayout:
    """Where a global lands in the data region."""

    name: str
    offset: int
    size: int
    init: bytes


@dataclass
class CompiledModule:
    """Assembly text plus the data-region layout the driver must set up."""

    assembly: str
    globals_layout: Dict[str, GlobalLayout]
    data_size: int
    target: Target


class CodeGen:
    """One-shot lowering of a :class:`repro.cc.ir.Module`."""

    def __init__(
        self,
        module: ir.Module,
        target: Target,
        fixed_compiler: bool = False,
        data_base: int = 0,
        optimize: bool = False,
    ) -> None:
        self.module = module
        self.target = target
        self.fixed_compiler = fixed_compiler
        #: Run the peephole pass (register reuse of just-stored values).
        self.optimize = optimize
        #: Absolute address of the data region (rv32e addresses globals
        #: absolutely; CHERIoT reaches them through the gp capability).
        self.data_base = data_base
        self._lines: List[str] = []
        self._label_counter = 0
        self._globals: Dict[str, GlobalLayout] = {}
        self._data_size = 0
        self._layout_globals()
        # Per-function state
        self._fn: Optional[ir.Function] = None
        self._slots: Dict[str, int] = {}
        self._frame = 0
        self._scratch_depth = 0
        self._epilogue_label = ""

    # ------------------------------------------------------------------
    # Module-level
    # ------------------------------------------------------------------

    def _layout_globals(self) -> None:
        offset = 0
        for name, gvar in self.module.globals.items():
            self._globals[name] = GlobalLayout(name, offset, gvar.size, gvar.init)
            offset += gvar.size
        self._data_size = offset

    def compile(self) -> CompiledModule:
        """Lower every function; entry order follows insertion order."""
        for function in self.module.functions.values():
            self._lower_function(function)
        lines = self._lines
        if self.optimize:
            from .opt import peephole

            lines, _ = peephole(lines)
        return CompiledModule(
            assembly="\n".join(lines) + "\n",
            globals_layout=dict(self._globals),
            data_size=self._data_size,
            target=self.target,
        )

    # ------------------------------------------------------------------
    # Emission helpers
    # ------------------------------------------------------------------

    def _emit(self, line: str) -> None:
        self._lines.append("    " + line)

    def _label(self, hint: str) -> str:
        self._label_counter += 1
        return f".L{hint}{self._label_counter}"

    def _place(self, label: str) -> None:
        self._lines.append(f"{label}:")

    @property
    def _cheriot(self) -> bool:
        return self.target is Target.CHERIOT

    def _slot_size(self, type_: str) -> int:
        if type_ == ir.PTR and self._cheriot:
            return 8
        return 4

    # ------------------------------------------------------------------
    # Scratch register stack
    # ------------------------------------------------------------------

    def _push(self) -> str:
        if self._scratch_depth >= len(_SCRATCH):
            raise ir.IRError("expression too deep for the scratch stack")
        reg = _SCRATCH[self._scratch_depth]
        self._scratch_depth += 1
        return reg

    def _pop(self) -> None:
        self._scratch_depth -= 1

    # ------------------------------------------------------------------
    # Function lowering
    # ------------------------------------------------------------------

    def _lower_function(self, fn: ir.Function) -> None:
        self._fn = fn
        self._slots = {}
        offset = 0
        # Locals and params first (ints 4B, pointers 4B/8B by target)...
        for param in fn.params:
            size = self._slot_size(param.type)
            offset = _align(offset, size)
            self._slots[param.name] = offset
            offset += size
        for name, type_ in fn.locals.items():
            size = self._slot_size(type_)
            offset = _align(offset, size)
            self._slots[name] = offset
            offset += size
        # ...then address-taken arrays, 8-aligned.
        for name, nbytes in fn.arrays.items():
            offset = _align(offset, 8)
            self._slots[name] = offset
            offset += _align(nbytes, 8)
        # Return-address slot at the frame top.
        ra_size = 8 if self._cheriot else 4
        offset = _align(offset, ra_size)
        self._ra_slot = offset
        offset += ra_size
        self._frame = _align(offset, 8)
        self._epilogue_label = self._label(f"ret_{fn.name}_")

        self._place(fn.name)
        self._prologue(fn)
        for stmt in fn.body:
            self._stmt(stmt)
        # Implicit return for fall-through.
        self._place(self._epilogue_label)
        self._epilogue()

    def _prologue(self, fn: ir.Function) -> None:
        if self._cheriot:
            self._emit(f"cincaddrimm csp, csp, -{self._frame}")
            self._emit(f"csc cra, {self._ra_slot}(csp)")
        else:
            self._emit(f"addi sp, sp, -{self._frame}")
            self._emit(f"sw ra, {self._ra_slot}(sp)")
        for index, param in enumerate(fn.params):
            if index >= len(_ARG_REGS):
                raise ir.IRError(f"{fn.name}: too many parameters")
            self._store_slot(param.name, _ARG_REGS[index], fn.type_of(param.name))

    def _epilogue(self) -> None:
        if self._cheriot:
            self._emit(f"clc cra, {self._ra_slot}(csp)")
            self._emit(f"cincaddrimm csp, csp, {self._frame}")
        else:
            self._emit(f"lw ra, {self._ra_slot}(sp)")
            self._emit(f"addi sp, sp, {self._frame}")
        self._emit("ret")

    # ------------------------------------------------------------------
    # Slots
    # ------------------------------------------------------------------

    def _load_slot(self, name: str, reg: str, type_: str) -> None:
        off = self._slots[name]
        if type_ == ir.PTR and self._cheriot:
            self._emit(f"clc {reg}, {off}(csp)")
        elif self._cheriot:
            self._emit(f"lw {reg}, {off}(csp)")
        else:
            self._emit(f"lw {reg}, {off}(sp)")

    def _store_slot(self, name: str, reg: str, type_: str) -> None:
        off = self._slots[name]
        if type_ == ir.PTR and self._cheriot:
            self._emit(f"csc {reg}, {off}(csp)")
        elif self._cheriot:
            self._emit(f"sw {reg}, {off}(csp)")
        else:
            self._emit(f"sw {reg}, {off}(sp)")

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------

    def _type_of(self, expr: ir.Expr) -> str:
        if isinstance(expr, (ir.GlobalRef, ir.LocalArrayRef, ir.PtrAdd)):
            return ir.PTR
        if isinstance(expr, ir.Load):
            return ir.PTR if expr.as_ptr else ir.INT
        if isinstance(expr, ir.Var):
            assert self._fn is not None
            return self._fn.type_of(expr.name)
        return ir.INT

    def _expr(self, expr: ir.Expr) -> str:
        """Evaluate ``expr`` into a fresh scratch register."""
        if isinstance(expr, ir.Const):
            reg = self._push()
            self._emit(f"li {reg}, {expr.value}")
            return reg
        if isinstance(expr, ir.Var):
            reg = self._push()
            assert self._fn is not None
            self._load_slot(expr.name, reg, self._fn.type_of(expr.name))
            return reg
        if isinstance(expr, ir.BinOp):
            return self._binop(expr)
        if isinstance(expr, ir.Load):
            return self._load(expr)
        if isinstance(expr, ir.PtrAdd):
            return self._ptradd(expr)
        if isinstance(expr, ir.GlobalRef):
            return self._globalref(expr)
        if isinstance(expr, ir.LocalArrayRef):
            return self._arrayref(expr)
        if isinstance(expr, ir.CallExpr):
            raise ir.IRError(
                "calls may only appear as the whole right-hand side of an "
                "assignment or as a statement"
            )
        raise ir.IRError(f"unknown expression node: {expr!r}")

    def _binop(self, expr: ir.BinOp) -> str:
        left = self._expr(expr.left)
        right = self._expr(expr.right)
        op = expr.op
        if op in _SIMPLE_OPS:
            self._emit(f"{_SIMPLE_OPS[op]} {left}, {left}, {right}")
        elif op == "<":
            self._emit(f"slt {left}, {left}, {right}")
        elif op == "<u":
            self._emit(f"sltu {left}, {left}, {right}")
        elif op == ">":
            self._emit(f"slt {left}, {right}, {left}")
        elif op == "<=":
            self._emit(f"slt {left}, {right}, {left}")
            self._emit(f"xori {left}, {left}, 1")
        elif op == ">=":
            self._emit(f"slt {left}, {left}, {right}")
            self._emit(f"xori {left}, {left}, 1")
        elif op == "==":
            self._emit(f"sub {left}, {left}, {right}")
            self._emit(f"sltiu {left}, {left}, 1")
        elif op == "!=":
            self._emit(f"sub {left}, {left}, {right}")
            self._emit(f"sltu {left}, zero, {left}")
        else:
            raise ir.IRError(f"unknown operator {op!r}")
        self._pop()  # right
        return left

    def _load(self, expr: ir.Load) -> str:
        reg = self._expr(expr.ptr)
        mnemonic = {1: "lbu", 2: "lhu", 4: "lw"}[expr.size]
        if expr.signed:
            mnemonic = {1: "lb", 2: "lh", 4: "lw"}[expr.size]
        offset = expr.offset
        if self._cheriot and offset != 0 and not self.fixed_compiler:
            # Compiler bug 1: no folding of constant offsets into
            # capability-based addressing — materialize the address.
            self._emit(f"cincaddrimm {reg}, {reg}, {offset}")
            offset = 0
        if expr.as_ptr:
            self._emit(f"clc {reg}, {offset}({reg})" if self._cheriot
                       else f"lw {reg}, {offset}({reg})")
        else:
            self._emit(f"{mnemonic} {reg}, {offset}({reg})")
        return reg

    def _ptradd(self, expr: ir.PtrAdd) -> str:
        base = self._expr(expr.ptr)
        delta = self._expr(expr.delta)
        if self._cheriot:
            self._emit(f"cincaddr {base}, {base}, {delta}")
        else:
            self._emit(f"add {base}, {base}, {delta}")
        self._pop()
        return base

    def _globalref(self, expr: ir.GlobalRef) -> str:
        layout = self._globals[expr.name]
        reg = self._push()
        if self._cheriot:
            self._emit(f"cincaddrimm {reg}, gp, {layout.offset}")
            if not self.fixed_compiler:
                # Compiler bug 2: bounds re-applied on every global access.
                self._emit(f"csetboundsimm {reg}, {reg}, {layout.size}")
        else:
            self._emit(f"li {reg}, {self.data_base + layout.offset}")
        return reg

    def _arrayref(self, expr: ir.LocalArrayRef) -> str:
        assert self._fn is not None
        if expr.name not in self._fn.arrays:
            raise ir.IRError(f"{self._fn.name}: unknown array {expr.name!r}")
        off = self._slots[expr.name]
        size = self._fn.arrays[expr.name]
        reg = self._push()
        if self._cheriot:
            self._emit(f"cincaddrimm {reg}, csp, {off}")
            # The compiler must set bounds on address-taken stack
            # allocations (section 7.2.1) — fundamental, not a bug.
            self._emit(f"csetboundsimm {reg}, {reg}, {size}")
        else:
            self._emit(f"addi {reg}, sp, {off}")
        return reg

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------

    def _stmt(self, stmt: ir.Stmt) -> None:
        assert self._fn is not None
        if isinstance(stmt, ir.Assign):
            if isinstance(stmt.value, ir.CallExpr):
                self._call(stmt.value)
                self._store_slot(stmt.var, "a0", self._fn.type_of(stmt.var))
                return
            reg = self._expr(stmt.value)
            self._store_slot(stmt.var, reg, self._fn.type_of(stmt.var))
            self._pop()
        elif isinstance(stmt, ir.Store):
            self._store(stmt)
        elif isinstance(stmt, ir.StorePtr):
            self._store_ptr(stmt)
        elif isinstance(stmt, ir.If):
            self._if(stmt)
        elif isinstance(stmt, ir.While):
            self._while(stmt)
        elif isinstance(stmt, ir.Return):
            if stmt.value is not None:
                reg = self._expr(stmt.value)
                self._emit(f"mv a0, {reg}")
                self._pop()
            self._emit(f"j {self._epilogue_label}")
        elif isinstance(stmt, ir.ExprStmt):
            if isinstance(stmt.expr, ir.CallExpr):
                self._call(stmt.expr)
            else:
                reg = self._expr(stmt.expr)
                self._pop()
        else:
            raise ir.IRError(f"unknown statement node: {stmt!r}")

    def _resolved_store_target(self, ptr: ir.Expr, offset: int) -> "Tuple[str, int]":
        reg = self._expr(ptr)
        if self._cheriot and offset != 0 and not self.fixed_compiler:
            self._emit(f"cincaddrimm {reg}, {reg}, {offset}")  # bug 1 again
            offset = 0
        return reg, offset

    def _store(self, stmt: ir.Store) -> None:
        value = self._expr(stmt.value)
        reg, offset = self._resolved_store_target(stmt.ptr, stmt.offset)
        mnemonic = {1: "sb", 2: "sh", 4: "sw"}[stmt.size]
        self._emit(f"{mnemonic} {value}, {offset}({reg})")
        self._pop()  # reg
        self._pop()  # value

    def _store_ptr(self, stmt: ir.StorePtr) -> None:
        value = self._expr(stmt.value)
        reg, offset = self._resolved_store_target(stmt.ptr, stmt.offset)
        if self._cheriot:
            self._emit(f"csc {value}, {offset}({reg})")
        else:
            self._emit(f"sw {value}, {offset}({reg})")
        self._pop()
        self._pop()

    def _if(self, stmt: ir.If) -> None:
        else_label = self._label("else")
        end_label = self._label("endif")
        cond = self._expr(stmt.cond)
        self._emit(f"beqz {cond}, {else_label if stmt.orelse else end_label}")
        self._pop()
        for inner in stmt.then:
            self._stmt(inner)
        if stmt.orelse:
            self._emit(f"j {end_label}")
            self._place(else_label)
            for inner in stmt.orelse:
                self._stmt(inner)
        self._place(end_label)

    def _while(self, stmt: ir.While) -> None:
        head = self._label("while")
        end = self._label("endwhile")
        self._place(head)
        cond = self._expr(stmt.cond)
        self._emit(f"beqz {cond}, {end}")
        self._pop()
        for inner in stmt.body:
            self._stmt(inner)
        self._emit(f"j {head}")
        self._place(end)

    def _call(self, call: ir.CallExpr) -> None:
        if call.function not in self.module.functions:
            raise ir.IRError(f"call to unknown function {call.function!r}")
        if len(call.args) > len(_ARG_REGS):
            raise ir.IRError("too many call arguments")
        for index, arg in enumerate(call.args):
            if isinstance(arg, ir.CallExpr):
                raise ir.IRError("nested calls are not supported")
            reg = self._expr(arg)
            self._emit(f"mv {_ARG_REGS[index]}, {reg}")
            self._pop()
        self._emit(f"jal ra, {call.function}")


def _align(value: int, alignment: int) -> int:
    return (value + alignment - 1) & ~(alignment - 1)


def compile_module(
    module: ir.Module,
    target: Target,
    fixed_compiler: bool = False,
    data_base: int = 0,
    optimize: bool = False,
) -> CompiledModule:
    """Convenience wrapper: lower a module for one target."""
    return CodeGen(
        module,
        target,
        fixed_compiler=fixed_compiler,
        data_base=data_base,
        optimize=optimize,
    ).compile()
