"""A conservative peephole optimizer over generated assembly.

The baseline code generator spills every assignment to its stack slot
and reloads on every use — faithful to ``-O0``, pessimistic for
``-Oz``.  Real compilers keep just-stored values in registers; this
pass recovers exactly that within a basic block:

* ``sw rX, off(base)`` immediately followed by ``lw rY, off(base)``
  becomes the store plus ``mv rY, rX`` (same for ``csc``/``clc``);
* ``mv rX, rX`` is deleted.

Dropping a ``clc`` reload also drops its load-filter check — which is
precisely what holding a capability in a register means
architecturally: revocation invalidates *memory* copies; register
copies survive until reloaded (that is why the RTOS clears registers on
compartment switch).  The transformation is therefore
semantics-preserving at the ISA level, not merely at the C level.

Only exactly-adjacent pairs are fused and label boundaries end a block,
so the pass cannot move an access across a store to the same slot or a
control-flow join.

The pass relies on the code generator's type discipline: ``sw``/``lw``
pairs only ever move int-typed values (capability-typed slots use
``csc``/``clc``), so fusing a ``sw``+``lw`` into ``mv`` cannot launder a
tag.  Mixed-width pairs (``sw`` then ``clc``) are never fused — the data
store cleared the granule's tag and the reload must observe that.
"""

from __future__ import annotations

import re
from typing import List, Tuple

_STORE_RE = re.compile(r"^\s*(sw|csc)\s+(\w+),\s*(-?\w+)\((\w+)\)\s*$")
_LOAD_RE = re.compile(r"^\s*(lw|clc)\s+(\w+),\s*(-?\w+)\((\w+)\)\s*$")
_MV_RE = re.compile(r"^\s*(mv|cmove)\s+(\w+),\s*(\w+)\s*$")
_LABEL_RE = re.compile(r"^\s*[\w.]+:\s*$")

_PAIRS = {"sw": "lw", "csc": "clc"}


def peephole(lines: List[str]) -> "Tuple[List[str], int]":
    """Apply the peepholes; returns (new_lines, instructions_removed)."""
    out: List[str] = []
    removed = 0
    for line in lines:
        fused = False
        if out and not _LABEL_RE.match(line):
            store = _STORE_RE.match(out[-1])
            load = _LOAD_RE.match(line)
            if (
                store
                and load
                and _PAIRS.get(store.group(1)) == load.group(1)
                and store.group(3) == load.group(3)  # same offset
                and store.group(4) == load.group(4)  # same base register
            ):
                src_reg = store.group(2)
                dst_reg = load.group(2)
                mnemonic = "cmove" if load.group(1) == "clc" else "mv"
                if dst_reg == src_reg:
                    removed += 1  # reload of the value already there
                    continue
                out.append(f"    {mnemonic} {dst_reg}, {src_reg}")
                fused = True
        if not fused:
            mv = _MV_RE.match(line)
            if mv and mv.group(2) == mv.group(3):
                removed += 1
                continue
            out.append(line)
    return out, removed
