"""Per-shard checkpoints: an interrupted fleet resumes, never restarts.

Layout of a checkpoint directory::

    manifest.json        {"fingerprint": ..., "plan": {...}}
    shard-0003.json      one completed shard's result
    work/                scratch: specs, heartbeats, worker logs

Results are committed atomically (tmp file + ``os.replace``), so a
SIGKILL mid-write can never leave a half-result that a resume would
trust.  The manifest pins the directory to one plan fingerprint; a
``--resume`` against a different plan is refused with the two
fingerprints named, because merging shards from different plans would
silently corrupt the report.
"""

from __future__ import annotations

import json
import os
import re
from typing import Dict, Optional

from .plan import FleetPlan

_SHARD_RE = re.compile(r"^shard-(\d{4})\.json$")


class CheckpointError(Exception):
    """A checkpoint directory that cannot be used as requested."""


class CheckpointStore:
    """Atomic per-shard result files under one directory."""

    def __init__(self, root: str) -> None:
        self.root = root
        self.workdir = os.path.join(root, "work")
        os.makedirs(self.workdir, exist_ok=True)

    # ------------------------------------------------------------------
    # Manifest
    # ------------------------------------------------------------------

    @property
    def manifest_path(self) -> str:
        return os.path.join(self.root, "manifest.json")

    def bind(self, plan: FleetPlan, resume: bool) -> None:
        """Pin this directory to ``plan`` (or verify it already is).

        Without ``resume`` stale shard files from a previous run are
        removed — a fresh run must never pick up old results.
        """
        fingerprint = plan.fingerprint()
        existing = self._read_manifest()
        if existing is not None and existing.get("fingerprint") != fingerprint:
            if resume:
                raise CheckpointError(
                    f"checkpoint dir {self.root!r} belongs to plan "
                    f"{existing.get('fingerprint')!r}, not {fingerprint!r}; "
                    "resume refused — delete the directory or rerun the "
                    "original plan"
                )
            self._clear_shards()
        elif not resume:
            self._clear_shards()
        payload = {"fingerprint": fingerprint, "plan": plan.to_dict()}
        self._write_atomic(self.manifest_path, json.dumps(payload, indent=2))

    def _read_manifest(self) -> Optional[dict]:
        try:
            with open(self.manifest_path) as fh:
                return json.load(fh)
        except FileNotFoundError:
            return None
        except ValueError as exc:
            raise CheckpointError(
                f"corrupt manifest {self.manifest_path!r}: {exc}"
            ) from exc

    def _clear_shards(self) -> None:
        for name in os.listdir(self.root):
            if _SHARD_RE.match(name):
                os.unlink(os.path.join(self.root, name))

    # ------------------------------------------------------------------
    # Shard results
    # ------------------------------------------------------------------

    def shard_path(self, shard_id: int) -> str:
        return os.path.join(self.root, f"shard-{shard_id:04d}.json")

    def commit(self, shard_id: int, result: dict) -> None:
        """Atomically persist one completed shard."""
        self._write_atomic(
            self.shard_path(shard_id), json.dumps(result, sort_keys=True)
        )

    def completed(self) -> Dict[int, dict]:
        """Every committed shard result, keyed by shard id.

        A malformed file (e.g. from a torn write on a dying host, which
        the atomic rename makes very unlikely but a hostile filesystem
        can still produce) is treated as absent: the shard simply runs
        again.
        """
        out: Dict[int, dict] = {}
        for name in sorted(os.listdir(self.root)):
            match = _SHARD_RE.match(name)
            if not match:
                continue
            path = os.path.join(self.root, name)
            try:
                with open(path) as fh:
                    out[int(match.group(1))] = json.load(fh)
            except ValueError:
                os.unlink(path)
        return out

    # ------------------------------------------------------------------

    @staticmethod
    def _write_atomic(path: str, payload: str) -> None:
        tmp = path + ".tmp"
        with open(tmp, "w") as fh:
            fh.write(payload)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
