"""Seeded retry with exponential backoff and a bounded attempt budget.

A crashed or hung shard is retried, but never forever: after
``max_attempts`` total attempts the shard is quarantined and the fleet
report annotates it as degraded instead of blocking (or silently
dropping) the run.  Backoff delays grow exponentially and carry
deterministic jitter — the jitter RNG is seeded from ``(seed,
shard_id, attempt)``, so two runs of the same fleet schedule identical
delays and a test can assert the exact schedule.
"""

from __future__ import annotations

import random
from dataclasses import dataclass


@dataclass(frozen=True)
class RetryPolicy:
    """How failing shards are retried before being quarantined."""

    #: Total attempts per shard, the first launch included.
    max_attempts: int = 3
    #: Delay before the first retry, in seconds.
    base_delay: float = 0.05
    #: Multiplier per further retry.
    factor: float = 2.0
    #: Delay ceiling, in seconds.
    max_delay: float = 2.0
    #: Seed for the deterministic jitter stream.
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("need at least one attempt")
        if self.base_delay < 0 or self.max_delay < self.base_delay:
            raise ValueError("delays must satisfy 0 <= base <= max")

    def allows(self, attempt: int) -> bool:
        """May attempt number ``attempt`` (1-based) be launched?"""
        return attempt <= self.max_attempts

    def delay(self, shard_id: int, attempt: int) -> float:
        """Backoff before launching ``attempt`` (2-based; first is free).

        Full jitter on the top half: ``d * (0.5 + U[0,0.5])`` keeps a
        floor (retrying instantly after a crash rarely helps) while
        decorrelating shards that failed together.
        """
        if attempt <= 1:
            return 0.0
        raw = self.base_delay * self.factor ** (attempt - 2)
        capped = min(self.max_delay, raw)
        rng = random.Random(f"{self.seed}:{shard_id}:{attempt}")
        return capped * (0.5 + rng.random() / 2)
