"""Running one shard: a contiguous slice of the fleet's devices.

The shard layer is deliberately thin — devices are independent, so a
shard is just a loop with a heartbeat callback between devices.  The
result dict is what gets checkpointed; it carries the plan fingerprint
of the spec that produced it so a merge can refuse mixed-plan inputs.

Each completed device also folds into the shard's **cumulative
telemetry block** (:mod:`repro.obs.pipeline`), handed to the heartbeat
callback so the worker can piggyback it on the heartbeat file — the
streaming-shipment leg of the fleet observability pipeline.  The block
is derived purely from the device samples, so streaming it changes
nothing about what the shard computes or checkpoints.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.obs.pipeline import device_telemetry, empty_telemetry, merge_telemetry

from .device import DeviceSpec, run_device
from .plan import ShardSpec

#: Heartbeat callback: ``(device_id, devices_done, telemetry_block)``.
HeartbeatFn = Callable[[int, int, dict], None]


def run_shard(
    spec: ShardSpec,
    heartbeat: Optional[HeartbeatFn] = None,
) -> dict:
    """Run every device in ``spec``; returns the checkpointable result.

    ``heartbeat`` (if given) is called after each completed device with
    the device id, the number of devices finished so far, and the
    shard's cumulative telemetry block — the worker wires it to its
    heartbeat file so a supervisor can tell a slow shard from a wedged
    one *and* fold live fleet telemetry between harvests.
    """
    devices = []
    telemetry = empty_telemetry()
    for device_id in spec.device_ids:
        sample = run_device(
            DeviceSpec(
                device_id=device_id,
                fleet_seed=spec.fleet_seed,
                injections=spec.injections_per_device,
                alloc_ops=spec.alloc_ops,
                trace_jit=spec.trace_jit,
            )
        )
        devices.append(sample)
        telemetry = merge_telemetry(telemetry, device_telemetry(sample))
        if heartbeat is not None:
            heartbeat(device_id, len(devices), telemetry)
    return {
        "shard": spec.shard_id,
        "fleet_seed": spec.fleet_seed,
        "devices": devices,
    }
