"""Running one shard: a contiguous slice of the fleet's devices.

The shard layer is deliberately thin — devices are independent, so a
shard is just a loop with a heartbeat callback between devices.  The
result dict is what gets checkpointed; it carries the plan fingerprint
of the spec that produced it so a merge can refuse mixed-plan inputs.
"""

from __future__ import annotations

from typing import Callable, Optional

from .device import DeviceSpec, run_device
from .plan import ShardSpec


def run_shard(
    spec: ShardSpec,
    heartbeat: Optional[Callable[[int], None]] = None,
) -> dict:
    """Run every device in ``spec``; returns the checkpointable result.

    ``heartbeat`` (if given) is called with the device id after each
    completed device — the worker wires it to its heartbeat file so a
    supervisor can tell a slow shard from a wedged one.
    """
    devices = []
    for device_id in spec.device_ids:
        devices.append(
            run_device(
                DeviceSpec(
                    device_id=device_id,
                    fleet_seed=spec.fleet_seed,
                    injections=spec.injections_per_device,
                    alloc_ops=spec.alloc_ops,
                    trace_jit=spec.trace_jit,
                )
            )
        )
        if heartbeat is not None:
            heartbeat(device_id)
    return {
        "shard": spec.shard_id,
        "fleet_seed": spec.fleet_seed,
        "devices": devices,
    }
