"""The fleet plan: which devices exist, and who runs them.

A plan is pure data — device count, shard size, the fleet seed and the
per-device workload knobs — and everything else is derived from it
deterministically: per-device seeds, shard assignment, and the
fingerprint that pins a checkpoint directory to exactly one plan (a
``--resume`` against a different plan must be refused, not silently
merged).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import List

#: Mixes the device index into the fleet seed (Weyl constant — any odd
#: 32-bit multiplier works; fixed forever so committed results hold).
_SEED_STRIDE = 0x9E3779B1


def device_seed(fleet_seed: int, device_id: int) -> int:
    """The per-device RNG seed: decorrelated, deterministic, stable."""
    return (fleet_seed ^ (device_id * _SEED_STRIDE)) & 0x7FFF_FFFF


@dataclass(frozen=True)
class ShardSpec:
    """One worker's slice of the fleet."""

    shard_id: int
    device_ids: "tuple[int, ...]"
    fleet_seed: int
    injections_per_device: int
    alloc_ops: int
    trace_jit: bool

    def to_dict(self) -> dict:
        return {
            "shard_id": self.shard_id,
            "device_ids": list(self.device_ids),
            "fleet_seed": self.fleet_seed,
            "injections_per_device": self.injections_per_device,
            "alloc_ops": self.alloc_ops,
            "trace_jit": self.trace_jit,
        }

    @staticmethod
    def from_dict(data: dict) -> "ShardSpec":
        return ShardSpec(
            shard_id=data["shard_id"],
            device_ids=tuple(data["device_ids"]),
            fleet_seed=data["fleet_seed"],
            injections_per_device=data["injections_per_device"],
            alloc_ops=data["alloc_ops"],
            trace_jit=data["trace_jit"],
        )


@dataclass(frozen=True)
class FleetPlan:
    """The whole fleet, before anything runs."""

    devices: int
    shard_size: int = 2
    seed: int = 20260807
    injections_per_device: int = 3
    alloc_ops: int = 12
    trace_jit: bool = True

    def __post_init__(self) -> None:
        if self.devices <= 0:
            raise ValueError("a fleet needs at least one device")
        if self.shard_size <= 0:
            raise ValueError("shard_size must be positive")

    # ------------------------------------------------------------------

    def shards(self) -> List[ShardSpec]:
        """Contiguous device slices, one ShardSpec per worker launch."""
        out: List[ShardSpec] = []
        for shard_id, lo in enumerate(range(0, self.devices, self.shard_size)):
            ids = tuple(range(lo, min(lo + self.shard_size, self.devices)))
            out.append(
                ShardSpec(
                    shard_id=shard_id,
                    device_ids=ids,
                    fleet_seed=self.seed,
                    injections_per_device=self.injections_per_device,
                    alloc_ops=self.alloc_ops,
                    trace_jit=self.trace_jit,
                )
            )
        return out

    def to_dict(self) -> dict:
        return {
            "devices": self.devices,
            "shard_size": self.shard_size,
            "seed": self.seed,
            "injections_per_device": self.injections_per_device,
            "alloc_ops": self.alloc_ops,
            "trace_jit": self.trace_jit,
        }

    @staticmethod
    def from_dict(data: dict) -> "FleetPlan":
        return FleetPlan(
            devices=data["devices"],
            shard_size=data["shard_size"],
            seed=data["seed"],
            injections_per_device=data["injections_per_device"],
            alloc_ops=data["alloc_ops"],
            trace_jit=data["trace_jit"],
        )

    def fingerprint(self) -> str:
        """A stable digest of the plan (checkpoint-compatibility key)."""
        canonical = json.dumps(self.to_dict(), sort_keys=True)
        return hashlib.sha256(canonical.encode()).hexdigest()[:16]
