"""The fleet supervisor: keep the campaign alive through its failures.

One supervision loop drives every shard through a small state machine::

    pending -> launched -> completed
                  |  \\
                  |   expired (timeout / stale heartbeat) -> killed
                  v                                            |
               crashed <---------------------------------------+
                  |
                  v
          backoff wait -> relaunched (attempt+1)   [seeded jitter]
                  |
                  v  (attempt budget exhausted)
             quarantined  -> listed as degraded in the report

Design rules:

* **Crash isolation** — a shard failure never takes down the
  supervisor or other shards; workers are separate processes and their
  stderr is captured per attempt for diagnostics.
* **No lost work** — results commit to the checkpoint store the moment
  a worker succeeds; SIGTERM mid-run leaves every committed shard
  behind for ``--resume``.
* **No silent drops** — every planned shard ends as either a committed
  result or a quarantine entry; the merge refuses anything else.
* **Determinism** — the supervisor only decides *when and whether*
  work runs, never what it computes, so the merged report is identical
  for any jobs count, retry history, or resume split.  Host-side
  health lives in :class:`~repro.obs.fleet.FleetHealthStats`.
"""

from __future__ import annotations

import json
import os
import sys
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.obs.fleet import FleetHealthStats, register_fleet_health
from repro.obs.pipeline import FleetAggregator, parse_heartbeat, shard_telemetry

from .checkpoint import CheckpointStore
from .plan import FleetPlan, ShardSpec
from .procutil import WorkerProcess, tail
from .retry import RetryPolicy

#: How often the supervision loop looks at its workers (seconds).
POLL_INTERVAL = 0.02


class FleetInterrupted(Exception):
    """The run was stopped (SIGTERM/SIGINT) before every shard finished.

    Committed shards survive in the checkpoint directory; rerunning
    with ``resume=True`` completes the remainder.
    """


@dataclass
class _ShardState:
    spec: ShardSpec
    attempt: int = 0
    worker: Optional[WorkerProcess] = None
    #: monotonic time before which this shard may not relaunch.
    not_before: float = 0.0
    failures: List[str] = field(default_factory=list)


class FleetSupervisor:
    """Shards a plan across supervised workers and survives their loss."""

    def __init__(
        self,
        plan: FleetPlan,
        store: CheckpointStore,
        jobs: int = 1,
        timeout: Optional[float] = 120.0,
        heartbeat_timeout: Optional[float] = None,
        retry: Optional[RetryPolicy] = None,
        chaos_dir: Optional[str] = None,
        registry=None,
        log: Optional[Callable[[str], None]] = None,
        progress: Optional[Callable[[dict], None]] = None,
        progress_interval: float = 2.0,
    ) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.plan = plan
        self.store = store
        self.jobs = jobs
        self.timeout = timeout
        self.heartbeat_timeout = heartbeat_timeout
        self.retry = retry if retry is not None else RetryPolicy(seed=plan.seed)
        self.chaos_dir = chaos_dir
        self.health = FleetHealthStats()
        if registry is not None:
            register_fleet_health(registry, self.health)
        self._log = log if log is not None else (lambda msg: None)
        #: Live fleet telemetry folded from heartbeat deltas and
        #: harvested results.  Observability only: the merged report is
        #: always rebuilt from committed shard results, so a lost or
        #: stale heartbeat can make this view lag but never skew the
        #: artifact.
        self.live = FleetAggregator()
        self._progress = progress
        self._progress_interval = progress_interval
        self._progress_last = 0.0
        #: Cooperative stop flag; a signal handler sets this.
        self.stop_requested = False

    def request_stop(self) -> None:
        """Ask the run loop to wind down (signal-handler safe)."""
        self.stop_requested = True

    # ------------------------------------------------------------------
    # Live telemetry (the streaming leg of the observability pipeline)
    # ------------------------------------------------------------------

    def _fold_heartbeat(self, state: _ShardState) -> None:
        """Fold a worker's latest heartbeat delta into the live view.

        Tolerates everything a live channel can throw at it — a file
        mid-rename, a pre-telemetry plain-text beat, a beat from an
        earlier attempt — by simply not updating; the aggregator keeps
        the freshest cumulative block per shard.
        """
        paths = self._paths(state.spec.shard_id, state.attempt)
        try:
            with open(paths["heartbeat"]) as fh:
                payload = parse_heartbeat(fh.read())
        except OSError:
            return
        if payload is not None and payload["shard"] == state.spec.shard_id:
            self.live.ingest(payload)

    def _fold_result(self, shard_id: int, result: dict) -> None:
        """A harvested shard's final telemetry supersedes its stream."""
        self.live.update(
            shard_id, shard_telemetry(result), len(result.get("devices", []))
        )

    def _emit_progress(self, now: float, force: bool = False) -> None:
        if self._progress is None:
            return
        if not force and now - self._progress_last < self._progress_interval:
            return
        self._progress_last = now
        summary = self.live.summary()
        summary["shards_completed"] = self.health.shards_completed + (
            self.health.shards_resumed
        )
        summary["shards_total"] = self.health.shards_total
        summary["quarantined"] = self.health.quarantined
        self._progress(summary)

    # ------------------------------------------------------------------
    # Worker lifecycle
    # ------------------------------------------------------------------

    def _paths(self, shard_id: int, attempt: int) -> Dict[str, str]:
        work = self.store.workdir
        stem = f"shard-{shard_id:04d}-a{attempt}"
        return {
            "spec": os.path.join(work, f"shard-{shard_id:04d}.spec.json"),
            "out": os.path.join(work, f"{stem}.result.json"),
            "heartbeat": os.path.join(work, f"shard-{shard_id:04d}.heartbeat"),
            "stdout": os.path.join(work, f"{stem}.stdout"),
            "stderr": os.path.join(work, f"{stem}.stderr"),
        }

    def _launch(self, state: _ShardState) -> None:
        state.attempt += 1
        paths = self._paths(state.spec.shard_id, state.attempt)
        with open(paths["spec"], "w") as fh:
            json.dump(state.spec.to_dict(), fh)
        env = dict(os.environ)
        env["PYTHONHASHSEED"] = "0"
        src = os.path.join(
            os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
        )
        env["PYTHONPATH"] = src + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        if self.chaos_dir is not None:
            env["REPRO_FLEET_CHAOS"] = self.chaos_dir
        cmd = [
            sys.executable,
            "-m",
            "repro.fleet.worker",
            "--spec",
            paths["spec"],
            "--out",
            paths["out"],
            "--heartbeat",
            paths["heartbeat"],
        ]
        state.worker = WorkerProcess(
            cmd,
            env=env,
            stdout_path=paths["stdout"],
            stderr_path=paths["stderr"],
            timeout=self.timeout,
            heartbeat_path=paths["heartbeat"],
            heartbeat_timeout=self.heartbeat_timeout,
        )
        state.worker.spawn()
        self.health.worker_launches += 1
        if state.attempt > 1:
            self.health.retries += 1
        self.health.record(
            state.spec.shard_id, state.attempt,
            "launch" if state.attempt == 1 else "retry-launch",
        )
        self._log(
            f"shard {state.spec.shard_id}: attempt {state.attempt} launched"
        )

    def _harvest(self, state: _ShardState) -> Optional[dict]:
        """A finished worker's validated result, or None (= failure)."""
        paths = self._paths(state.spec.shard_id, state.attempt)
        try:
            with open(paths["out"]) as fh:
                result = json.load(fh)
        except (OSError, ValueError) as exc:
            state.failures.append(f"result unreadable: {exc}")
            return None
        expected = list(state.spec.device_ids)
        got = [d.get("device") for d in result.get("devices", [])]
        if got != expected:
            state.failures.append(
                f"result covers devices {got}, expected {expected}"
            )
            return None
        return result

    def _fail(self, state: _ShardState, reason: str) -> Optional[str]:
        """Record a failure; returns a quarantine reason when giving up."""
        shard_id = state.spec.shard_id
        _, stderr = (
            state.worker.read_output() if state.worker else ("", "")
        )
        if stderr.strip():
            reason = f"{reason}; stderr: {tail(stderr, 5)}"
        state.failures.append(reason)
        self.health.record(shard_id, state.attempt, f"failed: {reason}")
        self._log(f"shard {shard_id}: attempt {state.attempt} failed — {reason}")
        state.worker = None
        next_attempt = state.attempt + 1
        if self.retry.allows(next_attempt):
            delay = self.retry.delay(shard_id, next_attempt)
            state.not_before = time.monotonic() + delay
            self._log(
                f"shard {shard_id}: retrying in {delay:.2f}s "
                f"(attempt {next_attempt}/{self.retry.max_attempts})"
            )
            return None
        history = "; ".join(state.failures)
        return (
            f"quarantined after {state.attempt} attempts "
            f"({history})"
        )

    # ------------------------------------------------------------------
    # The supervision loop
    # ------------------------------------------------------------------

    def run(self, resume: bool = False) -> "tuple[Dict[int, dict], Dict[int, str]]":
        """Run the fleet to completion (or quarantine).

        Returns ``(shard_results, quarantined)``; raises
        :class:`FleetInterrupted` if a stop was requested first.
        """
        self.store.bind(self.plan, resume=resume)
        shards = self.plan.shards()
        self.health.shards_total = len(shards)

        results: Dict[int, dict] = {}
        if resume:
            known = {s.shard_id for s in shards}
            results = {
                sid: res
                for sid, res in self.store.completed().items()
                if sid in known
            }
            self.health.shards_resumed = len(results)
            for shard_id in sorted(results):
                self._fold_result(shard_id, results[shard_id])
            if results:
                self._log(
                    f"resuming: {len(results)} shard(s) already checkpointed"
                )

        quarantined: Dict[int, str] = {}
        pending: List[_ShardState] = [
            _ShardState(spec=s) for s in shards if s.shard_id not in results
        ]
        running: List[_ShardState] = []

        try:
            while pending or running:
                if self.stop_requested:
                    raise FleetInterrupted(
                        f"stopped with {len(results)} shard(s) checkpointed; "
                        "rerun with --resume to finish"
                    )
                now = time.monotonic()
                # Launch what we can.
                launchable = [s for s in pending if s.not_before <= now]
                while launchable and len(running) < self.jobs:
                    state = launchable.pop(0)
                    pending.remove(state)
                    self._launch(state)
                    running.append(state)
                # Poll what runs.
                for state in list(running):
                    worker = state.worker
                    assert worker is not None
                    code = worker.poll()
                    if code is None:
                        reason = worker.expired(now)
                        if reason is None:
                            self._fold_heartbeat(state)
                            continue
                        worker.kill()
                        if "heartbeat" in reason:
                            self.health.heartbeat_timeouts += 1
                        else:
                            self.health.worker_timeouts += 1
                        running.remove(state)
                        verdict = self._fail(state, reason)
                        if verdict is None:
                            pending.append(state)
                        else:
                            quarantined[state.spec.shard_id] = verdict
                            self.health.quarantined += 1
                        continue
                    running.remove(state)
                    if code == 0:
                        result = self._harvest(state)
                        if result is not None:
                            self.store.commit(state.spec.shard_id, result)
                            results[state.spec.shard_id] = result
                            self._fold_result(state.spec.shard_id, result)
                            self.health.shards_completed += 1
                            self.health.record(
                                state.spec.shard_id, state.attempt, "completed"
                            )
                            self._log(
                                f"shard {state.spec.shard_id}: completed "
                                f"(attempt {state.attempt})"
                            )
                            continue
                        code_desc = "exit 0 with bad result"
                    else:
                        self.health.worker_crashes += 1
                        code_desc = f"worker exited {code}"
                    verdict = self._fail(state, code_desc)
                    if verdict is None:
                        pending.append(state)
                    else:
                        quarantined[state.spec.shard_id] = verdict
                        self.health.quarantined += 1
                self._emit_progress(time.monotonic())
                if pending or running:
                    time.sleep(POLL_INTERVAL)
            self._emit_progress(time.monotonic(), force=True)
        except FleetInterrupted:
            self.health.interrupted = 1
            self.health.record(-1, 0, "interrupted")
            raise
        finally:
            for state in running:
                if state.worker is not None:
                    state.worker.kill()
        return results, quarantined
