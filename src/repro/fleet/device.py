"""One simulated device's metric sample.

A *device* is a fresh :class:`~repro.machine.System` driven through
four phases, every one clocked in simulated cycles (never wall time):

1. **Allocation traffic** — a seeded malloc/free mix through the
   compartment switcher; each cross-compartment call's cycle cost
   becomes a latency sample, and the phase's op/cycle ratio the
   device's throughput.
2. **Tiered CPU kernel** — a seeded store/load loop on a real
   :class:`~repro.isa.CPU` built by :meth:`System.make_cpu` with the
   plan's execution tier.  Cycle counts are bit-identical across
   interpreter / block-cache / trace-JIT (the differential suite's
   guarantee), so tier promotion — which may differ between a serial
   run and a sharded one as the in-process code cache warms — can
   never leak into the report.
3. **Revocation** — frees push chunks through quarantine, then a
   forced sweep measures the revoker's share of the device's cycles
   (the duty-cycle column).
4. **Network traffic** — a small zero-copy receive pipeline
   (:class:`repro.iot.sessions.NetPipeline` on its *own* fresh
   system, so phases 1–3 stay byte-identical to older reports) takes
   a few seeded rounds of multi-session traffic with corrupt/reorder
   faults injected.  The phase ships its flat counters and an
   already-folded per-packet latency sketch — never raw samples — so
   the fleet-fold merges it exactly like every other metric.

Finally a per-device fault-campaign slice
(:func:`repro.faultinject.run_campaign` with the device seed) yields
the outcome tally; the fleet-level acceptance criterion is that the
summed ``escaped`` count is zero.

Everything is a pure function of ``(fleet_seed, device_id, knobs)``,
which is what makes shard placement, worker count, retries and resumes
invisible in the merged report.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List

from repro.allocator import TemporalSafetyMode
from repro.faultinject import run_campaign
from repro.isa import assemble
from repro.machine import System
from repro.pipeline import CoreKind

from .plan import device_seed

#: Net-traffic phase shape: a handful of sessions and rounds is enough
#: to exercise sequencing, TLS, fault drops and the latency sketch per
#: device without dominating its runtime.
_NET_SESSIONS = 4
_NET_ROUNDS = 5
_NET_CORRUPT_RATE = 0.15
_NET_REORDER_RATE = 0.15

#: Allocation sizes the traffic phase draws from (all precisely
#: representable, so no device's numbers depend on encoding rounding).
_ALLOC_SIZES = (16, 24, 32, 48, 64, 96, 128, 192, 256)

#: The CPU kernel walks this much scratch SRAM in the code region's
#: upper half (nothing else touches it in a plain ``System.build``).
_KERNEL_CODE_OFFSET = 0x2_0000
_KERNEL_BUF_OFFSET = 0x3_0000
_KERNEL_BUF_SIZE = 256

#: The store/accumulate loop: iteration count patched per device.
_KERNEL_SOURCE = """\
    li a0, {iters}
    li a1, 0
loop:
    sw a1, 0(s0)
    lw a2, 0(s0)
    add a1, a1, a2
    addi a1, a1, 3
    cincaddrimm s0, s0, 4
    cgetaddr t0, s0
    li t1, {buf_top}
    bltu t0, t1, nowrap
    cincaddrimm s0, s0, -{buf_size}
nowrap:
    addi a0, a0, -1
    bnez a0, loop
    halt
"""


@dataclass(frozen=True)
class DeviceSpec:
    """Everything needed to reproduce one device bit-for-bit."""

    device_id: int
    fleet_seed: int
    injections: int = 3
    alloc_ops: int = 12
    trace_jit: bool = True

    @property
    def seed(self) -> int:
        return device_seed(self.fleet_seed, self.device_id)


def _percentile(sorted_samples: List[int], q: float) -> int:
    """Nearest-rank percentile over a sorted sample list."""
    if not sorted_samples:
        return 0
    rank = max(1, -(-int(q * 100) * len(sorted_samples) // 100))  # ceil
    return sorted_samples[min(rank, len(sorted_samples)) - 1]


def latency_summary(samples: List[int]) -> Dict[str, object]:
    """The percentile block reported per device and fleet-wide."""
    ordered = sorted(samples)
    count = len(ordered)
    return {
        "count": count,
        "min": ordered[0] if ordered else 0,
        "p50": _percentile(ordered, 0.50),
        "p90": _percentile(ordered, 0.90),
        "p99": _percentile(ordered, 0.99),
        "max": ordered[-1] if ordered else 0,
        "mean": round(sum(ordered) / count, 2) if count else 0.0,
    }


def _run_net_phase(spec: DeviceSpec) -> dict:
    """The network-traffic phase: a seeded zero-copy pipeline slice.

    Runs on its own :class:`~repro.iot.sessions.NetPipeline` (and thus
    its own system), so the device's phase 1–3 numbers and RNG draws
    are untouched by this phase's existence.  Returns flat integer
    counters plus the per-packet latency sketch *state* — the block
    :func:`repro.obs.pipeline.device_telemetry` folds fleet-wide.
    """
    from repro.iot.loadgen import NetLoadGen, drive
    from repro.iot.sessions import NetPipeline

    pipeline = NetPipeline(zero_copy=True)
    conn_ids = range(1, _NET_SESSIONS + 1)
    pipeline.establish_many(conn_ids)
    gen = NetLoadGen(
        conn_ids,
        seed=spec.seed,
        corrupt_rate=_NET_CORRUPT_RATE,
        reorder_rate=_NET_REORDER_RATE,
    )
    drive(pipeline, gen, rounds=_NET_ROUNDS)
    counters = pipeline.counters()
    return {
        "counters": {key: counters[key] for key in sorted(counters)},
        "latency": pipeline.latency.summary(),
        "latency_sketch": pipeline.latency.to_dict(),
    }


def run_device(spec: DeviceSpec) -> dict:
    """Run one device end to end; returns its deterministic sample."""
    rng = random.Random(spec.seed)
    system = System.build(core=CoreKind.IBEX, mode=TemporalSafetyMode.HARDWARE)
    core = system.core_model
    start = core.cycles
    latencies: List[int] = []

    # --- phase 1: cross-compartment allocation traffic ----------------
    live: List = []
    for _ in range(spec.alloc_ops):
        size = rng.choice(_ALLOC_SIZES)
        before = core.cycles
        cap = system.malloc(size)
        latencies.append(core.cycles - before)
        live.append(cap)
        if len(live) > 4:
            victim = live.pop(rng.randrange(len(live)))
            before = core.cycles
            system.free(victim)
            latencies.append(core.cycles - before)
    for cap in live:
        before = core.cycles
        system.free(cap)
        latencies.append(core.cycles - before)
    alloc_cycles = core.cycles - start
    alloc_calls = len(latencies)

    # --- phase 2: the tiered CPU kernel -------------------------------
    mm = system.memory_map
    code_base = mm.code.base + _KERNEL_CODE_OFFSET
    buf_base = mm.code.base + _KERNEL_BUF_OFFSET
    iters = 64 + rng.randrange(64)
    program = assemble(
        _KERNEL_SOURCE.format(
            iters=iters,
            buf_top=buf_base + _KERNEL_BUF_SIZE,
            buf_size=_KERNEL_BUF_SIZE,
        )
    )
    cpu = system.make_cpu(trace_jit=spec.trace_jit, jit_threshold=16)
    from repro.capability import make_roots

    roots = make_roots()
    cpu.load_program(program, code_base, pcc=roots.executable)
    cpu.regs.write(
        8, roots.memory.set_address(buf_base).set_bounds(_KERNEL_BUF_SIZE)
    )
    kernel_start = core.cycles
    cpu.run()
    kernel_cycles = core.cycles - kernel_start
    kernel_instrs = cpu.stats.instructions

    # --- phase 3: revocation sweep ------------------------------------
    sweep_start = core.cycles
    system.allocator.revoke_now()
    sweep_cycles = core.cycles - sweep_start

    total_cycles = core.cycles - start

    # --- phase 4: network traffic (its own fresh system) --------------
    net = _run_net_phase(spec)

    # --- the fault-campaign slice -------------------------------------
    campaign = run_campaign(total=spec.injections, seed=spec.seed)
    tally = campaign.tally()

    return {
        "device": spec.device_id,
        "seed": spec.seed,
        "cycles": total_cycles,
        "throughput": {
            "calls": alloc_calls,
            "cycles": alloc_cycles,
            "calls_per_kcycle": round(alloc_calls * 1000 / alloc_cycles, 4),
        },
        "latency": latency_summary(latencies),
        "latency_samples": latencies,
        "kernel": {
            "iterations": iters,
            "instructions": kernel_instrs,
            "cycles": kernel_cycles,
            "checksum": cpu.regs.read_int(11) & 0xFFFF_FFFF,
        },
        "revocation": {
            "sweep_cycles": sweep_cycles,
            "duty_cycle": round(sweep_cycles / total_cycles, 6),
        },
        "net": net,
        "faults": {
            "injections": campaign.total,
            "outcomes": tally,
            "detection_rate": round(campaign.detection_rate, 6),
            "escaped": tally["escaped"],
        },
    }
