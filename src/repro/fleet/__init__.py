"""Resilient device-fleet orchestration.

``repro.fleet`` scales the reproduction from one simulated device to a
*fleet*: N independent :class:`~repro.machine.System` instances, each
driven by a seeded fault-campaign slice plus a cross-compartment
allocation workload and a tiered-CPU kernel, sharded across a
supervised process pool.

The layering, bottom-up:

* :mod:`repro.fleet.device` — one device's deterministic metric sample
  (throughput, call-latency percentiles, revocation duty cycle, fault
  outcomes) from a per-device seed;
* :mod:`repro.fleet.plan` — the fleet plan: device list, shard
  assignment, per-device seeds, and a fingerprint that pins a
  checkpoint directory to one plan;
* :mod:`repro.fleet.shard` / :mod:`repro.fleet.worker` — a shard runs
  a contiguous slice of devices; the worker is the subprocess entry
  point (heartbeat file, atomic result write, chaos hooks for tests);
* :mod:`repro.fleet.supervisor` — launches workers, watches wall-clock
  deadlines and heartbeats, retries crashed/hung shards with seeded
  exponential backoff, quarantines persistent failures, and records
  every intervention in :class:`~repro.obs.fleet.FleetHealthStats`;
* :mod:`repro.fleet.checkpoint` — per-shard atomic result files, so an
  interrupted run resumes from completed shards;
* :mod:`repro.fleet.merge` — the deterministic sorted merge into the
  ``BENCH_fleet.json`` report (byte-identical for any worker count,
  any interleaving, and across a resume).

Determinism contract: everything in the merged report derives from
simulated cycles and seeded RNG streams — never wall clock — so a
serial in-process run, a 4-worker pool, and a crashed-then-resumed run
all produce the same bytes.  Orchestrator *health* (retries, timeouts,
quarantines) is wall-clock-dependent by nature and therefore lives in
a separate report, never in the byte-stable artifact.
"""

from .checkpoint import CheckpointStore
from .device import DeviceSpec, run_device
from .merge import merge_report, render_report
from .plan import FleetPlan, ShardSpec
from .procutil import SupervisedResult, WorkerProcess, run_supervised
from .retry import RetryPolicy
from .shard import run_shard
from .supervisor import FleetInterrupted, FleetSupervisor

__all__ = [
    "CheckpointStore",
    "DeviceSpec",
    "FleetInterrupted",
    "FleetPlan",
    "FleetSupervisor",
    "RetryPolicy",
    "ShardSpec",
    "SupervisedResult",
    "WorkerProcess",
    "merge_report",
    "render_report",
    "run_device",
    "run_shard",
    "run_supervised",
]
