"""The shard worker: ``python -m repro.fleet.worker``.

One worker process runs one shard attempt.  Protocol with the
supervisor:

* ``--spec`` — the :class:`~repro.fleet.plan.ShardSpec` JSON to run;
* ``--out`` — where to write the result; written atomically (tmp +
  rename), so the supervisor can trust any file that exists;
* ``--heartbeat`` — rewritten after every completed device; a wedged
  worker stops touching it and the supervisor's staleness check fires.
  The write is a JSON telemetry delta (:mod:`repro.obs.pipeline` wire
  format): the shard's cumulative counters and latency sketch ride the
  heartbeat channel, so the supervisor folds live fleet telemetry
  between harvests at zero extra protocol cost.

Exit status: 0 with a result file on success; anything else is a
crash the supervisor will retry (the result file, if any, is ignored).

**Chaos hooks** (tests and the CI smoke job only): when
``REPRO_FLEET_CHAOS`` names a directory, the worker looks for token
files before running:

* ``crash-<shard>``  — consume the token, then die with exit 17
  (*fail once*: the retry will find no token and succeed);
* ``hang-<shard>``   — consume the token, then sleep forever without
  heartbeating (the supervisor's timeout must kill us);
* ``stubborn-<shard>`` — die with exit 21 and *leave the token*, so
  every retry fails too and the shard ends up quarantined.

The hooks live in the worker, not the supervisor, precisely so the
supervision machinery under test is the production code path.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from repro.obs.pipeline import heartbeat_payload

from .plan import ShardSpec
from .shard import run_shard

CRASH_EXIT = 17
STUBBORN_EXIT = 21


def _chaos(shard_id: int) -> None:
    chaos_dir = os.environ.get("REPRO_FLEET_CHAOS")
    if not chaos_dir:
        return
    stubborn = os.path.join(chaos_dir, f"stubborn-{shard_id}")
    if os.path.exists(stubborn):
        print(f"chaos: shard {shard_id} failing persistently", file=sys.stderr)
        raise SystemExit(STUBBORN_EXIT)
    crash = os.path.join(chaos_dir, f"crash-{shard_id}")
    if os.path.exists(crash):
        os.unlink(crash)  # fail once; the retry finds no token
        print(f"chaos: shard {shard_id} crashing (once)", file=sys.stderr)
        raise SystemExit(CRASH_EXIT)
    hang = os.path.join(chaos_dir, f"hang-{shard_id}")
    if os.path.exists(hang):
        os.unlink(hang)
        print(f"chaos: shard {shard_id} hanging (once)", file=sys.stderr)
        while True:  # no heartbeat, no exit: only a kill ends this
            time.sleep(3600)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--spec", required=True, help="ShardSpec JSON path")
    parser.add_argument("--out", required=True, help="result JSON path")
    parser.add_argument("--heartbeat", default=None, help="heartbeat file")
    args = parser.parse_args(argv)

    with open(args.spec) as fh:
        spec = ShardSpec.from_dict(json.load(fh))

    _chaos(spec.shard_id)

    def beat(device_id: int, devices_done: int, telemetry: dict) -> None:
        if args.heartbeat is None:
            return
        tmp = args.heartbeat + ".tmp"
        with open(tmp, "w") as fh:
            fh.write(heartbeat_payload(spec.shard_id, devices_done, telemetry))
            fh.write("\n")
        os.replace(tmp, args.heartbeat)

    result = run_shard(spec, heartbeat=beat)

    tmp = args.out + ".tmp"
    with open(tmp, "w") as fh:
        json.dump(result, fh, sort_keys=True)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, args.out)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
