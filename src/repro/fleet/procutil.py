"""Worker-process supervision shared by the fleet and the bench runner.

:class:`WorkerProcess` wraps one subprocess with the three things a
supervisor needs and ``subprocess.run`` does not give:

* a **wall-clock deadline** — a worker that runs past it is killed,
  not waited on forever;
* a **heartbeat file** — a worker that is alive-but-wedged (stuck
  syscall, livelock) stops touching its heartbeat and is killed even
  though the wall deadline has not passed;
* **terminate-then-kill escalation** — SIGTERM first so the worker can
  flush, SIGKILL if it lingers.

:func:`run_supervised` is the blocking convenience built on top — what
``tools/run_benchmarks.py`` uses for its per-module timeout — while
the fleet supervisor drives :class:`WorkerProcess` directly so it can
watch many workers at once.
"""

from __future__ import annotations

import os
import subprocess
import time
from dataclasses import dataclass
from typing import List, Optional


@dataclass
class SupervisedResult:
    """What one supervised worker run came back with."""

    returncode: int
    stdout: str
    stderr: str
    timed_out: bool
    duration: float

    @property
    def ok(self) -> bool:
        return self.returncode == 0 and not self.timed_out


def tail(text: str, lines: int = 25) -> str:
    """The last ``lines`` lines of ``text`` (diagnostics excerpts)."""
    parts = text.rstrip().splitlines()
    if len(parts) <= lines:
        return text.rstrip()
    return "\n".join(["... (truncated) ..."] + parts[-lines:])


class WorkerProcess:
    """One supervised subprocess: deadline, heartbeat, escalated kill."""

    def __init__(
        self,
        cmd: List[str],
        *,
        env: Optional[dict] = None,
        cwd: Optional[str] = None,
        stdout_path: Optional[str] = None,
        stderr_path: Optional[str] = None,
        timeout: Optional[float] = None,
        heartbeat_path: Optional[str] = None,
        heartbeat_timeout: Optional[float] = None,
    ) -> None:
        self.cmd = list(cmd)
        self.env = env
        self.cwd = cwd
        self.stdout_path = stdout_path
        self.stderr_path = stderr_path
        self.timeout = timeout
        self.heartbeat_path = heartbeat_path
        self.heartbeat_timeout = heartbeat_timeout
        self.proc: Optional[subprocess.Popen] = None
        self.started_at: float = 0.0
        self._stdout_fh = None
        self._stderr_fh = None

    # ------------------------------------------------------------------

    def spawn(self) -> None:
        if self.heartbeat_path is not None:
            # The launch itself counts as the first beat, so a worker
            # that dies before its first write is judged by the wall
            # deadline, not by a missing file.
            with open(self.heartbeat_path, "w") as fh:
                fh.write("spawned\n")
        self._stdout_fh = (
            open(self.stdout_path, "wb") if self.stdout_path else subprocess.DEVNULL
        )
        self._stderr_fh = (
            open(self.stderr_path, "wb") if self.stderr_path else subprocess.DEVNULL
        )
        self.proc = subprocess.Popen(
            self.cmd,
            env=self.env,
            cwd=self.cwd,
            stdout=self._stdout_fh,
            stderr=self._stderr_fh,
        )
        self.started_at = time.monotonic()

    def poll(self) -> Optional[int]:
        assert self.proc is not None
        code = self.proc.poll()
        if code is not None:
            self._close_files()
        return code

    def expired(self, now: Optional[float] = None) -> Optional[str]:
        """A reason string if this worker should be killed, else None."""
        now = time.monotonic() if now is None else now
        if self.timeout is not None and now - self.started_at > self.timeout:
            return f"wall-clock timeout ({self.timeout:.1f}s)"
        if (
            self.heartbeat_path is not None
            and self.heartbeat_timeout is not None
        ):
            try:
                stale = now_wall() - os.path.getmtime(self.heartbeat_path)
            except OSError:
                stale = None
            if stale is not None and stale > self.heartbeat_timeout:
                return f"heartbeat stale for {stale:.1f}s"
        return None

    def kill(self, grace: float = 1.0) -> None:
        """SIGTERM, wait up to ``grace`` seconds, then SIGKILL."""
        assert self.proc is not None
        if self.proc.poll() is None:
            self.proc.terminate()
            try:
                self.proc.wait(timeout=grace)
            except subprocess.TimeoutExpired:
                self.proc.kill()
                self.proc.wait()
        self._close_files()

    def _close_files(self) -> None:
        for fh in (self._stdout_fh, self._stderr_fh):
            if fh is not None and fh is not subprocess.DEVNULL:
                try:
                    fh.close()
                except OSError:
                    pass
        self._stdout_fh = self._stderr_fh = None

    # ------------------------------------------------------------------

    def read_output(self) -> "tuple[str, str]":
        """Captured (stdout, stderr) so far, decoded tolerantly."""

        def slurp(path: Optional[str]) -> str:
            if not path:
                return ""
            try:
                with open(path, "rb") as fh:
                    return fh.read().decode("utf-8", "replace")
            except OSError:
                return ""

        return slurp(self.stdout_path), slurp(self.stderr_path)


def now_wall() -> float:
    """Wall time for heartbeat-mtime comparisons (mockable in tests)."""
    return time.time()


def run_supervised(
    cmd: List[str],
    *,
    timeout: Optional[float] = None,
    env: Optional[dict] = None,
    cwd: Optional[str] = None,
    poll_interval: float = 0.05,
    scratch_dir: Optional[str] = None,
) -> SupervisedResult:
    """Run ``cmd`` to completion under a wall-clock deadline.

    Unlike ``subprocess.run(timeout=...)`` this never raises on
    timeout: the worker is killed (terminate, then kill) and the
    result says so, with whatever output it produced — the caller gets
    diagnostics instead of a ``TimeoutExpired`` traceback.
    """
    import tempfile

    owns_scratch = scratch_dir is None
    scratch = scratch_dir or tempfile.mkdtemp(prefix="supervised-")
    out_path = os.path.join(scratch, "stdout")
    err_path = os.path.join(scratch, "stderr")
    worker = WorkerProcess(
        cmd,
        env=env,
        cwd=cwd,
        stdout_path=out_path,
        stderr_path=err_path,
        timeout=timeout,
    )
    worker.spawn()
    timed_out = False
    try:
        while True:
            code = worker.poll()
            if code is not None:
                break
            if worker.expired() is not None:
                timed_out = True
                worker.kill()
                code = worker.proc.returncode
                break
            time.sleep(poll_interval)
        duration = time.monotonic() - worker.started_at
        stdout, stderr = worker.read_output()
        return SupervisedResult(
            returncode=code if code is not None else -1,
            stdout=stdout,
            stderr=stderr,
            timed_out=timed_out,
            duration=duration,
        )
    finally:
        if owns_scratch:
            import shutil

            shutil.rmtree(scratch, ignore_errors=True)
