"""The deterministic fleet merge: same bytes for any execution history.

This reuses the discipline ``tools/run_benchmarks.py`` established for
the bench tables — workers may finish in any order, but the artifact
is assembled in sorted key order from per-worker files, carries no
timestamps, and rounds every float the same way — so the merged
``BENCH_fleet.json`` is byte-identical whether the fleet ran serially,
on eight workers, or was killed and resumed.

Graceful degradation: a quarantined shard's devices are *listed* in
``degraded`` (shard id, device ids, reason) and excluded from the
aggregates — a partial fleet produces a complete, honest report, never
a silently shorter device table.
"""

from __future__ import annotations

import json
from typing import Dict, Optional

from .device import latency_summary
from .plan import FleetPlan

#: Format version for the report schema (bump on shape changes so the
#: regression gate fails loudly instead of misreading old baselines).
REPORT_VERSION = 1


class MergeError(Exception):
    """Shard results that cannot be merged into one report."""


def merge_report(
    plan: FleetPlan,
    shard_results: Dict[int, dict],
    degraded: Optional[Dict[int, str]] = None,
) -> dict:
    """Fold per-shard results into the fleet report dict.

    ``shard_results`` maps shard id -> the worker's result;
    ``degraded`` maps quarantined shard id -> reason.  Every planned
    shard must be accounted for in exactly one of the two — a shard
    missing from both would mean results were silently dropped, which
    is the one failure mode this layer exists to prevent.
    """
    degraded = degraded or {}
    planned = plan.shards()
    missing = [
        s.shard_id
        for s in planned
        if s.shard_id not in shard_results and s.shard_id not in degraded
    ]
    if missing:
        raise MergeError(
            f"shards {missing} neither completed nor quarantined — refusing "
            "to merge a silently-partial fleet"
        )
    both = sorted(set(shard_results) & set(degraded))
    if both:
        raise MergeError(f"shards {both} both completed and quarantined")

    devices = []
    all_latencies = []
    for shard_id in sorted(shard_results):
        result = shard_results[shard_id]
        if result.get("fleet_seed") != plan.seed:
            raise MergeError(
                f"shard {shard_id} was run with seed "
                f"{result.get('fleet_seed')}, plan has {plan.seed}"
            )
        for device in result["devices"]:
            entry = dict(device)
            # Raw samples feed the fleet-wide percentiles, then stay in
            # the checkpoint files — the report keeps the summaries.
            all_latencies.extend(entry.pop("latency_samples", ()))
            devices.append(entry)
    devices.sort(key=lambda d: d["device"])

    shard_index = {s.shard_id: s for s in planned}
    degraded_entries = [
        {
            "shard": shard_id,
            "devices": list(shard_index[shard_id].device_ids),
            "reason": reason,
        }
        for shard_id, reason in sorted(degraded.items())
    ]

    total_cycles = sum(d["cycles"] for d in devices)
    total_calls = sum(d["throughput"]["calls"] for d in devices)
    call_cycles = sum(d["throughput"]["cycles"] for d in devices)
    sweep_cycles = sum(d["revocation"]["sweep_cycles"] for d in devices)
    injections = sum(d["faults"]["injections"] for d in devices)
    escaped = sum(d["faults"]["escaped"] for d in devices)
    outcome_totals: Dict[str, int] = {}
    for d in devices:
        for outcome, count in d["faults"]["outcomes"].items():
            outcome_totals[outcome] = outcome_totals.get(outcome, 0) + count

    aggregates = {
        "devices_reporting": len(devices),
        "devices_degraded": sum(len(e["devices"]) for e in degraded_entries),
        "total_cycles": total_cycles,
        "throughput": {
            "calls": total_calls,
            "calls_per_kcycle": (
                round(total_calls * 1000 / call_cycles, 4) if call_cycles else 0.0
            ),
        },
        "latency": latency_summary(all_latencies),
        "revocation_duty_cycle": (
            round(sweep_cycles / total_cycles, 6) if total_cycles else 0.0
        ),
        "faults": {
            "injections": injections,
            "outcomes": outcome_totals,
            "escaped": escaped,
        },
    }

    return {
        "version": REPORT_VERSION,
        "plan": plan.to_dict(),
        "fingerprint": plan.fingerprint(),
        "aggregates": aggregates,
        "devices": devices,
        "degraded": degraded_entries,
    }


def render_report(report: dict) -> str:
    """The canonical byte form of a fleet report."""
    return json.dumps(report, indent=2, sort_keys=True) + "\n"
