"""CHERIoT bounds encoding and decoding (paper Figure 3, section 3.2.3).

A capability's bounds are stored as a 4-bit exponent ``E`` plus 9-bit
``B`` (base) and ``T`` (top) fields.  Both bounds are ``2**e``-aligned
values positioned relative to the capability's 32-bit address ``a``:

* ``a_top = a[31 : e+9]`` — the address bits above the B/T window,
* ``a_mid = a[e+8 : e]`` — the 9 address bits aligned with B/T,
* ``base  = (a_top + c_b) << (e+9) | B << e``
* ``top   = (a_top + c_t) << (e+9) | T << e``

with corrections ``c_b``/``c_t`` chosen per the table in Figure 3:

=============  =========  =====  =====
``a_mid < B``  ``T < B``  c_b    c_t
=============  =========  =====  =====
no             no          0      0
no             yes         0      1
yes            no         -1     -1
yes            yes        -1      0
=============  =========  =====  =====

``E == 0xF`` denotes an exponent of 24 (so the root capabilities can
cover the whole 32-bit address space: ``T = 0x100 << 24 == 2**32``);
every other ``E`` maps directly to its unsigned value.

Compared to CHERI Concentrate, this trades *representable range* for
precision and simplicity: objects up to 511 bytes always encode exactly
(``e == 0``) and average internal fragmentation is ~0.19 %, but there is
no guaranteed out-of-bounds representable region — moving the address so
that the decode changes untags the capability, and addresses below the
base are never representable.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro._compat import DATACLASS_SLOTS

#: Width of the address space in bits.
ADDRESS_BITS = 32
#: Number of bits in each of the B and T fields.
MANTISSA_BITS = 9
#: Largest length representable with exponent zero (precise encoding).
MAX_PRECISE_LENGTH = (1 << MANTISSA_BITS) - 1  # 511 bytes
#: The E field value that denotes an exponent of 24.
E_FIELD_MAX = 0xF
#: The exponent that E == 0xF denotes.
EXPONENT_MAX = 24

_ADDR_MASK = (1 << ADDRESS_BITS) - 1
_MANTISSA_MASK = (1 << MANTISSA_BITS) - 1


class BoundsError(ValueError):
    """Requested bounds cannot be represented (e.g. length > 2**32)."""


@dataclass(frozen=True, **DATACLASS_SLOTS)
class EncodedBounds:
    """The stored (E, B, T) triple of a capability."""

    exponent_field: int  # the 4-bit E field as stored
    base_field: int  # the 9-bit B field
    top_field: int  # the 9-bit T field

    def __post_init__(self) -> None:
        if not 0 <= self.exponent_field <= E_FIELD_MAX:
            raise BoundsError(f"E field out of range: {self.exponent_field}")
        if not 0 <= self.base_field <= _MANTISSA_MASK:
            raise BoundsError(f"B field out of range: {self.base_field}")
        if not 0 <= self.top_field <= _MANTISSA_MASK:
            raise BoundsError(f"T field out of range: {self.top_field}")

    @property
    def exponent(self) -> int:
        """The decoded exponent ``e`` (E == 0xF denotes 24)."""
        if self.exponent_field == E_FIELD_MAX:
            return EXPONENT_MAX
        return self.exponent_field


def decode(address: int, bounds: EncodedBounds) -> "tuple[int, int]":
    """Decode ``(base, top)`` for a capability at ``address``.

    ``base`` is a 32-bit address; ``top`` may be ``2**32`` (one past the
    end of the address space) for whole-address-space capabilities.
    Implements Figure 3 of the paper exactly.
    """
    if not 0 <= address <= _ADDR_MASK:
        raise BoundsError(f"address out of range: {address:#x}")
    e = bounds.exponent
    b_field = bounds.base_field
    t_field = bounds.top_field
    a_top = address >> (e + MANTISSA_BITS)
    a_mid = (address >> e) & _MANTISSA_MASK

    a_mid_lt_b = a_mid < b_field
    t_lt_b = t_field < b_field
    if not a_mid_lt_b and not t_lt_b:
        c_b, c_t = 0, 0
    elif not a_mid_lt_b and t_lt_b:
        c_b, c_t = 0, 1
    elif a_mid_lt_b and not t_lt_b:
        c_b, c_t = -1, -1
    else:
        c_b, c_t = -1, 0

    base = ((a_top + c_b) << (e + MANTISSA_BITS)) + (b_field << e)
    top = ((a_top + c_t) << (e + MANTISSA_BITS)) + (t_field << e)
    # Wrap to the 33-bit space in which top lives; base is a 32-bit
    # address.  Negative intermediate values (correction -1 at a_top 0)
    # wrap the same way the hardware's modular arithmetic does.
    base &= _ADDR_MASK
    top &= (1 << (ADDRESS_BITS + 1)) - 1
    return base, top


def exponent_for_length(length: int) -> int:
    """Smallest exponent whose 9-bit mantissa can span ``length`` bytes."""
    if length < 0:
        raise BoundsError("negative length")
    if length > (1 << ADDRESS_BITS):
        raise BoundsError(f"length exceeds address space: {length:#x}")
    e = 0
    while length > (_MANTISSA_MASK << e) and e < EXPONENT_MAX:
        e += 1
    return e


def encode(base: int, length: int, exact: bool = False) -> "tuple[EncodedBounds, int, int]":
    """Encode the bounds ``[base, base + length)``.

    Returns ``(encoded, actual_base, actual_top)``.  When the requested
    bounds are not exactly representable, the base is rounded *down* and
    the top rounded *up* to the encoding's ``2**e`` granularity — the
    monotone direction (never narrower than requested) used by
    ``csetbounds``.  With ``exact=True`` (``csetboundsexact`` semantics)
    a :class:`BoundsError` is raised instead of rounding.

    Objects of up to :data:`MAX_PRECISE_LENGTH` (511) bytes always encode
    precisely (section 3.2.3).
    """
    if not 0 <= base <= _ADDR_MASK:
        raise BoundsError(f"base out of range: {base:#x}")
    top = base + length
    if top > (1 << ADDRESS_BITS):
        raise BoundsError(f"top exceeds address space: {top:#x}")
    if length < 0:
        raise BoundsError("negative length")

    e = exponent_for_length(length)
    while True:
        granule = 1 << e
        rounded_base = base & ~(granule - 1)
        rounded_top = (top + granule - 1) & ~(granule - 1)
        if rounded_top - rounded_base <= (_MANTISSA_MASK << e):
            break
        if e >= EXPONENT_MAX:
            raise BoundsError(
                f"bounds [{base:#x}, {top:#x}) unrepresentable at max exponent"
            )
        e += 1

    if exact and (rounded_base != base or rounded_top != top):
        raise BoundsError(
            f"bounds [{base:#x}, {top:#x}) not exactly representable (e={e})"
        )

    e_field = E_FIELD_MAX if e == EXPONENT_MAX else e
    if e == EXPONENT_MAX and e_field != E_FIELD_MAX:
        raise AssertionError("unreachable")
    # E field values 0xF..: exponent 24; values 14 and below are direct.
    # An exponent in (14, 24) cannot be stored: bump to 24.
    if E_FIELD_MAX <= e < EXPONENT_MAX:
        e = EXPONENT_MAX
        e_field = E_FIELD_MAX
        granule = 1 << e
        rounded_base = base & ~(granule - 1)
        rounded_top = (top + granule - 1) & ~(granule - 1)
        if exact and (rounded_base != base or rounded_top != top):
            raise BoundsError(
                f"bounds [{base:#x}, {top:#x}) not exactly representable (e=24)"
            )

    b_field = (rounded_base >> e) & _MANTISSA_MASK
    t_field = (rounded_top >> e) & _MANTISSA_MASK
    encoded = EncodedBounds(e_field, b_field, t_field)
    return encoded, rounded_base, rounded_top


def is_representable(address: int, bounds: EncodedBounds, base: int, top: int) -> bool:
    """True when ``address`` still decodes to ``(base, top)``.

    CHERIoT has no guaranteed representable range beyond the bounds: a
    capability whose address is moved so the decode changes must be
    untagged (section 3.2.3).  This predicate is the check the hardware
    applies on ``cincaddr``/``csetaddr``.
    """
    if not 0 <= address <= _ADDR_MASK:
        return False
    return decode(address, bounds) == (base, top)


def _storable_exponent(e: int) -> int:
    """Exponents 15..23 cannot live in the 4-bit E field: jump to 24."""
    return e if e < E_FIELD_MAX else EXPONENT_MAX


def representable_alignment_mask(length: int) -> int:
    """``cram``: alignment mask for a precisely-representable region.

    A region of ``length`` bytes is exactly encodable iff its base is
    aligned to (and its length padded to) ``2**e`` for the *storable*
    exponent the encoder would pick; the mask is ``~(2**e - 1)`` over
    32 bits.
    """
    e = _storable_exponent(exponent_for_length(length))
    return (~((1 << e) - 1)) & _ADDR_MASK


def representable_length(length: int) -> int:
    """``crrl``: ``length`` rounded up to the encoder's granule."""
    if length == 0:
        return 0
    e = _storable_exponent(exponent_for_length(length))
    granule = 1 << e
    rounded = (length + granule - 1) & ~(granule - 1)
    # Rounding can push past the mantissa span; bump the exponent once.
    if rounded > (_MANTISSA_MASK << e) and e < EXPONENT_MAX:
        e = _storable_exponent(e + 1)
        granule = 1 << e
        rounded = (length + granule - 1) & ~(granule - 1)
    return rounded
