"""Packing capabilities into their 64-bit stored form (paper Figure 1).

The in-memory representation is two 32-bit words plus the out-of-band
tag bit:

* word 1 (metadata), bit layout ``[31] R  [30:25] p  [24:22] o  [21:18] E
  [17:9] B  [8:0] T``
* word 0: the 32-bit address.

The tag is *not* part of the 64 bits — it lives in the tag SRAM
(:mod:`repro.memory.tagged_memory`).  Packing and unpacking roundtrip
exactly; the 6-bit permission field uses the compressed formats of
:mod:`repro.capability.compression`.
"""

from __future__ import annotations

from functools import lru_cache

from . import compression
from .bounds import EncodedBounds
from .capability import Capability

_META_R_SHIFT = 31
_META_P_SHIFT = 25
_META_O_SHIFT = 22
_META_E_SHIFT = 18
_META_B_SHIFT = 9
_META_T_SHIFT = 0

_WORD_MASK = 0xFFFFFFFF


def pack_metadata(cap: Capability) -> int:
    """Pack the non-address half of a capability into 32 bits."""
    meta = 0
    if cap.reserved:
        meta |= 1 << _META_R_SHIFT
    meta |= compression.compress(cap.perms) << _META_P_SHIFT
    meta |= (cap.otype & 0x7) << _META_O_SHIFT
    meta |= (cap.bounds.exponent_field & 0xF) << _META_E_SHIFT
    meta |= (cap.bounds.base_field & 0x1FF) << _META_B_SHIFT
    meta |= (cap.bounds.top_field & 0x1FF) << _META_T_SHIFT
    return meta


def pack(cap: Capability) -> int:
    """Pack a capability into its 64-bit stored form (address in low word)."""
    return (pack_metadata(cap) << 32) | (cap.address & _WORD_MASK)


@lru_cache(maxsize=65536)
def unpack(bits: int, tag: bool) -> Capability:
    """Unpack 64 stored bits plus the out-of-band tag into a capability.

    Memoized: capability loads cluster heavily on a small set of stored
    patterns (stack spill slots, import tables), and unpacking is
    deterministic in ``(bits, tag)``.  Sharing the returned instance is
    safe — :class:`Capability` is immutable and compared by value — and
    profitable beyond the decode itself, since the shared instance also
    keeps its lazily-decoded bounds/permission caches warm.
    """
    if not 0 <= bits < (1 << 64):
        raise ValueError(f"capability bits out of range: {bits:#x}")
    address = bits & _WORD_MASK
    meta = (bits >> 32) & _WORD_MASK
    reserved = bool(meta & (1 << _META_R_SHIFT))
    perms = compression.decompress((meta >> _META_P_SHIFT) & 0x3F)
    otype = (meta >> _META_O_SHIFT) & 0x7
    bounds = EncodedBounds(
        exponent_field=(meta >> _META_E_SHIFT) & 0xF,
        base_field=(meta >> _META_B_SHIFT) & 0x1FF,
        top_field=(meta >> _META_T_SHIFT) & 0x1FF,
    )
    return Capability(
        address=address,
        bounds=bounds,
        perms=perms,
        otype=otype,
        tag=tag,
        reserved=reserved,
    )
