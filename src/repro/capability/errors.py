"""Fault taxonomy for capability manipulation and dereference.

These exceptions model the CHERI exception causes.  At the ISA level
(:mod:`repro.isa.executor`) they are caught and turned into processor
traps; library-level users of :class:`repro.capability.Capability` see
them directly.
"""

from __future__ import annotations


class CapabilityError(Exception):
    """Base class for every capability fault."""


class TagFault(CapabilityError):
    """An untagged (invalid) capability was used as an authority."""


class SealedFault(CapabilityError):
    """A sealed capability was dereferenced or modified."""


class PermissionFault(CapabilityError):
    """The authorizing capability lacks a required permission."""


class BoundsFault(CapabilityError):
    """The access lies (partly) outside the authorizing bounds."""


class MonotonicityFault(CapabilityError):
    """An operation attempted to *increase* authority (wider bounds,

    new permissions, or setting a tag) — forbidden by guarded
    manipulation (paper section 2.4)."""


class OTypeFault(CapabilityError):
    """Seal/unseal with a wrong or out-of-range object type."""
