"""The CHERIoT capability value and its guarded manipulation.

A :class:`Capability` is an immutable architectural value: a 32-bit
address, compressed bounds (E/B/T), a representable permission set, a
3-bit otype, the out-of-band validity tag, and the reserved bit (paper
Figure 1).  Every mutator returns a *new* capability and respects the
guarded-manipulation rules of section 2.4:

* bounds may be narrowed, never widened nor displaced;
* permissions may be shed, never regained;
* the tag may be cleared, never set.

Operations that would break monotonicity raise
:class:`~repro.capability.errors.MonotonicityFault` (as ``csetbounds``
does architecturally) or silently clear the tag where the architecture
specifies invalidation (address moves outside the representable region).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from functools import lru_cache
from typing import Iterable, Optional, Tuple

from repro._compat import DATACLASS_SLOTS

from . import bounds as bounds_mod
from . import compression
from . import otypes as otypes_mod
from .bounds import BoundsError, EncodedBounds
from .errors import (
    BoundsFault,
    MonotonicityFault,
    OTypeFault,
    PermissionFault,
    SealedFault,
    TagFault,
)
from .permissions import NO_PERMS, Permission, PermSet

_ADDR_MASK = (1 << bounds_mod.ADDRESS_BITS) - 1

#: Size in bytes of a capability in memory (32-bit address + metadata).
CAP_SIZE_BYTES = 8


@lru_cache(maxsize=4096)
def _perm_mask(perms: PermSet) -> int:
    """Combined ``Permission.value`` bitmask of a permission set.

    ``Permission`` is an ``enum.Flag``, so each member carries a distinct
    bit; the mask supports the executor's branch-free permission checks.
    """
    mask = 0
    for perm in perms:
        mask |= perm.value
    return mask


@dataclass(frozen=True, **DATACLASS_SLOTS)
class Capability:
    """An architectural CHERIoT capability.

    Instances are immutable; use the guarded-manipulation methods
    (:meth:`set_address`, :meth:`set_bounds`, :meth:`and_perms`,
    :meth:`seal`, ...) to derive new capabilities.
    """

    address: int
    bounds: EncodedBounds
    perms: PermSet = NO_PERMS
    otype: int = otypes_mod.OTYPE_UNSEALED
    tag: bool = False
    reserved: bool = False
    #: Lazily-computed decoded ``(base, top)`` cache.  Bounds decoding is
    #: deterministic in (address, bounds), so the cache never needs
    #: invalidation on an immutable value.
    _dec: Optional[Tuple[int, int]] = field(
        default=None, init=False, repr=False, compare=False
    )
    #: Lazily-computed permission bitmask cache (same reasoning: the
    #: perms frozenset is immutable, so hashing it into the shared
    #: ``_perm_mask`` LRU on every ``allows()`` is pure overhead).
    _pbits: Optional[int] = field(
        default=None, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if not 0 <= self.address <= _ADDR_MASK:
            raise ValueError(f"address out of range: {self.address:#x}")
        if not otypes_mod.is_valid_otype(self.otype):
            raise OTypeFault(f"otype out of range: {self.otype}")
        if compression.normalize(self.perms) != self.perms:
            raise ValueError(f"permission set not representable: {self.perms}")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @staticmethod
    def null(address: int = 0) -> "Capability":
        """The NULL capability: untagged, no permissions, zero bounds.

        This sits on the simulator's hottest path — every integer
        register write materializes one — so small addresses come from a
        prebuilt table of shared instances (safe: capabilities are
        immutable and compared by value) and the rest skip
        ``__post_init__``, whose checks are vacuous for NULL-derived
        values (masked address, unsealed otype, empty permission set).
        """
        if 0 <= address < _SMALL_NULL_COUNT:
            return _SMALL_NULLS[address]
        return _make_null(address & _ADDR_MASK)

    @staticmethod
    def from_bounds(
        base: int,
        length: int,
        perms: Iterable[Permission],
        address: Optional[int] = None,
        exact: bool = False,
        tag: bool = True,
    ) -> "Capability":
        """Forge a tagged capability over ``[base, base+length)``.

        This is *not* an architectural operation — only the three reset
        roots (:mod:`repro.capability.roots`) and tests should forge;
        everything else must derive from a root.  Bounds follow the
        ``csetbounds`` rounding rules of :func:`repro.capability.bounds.encode`.
        """
        normalized = compression.normalize(frozenset(perms))
        encoded, actual_base, _ = bounds_mod.encode(base, length, exact=exact)
        addr = base if address is None else address
        cap = Capability(
            address=addr & _ADDR_MASK,
            bounds=encoded,
            perms=normalized,
            tag=tag,
        )
        if cap.tag and not bounds_mod.is_representable(
            cap.address, encoded, actual_base, cap.top
        ):
            raise BoundsError(
                f"address {addr:#x} not representable within [{base:#x}, +{length:#x})"
            )
        return cap

    # ------------------------------------------------------------------
    # Decoded views
    # ------------------------------------------------------------------

    @property
    def _decoded_bounds(self) -> Tuple[int, int]:
        """Decoded ``(base, top)``, cached in a slot on first use."""
        dec = self._dec
        if dec is None:
            dec = bounds_mod.decode(self.address, self.bounds)
            object.__setattr__(self, "_dec", dec)
        return dec

    @property
    def base(self) -> int:
        """Decoded inclusive lower bound."""
        return self._decoded_bounds[0]

    @property
    def top(self) -> int:
        """Decoded exclusive upper bound (may be ``2**32``)."""
        return self._decoded_bounds[1]

    @property
    def perm_bits(self) -> int:
        """Permission set as a combined ``Permission.value`` bitmask."""
        pbits = self._pbits
        if pbits is None:
            pbits = _perm_mask(self.perms)
            object.__setattr__(self, "_pbits", pbits)
        return pbits

    @property
    def length(self) -> int:
        """``top - base`` (zero when the encoding is degenerate)."""
        return max(0, self.top - self.base)

    @property
    def is_sealed(self) -> bool:
        """True when the otype is non-zero (includes sentries)."""
        return self.otype != otypes_mod.OTYPE_UNSEALED

    @property
    def is_sentry(self) -> bool:
        """True for sealed-entry capabilities (executable namespace)."""
        return otypes_mod.is_sentry(self.otype, Permission.EX in self.perms)

    @property
    def is_global(self) -> bool:
        """Global capabilities may be stored anywhere; locals need SL."""
        return Permission.GL in self.perms

    @property
    def is_local(self) -> bool:
        return not self.is_global

    @property
    def is_executable(self) -> bool:
        return Permission.EX in self.perms

    def has(self, *perms: Permission) -> bool:
        """True when every listed permission is held."""
        return all(p in self.perms for p in perms)

    def in_bounds(self, address: Optional[int] = None, size: int = 1) -> bool:
        """True when ``[address, address+size)`` lies within bounds."""
        addr = self.address if address is None else address
        return self.base <= addr and addr + size <= self.top

    # ------------------------------------------------------------------
    # Guarded manipulation (all monotone)
    # ------------------------------------------------------------------

    def untagged(self) -> "Capability":
        """Copy with the validity tag cleared."""
        if not self.tag:
            return self
        # The decode depends only on (address, bounds), both unchanged.
        return _derive(self, self.address, False, self._dec)

    def set_address(self, address: int) -> "Capability":
        """``csetaddr``: move the address, untagging on unrepresentability.

        Changing the address of a *sealed* capability also clears the tag
        (sealed capabilities are immutable).  An address move that would
        change the decoded bounds clears the tag (section 3.2.3).
        """
        address &= _ADDR_MASK
        tag = False
        verified = False  # representability actually checked and held
        if self.tag and not self.is_sealed:
            verified = bounds_mod.is_representable(
                address, self.bounds, self.base, self.top
            )
            tag = verified
        # A verified move keeps the decoded bounds by definition of
        # representability; seed the cache so the derived capability
        # never re-decodes.  Unverified moves may decode differently.
        return _derive(self, address, tag, self._dec if verified else None)

    def inc_address(self, delta: int) -> "Capability":
        """``cincaddr``: pointer arithmetic with representability check."""
        return self.set_address((self.address + delta) & _ADDR_MASK)

    def set_bounds(self, length: int, exact: bool = False) -> "Capability":
        """``csetbounds``: narrow bounds to ``[address, address+length)``.

        Raises :class:`MonotonicityFault` when the (rounded) requested
        region is not contained in the current bounds,
        :class:`BoundsFault` when the request is not encodable at all
        (negative length, top past the address space), and the usual
        faults for untagged / sealed sources.
        """
        self._require_unsealed_tagged()
        try:
            encoded, new_base, new_top = bounds_mod.encode(
                self.address, length, exact=exact
            )
        except BoundsError as err:
            # Surface unencodable requests as the architectural fault so
            # a csetbounds from guest code traps instead of escaping the
            # simulator as a raw ValueError.
            raise BoundsFault(str(err)) from err
        if new_base < self.base or new_top > self.top:
            raise MonotonicityFault(
                f"setbounds [{new_base:#x}, {new_top:#x}) exceeds "
                f"[{self.base:#x}, {self.top:#x})"
            )
        return replace(self, bounds=encoded)

    def and_perms(self, mask: Iterable[Permission]) -> "Capability":
        """``candperm``: intersect permissions (then re-normalize)."""
        self._require_unsealed_tagged()
        return replace(self, perms=compression.and_perms(self.perms, frozenset(mask)))

    def clear_perms(self, *perms: Permission) -> "Capability":
        """Convenience: shed the listed permissions."""
        keep = frozenset(self.perms) - frozenset(perms)
        return self.and_perms(keep)

    def make_local(self) -> "Capability":
        """Shed GL: the result may only be stored via SL authorities."""
        return self.clear_perms(Permission.GL)

    def readonly(self) -> "Capability":
        """Shed write authority, deeply: clears SD, SL and LM.

        Clearing LM makes the read-only view *transitive* — capabilities
        loaded through it lose SD/LM too (section 3.1.1).
        """
        return self.clear_perms(Permission.SD, Permission.SL, Permission.LM)

    def seal(self, authority: "Capability") -> "Capability":
        """``cseal``: seal with the otype named by ``authority.address``.

        ``authority`` must be tagged, unsealed, hold SE, and its address
        must be an in-bounds otype valid for this capability's namespace
        (executable or data, selected by EX — section 3.2.2).
        """
        self._require_unsealed_tagged()
        _check_seal_authority(authority, Permission.SE)
        otype = authority.address
        _check_otype_for(self, otype)
        return replace(self, otype=otype)

    def seal_sentry(self, sentry_type: otypes_mod.SentryType) -> "Capability":
        """Seal an executable capability as a sentry (section 3.1.2).

        Creating sentries needs no sealing authority: the RTOS loader and
        jump-and-link hardware mint them; they are the mechanism by which
        interrupt posture is delegated.
        """
        self._require_unsealed_tagged()
        if not self.is_executable:
            raise PermissionFault("sentries must be executable")
        return replace(self, otype=int(sentry_type))

    def unseal(self, authority: "Capability") -> "Capability":
        """``cunseal``: remove the seal using a US authority."""
        if not self.tag:
            raise TagFault("unseal of untagged capability")
        if not self.is_sealed:
            raise OTypeFault("capability is not sealed")
        _check_seal_authority(authority, Permission.US)
        if authority.address != self.otype:
            raise OTypeFault(
                f"unseal otype mismatch: authority names {authority.address}, "
                f"capability sealed with {self.otype}"
            )
        return replace(self, otype=otypes_mod.OTYPE_UNSEALED)

    def unseal_for_jump(self) -> "Capability":
        """Automatic unsealing applied when a sentry is jumped to."""
        if not self.is_sentry:
            raise OTypeFault("not a sentry")
        return replace(self, otype=otypes_mod.OTYPE_UNSEALED)

    # ------------------------------------------------------------------
    # Dereference checks (used by the memory system and ISA)
    # ------------------------------------------------------------------

    def allows(self, address: int, size: int, need_bits: int) -> bool:
        """Exception-free fast path of :meth:`check_access`.

        ``need_bits`` is a pre-combined ``Permission.value`` mask.  Returns
        True when the access is authorized; on False the caller should run
        :meth:`check_access` to raise the architecturally-ordered fault.
        """
        if not self.tag or self.otype != otypes_mod.OTYPE_UNSEALED:
            return False
        pbits = self._pbits
        if pbits is None:
            pbits = _perm_mask(self.perms)
            object.__setattr__(self, "_pbits", pbits)
        if need_bits & ~pbits:
            return False
        dec = self._dec
        if dec is None:
            dec = bounds_mod.decode(self.address, self.bounds)
            object.__setattr__(self, "_dec", dec)
        return dec[0] <= address and address + size <= dec[1]

    def check_access(
        self, address: int, size: int, required: Iterable[Permission]
    ) -> None:
        """Authorize an access or raise the appropriate fault.

        Checks, in hardware order: tag, seal, permissions, then bounds.
        """
        if not self.tag:
            raise TagFault(f"access via untagged capability at {address:#x}")
        if self.is_sealed:
            raise SealedFault(f"access via sealed capability at {address:#x}")
        for perm in required:
            if perm not in self.perms:
                raise PermissionFault(
                    f"access at {address:#x} requires {perm}, held: "
                    f"{sorted(p.name for p in self.perms)}"
                )
        if not self.in_bounds(address, size):
            raise BoundsFault(
                f"access [{address:#x}, +{size}) outside "
                f"[{self.base:#x}, {self.top:#x})"
            )

    def _require_unsealed_tagged(self) -> None:
        if not self.tag:
            raise TagFault("operation on untagged capability")
        if self.is_sealed:
            raise SealedFault("operation on sealed capability")

    # ------------------------------------------------------------------
    # Display
    # ------------------------------------------------------------------

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        perms = "".join(sorted(p.name for p in self.perms)) or "-"
        seal = f" otype={self.otype}" if self.is_sealed else ""
        tag = "v" if self.tag else "!"
        return (
            f"<Cap {tag} {self.address:#010x} [{self.base:#x},{self.top:#x})"
            f" {perms}{seal}>"
        )


#: Shared bounds/value for NULL-derived (integer) capabilities.  NULL
#: capabilities are immutable and compare by value, so interning the
#: all-zero instance is safe and removes a construction from every
#: integer register write.
_NULL_BOUNDS = EncodedBounds(0, 0, 0)
_NULL_CAP = Capability(address=0, bounds=_NULL_BOUNDS, perms=NO_PERMS, tag=False)


def _derive(src: Capability, address: int, tag: bool, dec) -> Capability:
    """Clone a validated capability with a new address/tag, skipping
    ``__post_init__`` — every skipped check depends only on fields
    copied verbatim from the already-validated source.  ``dec`` seeds
    the decoded-bounds cache when the caller knows the decode is
    unchanged (pass ``None`` otherwise); the permission-bitmask cache
    always carries over since the permission set does.

    This sits on the ``csetaddr``/``cincaddr`` hot path: pointer
    arithmetic dominates capability traffic, and the dataclass
    constructor re-normalizes (and re-hashes) the permission frozenset
    on every derivation.
    """
    cap = object.__new__(Capability)
    _set = object.__setattr__
    _set(cap, "address", address)
    _set(cap, "bounds", src.bounds)
    _set(cap, "perms", src.perms)
    _set(cap, "otype", src.otype)
    _set(cap, "tag", tag)
    _set(cap, "reserved", src.reserved)
    _set(cap, "_dec", dec)
    _set(cap, "_pbits", src._pbits)
    return cap


def _make_null(address: int) -> Capability:
    """Build a NULL-derived capability without ``__post_init__``.

    The skipped checks are vacuous here by construction: the caller
    masks the address, the otype is unsealed, and ``NO_PERMS`` is its
    own normalization.
    """
    cap = object.__new__(Capability)
    _set = object.__setattr__
    _set(cap, "address", address)
    _set(cap, "bounds", _NULL_BOUNDS)
    _set(cap, "perms", NO_PERMS)
    _set(cap, "otype", otypes_mod.OTYPE_UNSEALED)
    _set(cap, "tag", False)
    _set(cap, "reserved", False)
    _set(cap, "_dec", None)
    _set(cap, "_pbits", None)
    return cap


#: Interning table for small NULL-derived integers (loop counters,
#: flags, comparison constants dominate integer register traffic).
_SMALL_NULL_COUNT = 2048
_SMALL_NULLS = tuple(_make_null(a) for a in range(_SMALL_NULL_COUNT))


def _check_seal_authority(authority: Capability, needed: Permission) -> None:
    if not authority.tag:
        raise TagFault("sealing authority is untagged")
    if authority.is_sealed:
        raise SealedFault("sealing authority is itself sealed")
    if needed not in authority.perms:
        raise PermissionFault(f"sealing authority lacks {needed}")
    if not authority.in_bounds(authority.address, 1):
        raise BoundsFault(
            f"otype {authority.address} outside sealing authority bounds"
        )


def _check_otype_for(target: Capability, otype: int) -> None:
    if not otypes_mod.is_valid_otype(otype) or otype == otypes_mod.OTYPE_UNSEALED:
        raise OTypeFault(f"invalid otype for sealing: {otype}")


def attenuate_loaded(loaded: Capability, authority: Capability) -> Capability:
    """Apply the recursive load attenuations (paper section 3.1.1).

    When a tagged capability is loaded through ``authority``:

    * without ``LG`` on the authority, the loaded capability has GL and
      LG cleared (it becomes local and propagates locality);
    * without ``LM`` on the authority, the loaded capability has LM and
      its store permissions cleared (deep immutability) — this applies to
      data capabilities; sealed and executable capabilities keep their
      permissions so sentries still work.

    Untagged values pass through unchanged (they are just bits).
    """
    if not loaded.tag:
        return loaded
    aperms = authority.perms
    if Permission.LG in aperms and Permission.LM in aperms:
        # Full-authority loads (the common case: stack and globals run
        # with LG+LM) attenuate nothing — skip the set algebra.
        return loaded
    perms = frozenset(loaded.perms)
    if Permission.LG not in authority.perms:
        perms = perms - {Permission.GL, Permission.LG}
    if Permission.LM not in authority.perms and not loaded.is_executable:
        perms = perms - {Permission.LM, Permission.SD, Permission.SL}
    if perms == loaded.perms:
        return loaded
    return replace(loaded, perms=compression.normalize(perms))
